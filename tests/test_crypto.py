"""Tests for digests, MAC authenticators, key refresh, and signatures."""

from hypothesis import given, strategies as st

from repro.crypto import (
    Authenticator,
    DIGEST_SIZE,
    KeyRegistry,
    compute_mac,
    digest,
    digest_many,
    sign,
    verify_mac,
    verify_signature,
)


def test_digest_size_and_determinism():
    d = digest(b"hello")
    assert len(d) == DIGEST_SIZE
    assert d == digest(b"hello")
    assert d != digest(b"hellp")


def test_digest_many_matches_concat():
    assert digest_many([b"ab", b"cd"]) == digest(b"abcd")


def test_mac_verify_accepts_and_rejects():
    key = b"k" * 32
    tag = compute_mac(key, b"data")
    assert verify_mac(key, b"data", tag)
    assert not verify_mac(key, b"datb", tag)
    assert not verify_mac(b"j" * 32, b"data", tag)


def test_session_keys_are_directional():
    reg = KeyRegistry()
    assert reg.session_key("a", "b") != reg.session_key("b", "a")


def test_authenticator_per_receiver():
    reg = KeyRegistry()
    auth = Authenticator.create(reg, "p", ["r1", "r2", "r3"], b"msg")
    assert auth.verify(reg, "r1", b"msg")
    assert auth.verify(reg, "r2", b"msg")
    assert not auth.verify(reg, "r1", b"other")
    assert not auth.verify(reg, "rX", b"msg")  # not a receiver


def test_forged_authenticator_rejected():
    reg = KeyRegistry()
    auth = Authenticator.forged("p", ["r1"])
    assert not auth.verify(reg, "r1", b"msg")


def test_key_refresh_invalidates_old_macs():
    """Proactive recovery: after refresh, MACs under old keys must fail."""
    reg = KeyRegistry()
    auth = Authenticator.create(reg, "attacker", ["victim"], b"replay")
    assert auth.verify(reg, "victim", b"replay")
    reg.refresh_session_keys("victim")
    assert not auth.verify(reg, "victim", b"replay")
    # Fresh authenticators work under the new epoch.
    auth2 = Authenticator.create(reg, "attacker", ["victim"], b"replay")
    assert auth2.verify(reg, "victim", b"replay")
    assert reg.epoch("victim") == 1


def test_refresh_only_affects_inbound_keys():
    reg = KeyRegistry()
    out = Authenticator.create(reg, "victim", ["other"], b"m")
    reg.refresh_session_keys("victim")
    assert out.verify(reg, "other", b"m")


def test_signatures_bind_signer_and_data():
    reg = KeyRegistry()
    sig = sign(reg, "replica0", b"view-change")
    assert verify_signature(reg, "replica0", b"view-change", sig)
    assert not verify_signature(reg, "replica1", b"view-change", sig)
    assert not verify_signature(reg, "replica0", b"other", sig)


def test_distinct_registries_are_independent():
    r1 = KeyRegistry(seed=b"one")
    r2 = KeyRegistry(seed=b"two")
    sig = sign(r1, "n", b"d")
    assert not verify_signature(r2, "n", b"d", sig)


@given(st.binary(max_size=200), st.binary(max_size=200))
def test_mac_distinguishes_messages(a, b):
    key = b"k" * 32
    if a != b:
        assert compute_mac(key, a) != compute_mac(key, b)


@given(st.binary(max_size=100))
def test_signature_roundtrip_property(data):
    reg = KeyRegistry()
    assert verify_signature(reg, "s", data, sign(reg, "s", data))


def test_authenticator_wire_size():
    reg = KeyRegistry()
    auth = Authenticator.create(reg, "p", ["a", "b", "c", "d"], b"m")
    assert auth.wire_size() == 4 * 16
