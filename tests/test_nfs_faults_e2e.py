"""End-to-end fault scenarios on BASEFS: the claims of §1 exercised."""

import pytest

from repro.bft.config import BftConfig
from repro.bft.faults import WrongReplyBehavior
from repro.nfs.backends import ALL_BACKENDS, CorruptingBackend, LinuxExt2Backend
from repro.nfs.client import NfsClient
from repro.nfs.service import build_basefs
from repro.nfs.spec import AbstractSpecConfig

SPEC = AbstractSpecConfig(array_size=128)


def cluster_with_client(backends=None, **cfg):
    defaults = dict(n=4, checkpoint_interval=8, view_change_timeout=2.0,
                    client_retry_timeout=1.0, reboot_delay=0.3)
    defaults.update(cfg)
    cluster, transport = build_basefs(
        backends or [LinuxExt2Backend] * 4, spec=SPEC,
        config=BftConfig(**defaults), branching=8)
    return cluster, NfsClient(transport)


def test_byzantine_replica_cannot_corrupt_file_reads():
    cluster, fs = cluster_with_client()
    fs.write_file("/doc", b"the truth")
    cluster.replicas[1].behavior = WrongReplyBehavior()
    fs.drop_caches()
    assert fs.read_file("/doc") == b"the truth"


def test_latent_write_corruption_repaired_by_checkpoint_divergence():
    """One replica's disk silently corrupts writes for a while; its
    checkpoints diverge and state transfer repairs it once the fault
    clears (a disk corrupting 100% of writes forever cannot be repaired
    in place — the repair writes would rot too)."""
    cluster, fs = cluster_with_client()
    victim = cluster.replicas[2]
    wrapper = victim.state.upcalls
    corrupting = CorruptingBackend(wrapper.backend, probability=1.0, seed=5)
    wrapper.backend = corrupting
    for i in range(8):
        fs.write_file(f"/f{i}", b"good data %d" % i)
    assert corrupting.corruptions > 0
    corrupting.probability = 0.0  # the transient fault clears
    for i in range(8, 12):
        fs.write_file(f"/f{i}", b"good data %d" % i)
    cluster.run(10.0)
    # Checkpoint divergence caught the live corruption and transferred...
    transfers = cluster.tracer.find("transfer_complete",
                                    source=victim.node_id)
    assert transfers, "corruption never detected"
    # ...but rot that slipped in *during* repair is latent: the tree
    # recorded the fetched digests, so checkpoints agree again while the
    # concrete state is still rotten.  Only proactive recovery's full
    # check (re-deriving every digest from the concrete state) finds it.
    victim.recovery.start_recovery()
    cluster.run(30.0)
    assert not victim.recovery.recovering
    backend = wrapper.backend
    root = backend.mount()
    fh, _ = backend.lookup(root, "f0")
    data, _ = backend.read(fh, 0, 100)
    assert data == b"good data 0"


def test_heterogeneous_cluster_survives_one_crash_plus_recovery():
    cluster, fs = cluster_with_client(backends=list(ALL_BACKENDS))
    fs.mkdir("/work")
    fs.write_file("/work/a", b"1")
    cluster.replicas[3].crash()            # FreeBSD down
    fs.write_file("/work/b", b"2")         # 3 of 4 still serve
    cluster.replicas[1].recovery.start_recovery()  # Solaris rejuvenates
    # Down to 2 fully-live replicas + 1 recovering: writes must stall-free
    # once the recovering replica rejoins agreement (post-reboot).
    fs.write_file("/work/c", b"3")
    cluster.run(20.0)
    assert not cluster.replicas[1].recovery.recovering
    live_roots = {r.state.tree.root_digest for r in cluster.replicas
                  if not r.crashed}
    cluster.run(3.0)
    assert fs.read_file("/work/c") == b"3"


def test_stolen_keys_useless_after_recovery():
    """Session-key refresh: MACs minted before a recovery no longer
    authenticate to the recovered replica."""
    from repro.bft.messages import Request
    from repro.crypto.mac import Authenticator
    cluster, fs = cluster_with_client()
    fs.write_file("/x", b"1")
    victim = cluster.replicas[0]
    # 'Steal' a pre-recovery authenticator...
    stolen = Request("nfs-client", 999, b"evil-op")
    stolen.auth = Authenticator.create(cluster.registry, "nfs-client",
                                       cluster.config.replica_ids,
                                       stolen.body())
    victim.recovery.start_recovery()
    cluster.run(20.0)
    assert not victim.recovery.recovering
    assert not stolen.auth.verify(cluster.registry, victim.node_id,
                                  stolen.body())
    # The service still works for honest clients (fresh MACs).
    fs.write_file("/y", b"2")
    assert fs.read_file("/y") == b"2"


def test_all_four_vendors_recover_in_turn():
    cluster, fs = cluster_with_client(backends=list(ALL_BACKENDS))
    for i in range(8):
        fs.write_file(f"/seed{i}", b"s%d" % i)
    cluster.run(1.0)
    for index in (3, 2, 1, 0):
        victim = cluster.replicas[index]
        victim.recovery.start_recovery()
        cluster.run(25.0)
        assert not victim.recovery.recovering, f"replica{index} stuck"
        fs.write_file(f"/after{index}", b"ok")
    cluster.run(5.0)
    roots = {r.state.tree.root_digest for r in cluster.replicas}
    assert len(roots) == 1
