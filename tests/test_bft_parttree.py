"""Unit and property tests for the hierarchical state partition tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bft.parttree import PartitionTree
from repro.crypto.digest import digest


def test_single_object_tree():
    tree = PartitionTree(1, branching=8)
    tree.set_leaf(0, digest(b"x"), 1)
    assert tree.root_digest == PartitionTree.combine([(digest(b"x"), 1)])


def test_root_changes_when_any_leaf_changes():
    tree = PartitionTree(100, branching=4)
    before = tree.root_digest
    tree.set_leaf(57, digest(b"v"), 3)
    assert tree.root_digest != before


def test_same_leaves_same_root():
    t1 = PartitionTree(64, branching=8)
    t2 = PartitionTree(64, branching=8)
    for i in range(0, 64, 7):
        t1.set_leaf(i, digest(b"%d" % i), i)
        t2.set_leaf(i, digest(b"%d" % i), i)
    assert t1.root_digest == t2.root_digest


def test_lm_affects_root():
    """The last-modified seq is committed to, not just the value digest."""
    t1 = PartitionTree(8, branching=4)
    t2 = PartitionTree(8, branching=4)
    t1.set_leaf(0, digest(b"v"), 1)
    t2.set_leaf(0, digest(b"v"), 2)
    assert t1.root_digest != t2.root_digest


def test_children_info_verifies_against_parent():
    tree = PartitionTree(64, branching=8)
    for i in range(64):
        tree.set_leaf(i, digest(b"obj%d" % i), i % 5)
    # Walk every internal node: combine(children) must equal node digest.
    for level in range(tree.levels - 1):
        for index in range(tree.row_size(level)):
            children = tree.children_info(level, index)
            assert children is not None
            assert PartitionTree.combine(children) == tree._digests[level][index]


def test_children_info_out_of_range_returns_none():
    tree = PartitionTree(10, branching=4)
    assert tree.children_info(tree.levels - 1, 0) is None
    assert tree.children_info(0, 99) is None


def test_snapshot_immutable_under_later_updates():
    tree = PartitionTree(16, branching=4)
    tree.set_leaf(3, digest(b"a"), 1)
    snap = tree.snapshot()
    root_before = snap.root_digest
    tree.set_leaf(3, digest(b"b"), 2)
    assert snap.root_digest == root_before
    assert tree.root_digest != root_before
    assert snap.children_info(0, 0, 4) is not None


def test_non_power_of_branching_sizes():
    for size in (1, 2, 5, 63, 64, 65, 1000):
        tree = PartitionTree(size, branching=8)
        tree.set_leaf(size - 1, digest(b"end"), 1)
        assert isinstance(tree.root_digest, bytes)
        # Leaf row has exactly `size` entries.
        assert tree.row_size(tree.leaf_level) == size


def test_set_leaf_out_of_range():
    tree = PartitionTree(4, branching=4)
    with pytest.raises(IndexError):
        tree.set_leaf(4, digest(b"x"), 0)


def test_invalid_construction():
    with pytest.raises(ValueError):
        PartitionTree(0)
    with pytest.raises(ValueError):
        PartitionTree(4, branching=1)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 63), st.binary(min_size=1, max_size=8),
                          st.integers(0, 100)), max_size=40),
       st.sampled_from([2, 4, 8, 16]))
def test_incremental_equals_batch_rebuild(updates, branching):
    """Applying updates incrementally (with refreshes interleaved) yields
    the same root as applying them all at once."""
    incremental = PartitionTree(64, branching=branching)
    for i, (idx, value, lm) in enumerate(updates):
        incremental.set_leaf(idx, digest(value), lm)
        if i % 3 == 0:
            incremental.refresh()
    batch = PartitionTree(64, branching=branching)
    final = {}
    for idx, value, lm in updates:
        final[idx] = (digest(value), lm)
    for idx, (d, lm) in final.items():
        batch.set_leaf(idx, d, lm)
    assert incremental.root_digest == batch.root_digest


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 300), st.sampled_from([2, 8, 64]))
def test_every_leaf_reachable_from_root_walk(size, branching):
    """BFS from the root via children_info reaches exactly the leaf row."""
    tree = PartitionTree(size, branching=branching)
    for i in range(size):
        tree.set_leaf(i, digest(b"leaf%d" % i), 0)
    found = set()
    queue = [(0, 0)]
    while queue:
        level, index = queue.pop()
        children = tree.children_info(level, index)
        if children is None:
            continue
        child_level = level + 1
        for off in range(len(children)):
            child_index = index * branching + off
            if child_level == tree.leaf_level:
                found.add(child_index)
            else:
                queue.append((child_level, child_index))
    assert found == set(range(size))
