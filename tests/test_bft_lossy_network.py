"""Liveness under message loss: the asynchronous-network assumption.

BFT promises safety always and liveness once messages get through; these
tests run real workloads over links that drop a fraction of all traffic
and assert completion + consistency (retransmission paths: client
retries, duplicate-request pre-prepare retransmit, checkpoint re-send,
state-transfer donor rotation, view changes as the last resort).
"""

import pytest

from repro.bft.config import BftConfig
from repro.bft.statemachine import InMemoryStateManager
from repro.harness.cluster import build_cluster
from repro.sim.network import LinkConfig, NetworkConfig

put = InMemoryStateManager.op_put
get = InMemoryStateManager.op_get


def lossy_cluster(drop_rate, seed=1, **cfg):
    defaults = dict(n=4, checkpoint_interval=4, view_change_timeout=0.8,
                    client_retry_timeout=0.4)
    defaults.update(cfg)
    network = NetworkConfig(seed=seed, default_link=LinkConfig(
        latency=1e-4, jitter=3e-5, drop_rate=drop_rate))
    return build_cluster(lambda i: InMemoryStateManager(size=32),
                         config=BftConfig(**defaults),
                         network_config=network, seed=seed)


@pytest.mark.parametrize("drop_rate", [0.02, 0.10])
def test_workload_completes_under_loss(drop_rate):
    cluster = lossy_cluster(drop_rate)
    client = cluster.add_client("client0")
    for i in range(20):
        assert client.call(put(i % 8, b"loss%d" % i)) == b"ok"
    cluster.run(10.0)
    # With no further traffic, laggards legitimately stay behind within
    # the last unstable window; compare replicas at the frontier.
    frontier = max(r.last_executed for r in cluster.replicas)
    values = {tuple(r.state.values) for r in cluster.replicas
              if r.last_executed == frontier}
    assert len(values) == 1
    # At least a quorum reached the frontier (they executed the result
    # the client accepted).
    assert sum(1 for r in cluster.replicas
               if r.last_executed == frontier) >= 2


def test_reads_complete_under_loss():
    cluster = lossy_cluster(0.08, seed=3)
    client = cluster.add_client("client0")
    client.call(put(1, b"readable"))
    for _ in range(5):
        assert client.call(get(1), read_only=True) == b"readable"


def test_duplicate_relay_triggers_pre_prepare_retransmit():
    """Drop the first pre-prepare entirely: the client's retransmission
    reaches the primary as a duplicate, which must re-send the
    pre-prepare rather than ignore it."""
    cluster = lossy_cluster(0.0)
    client = cluster.add_client("client0")
    state = {"dropped": 0}

    def drop_first_pp(src, dst, msg):
        if getattr(msg, "kind", "") == "pre_prepare" \
                and state["dropped"] < 3:
            state["dropped"] += 1
            return False
        return True

    cluster.network.add_filter(drop_first_pp)
    start = cluster.scheduler.now
    assert client.call(put(0, b"recovered")) == b"ok"
    # One client retry (0.4 s) + retransmitted pp — well under the view
    # change timeout (0.8 s), so no view change was needed.
    assert cluster.scheduler.now - start < 0.8
    assert all(r.view == 0 for r in cluster.replicas)


def test_lost_checkpoints_retransmitted():
    """Drop every original checkpoint message; the retransmission timer
    must still stabilize checkpoints so watermarks advance."""
    cluster = lossy_cluster(0.0, view_change_timeout=0.3)
    seen = set()

    def drop_first_checkpoint_wave(src, dst, msg):
        if getattr(msg, "kind", "") == "checkpoint":
            key = (src, msg.seq)
            if key not in seen:
                seen.add(key)
                return False
        return True

    cluster.network.add_filter(drop_first_checkpoint_wave)
    client = cluster.add_client("client0")
    for i in range(12):
        client.call(put(i % 4, b"ck%d" % i))
    cluster.run(3.0)
    assert max(r.last_stable for r in cluster.replicas) >= 8


def test_safety_preserved_under_heavy_loss():
    """25% loss may hurt latency badly, but never consistency."""
    cluster = lossy_cluster(0.25, seed=9, client_retry_timeout=0.3)
    client = cluster.add_client("client0")
    completed = 0
    for i in range(8):
        try:
            client.call(put(i, b"heavy%d" % i))
            completed += 1
        except TimeoutError:
            break
    cluster.run(20.0)
    # Whatever completed is identical on replicas that executed it.
    for slot in range(completed):
        values = {r.state.values[slot] for r in cluster.replicas
                  if r.state.values[slot] != b""}
        assert len(values) <= 1
    assert completed >= 4  # the network delivers *eventually*
