"""Thor wrapper conversion edge cases: VQ eviction, session churn,
threshold transfer, directory rebuilds."""

from repro.encoding.canonical import canonical, decanonical
from repro.thor.objects import ObjectRecord
from repro.thor.orefs import make_oref
from repro.thor.pages import Page
from repro.thor.server import ThorServer, ThorServerConfig
from repro.thor.wrapper import ThorConformanceWrapper
from repro.base.state import AbstractStateManager
from repro.base.nondet import ClockValue

NUM_PAGES = 8


def rec(value):
    return ObjectRecord("Item", (value,)).encode()


class Harness:
    def __init__(self, seed=0, vq_capacity=3):
        self.clock = 0.0
        server = ThorServer(ThorServerConfig(seed=seed,
                                             vq_capacity=vq_capacity))
        for pagenum in range(4):
            server.load_page(Page(pagenum, {o: rec(o) for o in range(4)}))
        self.wrapper = ThorConformanceWrapper(server, num_pages=NUM_PAGES,
                                              max_clients=4,
                                              clock=lambda: self.clock)
        self.manager = AbstractStateManager(self.wrapper, branching=8)

    def ok(self, *parts):
        self.clock += 1.0
        result = decanonical(self.wrapper.execute(
            canonical(parts), "x", ClockValue.encode(self.clock)))
        assert result[0] == 0, result
        return result[1:]

    def state(self):
        return [self.wrapper.get_obj(i)
                for i in range(self.wrapper.num_objects)]


def commit(h, client, n, oref):
    return h.ok("commit", client, n * 1_000_000 + 1, (oref,),
                ((oref, rec("v%d" % n)),), (), ())


def test_vq_eviction_threshold_in_meta_object():
    h = Harness(vq_capacity=3)
    h.ok("start_session", "alice")
    for n in range(2, 7):  # 5 commits through a 3-entry VQ: evictions
        committed, _ = commit(h, "alice", n, make_oref(0, n % 4))
        assert committed
    (threshold,) = decanonical(h.wrapper.get_obj(0))
    assert threshold > 0  # evictions raised the abort threshold
    # The threshold transfers: a fresh twin must agree on future aborts.
    twin = Harness(seed=9, vq_capacity=3)
    twin.wrapper.put_objs({i: blob for i, blob in enumerate(h.state())})
    assert twin.state() == h.state()
    # A too-old timestamp aborts identically on both.
    for target in (h, twin):
        committed, _ = target.ok(
            "commit", "alice", threshold - 1,
            (make_oref(1, 0),), ((make_oref(1, 0), rec("late")),), (), ())
        assert not committed


def test_vq_slot_reuse_after_eviction_stays_consistent():
    h1, h2 = Harness(seed=1, vq_capacity=2), Harness(seed=2, vq_capacity=2)
    for h in (h1, h2):
        h.ok("start_session", "alice")
        for n in range(2, 8):
            commit(h, "alice", n, make_oref(n % 4, n % 4))
    assert h1.state() == h2.state()


def test_session_churn_reuses_client_numbers():
    h = Harness()
    assert h.ok("start_session", "a") == (0,)
    assert h.ok("start_session", "b") == (1,)
    h.ok("end_session", "a")
    assert h.ok("start_session", "c") == (0,)  # lowest free number
    # The IS area reflects the reuse.
    area = decanonical(h.wrapper.get_obj(h.wrapper.is_index(0)))
    assert area[0] == "c"


def test_directory_area_drops_ended_sessions():
    h = Harness()
    h.ok("start_session", "a")
    h.ok("fetch", "a", 2, (), ())
    assert decanonical(h.wrapper.get_obj(h.wrapper.dir_index(2)))[0] == (0,)
    h.ok("end_session", "a")
    assert decanonical(h.wrapper.get_obj(h.wrapper.dir_index(2)))[0] == ()


def test_put_objs_clears_removed_clients():
    src = Harness(seed=3)
    src.ok("start_session", "alice")
    dst = Harness(seed=4)
    dst.ok("start_session", "alice")
    dst.ok("start_session", "bob")   # extra client absent from src
    dst.ok("fetch", "bob", 1, (), ())
    delta = {i: blob for i, blob in enumerate(src.state())
             if blob != dst.state()[i]}
    dst.wrapper.put_objs(delta)
    assert dst.state() == src.state()
    assert "bob" not in dst.wrapper._client_numbers


def test_unknown_op_is_deterministic_error():
    h = Harness()
    h.clock += 1.0
    result = decanonical(h.wrapper.execute(
        canonical(("frobnicate", 1)), "x", ClockValue.encode(h.clock)))
    assert result[0] == 1
