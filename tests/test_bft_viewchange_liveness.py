"""Liveness mechanisms added around view changes and recovery:

- future-view message buffering (a new primary's pre-prepare racing its
  NEW-VIEW must not be lost);
- backups relaying waiting requests to the new primary;
- NEW-VIEW forwarding in CERT replies (recovered replicas catch up to the
  current view);
- the fast full-reply retransmit when the designated replier is down.
"""

from repro.bft.faults import MuteBehavior
from repro.bft.statemachine import InMemoryStateManager
from tests.conftest import make_kv_cluster

put = InMemoryStateManager.op_put
get = InMemoryStateManager.op_get


def test_request_completes_within_one_view_change():
    """After the view change, the relayed request must complete without
    waiting for extra client retransmissions."""
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=10.0)  # retransmit ~never
    client = cluster.add_client("client0")
    client.call(put(0, b"warm"))
    # Client now knows the primary; crash it mid-stream.  The client's
    # huge retry timeout means only the *replica relay* path can save the
    # next request (the client multicasts once at its first retry... so
    # use a modest first retry, then none).
    cluster = make_kv_cluster(view_change_timeout=0.4,
                              client_retry_timeout=0.3)
    client = cluster.add_client("client0")
    client.call(put(0, b"warm"))
    cluster.replicas[0].crash()
    start = cluster.scheduler.now
    assert client.call(put(1, b"after")) == b"ok"
    elapsed = cluster.scheduler.now - start
    # one retry (0.3) + one vc timeout (0.4) + protocol time; without the
    # relay-on-enter-view mechanism this needs a second retry cycle.
    assert elapsed < 1.4, f"took {elapsed:.2f}s — relay path broken?"


def test_future_view_pre_prepare_buffered_not_lost():
    """A pre-prepare from a view we have not entered yet is stashed and
    replayed on view entry, not dropped (the race a new primary's first
    proposal loses against its own NEW-VIEW on a jittery network)."""
    from repro.bft.messages import PrePrepare, Request
    cluster = make_kv_cluster()
    client = cluster.add_client("client0")
    client.call(put(0, b"seed"))
    victim = cluster.replicas[2]
    future_primary = cluster.replicas[1]  # primary of view 1

    request = Request("client0", 77, put(1, b"from-the-future"))
    pp = PrePrepare(1, victim.last_executed + 1, (request,), b"")
    future_primary.authenticate(pp)
    victim.on_message(future_primary.node_id, pp)

    # Not processed (we are in view 0), but not lost either.
    assert victim.log.get(pp.seq) is None \
        or victim.log.get(pp.seq).pre_prepare is None
    assert any(m is pp for _, m in victim._future_view_msgs)

    # Entering view 1 replays it.
    victim.view = 1
    victim.redeliver_future_msgs()
    slot = victim.log.get(pp.seq)
    assert slot is not None
    assert slot.pre_prepare.batch_digest() == pp.batch_digest()
    assert not victim._future_view_msgs


def test_recovered_replica_catches_up_to_current_view():
    cluster = make_kv_cluster(view_change_timeout=0.4,
                              client_retry_timeout=0.3,
                              checkpoint_interval=4, reboot_delay=0.5)
    client = cluster.add_client("client0")
    for i in range(6):
        client.call(put(i, b"v%d" % i))
    lagger = cluster.replicas[3]
    lagger.recovery.start_recovery()
    # While it reboots, force a view change.
    cluster.replicas[0].crash()
    client.call(put(6, b"post-vc"))
    cluster.run(20.0)
    assert not lagger.recovery.recovering
    # The CERT replies carried the NEW-VIEW: the lagger joined view >= 1.
    assert lagger.view >= 1
    client.call(put(7, b"both"))
    cluster.run(2.0)
    assert lagger.state.values[:8] == [b"v%d" % i for i in range(6)] + \
        [b"post-vc", b"both"]


def test_client_accepts_when_designated_replier_is_mute():
    """f+1 digests + no full result triggers the immediate retransmit;
    cached replies come back full, so the op completes without waiting a
    whole retry timeout per op."""
    cluster = make_kv_cluster(client_retry_timeout=5.0)
    client = cluster.add_client("client0")
    # Mute a replica's *replies* only (it keeps ordering).
    mute_replies_of = cluster.replicas[1].node_id

    def drop_replies(src, dst, msg):
        return not (getattr(msg, "kind", "") == "reply"
                    and src == mute_replies_of)

    cluster.network.add_filter(drop_replies)
    start = cluster.scheduler.now
    for i in range(8):  # seq i+1: designated = (i+1) % 4
        assert client.call(put(i, b"d%d" % i)) == b"ok"
    # With a 5 s retry timeout, finishing quickly proves the nudge path.
    assert cluster.scheduler.now - start < 2.0