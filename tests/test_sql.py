"""BASE-SQL: the §6 future-work extension, engines through full replication."""

import pytest

from repro.bft.config import BftConfig
from repro.sql.engine import (
    BTreeStoreEngine,
    HashStoreEngine,
    SqlEngineError,
)
from repro.sql.service import build_base_sql, build_sql_std
from repro.sql.wrapper import SqlConformanceWrapper
from repro.base.state import AbstractStateManager


# -- engines --------------------------------------------------------------------

@pytest.fixture(params=[HashStoreEngine, BTreeStoreEngine],
                ids=lambda c: c.vendor)
def engine(request):
    e = request.param()
    e.create_table("users", ("id", "name", "score"), "id")
    return e


def test_engine_crud(engine):
    engine.insert("users", (1, "ada", 10))
    assert engine.select("users", 1) == (1, "ada", 10)
    assert engine.update("users", 1, (1, "ada", 99))
    assert engine.select("users", 1)[2] == 99
    assert engine.delete("users", 1)
    assert engine.select("users", 1) is None
    assert not engine.delete("users", 1)


def test_engine_duplicate_key(engine):
    engine.insert("users", (1, "a", 0))
    with pytest.raises(SqlEngineError) as err:
        engine.insert("users", (1, "b", 0))
    assert err.value.code == "23000"


def test_engine_schema_enforced(engine):
    with pytest.raises(SqlEngineError):
        engine.insert("users", (1, "too-few"))
    engine.insert("users", (1, "x", 0))
    with pytest.raises(SqlEngineError):
        engine.update("users", 1, (2, "key-change", 0))


def test_engine_unknown_table(engine):
    with pytest.raises(SqlEngineError) as err:
        engine.select("ghost", 1)
    assert err.value.code == "42S02"


def test_engines_scan_orders_differ():
    """The concrete divergence the wrapper must mask."""
    a, b = HashStoreEngine(), BTreeStoreEngine()
    for e in (a, b):
        e.create_table("t", ("k", "v"), "k")
        for k in (3, 1, 2):
            e.insert("t", (k, "v%d" % k))
    assert [r[0] for r in a.scan("t")] == [3, 1, 2]   # insertion order
    assert [r[0] for r in b.scan("t")] == [1, 2, 3]   # key order


# -- wrapper: abstract-state identity ------------------------------------------------


def make_wrapped(engine_cls):
    wrapper = SqlConformanceWrapper(engine_cls(), array_size=64)
    manager = AbstractStateManager(wrapper, branching=8)
    from repro.encoding.canonical import canonical, decanonical

    def op(*parts, read_only=False):
        return decanonical(wrapper.execute(canonical(parts), "c", b"",
                                           read_only=read_only))
    return wrapper, manager, op


def workload(op):
    assert op("create_table", "users", ("id", "name"), "id")[0] == "OK"
    assert op("create_table", "orders", ("oid", "item", "uid"), "oid")[0] \
        == "OK"
    for k in (5, 2, 9):
        assert op("insert", "users", (k, "user%d" % k))[0] == "OK"
    assert op("insert", "orders", ("o1", "book", 5))[0] == "OK"
    assert op("update", "users", 2, (2, "renamed"))[0] == "OK"
    assert op("delete", "users", 9)[0] == "OK"


def test_identical_abstract_state_across_engines():
    state = {}
    scans = {}
    for cls in (HashStoreEngine, BTreeStoreEngine):
        wrapper, _, op = make_wrapped(cls)
        workload(op)
        state[cls.vendor] = [wrapper.get_obj(i) for i in range(64)]
        scans[cls.vendor] = op("scan", "users", read_only=True)
    assert state["hashstore"] == state["btreestore"]
    assert scans["hashstore"] == scans["btreestore"]


def test_put_objs_roundtrip_across_engines():
    src_wrapper, _, src_op = make_wrapped(HashStoreEngine)
    workload(src_op)
    state = {i: src_wrapper.get_obj(i) for i in range(64)}
    dst_wrapper, _, dst_op = make_wrapped(BTreeStoreEngine)
    dst_wrapper.put_objs(state)
    assert [dst_wrapper.get_obj(i) for i in range(64)] == \
        [state[i] for i in range(64)]
    assert dst_op("select", "users", 5, read_only=True) == \
        ("OK", (5, "user5"))
    # The transferred service keeps working.
    assert dst_op("insert", "users", (9, "back"))[0] == "OK"


def test_wrapper_shutdown_restart():
    wrapper, _, op = make_wrapped(HashStoreEngine)
    workload(op)
    before = [wrapper.get_obj(i) for i in range(64)]
    wrapper.shutdown()
    wrapper.restart()
    assert [wrapper.get_obj(i) for i in range(64)] == before
    # Deterministic allocation continues after restart.
    assert op("insert", "users", (11, "post"))[0] == "OK"


def test_wrapper_deterministic_errors():
    _, _, op = make_wrapped(HashStoreEngine)
    assert op("select", "ghost", 1, read_only=True)[:2] == \
        ("ERROR", "42S02")
    op("create_table", "t", ("k",), "k")
    op("insert", "t", (1,))
    assert op("insert", "t", (1,))[:2] == ("ERROR", "23000")
    assert op("select", "t", 99, read_only=True)[:2] == ("ERROR", "02000")
    assert op("insert", "t", (2,), read_only=True)[:2] == ("ERROR", "25006")


def test_drop_table_frees_rows():
    wrapper, _, op = make_wrapped(BTreeStoreEngine)
    op("create_table", "tmp", ("k", "v"), "k")
    for k in range(5):
        op("insert", "tmp", (k, "x"))
    assert len(wrapper.rows) == 5
    op("drop_table", "tmp")
    assert len(wrapper.rows) == 0
    assert op("scan", "tmp", read_only=True)[0] == "ERROR"


# -- full replication ------------------------------------------------------------------


def test_replicated_sql_n_version():
    """Two engine vendors, four replicas, one relational service."""
    cluster, client = build_base_sql(
        [HashStoreEngine, BTreeStoreEngine, HashStoreEngine,
         BTreeStoreEngine],
        config=BftConfig(n=4, checkpoint_interval=8), array_size=64)
    client.create_table("accounts", ("id", "owner", "balance"), "id")
    for i in (3, 1, 2):
        client.insert("accounts", (i, "owner%d" % i, 100 * i))
    client.update("accounts", 2, (2, "owner2", 999))
    client.delete("accounts", 3)
    assert client.select("accounts", 2) == (2, "owner2", 999)
    assert [r[0] for r in client.scan("accounts")] == [1, 2]
    assert client.row_count("accounts") == 2
    cluster.run(2.0)
    roots = {r.state.tree.root_digest for r in cluster.replicas}
    assert len(roots) == 1
    # Engines' concrete catalogs/row-ids differ; abstract state agrees.
    vendors = {type(r.state.upcalls.engine).vendor
               for r in cluster.replicas}
    assert vendors == {"hashstore", "btreestore"}


def test_replicated_matches_unreplicated():
    cluster, replicated = build_base_sql(
        [HashStoreEngine] * 4, config=BftConfig(n=4, checkpoint_interval=8),
        array_size=64)
    _, direct = build_sql_std(HashStoreEngine)
    for client in (replicated, direct):
        client.create_table("t", ("k", "v"), "k")
        for k in (7, 3, 5):
            client.insert("t", (k, "val%d" % k))
        client.delete("t", 3)
    assert replicated.scan("t") == direct.scan("t")
    assert replicated.row_count("t") == direct.row_count("t")


def test_replicated_sql_survives_recovery():
    cluster, client = build_base_sql(
        [HashStoreEngine, BTreeStoreEngine, HashStoreEngine,
         BTreeStoreEngine],
        config=BftConfig(n=4, checkpoint_interval=8, reboot_delay=0.3),
        array_size=64)
    client.create_table("t", ("k", "v"), "k")
    for k in range(10):
        client.insert("t", (k, "v%d" % k))
    cluster.run(1.0)
    victim = cluster.replicas[1]
    victim.recovery.start_recovery()
    cluster.run(20.0)
    assert not victim.recovery.recovering
    client.insert("t", (10, "post-recovery"))
    cluster.run(2.0)
    roots = {r.state.tree.root_digest for r in cluster.replicas}
    assert len(roots) == 1
