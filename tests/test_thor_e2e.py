"""End-to-end BASE-Thor: ThorClient transactions over the BFT cluster."""

import pytest

from repro.bft.config import BftConfig
from repro.thor.client import ThorClient, TransactionAborted
from repro.thor.objects import ObjectRecord
from repro.thor.orefs import make_oref
from repro.thor.pages import Page
from repro.thor.server import ThorServerConfig
from repro.thor.service import build_base_thor, build_thor_std

NUM_PAGES = 8


def load_db(server):
    for pagenum in range(4):
        server.load_page(Page(pagenum, {
            o: ObjectRecord("Cell", (pagenum * 10 + o,)).encode()
            for o in range(4)}))


def small_config():
    return BftConfig(n=4, checkpoint_interval=8, view_change_timeout=2.0,
                     client_retry_timeout=1.0)


@pytest.fixture
def base_thor():
    cluster, transport = build_base_thor(
        NUM_PAGES, load_db, config=small_config(), branching=8,
        server_config=ThorServerConfig(cache_pages=2, mob_bytes=400))
    client = ThorClient(transport, "alice")
    client.start_session()
    return cluster, transport, client


def test_read_transaction(base_thor):
    cluster, transport, client = base_thor
    client.begin()
    record = client.read(make_oref(1, 2))
    assert record.fields == (12,)
    client.commit()


def test_write_transaction_visible_to_later_reads(base_thor):
    cluster, transport, client = base_thor
    oref = make_oref(0, 0)

    def bump(c):
        record = c.read(oref)
        c.write(oref, record.with_fields(record.fields[0] + 1))
    client.run_transaction(bump)
    client.drop_caches()
    client.begin()
    assert client.read(oref).fields == (1,)
    client.commit()


def test_two_clients_conflict_one_aborts(base_thor):
    cluster, transport, client = base_thor
    bob = ThorClient(transport, "bob")
    bob.start_session()
    oref = make_oref(0, 1)
    # Both read the same object...
    client.begin()
    bob.begin()
    v_alice = client.read(oref)
    v_bob = bob.read(oref)
    # ...bob commits a write first; alice's stale write must abort.
    bob.write(oref, v_bob.with_fields(100))
    bob.commit()
    client.write(oref, v_alice.with_fields(200))
    with pytest.raises(TransactionAborted):
        client.commit()


def test_invalidations_propagate_between_clients(base_thor):
    cluster, transport, client = base_thor
    bob = ThorClient(transport, "bob")
    bob.start_session()
    oref = make_oref(2, 0)
    client.begin()
    client.read(oref)       # alice caches page 2
    client.commit()
    bob.run_transaction(lambda c: c.write(
        oref, ObjectRecord("Cell", ("bob-was-here",))))
    # Alice has not contacted the server since, so her cached copy is
    # stale — Thor only delivers invalidations piggybacked on replies.
    # She may *read* the stale value, but a transaction that used it must
    # abort at commit (her invalid set lists the oref), and the abort
    # reply carries the invalidation that drops her stale copy.
    client.begin()
    stale = client.read(oref)
    assert stale.fields == (20,)
    client.write(oref, stale.with_fields("alice-overwrites"))
    with pytest.raises(TransactionAborted):
        client.commit()
    client.begin()
    assert client.read(oref).fields == ("bob-was-here",)
    client.commit()


def test_replicas_agree_after_checkpoints(base_thor):
    cluster, transport, client = base_thor
    for i in range(10):
        oref = make_oref(i % 4, i % 4)
        client.run_transaction(lambda c, oref=oref: c.write(
            oref, ObjectRecord("Cell", (i,))))
    cluster.run(2.0)
    assert max(r.last_stable for r in cluster.replicas) >= 8
    roots = {r.state.checkpoint_root(r.last_stable)
             for r in cluster.replicas}
    # All replicas that made the checkpoint agree byte-for-byte.
    assert len({r for r in roots if r is not None}) == 1


def test_recovery_restores_lost_mob_state(base_thor):
    """A recovering replica loses its MOB (volatile); state transfer must
    restore the pending committed writes from the other replicas."""
    cluster, transport, client = base_thor
    oref = make_oref(3, 1)
    client.run_transaction(lambda c: c.write(
        oref, ObjectRecord("Cell", ("committed-not-flushed",))))
    for i in range(8):
        client.run_transaction(lambda c, i=i: c.write(
            make_oref(0, i % 4), ObjectRecord("Cell", (i,))))
    cluster.run(1.0)
    victim = cluster.replicas[2]
    victim.config.reboot_delay = 0.5
    victim.recovery.start_recovery()
    cluster.run(30.0)
    assert not victim.recovery.recovering
    assert victim.state.upcalls.server.read_object(oref) == \
        ObjectRecord("Cell", ("committed-not-flushed",)).encode()


def test_thor_std_baseline_same_semantics():
    server, transport = build_thor_std(load_db)
    client = ThorClient(transport, "alice")
    client.start_session()
    oref = make_oref(1, 1)
    client.run_transaction(lambda c: c.write(
        oref, ObjectRecord("Cell", ("std",))))
    client.drop_caches()
    client.begin()
    assert client.read(oref).fields == ("std",)
    client.commit()
    assert server.commits == 2


def test_client_cache_eviction_piggybacks_discards(base_thor):
    cluster, transport, client = base_thor
    client.cache_bytes = 200  # tiny: force evictions
    client.begin()
    for pagenum in range(4):
        client.read(make_oref(pagenum, 0))
    client.commit()
    # Evicted pages were reported; the directory no longer lists alice
    # for at least one early page on every replica.
    listed = [len(r.state.upcalls.server.directory.clients_caching(0))
              for r in cluster.replicas]
    assert all(n == listed[0] for n in listed)
