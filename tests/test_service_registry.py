"""ServiceRegistry idempotency.

Regression coverage for two historical failure modes:

- re-registering a service (repeated imports, reloaded modules) used to
  raise instead of being a no-op for equal definitions;
- ``load_all`` on a *fresh* registry relied on module import side
  effects, which are no-ops for already-cached modules — the new
  registry silently stayed empty.
"""

import dataclasses

import pytest

from repro.service.deploy import ServiceDefinition
from repro.service.registry import REGISTRY, ServiceRegistry, load_all
from repro.sql.service import SQL_SERVICE


def test_reregistering_same_definition_is_a_noop():
    registry = ServiceRegistry()
    assert registry.register(SQL_SERVICE) is SQL_SERVICE
    assert registry.register(SQL_SERVICE) is SQL_SERVICE
    assert registry.names() == ["sql"]


def test_reregistering_equal_valued_rebuild_is_a_noop():
    # The repeated-import case: a module re-executed in a fresh namespace
    # builds a new but value-equal definition object.
    registry = ServiceRegistry()
    registry.register(SQL_SERVICE)
    rebuilt = dataclasses.replace(SQL_SERVICE)
    assert registry.register(rebuilt) is SQL_SERVICE


def test_conflicting_definition_still_raises():
    registry = ServiceRegistry()
    registry.register(SQL_SERVICE)
    conflicting = dataclasses.replace(SQL_SERVICE, branching=99)
    with pytest.raises(ValueError, match="different definition"):
        registry.register(conflicting)


def test_load_all_populates_a_fresh_registry_despite_cached_imports():
    # Importing SQL_SERVICE above guarantees the service modules are in
    # sys.modules, so a pure import-side-effect load would see nothing.
    fresh = load_all(ServiceRegistry())
    assert set(fresh.names()) == {"http", "nfs", "sql", "thor"}


def test_load_all_on_default_registry_is_idempotent():
    before = load_all().names()
    assert load_all() is REGISTRY
    assert load_all().names() == before
