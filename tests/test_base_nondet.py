"""Timestamp agreement: the propose/check discipline of §2.3."""

import pytest
from hypothesis import given, strategies as st

from repro.base.nondet import ClockValue, TimestampAgreement


def test_clock_value_roundtrip():
    assert ClockValue.decode(ClockValue.encode(12.345678)) == \
        pytest.approx(12.345678)


def test_clock_value_bad_payload():
    with pytest.raises(ValueError):
        ClockValue.decode(b"\x00" * 3)


def test_check_accepts_close_proposals():
    agreement = TimestampAgreement(lambda: 100.0, delta=0.5)
    assert agreement.check(ClockValue.encode(100.2))
    assert agreement.check(ClockValue.encode(99.8))


def test_check_rejects_distant_proposals():
    """A faulty primary cannot propose wild clock values."""
    agreement = TimestampAgreement(lambda: 100.0, delta=0.5)
    assert not agreement.check(ClockValue.encode(200.0))
    assert not agreement.check(ClockValue.encode(5.0))


def test_check_rejects_non_monotonic():
    """A faulty primary cannot freeze or rewind time — the attack the
    paper describes against NFS client cache invalidation."""
    agreement = TimestampAgreement(lambda: 100.0, delta=10.0)
    agreement.accept(ClockValue.encode(100.0))
    assert not agreement.check(ClockValue.encode(100.0))  # frozen clock
    assert not agreement.check(ClockValue.encode(99.0))   # rewind
    assert agreement.check(ClockValue.encode(100.5))


def test_check_rejects_garbage_payload():
    agreement = TimestampAgreement(lambda: 0.0)
    assert not agreement.check(b"junk")
    assert not agreement.check(b"")


def test_propose_is_monotonic_even_if_clock_rewinds():
    clock = {"now": 100.0}
    agreement = TimestampAgreement(lambda: clock["now"])
    first = ClockValue.decode(agreement.propose())
    agreement.accept(ClockValue.encode(first))
    clock["now"] = 50.0  # local clock stepped backwards
    second = ClockValue.decode(agreement.propose())
    assert second > first


def test_accept_returns_seconds_and_advances_floor():
    agreement = TimestampAgreement(lambda: 10.0)
    value = agreement.accept(ClockValue.encode(10.25))
    assert value == pytest.approx(10.25)
    assert not agreement.check(ClockValue.encode(10.25))


@given(st.lists(st.floats(min_value=0.001, max_value=0.4), min_size=1,
                max_size=20))
def test_accepted_sequence_is_strictly_increasing(deltas):
    clock = {"now": 0.0}
    agreement = TimestampAgreement(lambda: clock["now"], delta=1.0)
    accepted = []
    for step in deltas:
        clock["now"] += step
        proposal = agreement.propose()
        if agreement.check(proposal):
            accepted.append(agreement.accept(proposal))
    assert accepted == sorted(accepted)
    assert len(set(accepted)) == len(accepted)
