"""Wrapper-level recovery (paper §3.1.4): shutdown, restart, and file-
handle reconstruction from the <fsid,fileid>→oid map."""

import pytest

from repro.nfs.backends import FreeBsdUfsBackend, LinuxExt2Backend, LeakyBackend
from repro.nfs.spec import ROOT_OID, AbstractSpecConfig
from repro.nfs.wrapper import NfsConformanceWrapper
from repro.errors import StateTransferError
from tests.test_nfs_wrapper import (
    SATTR_DIR,
    SATTR_FILE,
    SPEC,
    WrapperHarness,
    standard_workload,
)


def test_shutdown_restart_preserves_abstract_state_stable_handles():
    h = WrapperHarness(LinuxExt2Backend)
    standard_workload(h)
    before = h.abstract_state()
    assert h.wrapper.shutdown() > 0
    assert h.wrapper.restart() > 0
    assert h.abstract_state() == before


def test_restart_reresolves_invalidated_handles():
    """FreeBSD restarts invalidate every handle; get_obj must walk the
    directory tree re-deriving them from fileids."""
    h = WrapperHarness(FreeBsdUfsBackend, boot_salt=42)
    standard_workload(h)
    before = h.abstract_state()
    h.wrapper.shutdown()
    h.wrapper.restart()
    # All non-root handles were dropped.
    dropped = [e.fh for e in h.wrapper.rep.entries[1:] if not e.is_free]
    assert all(fh is None for fh in dropped)
    assert h.abstract_state() == before
    # Handles were filled back in during the walk.
    refilled = [e.fh for e in h.wrapper.rep.entries if not e.is_free]
    assert all(fh is not None for fh in refilled)


def test_service_usable_after_restart():
    h = WrapperHarness(FreeBsdUfsBackend, boot_salt=7)
    standard_workload(h)
    h.wrapper.shutdown()
    h.wrapper.restart()
    dir_fh = h.ok("lookup", ROOT_OID, "docs", read_only=True)[0]
    f = h.ok("lookup", dir_fh, "a.txt", read_only=True)[0]
    assert h.ok("read", f, 0, 100, read_only=True)[0] == b"contents of a"
    h.ok("write", f, 0, b"post-restart")


def test_restart_rejuvenates_leaky_backend():
    leaky_box = {}

    class Harness(WrapperHarness):
        def __init__(self):
            self.clock = 0.0
            inner = LinuxExt2Backend(clock=lambda: self.clock)
            leaky = LeakyBackend(inner, leak_per_op=1, limit=10**9)
            leaky_box["leaky"] = leaky
            self.wrapper = NfsConformanceWrapper(leaky, spec=SPEC,
                                                 clock=lambda: self.clock)
            from repro.base.state import AbstractStateManager
            self.manager = AbstractStateManager(self.wrapper, branching=8)
            self.seq = 0

    h = Harness()
    h.ok("create", ROOT_OID, "f", SATTR_FILE)
    before = leaky_box["leaky"].leaked
    assert before > 0
    h.wrapper.shutdown()
    h.wrapper.restart()
    # The leak was reset; only the restart's own few ops re-accumulated.
    assert leaky_box["leaky"].leaked < before
    assert leaky_box["leaky"].leaked <= 5


def test_parent_chain_loop_detected():
    """Corrupted saved state with a parent cycle must raise, not hang."""
    h = WrapperHarness(FreeBsdUfsBackend, boot_salt=3)
    h.ok("mkdir", ROOT_OID, "a", SATTR_DIR)
    a_fh = h.ok("lookup", ROOT_OID, "a", read_only=True)[0]
    h.ok("mkdir", a_fh, "b", SATTR_DIR)
    h.wrapper.shutdown()
    h.wrapper.restart()
    # Corrupt the parent chain: make the two dirs each other's parent.
    rep = h.wrapper.rep
    idx_a = next(i for i, e in enumerate(rep.entries)
                 if not e.is_free and i > 0 and e.parent == 0)
    idx_b = next(i for i, e in enumerate(rep.entries)
                 if not e.is_free and e.parent == idx_a)
    rep.entries[idx_a].parent = idx_b
    with pytest.raises(StateTransferError):
        h.wrapper._resolve_fh(idx_b, set())


def test_bytes_used_restored_after_restart():
    h = WrapperHarness(LinuxExt2Backend)
    standard_workload(h)
    before = h.wrapper.rep.bytes_used
    h.wrapper.shutdown()
    h.wrapper.restart()
    assert h.wrapper.rep.bytes_used == before


def test_free_list_restored_after_restart():
    """Allocation stays deterministic across restarts."""
    h = WrapperHarness(LinuxExt2Backend)
    h.ok("create", ROOT_OID, "one", SATTR_FILE)
    h.ok("create", ROOT_OID, "two", SATTR_FILE)
    h.ok("remove", ROOT_OID, "one")
    h.wrapper.shutdown()
    h.wrapper.restart()
    fh, _ = h.ok("create", ROOT_OID, "three", SATTR_FILE)
    from repro.nfs.spec import oid_bytes
    assert fh == oid_bytes(1, 2)
