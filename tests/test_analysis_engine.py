"""Engine-level tests for ProtoLint: suppressions, baselines, reports,
deterministic ordering, and the ``python -m repro.analysis`` CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis import (Engine, Finding, SUPPRESS_RULE_ID, all_rules,
                            select_rules)
from repro.analysis import baseline as baselinelib
from repro.analysis import report as reportlib
from repro.analysis.__main__ import main
from repro.analysis.baseline import BaselineDiff
from repro.analysis.engine import relativize

REL = "bft/fixture.py"

BAD_LINE = "value = random.choice(options)\n"


def _findings(source, rules=("DET-RNG",), rel=REL):
    return Engine(select_rules(list(rules))).check_source(source, rel)


# -- suppressions --------------------------------------------------------------

def test_suppression_with_reason_silences_the_finding():
    src = ("import random\n"
           "value = random.choice(options)  "
           "# protolint: disable=DET-RNG fixture exercises the rule\n")
    assert _findings(src) == []


def test_standalone_suppression_covers_the_next_line():
    src = ("import random\n"
           "# protolint: disable=DET-RNG covered from the line above\n"
           + BAD_LINE)
    assert _findings(src) == []


def test_suppression_does_not_leak_past_the_next_line():
    src = ("import random\n"
           "# protolint: disable=DET-RNG only reaches line 3\n"
           "x = 1\n"
           + BAD_LINE)
    findings = _findings(src)
    assert [f.rule for f in findings] == ["DET-RNG"]


def test_suppression_without_reason_is_itself_a_finding():
    src = ("import random\n"
           "value = random.choice(options)  # protolint: disable=DET-RNG\n")
    findings = _findings(src)
    rules = [f.rule for f in findings]
    # The reasonless disable is rejected AND the original finding stands.
    assert SUPPRESS_RULE_ID in rules and "DET-RNG" in rules
    assert any("no reason" in f.message for f in findings)


def test_suppression_of_unknown_rule_is_rejected():
    src = ("import random\n"
           "value = random.choice(options)  "
           "# protolint: disable=NOT-A-RULE because reasons\n")
    findings = _findings(src)
    rules = [f.rule for f in findings]
    assert SUPPRESS_RULE_ID in rules and "DET-RNG" in rules
    assert any("unknown rule" in f.message for f in findings)


def test_suppression_only_covers_named_rules():
    src = ("import random, time\n"
           "t = time.time()  # protolint: disable=DET-RNG wrong rule named\n")
    findings = _findings(src, rules=("DET-RNG", "DET-CLOCK"))
    assert [f.rule for f in findings] == ["DET-CLOCK"]


def test_multi_rule_suppression():
    src = ("import random, time\n"
           "t = random.random() * time.time()  "
           "# protolint: disable=DET-RNG,DET-CLOCK fixture needs both\n")
    assert _findings(src, rules=("DET-RNG", "DET-CLOCK")) == []


def test_malformed_protolint_comment_is_flagged():
    src = "x = 1  # protolint: disable DET-RNG forgot the equals\n"
    findings = _findings(src)
    assert [f.rule for f in findings] == [SUPPRESS_RULE_ID]
    assert "malformed" in findings[0].message


def test_hash_inside_string_is_not_a_suppression():
    src = ('import random\n'
           'label = "# protolint: disable=DET-RNG not a comment"\n'
           + BAD_LINE)
    findings = _findings(src)
    assert [f.rule for f in findings] == ["DET-RNG"]


# -- baselines -----------------------------------------------------------------

def _one_finding():
    findings = _findings("import random\n" + BAD_LINE)
    assert len(findings) == 1
    return findings[0]


def test_baseline_roundtrip_and_semantics(tmp_path):
    finding = _one_finding()
    path = tmp_path / "baseline.json"
    baselinelib.dump([finding.fingerprint, "DET-RNG:gone.py:stale entry"],
                     path)
    entries = baselinelib.load(path)
    diff = baselinelib.apply([finding], entries)
    assert diff.new == ()                     # baselined finding passes
    assert diff.baselined == (finding,)
    assert diff.stale == ("DET-RNG:gone.py:stale entry",)  # warns


def test_new_finding_is_not_masked_by_unrelated_baseline():
    finding = _one_finding()
    diff = baselinelib.apply([finding], ["DET-RNG:other.py:different"])
    assert diff.new == (finding,)
    assert diff.stale == ("DET-RNG:other.py:different",)


def test_baseline_fingerprint_survives_line_churn():
    a = Finding(REL, 2, 8, "DET-RNG", "message text")
    b = Finding(REL, 99, 0, "DET-RNG", "message text")
    assert a.fingerprint == b.fingerprint
    assert baselinelib.apply([b], [a.fingerprint]).new == ()


@pytest.mark.parametrize("doc", [
    "[]",
    '{"kind": "wrong", "schema_version": 1, "findings": []}',
    '{"kind": "protolint_baseline", "schema_version": 99, "findings": []}',
    '{"kind": "protolint_baseline", "schema_version": 1, "findings": [1]}',
    '{"kind": "protolint_baseline", "schema_version": 1, '
    '"findings": ["no-colons"]}',
    "not json at all",
])
def test_invalid_baseline_files_are_rejected(tmp_path, doc):
    path = tmp_path / "baseline.json"
    path.write_text(doc)
    with pytest.raises(ValueError):
        baselinelib.load(path)


# -- report schema -------------------------------------------------------------

def _report(findings=(), baselined=(), stale=()):
    diff = BaselineDiff(new=tuple(findings), baselined=tuple(baselined),
                        stale=tuple(stale))
    return reportlib.build(diff, [r.rule_id for r in all_rules()],
                           ["src/repro"])


def test_report_builds_and_validates():
    finding = _one_finding()
    doc = _report([finding], stale=("DET-RNG:gone.py:old",))
    assert doc["ok"] is False
    assert doc["counts"] == {"errors": 1, "warnings": 0, "baselined": 0,
                             "stale_baseline": 1}
    assert doc["findings"][0]["rule"] == "DET-RNG"
    # Round-trips through JSON.
    reportlib.validate(json.loads(json.dumps(doc)))
    assert reportlib.finding_from_dict(doc["findings"][0]) == finding


def test_report_ok_when_clean():
    doc = _report()
    assert doc["ok"] is True and doc["findings"] == []


@pytest.mark.parametrize("mutate", [
    lambda d: d.pop("rules"),
    lambda d: d.__setitem__("kind", "other"),
    lambda d: d.__setitem__("ok", "yes"),
    lambda d: d["counts"].__setitem__("errors", -1),
    lambda d: d["counts"].pop("baselined"),
    lambda d: d.__setitem__("findings", [{"rule": "X"}]),
    lambda d: d.__setitem__("rules", ["Z", "A"]),
    lambda d: d.__setitem__("ok", False),
])
def test_report_schema_rejects_drift(mutate):
    doc = _report()
    mutate(doc)
    with pytest.raises(ValueError):
        reportlib.validate(doc)


def test_report_rejects_unsorted_findings():
    doc = _report([Finding("b.py", 1, 0, "DET-RNG", "m"),
                   Finding("a.py", 1, 0, "DET-RNG", "m")])
    # build() sorts, so force disorder after the fact.
    doc["findings"].reverse()
    with pytest.raises(ValueError):
        reportlib.validate(doc)


# -- deterministic ordering ----------------------------------------------------

def test_findings_are_deterministically_ordered(tmp_path):
    (tmp_path / "bft").mkdir()
    (tmp_path / "bft" / "b.py").write_text(
        "import random, time\n"
        "x = random.choice([1])\n"
        "t = time.time()\n")
    (tmp_path / "bft" / "a.py").write_text(
        "import random\n"
        "y = random.random()\n")
    engine = Engine(all_rules())
    first = engine.run(tmp_path)
    second = engine.run(tmp_path)
    assert first == second
    assert [f.path for f in first] == sorted(f.path for f in first)
    assert first == sorted(first)


def test_relativize_rebases_onto_the_repro_package(tmp_path):
    root = tmp_path / "src"
    target = root / "repro" / "bft" / "replica.py"
    target.parent.mkdir(parents=True)
    target.write_text("x = 1\n")
    assert relativize(target, root) == "bft/replica.py"
    assert relativize(target, root / "repro") == "bft/replica.py"
    other = tmp_path / "elsewhere" / "mod.py"
    other.parent.mkdir()
    other.write_text("x = 1\n")
    assert relativize(other, tmp_path) == "elsewhere/mod.py"


# -- engine misc ---------------------------------------------------------------

def test_engine_rejects_duplicate_rule_ids():
    rule = select_rules(["DET-RNG"])[0]
    with pytest.raises(ValueError):
        Engine([rule, type(rule)()])


def test_unknown_rule_selection_raises():
    with pytest.raises(ValueError, match="NOT-A-RULE"):
        select_rules(["NOT-A-RULE"])


def test_syntax_error_becomes_a_finding():
    findings = Engine(all_rules()).check_source("def broken(:\n", REL)
    assert [f.rule for f in findings] == ["PL-SYNTAX"]


# -- CLI -----------------------------------------------------------------------

def _write_bad_tree(tmp_path):
    pkg = tmp_path / "bft"
    pkg.mkdir()
    (pkg / "mod.py").write_text("import random\n" + BAD_LINE)
    return tmp_path


def test_cli_exits_nonzero_on_findings(tmp_path, capsys):
    root = _write_bad_tree(tmp_path)
    assert main([str(root)]) == 1
    out = capsys.readouterr().out
    assert "DET-RNG" in out and "bft/mod.py" in out


def test_cli_json_output_validates(tmp_path, capsys):
    root = _write_bad_tree(tmp_path)
    out_file = tmp_path / "report.json"
    assert main([str(root), "--format", "json",
                 "--out", str(out_file)]) == 1
    stdout_doc = json.loads(capsys.readouterr().out)
    reportlib.validate(stdout_doc)
    file_doc = json.loads(out_file.read_text())
    reportlib.validate(file_doc)
    assert file_doc["findings"] == stdout_doc["findings"]


def test_cli_baseline_workflow(tmp_path, capsys):
    root = _write_bad_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    # 1. Grandfather the current findings.
    assert main([str(root), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    # 2. Same findings now pass, reported as baselined.
    assert main([str(root), "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # 3. A new violation still fails.
    (root / "bft" / "new.py").write_text("import time\nt = time.time()\n")
    assert main([str(root), "--baseline", str(baseline)]) == 1
    # 4. Fixing everything leaves the baseline stale: warn, exit 0.
    (root / "bft" / "new.py").unlink()
    (root / "bft" / "mod.py").write_text("x = 1\n")
    assert main([str(root), "--baseline", str(baseline)]) == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_cli_rule_subset(tmp_path):
    root = _write_bad_tree(tmp_path)
    assert main([str(root), "--rules", "DET-CLOCK"]) == 0
    assert main([str(root), "--rules", "DET-RNG"]) == 1


def test_cli_rejects_unknown_rule(tmp_path):
    with pytest.raises(SystemExit):
        main([str(tmp_path), "--rules", "BOGUS"])


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.rule_id in out


# -- the gate itself -----------------------------------------------------------

def test_src_tree_is_protolint_clean():
    """The whole point: src/repro stays clean under the full rule set
    (modulo the committed baseline, which starts empty)."""
    repo = Path(__file__).resolve().parent.parent
    engine = Engine(all_rules())
    findings = engine.run(repo / "src" / "repro")
    baseline_path = repo / "protolint-baseline.json"
    entries = baselinelib.load(baseline_path)
    diff = baselinelib.apply(findings, entries)
    assert diff.new == (), "\n".join(f.render() for f in diff.new)
    assert diff.stale == (), \
        f"stale baseline entries, prune protolint-baseline.json: " \
        f"{diff.stale}"
