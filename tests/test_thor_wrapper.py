"""Thor conformance wrapper: abstract determinism over a nondeterministic
server, and the four-area state conversions."""

import pytest

from repro.base.state import AbstractStateManager
from repro.base.nondet import ClockValue
from repro.encoding.canonical import canonical, decanonical
from repro.thor.objects import ObjectRecord
from repro.thor.orefs import make_oref
from repro.thor.pages import Page
from repro.thor.server import ThorServer, ThorServerConfig
from repro.thor.wrapper import ThorConformanceWrapper

NUM_PAGES = 8


def rec(value):
    return ObjectRecord("Item", (value,)).encode()


def load_db(server):
    for pagenum in range(4):
        server.load_page(Page(pagenum, {o: rec(pagenum * 10 + o)
                                        for o in range(4)}))


class Harness:
    def __init__(self, seed=0, cache_pages=2, mob_bytes=200):
        self.clock = 0.0
        server = ThorServer(ThorServerConfig(seed=seed,
                                             cache_pages=cache_pages,
                                             mob_bytes=mob_bytes))
        load_db(server)
        self.wrapper = ThorConformanceWrapper(
            server, num_pages=NUM_PAGES, max_clients=4,
            clock=lambda: self.clock)
        self.manager = AbstractStateManager(self.wrapper, branching=8)

    def op(self, *parts):
        self.clock += 1.0
        raw = self.wrapper.execute(canonical(parts), "ignored",
                                   ClockValue.encode(self.clock))
        return decanonical(raw)

    def ok(self, *parts):
        result = self.op(*parts)
        assert result[0] == 0, result
        return result[1:]

    def state(self):
        return [self.wrapper.get_obj(i)
                for i in range(self.wrapper.num_objects)]


def workload(h: Harness):
    h.ok("start_session", "alice")
    h.ok("start_session", "bob")
    h.ok("fetch", "alice", 0, (), ())
    h.ok("fetch", "bob", 0, (), ())
    h.ok("fetch", "bob", 1, (), ())
    oref = make_oref(0, 1)
    committed, _ = h.ok("commit", "alice", 1_000_000 * 5 + 1,
                        (oref,), ((oref, rec("alice-v1")),), (), ())
    assert committed
    oref2 = make_oref(1, 2)
    h.ok("commit", "bob", 1_000_000 * 6 + 1, (oref2,),
         ((oref2, rec("bob-v1")),), (), (oref,))


def test_same_ops_different_seeds_identical_abstract_state():
    """THE §3.2 property: identical nondeterministic implementation with
    different internal schedules yields identical abstract states."""
    h1 = Harness(seed=1)
    h2 = Harness(seed=2)
    # Different cache/MOB sizing pressure to force concrete divergence.
    h3 = Harness(seed=3, cache_pages=1, mob_bytes=50)
    for h in (h1, h2, h3):
        workload(h)
    s1, s2, s3 = h1.state(), h2.state(), h3.state()
    assert s1 == s2 == s3
    # Concrete states differ (different MOB/disk splits).
    internals = {(len(h.wrapper.server.mob), h.wrapper.server.disk.writes)
                 for h in (h1, h2, h3)}
    assert len(internals) >= 2


def test_abstract_page_value_includes_pending_mob():
    h = Harness(mob_bytes=10**9)  # never flush
    h.ok("start_session", "alice")
    oref = make_oref(2, 0)
    h.ok("commit", "alice", 2_000_001, (oref,),
         ((oref, rec("pending")),), (), ())
    page = Page.decode(2, h.wrapper.get_obj(h.wrapper.page_index(2)))
    assert page.objects[0] == rec("pending")


def test_vq_area_tracks_commits():
    h = Harness()
    workload(h)
    slot0 = decanonical(h.wrapper.get_obj(h.wrapper.vq_index(0)))
    assert slot0[0] == 5_000_001  # alice's timestamp, lowest free slot
    slot1 = decanonical(h.wrapper.get_obj(h.wrapper.vq_index(1)))
    assert slot1[0] == 6_000_001


def test_invalid_set_area_and_directory_area():
    h = Harness()
    workload(h)
    # bob cached page 0; alice's commit invalidated oref(0,1) for bob, but
    # bob acked it on his commit.
    bob_is = decanonical(h.wrapper.get_obj(h.wrapper.is_index(1)))
    assert bob_is[0] == "bob"
    assert bob_is[1] == ()
    dir0 = decanonical(h.wrapper.get_obj(h.wrapper.dir_index(0)))
    assert dir0[0] == (0, 1)  # both abstract clients cache page 0
    dir1 = decanonical(h.wrapper.get_obj(h.wrapper.dir_index(1)))
    assert dir1[0] == (1,)


def test_commit_timestamp_outside_slack_rejected():
    h = Harness()
    h.ok("start_session", "alice")
    oref = make_oref(0, 0)
    committed, _ = h.ok("commit", "alice", 10**12, (oref,),
                        ((oref, rec("x")),), (), ())
    assert not committed


def test_put_objs_roundtrip_to_fresh_server():
    src = Harness(seed=5)
    workload(src)
    state = src.state()

    dst = Harness(seed=9)
    dst.wrapper.put_objs({i: blob for i, blob in enumerate(state)})
    assert dst.state() == state
    # The fresh server now behaves identically: bob can keep committing.
    oref = make_oref(0, 2)
    committed, _ = dst.ok("commit", "bob", 7_000_001, (oref,),
                          ((oref, rec("post-transfer")),), (), ())
    assert committed


def test_put_objs_partial_pages_only():
    a, b = Harness(seed=1), Harness(seed=2)
    workload(a)
    workload(b)
    before = b.state()
    oref = make_oref(3, 3)
    a.ok("commit", "alice", 8_000_001, (oref,),
         ((oref, rec("only-on-a")),), (), ())
    after = a.state()
    changed = {i: blob for i, blob in enumerate(after)
               if blob != before[i]}
    assert changed
    b.wrapper.put_objs(changed)
    assert b.state() == after


def test_restart_loses_volatile_state_then_state_repair():
    """Server restart drops cache, MOB, VQ, ISs, directory; put_objs from
    a healthy twin restores everything."""
    h = Harness(seed=4, mob_bytes=10**9)
    twin = Harness(seed=6, mob_bytes=10**9)
    for x in (h, twin):
        workload(x)
    want = twin.state()
    h.wrapper.shutdown()
    h.wrapper.restart()
    # MOB was volatile: the abstract page lost alice's pending write.
    broken = h.state()
    assert broken != want
    changed = {i: blob for i, blob in enumerate(want)
               if blob != broken[i]}
    h.wrapper.put_objs(changed)
    assert h.state() == want


def test_abstract_state_hides_flush_timing():
    """Force a flush on one server only: abstract pages stay equal."""
    never = Harness(seed=1, mob_bytes=10**9)
    eager = Harness(seed=1, mob_bytes=1)  # flush after every commit
    for h in (never, eager):
        h.ok("start_session", "alice")
        for i in range(5):
            oref = make_oref(0, i % 4)
            h.ok("commit", "alice", (i + 2) * 1_000_000 + 1, (oref,),
                 ((oref, rec("w%d" % i)),), (), ())
    assert never.state() == eager.state()
    assert len(never.wrapper.server.mob) > 0
    assert len(eager.wrapper.server.mob) == 0
