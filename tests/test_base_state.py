"""AbstractStateManager: copy-on-write checkpoints, chain lookup, transfer."""

import pytest

from repro.base.state import AbstractStateManager
from repro.base.upcalls import Upcalls
from repro.crypto.digest import digest
from repro.encoding.canonical import canonical, decanonical


class ToyWrapper(Upcalls):
    """A trivial conformance wrapper over a list-of-bytes 'service'."""

    def __init__(self, size=16):
        super().__init__()
        self._size = size
        self.concrete = [b""] * size
        self.put_calls = []

    @property
    def num_objects(self):
        return self._size

    def execute(self, op, client_id, nondet, read_only=False):
        kind, *rest = decanonical(op)
        if kind == "set":
            index, value = rest
            self.library.modify(index)
            self.concrete[index] = value
            return b"ok"
        if kind == "get":
            return self.concrete[rest[0]]
        raise ValueError(kind)

    def get_obj(self, index):
        return self.concrete[index]

    def put_objs(self, objects):
        self.put_calls.append(sorted(objects))
        for index, value in objects.items():
            self.concrete[index] = value


def op_set(i, v):
    return canonical(("set", i, v))


def run_op(mgr, op, seq):
    return mgr.execute(op, "c", seq, seq, b"")


def test_modify_required_before_mutation_saves_preimage():
    mgr = AbstractStateManager(ToyWrapper(), branching=4)
    mgr.take_checkpoint(0)
    run_op(mgr, op_set(2, b"v1"), 1)
    # The pre-image (empty) is retrievable at checkpoint 0.
    assert mgr.object_at(0, 2) == b""
    mgr.take_checkpoint(4)
    assert mgr.object_at(4, 2) == b"v1"
    assert mgr.object_at(0, 2) == b""


def test_checkpoint_roots_differ_when_state_differs():
    m1 = AbstractStateManager(ToyWrapper(), branching=4)
    m2 = AbstractStateManager(ToyWrapper(), branching=4)
    m1.take_checkpoint(0)
    m2.take_checkpoint(0)
    run_op(m1, op_set(0, b"a"), 1)
    run_op(m2, op_set(0, b"b"), 1)
    assert m1.take_checkpoint(4) != m2.take_checkpoint(4)


def test_identical_histories_identical_roots():
    """Determinism invariant: same ops -> byte-identical roots."""
    m1 = AbstractStateManager(ToyWrapper(), branching=4)
    m2 = AbstractStateManager(ToyWrapper(), branching=4)
    for mgr in (m1, m2):
        mgr.take_checkpoint(0)
        for i in range(8):
            run_op(mgr, op_set(i % 3, b"x%d" % i), i + 1)
        mgr.take_checkpoint(8)
    assert m1.checkpoint_root(8) == m2.checkpoint_root(8)


def test_object_at_chain_lookup_across_multiple_checkpoints():
    mgr = AbstractStateManager(ToyWrapper(), branching=4)
    mgr.take_checkpoint(0)
    run_op(mgr, op_set(1, b"epoch1"), 1)
    mgr.take_checkpoint(4)
    run_op(mgr, op_set(1, b"epoch2"), 5)
    mgr.take_checkpoint(8)
    run_op(mgr, op_set(1, b"epoch3"), 9)  # not yet checkpointed
    assert mgr.object_at(0, 1) == b""
    assert mgr.object_at(4, 1) == b"epoch1"
    assert mgr.object_at(8, 1) == b"epoch2"


def test_unmodified_object_served_from_current_state():
    mgr = AbstractStateManager(ToyWrapper(), branching=4)
    run_op(mgr, op_set(5, b"stable"), 1)
    mgr.take_checkpoint(4)
    # 5 unmodified since checkpoint 4: chain falls through to get_obj.
    assert mgr.object_at(4, 5) == b"stable"


def test_discard_checkpoints_below():
    mgr = AbstractStateManager(ToyWrapper(), branching=4)
    mgr.take_checkpoint(0)
    run_op(mgr, op_set(0, b"a"), 1)
    mgr.take_checkpoint(4)
    run_op(mgr, op_set(0, b"b"), 5)
    mgr.take_checkpoint(8)
    mgr.discard_checkpoints_below(8)
    assert mgr.checkpoint_root(0) is None
    assert mgr.checkpoint_root(4) is None
    assert mgr.checkpoint_root(8) is not None
    assert mgr.object_at(4, 0) is None


def test_apply_fetched_invokes_put_objs_once_with_vector():
    """put_objs receives the whole consistent vector in one call (paper:
    dependencies between objects require this)."""
    donor = AbstractStateManager(ToyWrapper(), branching=4)
    donor.take_checkpoint(0)
    for i in range(3):
        run_op(donor, op_set(i, b"d%d" % i), i + 1)
    root = donor.take_checkpoint(4)

    wrapper = ToyWrapper()
    fetcher = AbstractStateManager(wrapper, branching=4)
    objects = {i: (donor.object_at(4, i), 4) for i in range(3)}
    assert fetcher.apply_fetched(4, root, objects)
    assert wrapper.put_calls == [[0, 1, 2]]
    assert wrapper.concrete[:3] == [b"d0", b"d1", b"d2"]
    assert fetcher.checkpoint_root(4) == root


def test_apply_fetched_rejects_wrong_root():
    wrapper = ToyWrapper()
    mgr = AbstractStateManager(wrapper, branching=4)
    assert not mgr.apply_fetched(4, b"\x00" * 32, {0: (b"junk", 4)})


def test_meta_children_served_from_snapshot_not_live_tree():
    mgr = AbstractStateManager(ToyWrapper(), branching=4)
    run_op(mgr, op_set(0, b"at4"), 1)
    mgr.take_checkpoint(4)
    children_at_4 = mgr.meta_children(4, 0, 0)
    run_op(mgr, op_set(0, b"later"), 5)
    mgr.refresh_dirty()  # live tree now reflects "later"
    assert mgr.meta_children(4, 0, 0) == children_at_4


def test_modify_out_of_range_raises():
    mgr = AbstractStateManager(ToyWrapper(size=4), branching=4)
    with pytest.raises(IndexError):
        mgr.modify(7)


def test_modify_idempotent_within_interval():
    wrapper = ToyWrapper()
    mgr = AbstractStateManager(wrapper, branching=4)
    mgr.take_checkpoint(0)
    run_op(mgr, op_set(1, b"one"), 1)
    run_op(mgr, op_set(1, b"two"), 2)
    # Pre-image at checkpoint 0 is the original empty value, not "one".
    assert mgr.object_at(0, 1) == b""
    mgr.take_checkpoint(4)
    assert mgr.object_at(4, 1) == b"two"


def test_mark_all_dirty_then_refresh_detects_concrete_corruption():
    wrapper = ToyWrapper()
    mgr = AbstractStateManager(wrapper, branching=4)
    run_op(mgr, op_set(3, b"good"), 1)
    root = mgr.take_checkpoint(4)
    wrapper.concrete[3] = b"CORRUPT"  # silent corruption, no modify()
    assert mgr.tree.root_digest == root  # undetected so far
    mgr.mark_all_dirty()
    mgr.refresh_dirty()
    assert mgr.tree.root_digest != root  # now visible


def test_lm_advances_only_at_checkpoints():
    mgr = AbstractStateManager(ToyWrapper(), branching=4)
    mgr.take_checkpoint(0)
    run_op(mgr, op_set(2, b"x"), 1)
    assert mgr.tree.leaf_lm(2) == 0  # not yet checkpointed
    mgr.take_checkpoint(4)
    assert mgr.tree.leaf_lm(2) == 4
