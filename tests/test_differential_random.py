"""Differential random-operation testing.

The strongest correctness statement the methodology supports: for ANY
operation sequence, the replicated service built from *different*
implementations is observably equivalent to the unreplicated
implementation it reuses (modulo concrete details the abstract spec pins
down, like readdir order).  Hypothesis generates the sequences.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bft.config import BftConfig
from repro.nfs.backends import ALL_BACKENDS, LinuxExt2Backend
from repro.nfs.client import NfsClient
from repro.nfs.protocol import NfsError
from repro.nfs.service import build_basefs, build_nfs_std
from repro.nfs.spec import AbstractSpecConfig
from repro.sql.engine import BTreeStoreEngine, HashStoreEngine
from repro.sql.service import build_base_sql, build_sql_std
from repro.sql.engine import SqlEngineError

# -- NFS ---------------------------------------------------------------------

NAMES = ["a", "b", "sub/x", "sub/y"]

nfs_ops = st.lists(st.one_of(
    st.tuples(st.just("write"), st.sampled_from(NAMES),
              st.binary(min_size=1, max_size=200)),
    st.tuples(st.just("read"), st.sampled_from(NAMES)),
    st.tuples(st.just("remove"), st.sampled_from(NAMES)),
    st.tuples(st.just("stat"), st.sampled_from(NAMES)),
    st.tuples(st.just("list"), st.sampled_from(["", "sub"])),
    st.tuples(st.just("rename"), st.sampled_from(NAMES),
              st.sampled_from(NAMES)),
), min_size=1, max_size=12)


def apply_nfs(fs: NfsClient, op) -> tuple:
    """Run one op; normalize the outcome for comparison."""
    kind = op[0]
    try:
        if kind == "write":
            fs.write_file("/" + op[1], op[2])
            return ("ok",)
        if kind == "read":
            return ("data", fs.read_file("/" + op[1]))
        if kind == "remove":
            fs.remove("/" + op[1])
            return ("ok",)
        if kind == "stat":
            attr = fs.getattr("/" + op[1])
            return ("attr", int(attr.ftype), attr.size, attr.mode)
        if kind == "list":
            return ("names", tuple(sorted(fs.listdir("/" + op[1]))))
        if kind == "rename":
            fs.rename("/" + op[1], "/" + op[2])
            return ("ok",)
    except NfsError as err:
        return ("err", int(err.status))
    raise AssertionError(kind)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(nfs_ops)
def test_heterogeneous_basefs_equals_nfs_std(ops):
    cluster, transport = build_basefs(
        list(ALL_BACKENDS), spec=AbstractSpecConfig(array_size=128),
        config=BftConfig(n=4, checkpoint_interval=8), branching=8)
    base_fs = NfsClient(transport, use_caches=False)
    _, std_transport = build_nfs_std(LinuxExt2Backend)
    std_fs = NfsClient(std_transport, use_caches=False)
    for fs in (base_fs, std_fs):
        fs.mkdir("/sub")
    for op in ops:
        base_result = apply_nfs(base_fs, op)
        std_result = apply_nfs(std_fs, op)
        assert base_result == std_result, (op, base_result, std_result)
    # And the four heterogeneous replicas never diverged.
    cluster.run(2.0)
    roots = {r.state.tree.root_digest for r in cluster.replicas}
    assert len(roots) == 1


# -- SQL ----------------------------------------------------------------------

KEYS = [1, 2, 3, "k"]

sql_ops = st.lists(st.one_of(
    st.tuples(st.just("insert"), st.sampled_from(KEYS),
              st.text(max_size=8)),
    st.tuples(st.just("update"), st.sampled_from(KEYS),
              st.text(max_size=8)),
    st.tuples(st.just("delete"), st.sampled_from(KEYS)),
    st.tuples(st.just("select"), st.sampled_from(KEYS)),
    st.tuples(st.just("scan")),
), min_size=1, max_size=15)


def apply_sql(db, op) -> tuple:
    kind = op[0]
    try:
        if kind == "insert":
            db.insert("t", (op[1], op[2]))
            return ("ok",)
        if kind == "update":
            db.update("t", op[1], (op[1], op[2]))
            return ("ok",)
        if kind == "delete":
            db.delete("t", op[1])
            return ("ok",)
        if kind == "select":
            return ("row", db.select("t", op[1]))
        if kind == "scan":
            return ("rows", db.scan("t"))
    except SqlEngineError as err:
        return ("err", err.code)
    raise AssertionError(kind)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sql_ops)
def test_nversion_sql_equals_single_engine(ops):
    cluster, replicated = build_base_sql(
        [HashStoreEngine, BTreeStoreEngine, BTreeStoreEngine,
         HashStoreEngine],
        config=BftConfig(n=4, checkpoint_interval=8), array_size=64)
    _, direct = build_sql_std(BTreeStoreEngine)
    for db in (replicated, direct):
        db.create_table("t", ("k", "v"), "k")
    for op in ops:
        assert apply_sql(replicated, op) == apply_sql(direct, op), op
    cluster.run(1.0)
    roots = {r.state.tree.root_digest for r in cluster.replicas}
    assert len(roots) == 1
