"""Unit and property tests for the XDR encoder/decoder."""

import pytest
from hypothesis import given, strategies as st

from repro.encoding import XdrDecoder, XdrEncoder, xdr_size_of_opaque
from repro.errors import EncodingError


def roundtrip(pack, unpack, value):
    enc = XdrEncoder()
    pack(enc, value)
    dec = XdrDecoder(enc.getvalue())
    out = unpack(dec)
    assert dec.done()
    return out


def test_uint_roundtrip_and_bounds():
    assert roundtrip(XdrEncoder.pack_uint, XdrDecoder.unpack_uint, 0) == 0
    assert roundtrip(XdrEncoder.pack_uint, XdrDecoder.unpack_uint, 2**32 - 1) == 2**32 - 1
    with pytest.raises(EncodingError):
        XdrEncoder().pack_uint(-1)
    with pytest.raises(EncodingError):
        XdrEncoder().pack_uint(2**32)


def test_int_roundtrip_negative():
    assert roundtrip(XdrEncoder.pack_int, XdrDecoder.unpack_int, -5) == -5


def test_alignment_padding():
    enc = XdrEncoder().pack_opaque(b"abc")
    data = enc.getvalue()
    assert len(data) == 8  # 4 length + 3 data + 1 pad
    assert data[7:8] == b"\x00"
    assert xdr_size_of_opaque(3) == 8
    assert xdr_size_of_opaque(4) == 8
    assert xdr_size_of_opaque(5) == 12


def test_fixed_opaque_size_enforced():
    with pytest.raises(EncodingError):
        XdrEncoder().pack_fixed_opaque(b"abc", 4)


def test_bool_strict():
    enc = XdrEncoder().pack_uint(2)
    with pytest.raises(EncodingError):
        XdrDecoder(enc.getvalue()).unpack_bool()


def test_truncated_data_raises():
    with pytest.raises(EncodingError):
        XdrDecoder(b"\x00\x00").unpack_uint()


def test_corrupt_array_length_rejected_early():
    enc = XdrEncoder().pack_uint(2**31)  # absurd count
    with pytest.raises(EncodingError):
        XdrDecoder(enc.getvalue()).unpack_array(XdrDecoder.unpack_uint)


def test_heterogeneous_sequence():
    enc = XdrEncoder()
    enc.pack_uint(7).pack_string("hello").pack_bool(True).pack_hyper(-2**40)
    enc.pack_array([1, 2, 3], lambda e, v: e.pack_uint(v))
    dec = XdrDecoder(enc.getvalue())
    assert dec.unpack_uint() == 7
    assert dec.unpack_string() == "hello"
    assert dec.unpack_bool() is True
    assert dec.unpack_hyper() == -2**40
    assert dec.unpack_array(XdrDecoder.unpack_uint) == [1, 2, 3]
    assert dec.done()


@given(st.binary(max_size=300))
def test_opaque_roundtrip(data):
    assert roundtrip(XdrEncoder.pack_opaque, XdrDecoder.unpack_opaque, data) == data


@given(st.text(max_size=100))
def test_string_roundtrip(text):
    assert roundtrip(XdrEncoder.pack_string, XdrDecoder.unpack_string, text) == text


@given(st.integers(min_value=0, max_value=2**64 - 1))
def test_uhyper_roundtrip(value):
    assert roundtrip(XdrEncoder.pack_uhyper, XdrDecoder.unpack_uhyper, value) == value


@given(st.lists(st.integers(min_value=-2**31, max_value=2**31 - 1), max_size=50))
def test_int_array_roundtrip(values):
    enc = XdrEncoder().pack_array(values, lambda e, v: e.pack_int(v))
    assert XdrDecoder(enc.getvalue()).unpack_array(XdrDecoder.unpack_int) == values


@given(st.binary(max_size=64), st.binary(max_size=64))
def test_encoding_is_injective_for_opaque_pairs(a, b):
    """Canonical encoding: distinct (a, b) pairs yield distinct bytes."""
    enc1 = XdrEncoder().pack_opaque(a).pack_opaque(b).getvalue()
    enc2 = XdrEncoder().pack_opaque(b).pack_opaque(a).getvalue()
    if a != b:
        assert enc1 != enc2


def test_encoder_len_tracks_bytes():
    enc = XdrEncoder().pack_uint(1).pack_opaque(b"12345")
    assert len(enc) == len(enc.getvalue()) == 4 + 12
