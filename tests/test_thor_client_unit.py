"""ThorClient unit tests: cache management, piggybacking, transactions."""

import pytest

from repro.thor.client import ThorClient, TransactionAborted
from repro.thor.objects import ObjectRecord
from repro.thor.orefs import make_oref
from repro.thor.pages import Page
from repro.thor.server import ThorServerConfig
from repro.thor.service import build_thor_std


def rec(v):
    return ObjectRecord("Cell", (v,)).encode()


def make(cache_bytes=1 << 20, **server_kwargs):
    def load(server):
        for pagenum in range(6):
            server.load_page(Page(pagenum, {o: rec(pagenum * 10 + o)
                                            for o in range(4)}))
    server, transport = build_thor_std(
        load, ThorServerConfig(**server_kwargs))
    client = ThorClient(transport, "unit", cache_bytes=cache_bytes)
    client.start_session()
    return server, client


def test_read_fetches_page_once(server_client=None):
    server, client = make()
    client.begin()
    client.read(make_oref(0, 0))
    client.read(make_oref(0, 1))  # same page: no second fetch
    client.commit()
    assert client.fetches == 1


def test_cache_eviction_reports_discards():
    server, client = make(cache_bytes=150)  # fits ~1 page
    client.begin()
    for pagenum in range(4):
        client.read(make_oref(pagenum, 0))
    client.commit()
    assert client._pending_discards or True  # flushed on ops
    # The server's directory reflects only what the client still caches.
    caching = [p for p in range(6)
               if "unit" in server.directory.clients_caching(p)]
    assert len(caching) <= 2


def test_write_buffered_until_commit():
    server, client = make()
    oref = make_oref(1, 1)
    client.begin()
    client.write(oref, ObjectRecord("Cell", ("pending",)))
    # Not at the server yet.
    assert server.read_object(oref) == rec(11)
    # But visible to our own reads (read-your-writes).
    assert client.read(oref).fields == ("pending",)
    client.commit()
    assert server.read_object(oref) == \
        ObjectRecord("Cell", ("pending",)).encode()


def test_abort_discards_writes():
    server, client = make()
    other = ThorClient(client.transport, "other")
    other.start_session()
    oref = make_oref(2, 2)
    client.begin()
    stale = client.read(oref)
    other.run_transaction(lambda c: c.write(
        oref, ObjectRecord("Cell", ("winner",))))
    client.write(oref, stale.with_fields("loser"))
    with pytest.raises(TransactionAborted):
        client.commit()
    assert server.read_object(oref) == \
        ObjectRecord("Cell", ("winner",)).encode()
    # Retry sees the committed value.
    client.begin()
    assert client.read(oref).fields == ("winner",)
    client.commit()


def test_run_transaction_retries_then_raises():
    server, client = make()
    attempts = {"n": 0}

    def always_conflicts(c):
        attempts["n"] += 1
        oref = make_oref(3, 0)
        value = c.read(oref)
        # Another client sneaks a commit in before ours every time.
        other = ThorClient(client.transport, f"sneak{attempts['n']}")
        other.start_session()
        other.run_transaction(lambda s: s.write(
            oref, ObjectRecord("Cell", (attempts["n"],))))
        c.write(oref, value.with_fields("mine"))

    with pytest.raises(TransactionAborted):
        client.run_transaction(always_conflicts, retries=3)
    assert attempts["n"] == 3


def test_missing_object_raises_keyerror():
    server, client = make()
    client.begin()
    with pytest.raises(KeyError):
        client.read(make_oref(0, 3999))


def test_drop_caches_forces_refetch():
    server, client = make()
    client.begin()
    client.read(make_oref(0, 0))
    client.commit()
    before = client.fetches
    client.drop_caches()
    client.begin()
    client.read(make_oref(0, 0))
    client.commit()
    assert client.fetches == before + 1


def test_invalidation_ack_clears_server_set():
    server, client = make()
    other = ThorClient(client.transport, "writer")
    other.start_session()
    oref = make_oref(4, 1)
    client.begin()
    client.read(oref)
    client.commit()
    other.run_transaction(lambda c: c.write(
        oref, ObjectRecord("Cell", ("new",))))
    assert oref in server.invalid_sets.get("unit")
    # The client's next round-trip picks up + acks the invalidation.
    client.begin()
    client.read(make_oref(5, 0))
    client.commit()
    client.begin()
    client.read(make_oref(5, 1))
    client.commit()
    assert oref not in server.invalid_sets.get("unit")
