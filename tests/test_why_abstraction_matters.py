"""The paper's thesis, demonstrated negatively.

BFT alone "requires all replicas to run the same service implementation
and to update their state in a deterministic way" (§1).  These tests
replicate the NFS backends *without* the conformance wrapper — exposing
native file handles, native readdir order, and local-clock timestamps —
and watch replication break exactly as the paper predicts:

- heterogeneous replicas cannot assemble f+1 matching replies (their
  native answers differ byte-for-byte), so the client starves;
- even a homogeneous but *nondeterministic* implementation (FreeBSD's
  random file-handle generations) diverges;
- the same backends behind the real conformance wrapper work fine.
"""

import pytest

from repro.base.library import build_base_cluster
from repro.base.upcalls import Upcalls
from repro.bft.config import BftConfig
from repro.encoding.canonical import canonical, decanonical
from repro.nfs.backends import ALL_BACKENDS, FreeBsdUfsBackend, LinuxExt2Backend
from repro.nfs.protocol import NfsError, Sattr


class NaiveNfsUpcalls(Upcalls):
    """Replication WITHOUT abstraction: ops hit the backend verbatim and
    the reply is whatever the backend natively says — handles, orders,
    timestamps from the local clock and all."""

    def __init__(self, backend):
        super().__init__()
        self.backend = backend
        self.root = backend.mount()

    @property
    def num_objects(self):
        return 64

    def execute(self, op, client_id, nondet, read_only=False):
        kind, *args = decanonical(op)
        try:
            if kind == "create":
                fh, fattr = self.backend.create(self.root, args[0], Sattr())
                # Native handle and native (local-clock) timestamps leak.
                return canonical((0, fh, fattr.encode()))
            if kind == "readdir":
                return canonical((0, tuple(self.backend.readdir(self.root))))
            if kind == "getattr":
                return canonical((0,
                                  self.backend.getattr(args[0]).encode()))
        except NfsError as err:
            return canonical((int(err.status),))
        return canonical((1,))

    def get_obj(self, index):
        # "The state" is whatever the backend has — native and divergent.
        entries = tuple(self.backend.readdir(self.root))
        return canonical((index, entries))

    def put_objs(self, objects):
        pass  # naive replication has no meaningful inverse


def naive_cluster(backend_classes):
    def factory(cls):
        def make():
            kwargs = {"boot_salt": hash(cls.vendor) & 0xFF} \
                if cls is FreeBsdUfsBackend else {}
            return NaiveNfsUpcalls(cls(**kwargs))
        return make
    return build_base_cluster(
        [factory(cls) for cls in backend_classes],
        config=BftConfig(n=4, checkpoint_interval=8,
                         client_retry_timeout=0.2))


def test_heterogeneous_without_abstraction_starves_clients():
    """Four OSes, no wrapper: every replica's reply differs (native file
    handles), so the client never sees f+1 matching replies."""
    cluster = naive_cluster(list(ALL_BACKENDS))
    client = cluster.add_client("naive").client
    box = {}
    client.invoke(canonical(("create", "file.txt")),
                  lambda res: box.update(r=res))
    cluster.run(5.0)
    assert "r" not in box, (
        "naive heterogeneous replication should never reach a reply "
        "quorum — did the backends accidentally agree?")


def test_nondeterminism_without_abstraction_starves_clients():
    """Even the SAME implementation breaks when it is nondeterministic:
    FreeBSD-style random handle generations differ per replica."""
    cluster = naive_cluster([FreeBsdUfsBackend] * 4)
    # Different boot salts per replica (the factory hashes the vendor, so
    # force distinct salts here).
    for i, replica in enumerate(cluster.replicas):
        replica.state.upcalls.backend.reboot_salt(100 + i)
    client = cluster.add_client("naive").client
    box = {}
    client.invoke(canonical(("create", "file.txt")),
                  lambda res: box.update(r=res))
    cluster.run(5.0)
    assert "r" not in box


def test_readdir_order_divergence_without_abstraction():
    """Deterministic ops with order-divergent replies also fail: the
    insertion-order and sorted-order backends cannot agree on READDIR."""
    from repro.nfs.backends import OpenBsdFfsBackend, SolarisUfsBackend
    cluster = naive_cluster([LinuxExt2Backend, SolarisUfsBackend,
                             OpenBsdFfsBackend, LinuxExt2Backend])
    client = cluster.add_client("naive").client
    box = {}
    # Two same-vendor replicas (linux) DO agree on create; quorum f+1=2
    # can be reached for writes...
    client.invoke(canonical(("create", "a.txt")),
                  lambda res: box.update(r1=res))
    cluster.run(3.0)
    client_ok = "r1" in box
    if client_ok:
        client.invoke(canonical(("create", "b.txt")),
                      lambda res: box.update(r2=res))
        cluster.run(3.0)
    # ...but the group is a time bomb: the replicas' "abstract" states
    # (native readdir output) have already diverged — any state digest
    # computed over them can never stabilize across vendors.  (The naive
    # upcalls never call modify(), so the divergence is also *latent*:
    # the live trees still show the initial digests until someone looks.)
    assert client_ok, "same-vendor pair should reach a write quorum"
    states = {replica.state.upcalls.get_obj(0)
              for replica in cluster.replicas}
    assert len(states) > 1
    for replica in cluster.replicas:
        replica.state.mark_all_dirty()
        replica.state.refresh_dirty()
    roots = {replica.state.tree.root_digest for replica in cluster.replicas}
    assert len(roots) > 1


def test_same_backends_with_abstraction_work():
    """Control: the identical lineup behind the real conformance wrapper
    serves correctly (this is the whole point of the methodology)."""
    from repro.bft.config import BftConfig
    from repro.nfs.client import NfsClient
    from repro.nfs.service import build_basefs
    from repro.nfs.spec import AbstractSpecConfig
    cluster, transport = build_basefs(
        list(ALL_BACKENDS), spec=AbstractSpecConfig(array_size=64),
        config=BftConfig(n=4, checkpoint_interval=8), branching=8)
    fs = NfsClient(transport)
    fs.write_file("/file.txt", b"works")
    assert fs.read_file("/file.txt") == b"works"
    cluster.run(2.0)
    roots = {r.state.tree.root_digest for r in cluster.replicas}
    assert len(roots) == 1
