"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim import Scheduler
from repro.sim.scheduler import (
    DEFAULT_BACKEND,
    SCHEDULER_BACKENDS,
    CalendarScheduler,
    make_scheduler,
)


@pytest.fixture(params=sorted(SCHEDULER_BACKENDS))
def sched(request):
    """Every behavioral test runs against both event-queue backends."""
    return make_scheduler(request.param)


def test_events_run_in_time_order(sched):
    order = []
    sched.schedule(3.0, order.append, "c")
    sched.schedule(1.0, order.append, "a")
    sched.schedule(2.0, order.append, "b")
    sched.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_fifo(sched):
    order = []
    for i in range(10):
        sched.schedule(1.0, order.append, i)
    sched.run()
    assert order == list(range(10))


def test_clock_advances_to_event_time(sched):
    seen = []
    sched.schedule(2.5, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [2.5]
    assert sched.now == 2.5


def test_cancelled_event_does_not_fire(sched):
    fired = []
    ev = sched.schedule(1.0, fired.append, "x")
    ev.cancel()
    sched.run()
    assert fired == []


def test_negative_delay_rejected(sched):
    with pytest.raises(ValueError):
        sched.schedule(-0.1, lambda: None)


def test_events_scheduled_during_run_execute(sched):
    order = []

    def outer():
        order.append("outer")
        sched.schedule(1.0, lambda: order.append("inner"))

    sched.schedule(1.0, outer)
    sched.run()
    assert order == ["outer", "inner"]
    assert sched.now == 2.0


def test_run_until_stops_at_time_and_advances_clock(sched):
    fired = []
    sched.schedule(1.0, fired.append, 1)
    sched.schedule(5.0, fired.append, 5)
    sched.run_until(3.0)
    assert fired == [1]
    assert sched.now == 3.0
    sched.run()
    assert fired == [1, 5]


def test_run_until_idle_or_predicate(sched):
    state = {"done": False}
    sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: state.update(done=True))
    sched.schedule(3.0, lambda: pytest.fail("should not run past predicate"))
    assert sched.run_until_idle_or(lambda: state["done"])


def test_run_until_idle_or_returns_false_when_queue_drains(sched):
    sched.schedule(1.0, lambda: None)
    assert not sched.run_until_idle_or(lambda: False)


def test_schedule_at_absolute_time(sched):
    seen = []
    sched.schedule(1.0, lambda: sched.schedule_at(5.0, lambda: seen.append(sched.now)))
    sched.run()
    assert seen == [5.0]


def test_halt_stops_run(sched):
    order = []
    sched.schedule(1.0, order.append, "a")
    sched.schedule(2.0, sched.halt)
    sched.schedule(3.0, order.append, "c")
    sched.run()
    assert order == ["a"]
    sched.run()
    assert order == ["a", "c"]


def test_pending_counts_uncancelled(sched):
    e1 = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    e1.cancel()
    assert sched.pending() == 1


def test_cancel_compacts_queue_and_pending_stays_exact(sched):
    events = [sched.schedule(i + 1.0, lambda: None) for i in range(1000)]
    assert sched.pending() == 1000
    for e in events[:900]:
        e.cancel()
    assert sched.pending() == 100
    # Mass cancellation triggers compaction: the internal queue sheds the
    # bulk of the cancelled entries instead of carrying them to pop time.
    assert len(sched._queue) < 200
    assert sched.run() == 100
    assert sched.pending() == 0


def test_late_and_double_cancels_do_not_skew_pending(sched):
    e1 = sched.schedule(1.0, lambda: None)
    e2 = sched.schedule(2.0, lambda: None)
    assert sched.step()       # fires e1
    e1.cancel()               # late cancel of an already-fired event
    e1.cancel()
    e2.cancel()
    e2.cancel()               # double cancel must count once
    assert sched.pending() == 0
    assert sched.run() == 0


def test_events_run_counter_is_cumulative(sched):
    for i in range(5):
        sched.schedule(float(i), lambda: None)
    cancelled = sched.schedule(10.0, lambda: None)
    cancelled.cancel()
    sched.run()
    assert sched.events_run == 5   # cancelled events do not count
    sched.schedule(1.0, lambda: None)
    sched.run()
    assert sched.events_run == 6


# -- backend differential -----------------------------------------------------------


def test_make_scheduler_resolves_backends():
    assert isinstance(make_scheduler(), SCHEDULER_BACKENDS[DEFAULT_BACKEND])
    assert type(make_scheduler("heap")) is Scheduler
    assert type(make_scheduler("calendar")) is CalendarScheduler
    with pytest.raises(ValueError):
        make_scheduler("fibonacci")


def _drive_trace(scheduler, seed: int):
    """One seeded chaos trace: mixed near/far delays (the far ones land
    in the calendar's overflow heap), mid-run cancels, and callbacks
    that schedule follow-ups.  Returns the exact firing order.

    Both backends replay the same RNG stream *as long as* they fire
    events in the same order — any ordering divergence desynchronizes
    the draws and shows up as a blunt list mismatch."""
    import random
    rng = random.Random(f"sched-diff:{seed}")
    fired = []
    live = []
    delays = (0.0, 1e-6, 3e-5, 1e-4, 7e-4, 0.004, 0.05, 0.4, 2.0, 30.0)

    def make_cb(label, depth):
        def cb():
            fired.append((label, round(scheduler.now, 12)))
            if depth and rng.random() < 0.4:
                live.append(scheduler.schedule(
                    rng.choice(delays) + rng.random() * 1e-3,
                    make_cb(label + "+", depth - 1)))
            if rng.random() < 0.1 and live:
                live.pop(rng.randrange(len(live))).cancel()
        return cb

    for i in range(300):
        live.append(scheduler.schedule(
            rng.choice(delays) * (1.0 + rng.random()), make_cb(f"e{i}", 2)))
        if rng.random() < 0.15 and live:
            live.pop(rng.randrange(len(live))).cancel()
    scheduler.run(50_000)
    return fired


@pytest.mark.parametrize("seed", range(6))
def test_calendar_orders_identically_to_heap_on_seeded_traces(seed):
    heap_trace = _drive_trace(Scheduler(), seed)
    calendar_trace = _drive_trace(CalendarScheduler(), seed)
    assert len(heap_trace) > 300
    assert heap_trace == calendar_trace


def test_calendar_run_until_matches_heap_midstream():
    # Interleaved run_until windows (including windows with no events)
    # must leave both backends at the same clock with the same backlog.
    traces = []
    for scheduler in (Scheduler(), CalendarScheduler()):
        order = []
        for i in range(40):
            scheduler.schedule(0.015 * i + 1e-4, order.append, i)
        scheduler.schedule(9.0, order.append, "far")
        for horizon in (0.01, 0.02, 0.2, 0.21, 5.0, 10.0):
            scheduler.run_until(horizon)
            order.append(("at", round(scheduler.now, 12),
                          scheduler.pending()))
        traces.append(order)
    assert traces[0] == traces[1]
