"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim import Scheduler


def test_events_run_in_time_order():
    sched = Scheduler()
    order = []
    sched.schedule(3.0, order.append, "c")
    sched.schedule(1.0, order.append, "a")
    sched.schedule(2.0, order.append, "b")
    sched.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_fifo():
    sched = Scheduler()
    order = []
    for i in range(10):
        sched.schedule(1.0, order.append, i)
    sched.run()
    assert order == list(range(10))


def test_clock_advances_to_event_time():
    sched = Scheduler()
    seen = []
    sched.schedule(2.5, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [2.5]
    assert sched.now == 2.5


def test_cancelled_event_does_not_fire():
    sched = Scheduler()
    fired = []
    ev = sched.schedule(1.0, fired.append, "x")
    ev.cancel()
    sched.run()
    assert fired == []


def test_negative_delay_rejected():
    sched = Scheduler()
    with pytest.raises(ValueError):
        sched.schedule(-0.1, lambda: None)


def test_events_scheduled_during_run_execute():
    sched = Scheduler()
    order = []

    def outer():
        order.append("outer")
        sched.schedule(1.0, lambda: order.append("inner"))

    sched.schedule(1.0, outer)
    sched.run()
    assert order == ["outer", "inner"]
    assert sched.now == 2.0


def test_run_until_stops_at_time_and_advances_clock():
    sched = Scheduler()
    fired = []
    sched.schedule(1.0, fired.append, 1)
    sched.schedule(5.0, fired.append, 5)
    sched.run_until(3.0)
    assert fired == [1]
    assert sched.now == 3.0
    sched.run()
    assert fired == [1, 5]


def test_run_until_idle_or_predicate():
    sched = Scheduler()
    state = {"done": False}
    sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: state.update(done=True))
    sched.schedule(3.0, lambda: pytest.fail("should not run past predicate"))
    assert sched.run_until_idle_or(lambda: state["done"])


def test_run_until_idle_or_returns_false_when_queue_drains():
    sched = Scheduler()
    sched.schedule(1.0, lambda: None)
    assert not sched.run_until_idle_or(lambda: False)


def test_schedule_at_absolute_time():
    sched = Scheduler()
    seen = []
    sched.schedule(1.0, lambda: sched.schedule_at(5.0, lambda: seen.append(sched.now)))
    sched.run()
    assert seen == [5.0]


def test_halt_stops_run():
    sched = Scheduler()
    order = []
    sched.schedule(1.0, order.append, "a")
    sched.schedule(2.0, sched.halt)
    sched.schedule(3.0, order.append, "c")
    sched.run()
    assert order == ["a"]
    sched.run()
    assert order == ["a", "c"]


def test_pending_counts_uncancelled():
    sched = Scheduler()
    e1 = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    e1.cancel()
    assert sched.pending() == 1


def test_cancel_compacts_queue_and_pending_stays_exact():
    sched = Scheduler()
    events = [sched.schedule(i + 1.0, lambda: None) for i in range(1000)]
    assert sched.pending() == 1000
    for e in events[:900]:
        e.cancel()
    assert sched.pending() == 100
    # Mass cancellation triggers compaction: the internal queue sheds the
    # bulk of the cancelled entries instead of carrying them to pop time.
    assert len(sched._queue) < 200
    assert sched.run() == 100
    assert sched.pending() == 0


def test_late_and_double_cancels_do_not_skew_pending():
    sched = Scheduler()
    e1 = sched.schedule(1.0, lambda: None)
    e2 = sched.schedule(2.0, lambda: None)
    assert sched.step()       # fires e1
    e1.cancel()               # late cancel of an already-fired event
    e1.cancel()
    e2.cancel()
    e2.cancel()               # double cancel must count once
    assert sched.pending() == 0
    assert sched.run() == 0


def test_events_run_counter_is_cumulative():
    sched = Scheduler()
    for i in range(5):
        sched.schedule(float(i), lambda: None)
    cancelled = sched.schedule(10.0, lambda: None)
    cancelled.cancel()
    sched.run()
    assert sched.events_run == 5   # cancelled events do not count
    sched.schedule(1.0, lambda: None)
    sched.run()
    assert sched.events_run == 6
