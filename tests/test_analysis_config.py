"""ProtoLint scope configuration: packages are *discovered*, not
enumerated, so a freshly created subsystem is lint-covered by default
(scope rot was how earlier packages silently escaped the linter)."""

from repro.analysis.config import (
    PROTOCOL_EXCLUDED,
    PROTOCOL_PACKAGES,
    REPLAY_PACKAGES,
    discover_packages,
)


def fake_package(root, name, init=True):
    pkg = root / name
    pkg.mkdir()
    if init:
        (pkg / "__init__.py").write_text("")
    return pkg


def test_discover_finds_packages_and_honors_the_exclude_list(tmp_path):
    fake_package(tmp_path, "alpha")
    fake_package(tmp_path, "beta")
    fake_package(tmp_path, "orchestration")
    fake_package(tmp_path, "plain_dir", init=False)  # not a package
    fake_package(tmp_path, "_private")
    (tmp_path / "stray.py").write_text("")
    found = discover_packages(str(tmp_path),
                              excluded=frozenset({"orchestration"}))
    assert found == frozenset({"alpha", "beta"})


def test_fresh_package_is_in_scope_by_default(tmp_path):
    fake_package(tmp_path, "alpha")
    before = discover_packages(str(tmp_path), excluded=frozenset())
    fake_package(tmp_path, "brand_new_subsystem")
    after = discover_packages(str(tmp_path), excluded=frozenset())
    assert before == frozenset({"alpha"})
    assert after == before | {"brand_new_subsystem"}


def test_repo_scope_covers_edge_and_excludes_orchestration():
    # The live config: edge joined both scopes when it gained its
    # __init__.py; the exclude list stays the only escape hatch.
    assert "edge" in PROTOCOL_PACKAGES
    assert "edge" in REPLAY_PACKAGES
    assert "bft" in PROTOCOL_PACKAGES and "sim" in PROTOCOL_PACKAGES
    assert not PROTOCOL_PACKAGES & PROTOCOL_EXCLUDED
    assert REPLAY_PACKAGES <= PROTOCOL_PACKAGES | PROTOCOL_EXCLUDED


def test_discovery_matches_the_installed_tree():
    assert PROTOCOL_PACKAGES == discover_packages()
