"""Protocol corner cases: watermarks, null-request gap fill, GC, tracer."""

from repro.bft.messages import PrePrepare, Request
from repro.bft.statemachine import InMemoryStateManager
from repro.bft.viewchange import ViewChangeManager
from repro.sim.tracing import Tracer
from tests.conftest import make_kv_cluster

put = InMemoryStateManager.op_put


def test_primary_respects_high_water_mark():
    """With checkpoints blocked, the primary may propose at most
    log_window sequence numbers and must then stall, not run ahead."""
    cluster = make_kv_cluster(checkpoint_interval=2, batch_max=1,
                              client_retry_timeout=60.0)
    # Block all checkpoint messages: nothing ever becomes stable.
    cluster.network.add_filter(
        lambda s, d, m: getattr(m, "kind", "") != "checkpoint")
    clients = [cluster.add_client(f"c{i}") for i in range(8)]
    done = []
    for i, sync in enumerate(clients):
        sync.client.invoke(put(i, b"w"), lambda res, i=i: done.append(i))
    cluster.run(5.0)
    primary = cluster.replicas[0]
    window = cluster.config.log_window  # 2 * 2 = 4
    assert primary.seq_assigned <= primary.last_stable + window
    assert len(done) <= window
    # Unblock checkpoints: the backlog drains.
    cluster.network._filters.clear()
    # Client retransmissions are far away; replica-side progress resumes
    # as soon as checkpoints stabilize on the next executions.
    cluster.run(1.0)
    for sync in clients:
        if sync.client.busy:
            sync.client._on_retry()
    cluster.run(5.0)
    assert len(done) == 8


def test_new_view_fills_gaps_with_null_requests():
    """compute_new_view_pre_prepares inserts null requests for sequence
    numbers nobody prepared."""
    from repro.bft.messages import PreparedProof, ViewChange
    pp5 = PrePrepare(0, 5, (Request("c", 1, b"op"),), b"")
    proof5 = PreparedProof(0, 5, pp5.batch_digest(), pp5)
    vcs = [ViewChange(1, 2, (), (proof5,), f"replica{i}")
           for i in range(3)]
    pps = ViewChangeManager.compute_new_view_pre_prepares(1, vcs)
    assert [pp.seq for pp in pps] == [3, 4, 5]
    assert pps[0].requests[0].is_null
    assert pps[1].requests[0].is_null
    assert not pps[2].requests[0].is_null
    assert pps[2].batch_digest() != pp5.batch_digest()  # view changed
    assert pps[2].requests == pp5.requests


def test_new_view_prefers_highest_view_proof():
    from repro.bft.messages import PreparedProof, ViewChange
    pp_old = PrePrepare(0, 3, (Request("c", 1, b"old"),), b"")
    pp_new = PrePrepare(1, 3, (Request("c", 2, b"new"),), b"")
    vcs = [
        ViewChange(2, 2, (), (PreparedProof(0, 3, pp_old.batch_digest(),
                                            pp_old),), "replica0"),
        ViewChange(2, 2, (), (PreparedProof(1, 3, pp_new.batch_digest(),
                                            pp_new),), "replica1"),
        ViewChange(2, 2, (), (), "replica2"),
    ]
    pps = ViewChangeManager.compute_new_view_pre_prepares(2, vcs)
    assert len(pps) == 1
    assert pps[0].requests == pp_new.requests


def test_checkpoint_messages_garbage_collected():
    cluster = make_kv_cluster(checkpoint_interval=2)
    client = cluster.add_client("client0")
    for i in range(10):
        client.call(put(i % 4, b"gc%d" % i))
    cluster.run(1.0)
    for replica in cluster.replicas:
        assert all(seq > replica.last_stable
                   for seq in replica.checkpoint_msgs)
        # Retained state checkpoints stay within the window.
        retained = [s for s in (replica.last_stable,)
                    if replica.state.checkpoint_root(s) is not None]
        assert retained, "stable checkpoint must be retained"


def test_executed_log_bounded_by_watermarks():
    cluster = make_kv_cluster(checkpoint_interval=4)
    client = cluster.add_client("client0")
    for i in range(30):
        client.call(put(i % 8, b"x%d" % i))
    cluster.run(1.0)
    for replica in cluster.replicas:
        assert len(replica.log) <= cluster.config.log_window + 1


def test_tracer_find_and_counters():
    tracer = Tracer()
    tracer.emit(1.0, "n1", "thing", value=1)
    tracer.emit(2.0, "n2", "thing", value=2)
    tracer.emit(3.0, "n1", "other")
    assert tracer.counters["thing"] == 2
    assert len(tracer.find("thing")) == 2
    assert len(tracer.find("thing", source="n1")) == 1
    assert tracer.first("other").time == 3.0
    assert tracer.first("missing") is None
    tracer.record_timing("lap", 0.5)
    assert tracer.timings("lap") == [0.5]
    tracer.clear()
    assert not tracer.events and not tracer.counters


def test_tracer_event_cap():
    tracer = Tracer(max_events=3)
    for i in range(10):
        tracer.emit(float(i), "n", "e")
    assert len(tracer.events) == 3
    assert tracer.counters["e"] == 10  # counters keep counting
