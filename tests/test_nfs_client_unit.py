"""NfsClient unit tests: path resolution, cache behaviour, error paths."""

import pytest

from repro.nfs.backends import LinuxExt2Backend
from repro.nfs.client import NfsClient, TRANSFER_SIZE
from repro.nfs.protocol import NfsError, NfsStatus
from repro.nfs.service import build_nfs_std


@pytest.fixture
def fs():
    _, transport = build_nfs_std(LinuxExt2Backend)
    return NfsClient(transport, attr_ttl=3.0)


def test_path_normalization(fs):
    fs.mkdir("/a")
    fs.write_file("/a/f", b"x")
    assert fs.read_file("a/f") == b"x"          # leading slash optional
    assert fs.read_file("//a//f") == b"x"       # duplicate slashes collapse


def test_resolve_parent_of_root_rejected(fs):
    with pytest.raises(NfsError):
        fs.remove("/")


def test_write_creates_then_overwrites(fs):
    fs.write_file("/f", b"one")
    fs.write_file("/f", b"two-longer")
    assert fs.read_file("/f") == b"two-longer"


def test_overwrite_shorter_leaves_no_tail(fs):
    fs.write_file("/f", b"a" * 100)
    fs.write_file("/f", b"b")
    data = fs.read_file("/f")
    # write_file overwrites from 0 but does not truncate; NFS semantics
    # would keep the tail unless truncated via setattr.  Our client
    # API's read returns the full current file.
    assert data[0:1] == b"b"


def test_multi_chunk_write_and_read(fs):
    body = bytes(range(256)) * 64  # 16 KB: 4 transfers
    fs.write_file("/big", body)
    fs.drop_caches()
    assert fs.read_file("/big") == body


def test_write_without_create_flag(fs):
    with pytest.raises(NfsError) as err:
        fs.write_file("/missing", b"x", create=False)
    assert err.value.status == NfsStatus.NFSERR_NOENT


def test_lookup_cache_expires_with_ttl(fs):
    fs.write_file("/cached", b"v")
    fs.getattr("/cached")
    before = fs.calls_issued
    fs.getattr("/cached")
    assert fs.calls_issued == before            # cache hit
    # Advance simulated time beyond the TTL via a write elsewhere plus
    # explicit clock passage.
    fs.transport.scheduler.run_until(fs.transport.now + 5.0)
    fs.getattr("/cached")
    assert fs.calls_issued > before             # expired, went to wire


def test_caches_disabled_mode():
    _, transport = build_nfs_std(LinuxExt2Backend)
    fs = NfsClient(transport, use_caches=False)
    fs.write_file("/f", b"x")
    a = fs.calls_issued
    fs.getattr("/f")
    fs.getattr("/f")
    assert fs.calls_issued >= a + 4             # 2 lookups + 2 getattrs


def test_rename_updates_view(fs):
    fs.write_file("/old", b"content")
    fs.rename("/old", "/new")
    assert fs.exists("/new") and not fs.exists("/old")
    assert fs.read_file("/new") == b"content"


def test_exists_propagates_unexpected_errors(fs):
    fs.mkdir("/d")
    fs.write_file("/d/f", b"x")
    # NOTDIR from treating a file as a directory is NOT a notfound.
    with pytest.raises(NfsError) as err:
        fs.exists("/d/f/child")
    assert err.value.status == NfsStatus.NFSERR_NOTDIR


def test_listdir_and_setattr(fs):
    fs.mkdir("/dir")
    for name in ("b", "a"):
        fs.write_file(f"/dir/{name}", b"1")
    assert sorted(fs.listdir("/dir")) == ["a", "b"]
    attr = fs.setattr("/dir/a", mode=0o600)
    assert attr.mode == 0o600
    truncated = fs.setattr("/dir/a", size=0)
    assert truncated.size == 0


def test_statfs_returns_capacity(fs):
    tsize, bsize, blocks, bfree, bavail = fs.statfs()
    assert blocks > 0 and bfree <= blocks and tsize >= bsize


def test_symlink_listing_and_removal(fs):
    fs.symlink("/ln", "target/path")
    assert fs.readlink("/ln") == "target/path"
    fs.remove("/ln")
    assert not fs.exists("/ln")
