"""ShardStack: deterministic routing, shard isolation, and the
cross-shard two-phase commit path.

Covers the sharding layer at three levels:

- **router units** — stable hashing, learned pins for service-minted
  NFS handles, broadcast agreement, and cross-shard refusal, over
  scripted channels (no clusters);
- **full deployments** — same seed + same op stream give bit-identical
  shard assignments and per-shard request-log digest chains; two
  co-tenant groups on one fabric exchange zero messages;
- **differential** — a cross-shard transaction leaves exactly the
  abstract state of equivalent single-group execution, and a refused
  transaction leaves no trace on any shard.
"""

import pytest

from repro.bft.config import BftConfig
from repro.encoding.canonical import canonical, decanonical
from repro.nfs.spec import ROOT_OID
from repro.service.deploy import Channel, LearnedKey, build_replicated
from repro.service.sharding import (CrossShardOp, RoutingError, ShardRouter,
                                    ShardedDeployment, TxnAborted,
                                    stable_shard)
from repro.sql.service import SQL_SERVICE
from repro.nfs.service import NFS_SERVICE
from repro.thor.service import THOR_SERVICE

_FAST = dict(checkpoint_interval=8)


def _tables_by_shard(num_shards, per_shard=1):
    """Deterministically pick table names hashing to each shard."""
    chosen = {shard: [] for shard in range(num_shards)}
    i = 0
    while any(len(names) < per_shard for names in chosen.values()):
        name = f"t{i}"
        shard = stable_shard(name, num_shards)
        if len(chosen[shard]) < per_shard:
            chosen[shard].append(name)
        i += 1
    return chosen


# -- router units ------------------------------------------------------------------


class ScriptedChannel(Channel):
    """Channel double: records every op, answers from a callable."""

    def __init__(self, respond):
        self.ops = []
        self.respond = respond

    def call(self, op: bytes, read_only: bool = False) -> bytes:
        self.ops.append(op)
        return canonical(self.respond(decanonical(op)))

    def charge(self, seconds: float) -> None:
        pass

    @property
    def now(self) -> float:
        return 0.0


def test_stable_shard_is_digest_based_and_in_range():
    for key in ("users", ("page", 3), b"\x00\x01", 42):
        shards = {stable_shard(key, n) for n in (2, 4)}
        assert all(0 <= stable_shard(key, n) < n for n in (2, 4))
    # Regression pin: the mapping must come from digest(canonical(key)),
    # not Python's randomized hash().  These values are fixed forever.
    assert stable_shard("users", 4) == 2
    assert stable_shard("accounts", 4) == 1


def test_router_routes_sql_by_table_and_keyless_to_home():
    channels = [ScriptedChannel(lambda op: ("OK",)) for _ in range(4)]
    router = ShardRouter(channels, SQL_SERVICE.shard_key)
    router.call(canonical(("insert", "users", (1, "ada"))))
    assert channels[stable_shard("users", 4)].ops
    router.call(canonical(("tables",)), read_only=True)
    assert len(channels[0].ops) + (stable_shard("users", 4) == 0) >= 1
    assert router.ops_routed[0] >= 1  # keyless op went to the home shard


def test_router_learns_nfs_minted_handles():
    spec = NFS_SERVICE.shard_key
    fh_a, fh_b = b"\x00" * 7 + b"\x0a", b"\x00" * 7 + b"\x0b"

    def respond_with(fh):
        return lambda op: (0, fh, ())

    # One subtree name per shard, under the router's actual key shape.
    names = {}
    i = 0
    while len(names) < 2:
        name = f"dir{i}"
        names.setdefault(stable_shard(("subtree", name), 2), name)
        i += 1
    channels = [ScriptedChannel(respond_with(fh_a)),
                ScriptedChannel(respond_with(fh_b))]
    router = ShardRouter(channels, spec)
    router.call(canonical(("lookup", ROOT_OID, names[0])))
    assert router.pins == {fh_a: 0}
    # The learned handle now routes without any name context.
    router.call(canonical(("getattr", fh_a)))
    assert len(channels[0].ops) == 2
    # An unlearned handle is a deterministic routing error, never a hash.
    with pytest.raises(RoutingError):
        router.call(canonical(("getattr", b"\x00" * 7 + b"\x7f")))
    # A second shard minting the same handle bytes is a pin conflict.
    channels[1].respond = respond_with(fh_a)
    with pytest.raises(RoutingError):
        router.call(canonical(("lookup", ROOT_OID, names[1])))


def test_router_refuses_multi_shard_op_with_cross_shard_error():
    from repro.thor.orefs import make_oref
    channels = [ScriptedChannel(lambda op: (0,)) for _ in range(2)]
    router = ShardRouter(channels, THOR_SERVICE.shard_key)
    page0 = page1 = None
    for p in range(64):
        shard = stable_shard(("page", p), 2)
        if shard == 0 and page0 is None:
            page0 = p
        if shard == 1 and page1 is None:
            page1 = p
    op = canonical(("commit", "alice", 1,
                    (make_oref(page0, 1), make_oref(page1, 1)), (), (), ()))
    with pytest.raises(CrossShardOp) as excinfo:
        router.call(op)
    assert excinfo.value.shards == [0, 1]
    assert not channels[0].ops and not channels[1].ops


def test_router_broadcast_requires_agreement():
    channels = [ScriptedChannel(lambda op: (0, 0)),
                ScriptedChannel(lambda op: (0, 0))]
    router = ShardRouter(channels, THOR_SERVICE.shard_key)
    router.call(canonical(("start_session", "alice")))
    assert channels[0].ops and channels[1].ops
    channels[1].respond = lambda op: (0, 99)
    with pytest.raises(RoutingError):
        router.call(canonical(("start_session", "bob")))


# -- full deployments --------------------------------------------------------------


def _sharded_sql(num_shards, seed=11):
    return ShardedDeployment.build(
        SQL_SERVICE, num_shards, config=BftConfig(**_FAST), seed=seed)


def _run_workload(deployment, tables):
    client = deployment.client
    for i, table in enumerate(tables):
        client.create_table(table, ["id", "val"], "id")
        client.insert(table, [1, f"{table}-row1"])
        client.insert(table, [2, f"{table}-row2"])
        client.update(table, 1, [1, f"{table}-row1b"])
        if i % 2:
            client.delete(table, 2)
        client.select(table, 1)


def test_same_seed_same_stream_identical_routing():
    tables = [name for names in _tables_by_shard(2, 2).values()
              for name in names]
    runs = []
    for _ in range(2):
        deployment = _sharded_sql(2)
        _run_workload(deployment, tables)
        runs.append((list(deployment.router.assignments),
                     list(deployment.router.shard_logs),
                     list(deployment.router.ops_routed)))
    assert runs[0] == runs[1]
    # And the stream genuinely exercised both shards.
    assert all(count > 0 for count in runs[0][2])


def test_co_tenant_groups_exchange_zero_messages():
    deployment = _sharded_sql(2)
    crossings = []

    def watch(src, dst, msg):
        # Observe without dropping: classify endpoints by shard prefix.
        groups = {str(end).split("/", 1)[0] for end in (src, dst)
                  if str(end).startswith("shard")}
        if len(groups) > 1:
            crossings.append((src, dst))
        return True

    deployment.network.add_filter(watch)
    tables = _tables_by_shard(2)
    _run_workload(deployment, [tables[0][0], tables[1][0]])
    assert deployment.network.messages_sent > 0
    assert crossings == []
    # ...and the groups' abstract states are genuinely disjoint: a table
    # living on shard 0 does not exist on shard 1.
    from repro.sql.engine import SqlEngineError
    table0 = tables[0][0]
    assert deployment.router.shard_of(table0) == 0
    with pytest.raises(SqlEngineError):
        deployment.shards[1].client.select(table0, 1)


# -- the cross-shard transaction path ----------------------------------------------


def test_cross_shard_txn_matches_single_group_execution():
    tables = _tables_by_shard(2)
    ta, tb = tables[0][0], tables[1][0]
    sharded = _sharded_sql(2)
    cluster, single = build_replicated(SQL_SERVICE,
                                       config=BftConfig(**_FAST), seed=11)
    for client in (sharded.client, single):
        client.create_table(ta, ["id", "val"], "id")
        client.create_table(tb, ["id", "val"], "id")
        client.insert(ta, [1, "seed-a"])
        client.insert(tb, [1, "seed-b"])
    ops = [canonical(("insert", ta, (2, "atomic-a"))),
           canonical(("insert", tb, (2, "atomic-b"))),
           canonical(("update", ta, 1, (1, "rewritten")))]
    # Sharded: one atomic cross-shard transaction spanning both groups.
    replies = sharded.router.cross_shard_call(ops)
    assert len(replies) == len(ops)
    assert all(decanonical(reply)[0] == "OK" for reply in replies)
    # Single group: the identical sub-op bytes, executed directly
    # through the same channel the service client rides.
    for op in ops:
        assert decanonical(single._channel.call(op))[0] == "OK"
    # The differential: every per-table observable agrees.
    for table in (ta, tb):
        assert sharded.client.scan(table) == single.scan(table)
        assert sharded.client.row_count(table) == single.row_count(table)
        assert sharded.client.select(table, 2) == single.select(table, 2)
    assert sharded.client.select(ta, 1) == (1, "rewritten")


def test_refused_cross_shard_txn_leaves_no_trace():
    tables = _tables_by_shard(2)
    ta, tb = tables[0][0], tables[1][0]
    sharded = _sharded_sql(2)
    client = sharded.client
    client.create_table(ta, ["id", "val"], "id")
    client.create_table(tb, ["id", "val"], "id")
    client.insert(ta, [1, "a"])
    before = (client.scan(ta), client.scan(tb))
    ops = [canonical(("insert", ta, (2, "would-commit"))),
           canonical(("no_such_op", tb, (2, "poison")))]
    with pytest.raises(TxnAborted) as excinfo:
        sharded.router.cross_shard_call(ops)
    assert excinfo.value.refused == [sharded.router.shard_of(tb)]
    assert (client.scan(ta), client.scan(tb)) == before
