"""The observability layer: ring-buffer tracing, histograms, metrics,
spans, and the per-phase latency instrumentation in the BFT stack."""

import json
import math

import pytest

from repro.bft.statemachine import InMemoryStateManager
from repro.harness.report import (
    counters_table,
    histogram_table,
    phase_breakdown_table,
    run_selftest,
)
from repro.sim import Histogram, Metrics, Tracer
from tests.conftest import make_kv_cluster

put = InMemoryStateManager.op_put
get = InMemoryStateManager.op_get


# -- Tracer ring buffer -------------------------------------------------------

def test_ring_buffer_keeps_most_recent_events():
    tracer = Tracer(max_events=3)
    for i in range(10):
        tracer.emit(float(i), "n", "e", i=i)
    assert len(tracer.events) == 3
    assert [e.detail["i"] for e in tracer.events] == [7, 8, 9]
    assert tracer.dropped_events == 7
    assert tracer.counters["e"] == 10  # counters keep counting


def test_ring_buffer_find_and_first_see_recent_window():
    tracer = Tracer(max_events=2)
    tracer.emit(1.0, "n", "old")
    tracer.emit(2.0, "n", "mid")
    tracer.emit(3.0, "n", "new")
    assert tracer.find("old") == []
    assert tracer.first("mid").time == 2.0
    assert [e.kind for e in tracer.events] == ["mid", "new"]


def test_no_silent_drops_when_events_disabled():
    tracer = Tracer(keep_events=False)
    for i in range(5):
        tracer.emit(float(i), "n", "e")
    assert len(tracer.events) == 0
    assert tracer.dropped_events == 5


def test_clear_resets_drops_and_metrics():
    tracer = Tracer(max_events=1)
    tracer.emit(1.0, "n", "a")
    tracer.emit(2.0, "n", "b")
    tracer.observe("x", 1.0)
    assert tracer.dropped_events == 1
    tracer.clear()
    assert tracer.dropped_events == 0
    assert not tracer.events
    assert not tracer.metrics.histograms


def test_record_timing_feeds_metrics_histogram():
    tracer = Tracer()
    tracer.record_timing("lap", 0.5)
    tracer.record_timing("lap", 1.5)
    assert tracer.timings("lap") == [0.5, 1.5]
    assert tracer.metrics.histogram("lap").count == 2
    assert tracer.metrics.histogram("lap").mean == pytest.approx(1.0)


# -- Histogram ----------------------------------------------------------------

def test_histogram_aggregates_and_percentiles():
    hist = Histogram("h")
    for v in range(1, 101):
        hist.observe(float(v))
    assert hist.count == 100
    assert hist.sum == pytest.approx(5050.0)
    assert hist.mean == pytest.approx(50.5)
    assert hist.min == 1.0 and hist.max == 100.0
    assert hist.percentile(50) == 50.0
    assert hist.percentile(99) == 99.0
    assert hist.percentile(100) == 100.0
    assert hist.percentile(0) == 1.0


def test_histogram_empty_is_nan_not_zero():
    hist = Histogram("h")
    assert math.isnan(hist.mean)
    assert math.isnan(hist.percentile(50))
    summary = hist.summary()
    assert summary["count"] == 0
    assert math.isnan(summary["mean"])


def test_histogram_bounded_samples_exact_aggregates():
    hist = Histogram("h", max_samples=8)
    for v in range(1000):
        hist.observe(float(v))
    assert hist.count == 1000           # exact even past the sample cap
    assert hist.max == 999.0
    assert len(hist._samples) == 8      # memory stays bounded
    with pytest.raises(ValueError):
        hist.percentile(101)


# -- Metrics registry ---------------------------------------------------------

def test_metrics_counters_gauges_histograms():
    m = Metrics()
    m.inc("ops")
    m.inc("ops", 4)
    m.gauge("depth", 7.0)
    m.observe("lat", 0.25)
    assert m.counter_value("ops") == 5
    assert m.counter_value("missing") == 0
    assert m.gauge_value("depth") == 7.0
    assert m.histogram("lat").count == 1


def test_metrics_json_export_round_trips():
    m = Metrics()
    m.inc("ops", 3)
    m.observe("lat", 0.5)
    exported = json.loads(m.to_json())
    assert exported["counters"]["ops"] == 3
    assert exported["histograms"]["lat"]["count"] == 1
    assert exported["histograms"]["lat"]["p50"] == 0.5
    # NaN (empty histogram) must export as null, not break JSON.
    m.histogram("empty")
    assert json.loads(m.to_json())["histograms"]["empty"]["mean"] is None


def test_metrics_merge():
    a, b = Metrics(), Metrics()
    a.inc("ops", 2)
    b.inc("ops", 3)
    a.observe("lat", 1.0)
    b.observe("lat", 3.0)
    a.merge(b)
    assert a.counter_value("ops") == 5
    assert a.histogram("lat").count == 2
    assert a.histogram("lat").mean == pytest.approx(2.0)


def test_merge_into_full_histogram_still_absorbs_samples():
    """Regression: merge used to stop copying the other registry's
    samples once the destination buffer was full, so merged percentiles
    silently ignored every late source.  It must overwrite round-robin
    exactly as ``observe`` does."""
    a = Metrics(max_samples_per_histogram=4)
    b = Metrics(max_samples_per_histogram=4)
    for _ in range(4):
        a.observe("lat", 1.0)       # destination buffer now full
    for _ in range(4):
        b.observe("lat", 100.0)
    a.merge(b)
    hist = a.histogram("lat")
    assert hist.count == 8
    assert hist.sum == pytest.approx(404.0)
    assert hist.max == 100.0
    # The buffer kept rotating: the merged percentile sees b's samples
    # (before the fix, p95 stayed at 1.0 forever).
    assert hist.percentile(95) == 100.0


def test_merge_with_prefix_namespaces_every_metric():
    a, b = Metrics(), Metrics()
    b.inc("requests", 7)
    b.gauge("depth", 3.0)
    b.observe("phase.commit", 0.5)
    a.merge(b, prefix="shard1.")
    assert a.counter_value("shard1.requests") == 7
    assert a.counter_value("requests") == 0
    assert a.gauge_value("shard1.depth") == 3.0
    assert a.histogram("shard1.phase.commit").count == 1
    assert "phase.commit" not in a.histograms


def test_prefixed_merge_preserves_percentiles_bit_for_bit():
    """A sharded deployment's aggregate must report each group's
    percentiles exactly as the group recorded them — the prefix merge
    into an empty registry carries every retained sample unchanged."""
    source = Metrics()
    for i in range(1000):
        source.observe("lat", (i * 37 % 1000) / 10.0)
    merged = Metrics()
    merged.merge(source, prefix="shard0.")
    original = source.histogram("lat")
    copied = merged.histogram("shard0.lat")
    assert copied.count == original.count
    assert copied.sum == original.sum
    assert copied.min == original.min and copied.max == original.max
    for p in (0.0, 1.0, 50.0, 90.0, 99.0, 99.9, 100.0):
        assert copied.percentile(p) == original.percentile(p)


def test_prefixed_merge_keeps_identically_named_shards_apart():
    shard0, shard1 = Metrics(), Metrics()
    shard0.inc("executed", 10)
    shard1.inc("executed", 4)
    shard0.observe("phase.commit", 1.0)
    shard1.observe("phase.commit", 9.0)
    total = Metrics()
    total.merge(shard0, prefix="shard0.")
    total.merge(shard1, prefix="shard1.")
    assert total.counter_value("shard0.executed") == 10
    assert total.counter_value("shard1.executed") == 4
    assert total.histogram("shard0.phase.commit").mean == 1.0
    assert total.histogram("shard1.phase.commit").mean == 9.0


def test_merge_partially_full_buffer_appends_then_rotates():
    a = Metrics(max_samples_per_histogram=4)
    b = Metrics(max_samples_per_histogram=4)
    for v in (1.0, 2.0):
        a.observe("lat", v)
    for v in (10.0, 20.0, 30.0):
        b.observe("lat", v)
    a.merge(b)
    hist = a.histogram("lat")
    assert hist.count == 5
    assert len(hist._samples) == 4              # memory stays bounded
    assert 30.0 in hist._samples                # the overflow wrapped in


def test_span_measures_with_custom_clock():
    m = Metrics()
    fake = {"t": 10.0}
    with m.span("region", clock=lambda: fake["t"]) as span:
        fake["t"] = 12.5
    assert span.elapsed == pytest.approx(2.5)
    assert m.histogram("region").count == 1
    assert m.histogram("region").max == pytest.approx(2.5)


def test_tracer_span_uses_bound_simulation_clock():
    tracer = Tracer()
    fake = {"t": 0.0}
    tracer.bind_clock(lambda: fake["t"])
    with tracer.span("step"):
        fake["t"] = 4.0
    assert tracer.metrics.histogram("step").percentile(50) == pytest.approx(4.0)


# -- protocol phase instrumentation -------------------------------------------

def test_normal_case_populates_phase_histograms():
    cluster = make_kv_cluster()
    client = cluster.add_client("client0")
    for i in range(10):
        client.call(put(i % 8, b"v%d" % i))
    metrics = cluster.metrics
    # With tentative execution on (the default), execution happens at
    # prepared time, so the fast-path phase replaces committed_to_executed.
    for phase in ("request_to_pre_prepare", "pre_prepare_to_prepared",
                  "prepared_to_committed", "prepared_to_executed",
                  "request_to_reply"):
        hist = metrics.histograms.get(f"phase.{phase}")
        assert hist is not None and hist.count > 0, phase
    # The client saw every op end-to-end; latencies are causally ordered
    # (a request cannot reach the client faster than it committed).
    e2e = metrics.histogram("phase.request_to_reply")
    assert e2e.count == 10
    assert e2e.min > 0
    assert cluster.metrics.counter_value("client.requests") == 10
    assert cluster.tracer.dropped_events == 0


def test_view_change_duration_recorded():
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=0.3)
    client = cluster.add_client("client0")
    cluster.replicas[0].crash()
    client.call(put(0, b"survived"))
    vc = cluster.metrics.histograms.get("phase.view_change")
    assert vc is not None and vc.count >= 1
    assert vc.min > 0


def test_state_transfer_duration_recorded():
    cluster = make_kv_cluster(checkpoint_interval=4)
    client = cluster.add_client("client0")
    lagger = cluster.replicas[3]
    for other in cluster.config.replica_ids:
        if other != lagger.node_id:
            cluster.network.partition(lagger.node_id, other)
    for i in range(12):
        client.call(put(i % 16, b"w%d" % i))
    cluster.network.heal_all()
    for i in range(4):
        client.call(put(i % 16, b"x%d" % i))
    cluster.run(5.0)
    st = cluster.metrics.histograms.get("phase.state_transfer")
    assert st is not None and st.count >= 1
    assert cluster.metrics.counter_value("transfer.objects_fetched") > 0


def test_recovery_breakdown_recorded():
    cluster = make_kv_cluster(checkpoint_interval=4, reboot_delay=1.0)
    client = cluster.add_client("client0")
    for i in range(8):
        client.call(put(i % 8, b"r%d" % i))
    cluster.run(1.0)
    cluster.replicas[2].recovery.start_recovery()
    cluster.run(10.0)
    metrics = cluster.metrics
    assert metrics.counter_value("recovery.completed") == 1
    assert metrics.histogram("recovery.reboot").mean == pytest.approx(1.0)
    total = metrics.histogram("recovery.total").mean
    parts = sum(metrics.histogram(f"recovery.{p}").mean
                for p in ("shutdown", "reboot", "restart", "fetch_and_check"))
    assert total == pytest.approx(parts)


# -- rendering and the smoke target -------------------------------------------

def test_phase_breakdown_table_renders_in_protocol_order():
    cluster = make_kv_cluster()
    client = cluster.add_client("client0")
    for i in range(5):
        client.call(put(i, b"v"))
    table = cluster.phase_report()
    lines = table.splitlines()
    order = [line.split()[0] for line in lines[3:] if line.strip()]
    assert order.index("pre_prepare_to_prepared") \
        < order.index("prepared_to_executed") \
        < order.index("prepared_to_committed") \
        < order.index("request_to_reply")


def test_histogram_and_counter_tables_render_empty_registries():
    m = Metrics()
    assert "(no rows)" in histogram_table(m, "empty")
    assert "(no rows)" in counters_table(m)
    assert "(no rows)" in phase_breakdown_table(m)


def test_report_selftest_end_to_end(capsys):
    metrics = run_selftest(ops=10, verbose=True)
    out = capsys.readouterr().out
    assert "Per-phase latency breakdown" in out
    assert "client.requests" in out
    assert metrics.counter_value("client.requests") == 15
