"""Stateful property testing: random fault/operation interleavings.

A hypothesis rule machine drives a replicated KV cluster with an
arbitrary mix of writes, reads, crashes, restarts, recoveries and time,
checking after every step that accepted results match a sequential model
and that replica states never diverge at equal execution points.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.bft.config import BftConfig
from repro.bft.statemachine import InMemoryStateManager
from repro.harness import costs as C
from repro.harness.cluster import build_cluster

put = InMemoryStateManager.op_put
get = InMemoryStateManager.op_get

SLOTS = 8


class ClusterMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        config = BftConfig(n=4, checkpoint_interval=4,
                           view_change_timeout=0.4,
                           client_retry_timeout=0.25, reboot_delay=0.2)
        self.cluster = build_cluster(
            lambda i: InMemoryStateManager(size=SLOTS),
            config=config, network_config=C.lan_network(7), seed=7)
        self.client = self.cluster.add_client("m")
        self.model = {i: b"" for i in range(SLOTS)}
        self.crashed = set()
        self.corrupted = set()
        self.write_counter = 0

    # -- helpers ---------------------------------------------------------------

    @property
    def live_enough(self) -> bool:
        """2f+1 replicas must be up for liveness (recovering ones count:
        they rejoin agreement after their short reboot)."""
        return len(self.crashed) <= 1

    # -- rules ----------------------------------------------------------------

    @precondition(lambda self: self.live_enough)
    @rule(slot=st.integers(0, SLOTS - 1))
    def write(self, slot):
        self.write_counter += 1
        value = b"v%d" % self.write_counter
        assert self.client.call(put(slot, value)) == b"ok"
        self.model[slot] = value

    @precondition(lambda self: self.live_enough)
    @rule(slot=st.integers(0, SLOTS - 1))
    def read(self, slot):
        assert self.client.call(get(slot), read_only=True) == \
            self.model[slot]

    @precondition(lambda self: len(self.crashed) == 0)
    @rule(index=st.integers(0, 3))
    def crash_replica(self, index):
        replica = self.cluster.replicas[index]
        if not replica.recovery.recovering:
            replica.crash()
            self.crashed.add(index)

    @precondition(lambda self: bool(self.crashed))
    @rule()
    def restart_crashed(self):
        index = next(iter(self.crashed))
        self.cluster.replicas[index].restart_node()
        self.crashed.discard(index)
        # Let it rejoin via retransmissions/checkpoints.
        self.cluster.run(0.5)

    @precondition(lambda self: self.live_enough)
    @rule(index=st.integers(0, 3))
    def proactive_recovery(self, index):
        replica = self.cluster.replicas[index]
        if index not in self.crashed and not replica.recovery.recovering:
            replica.recovery.start_recovery()

    def _refresh_corrupted(self):
        """A corrupted replica counts as repaired once its rot is gone
        (overwritten by a write or fixed by transfer/recovery)."""
        self.corrupted = {i for i in self.corrupted
                          if self.cluster.replicas[i].state.values[0]
                          == b"CORRUPT"}

    @precondition(lambda self: self.live_enough)
    @rule(index=st.integers(0, 3))
    def corrupt_replica(self, index):
        """Silent corruption of one replica — strictly within the f=1
        budget: corrupting a second replica while one is still rotten
        would (correctly!) let two liars outvote the truth."""
        self._refresh_corrupted()
        if self.corrupted - {index}:
            return
        replica = self.cluster.replicas[index]
        replica.state.values[0] = b"CORRUPT"
        replica.state.mark_all_dirty()
        self.corrupted.add(index)

    @rule(seconds=st.sampled_from([0.1, 0.5]))
    def pass_time(self, seconds):
        self.cluster.run(seconds)

    # -- invariants ---------------------------------------------------------------

    @invariant()
    def no_divergence_at_equal_execution(self):
        if not hasattr(self, "cluster"):
            return
        by_exec = {}
        for replica in self.cluster.replicas:
            if replica.recovery.recovering or replica.transfer.active:
                continue
            by_exec.setdefault(replica.last_executed, set()).add(
                tuple(replica.state.values))
        for executed, states in by_exec.items():
            # Corrupt-but-undetected replicas may differ transiently; the
            # *protocol-visible* state (what honest execution produced) is
            # what must agree — exclude replicas we corrupted and which
            # have not yet been repaired.
            cleaned = {s for s in states if b"CORRUPT" not in s}
            assert len(cleaned) <= 1, (
                f"divergence at last_executed={executed}")


ClusterMachine.TestCase.settings = settings(
    max_examples=5, stateful_step_count=10, deadline=None)

TestClusterMachine = ClusterMachine.TestCase
