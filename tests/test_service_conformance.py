"""The cross-service conformance battery (see
:mod:`repro.service.conformance`), parametrized over every service in
the registry — the same six checks run against NFS, SQL, HTTP, and
Thor, each over a heterogeneous wrapper pair.
"""

import pytest

from repro.service.conformance import (
    BATTERY,
    CONSISTENCY_MODES,
    check_abstract_determinism,
    check_consistency_mode,
    check_malformed_ops,
    check_read_only_rejection,
    check_restart_survival,
    check_round_trip,
    check_txn_framing,
    faulty_probe_names,
    get_faulty_probe,
    get_probe,
    probe_names,
)
from repro.service.registry import load_all, service_names


def test_every_registered_service_has_a_probe():
    load_all()
    assert set(probe_names()) == set(service_names())


@pytest.mark.parametrize("name", probe_names())
def test_round_trip(name):
    check_round_trip(get_probe(name))


@pytest.mark.parametrize("name", probe_names())
def test_abstract_determinism(name):
    check_abstract_determinism(get_probe(name))


@pytest.mark.parametrize("name", probe_names())
def test_read_only_rejection(name):
    check_read_only_rejection(get_probe(name))


@pytest.mark.parametrize("name", probe_names())
def test_malformed_ops(name):
    check_malformed_ops(get_probe(name))


@pytest.mark.parametrize("name", probe_names())
def test_restart_survival(name):
    check_restart_survival(get_probe(name))


@pytest.mark.parametrize("name", probe_names())
def test_txn_framing(name):
    check_txn_framing(get_probe(name))


@pytest.mark.parametrize("mode", CONSISTENCY_MODES)
@pytest.mark.parametrize("name", probe_names())
def test_consistency_mode(name, mode):
    check_consistency_mode(get_probe(name), mode)


def test_consistency_modes_cover_the_whole_ladder():
    from repro.edge.evidence import MODES
    assert CONSISTENCY_MODES == MODES
    assert set(CONSISTENCY_MODES) == {
        "linearizable", "bounded_stale", "last_known_good"}


# -- faulty backends ---------------------------------------------------------
#
# The BASE claim under test: the abstraction wrapper tolerates software
# aging in the off-the-shelf implementation.  The faulty probes wrap the
# real vendor backends in the ageing wrappers from
# repro.nfs.backends.faulty, and their workloads assert the fault
# actually fired — so a pass means conformance held *through* the fault,
# not around it.


def test_faulty_probe_registry():
    assert set(faulty_probe_names()) == {"nfs-leaky", "nfs-corrupting"}
    # Faulty probes deliberately stay out of the 1:1 service registry.
    assert not set(faulty_probe_names()) & set(probe_names())


@pytest.mark.parametrize("check", BATTERY, ids=lambda c: c.__name__)
@pytest.mark.parametrize("name", faulty_probe_names())
def test_battery_over_faulty_nfs_backends(name, check):
    check(get_faulty_probe(name))


def test_aged_out_leaky_backend_recovers_via_rejuvenation():
    probe = get_faulty_probe("nfs-leaky")
    driver = probe.driver(0)
    backend = driver.wrapper.backend
    backend.leaked = backend.limit  # instant old age
    assert probe.is_error(driver.op(*probe.mutating_op))
    # The proactive-recovery path: load_rep rejuvenates the backend
    # before remounting, so the aged-out server comes back healthy.
    driver.wrapper.load_rep(driver.wrapper.save_rep())
    assert backend.leaked < backend.limit
    driver.ok(*probe.post_restart_op)
    driver.ok(*probe.mutating_op)


def test_battery_covers_all_seven_checks():
    assert {check.__name__ for check in BATTERY} == {
        "check_round_trip", "check_abstract_determinism",
        "check_read_only_rejection", "check_malformed_ops",
        "check_restart_survival", "check_txn_framing",
        "check_consistency_modes"}


# -- regression: wire-legal procedures outside the abstract spec ------------------
#
# RFC 1094's NULL, ROOT, and WRITECACHE are legal on the wire but have no
# handler in the conformance wrapper.  The old dispatch reached them via
# getattr(self, f"_op_{kind}") with no default, so a Byzantine client
# could crash a replica with an AttributeError; the kernel's op table
# answers them with the deterministic "bad procedure" envelope instead.


def test_nfs_unknown_wire_procedures_get_deterministic_reply():
    from repro.nfs.protocol import NfsProc, NfsStatus
    driver = get_probe("nfs").driver(0)
    for proc in (NfsProc.NULL, NfsProc.ROOT, NfsProc.WRITECACHE):
        reply = driver.op(proc.value)
        assert reply == (int(NfsStatus.NFSERR_IO), "bad procedure"), proc


def test_nfs_std_baseline_rejects_unknown_wire_procedures():
    from repro.nfs.protocol import NfsError, NfsProc, NfsStatus
    from repro.nfs.service import build_nfs_std
    _, transport = build_nfs_std()
    transport.root_fh()  # server is up and answering
    for proc in (NfsProc.NULL, NfsProc.ROOT, NfsProc.WRITECACHE):
        with pytest.raises(NfsError) as excinfo:
            transport.call(proc)
        assert excinfo.value.status == NfsStatus.NFSERR_IO
