"""§3.1.4's improvement: recovery onto a clean (second-disk) file system.

The in-place repair can only fix objects the digest check can see; a
backend whose *internal data structures* rot (not just file contents) is
unfixable in place.  Clean recovery rebuilds everything from the abstract
state on a fresh backend — and clears leaks by construction.
"""

import pytest

from repro.bft.config import BftConfig
from repro.nfs.backends import LinuxExt2Backend, SolarisUfsBackend
from repro.nfs.client import NfsClient
from repro.nfs.service import build_basefs
from repro.nfs.spec import AbstractSpecConfig
from repro.nfs.wrapper import NfsConformanceWrapper

SPEC = AbstractSpecConfig(array_size=128)


def build(clean: bool):
    cluster, transport = build_basefs(
        [LinuxExt2Backend] * 4, spec=SPEC,
        config=BftConfig(n=4, checkpoint_interval=8, reboot_delay=0.3,
                         view_change_timeout=2.0, client_retry_timeout=1.0),
        branching=8)
    if clean:
        for replica in cluster.replicas:
            wrapper = replica.state.upcalls
            wrapper.clean_recovery_factory = \
                lambda w=wrapper: LinuxExt2Backend(clock=w.timestamps.clock)
    return cluster, NfsClient(transport)


def seed(cluster, fs, count=10):
    fs.mkdir("/dir")
    for i in range(count):
        fs.write_file(f"/dir/f{i}", b"content %d" % i)
    fs.symlink("/link", "dir/f0")
    cluster.run(1.0)


def test_clean_recovery_rebuilds_entire_state():
    cluster, fs = build(clean=True)
    seed(cluster, fs)
    victim = cluster.replicas[2]
    old_backend = victim.state.upcalls.backend
    victim.recovery.start_recovery()
    cluster.run(30.0)
    assert not victim.recovery.recovering
    new_backend = victim.state.upcalls.backend
    assert new_backend is not old_backend
    rec = victim.recovery.records[-1]
    # Everything non-free was fetched (whole-state rebuild).
    non_free = sum(1 for e in victim.state.upcalls.rep.entries
                   if not e.is_free)
    assert rec.objects_fetched >= non_free
    # The rebuilt concrete state serves correctly.
    cluster.run(2.0)
    fs.drop_caches()
    assert fs.read_file("/dir/f3") == b"content 3"
    roots = {r.state.tree.root_digest for r in cluster.replicas}
    assert len(roots) == 1


def test_clean_recovery_fixes_unrepairable_internal_corruption():
    """Corrupt the backend's *inode table* (not file data): in-place
    repair cannot express the fix through the NFS interface, but a clean
    rebuild does not care."""
    cluster, fs = build(clean=True)
    seed(cluster, fs)
    victim = cluster.replicas[1]
    backend = victim.state.upcalls.backend
    # Internal data-structure rot: a directory entry pointing nowhere.
    root_inode = backend._inodes[2]
    root_inode.children["ghost-entry"] = 99999
    victim.recovery.start_recovery()
    cluster.run(30.0)
    assert not victim.recovery.recovering
    rebuilt = victim.state.upcalls.backend
    assert "ghost-entry" not in rebuilt._inodes[2].children
    cluster.run(2.0)
    assert victim.state.tree.root_digest == \
        cluster.replicas[0].state.tree.root_digest


def test_clean_recovery_clears_resource_usage():
    """The fresh backend's inode table holds exactly the live objects —
    no leaked allocations survive (the rejuvenation argument)."""
    cluster, fs = build(clean=True)
    seed(cluster, fs, count=6)
    for i in range(6):
        fs.remove(f"/dir/f{i}")       # churn: create then delete
        fs.write_file(f"/dir/g{i}", b"x")
    cluster.run(1.0)
    victim = cluster.replicas[3]
    victim.recovery.start_recovery()
    cluster.run(30.0)
    rebuilt = victim.state.upcalls.backend
    live_objects = sum(1 for e in victim.state.upcalls.rep.entries
                       if not e.is_free)
    assert rebuilt.inode_count() == live_objects
    assert rebuilt._next_ino <= live_objects + 3  # no allocation churn


def test_clean_recovery_service_equivalent_to_in_place():
    """Both recovery flavours serve the same observable file system.

    (Root digests differ *between* runs because agreed timestamps depend
    on each run's simulated clock — within each run all replicas agree.)
    """
    results = {}
    for clean in (False, True):
        cluster, fs = build(clean=clean)
        seed(cluster, fs)
        victim = cluster.replicas[2]
        victim.recovery.start_recovery()
        cluster.run(30.0)
        assert not victim.recovery.recovering
        fs.write_file("/post", b"after recovery")
        cluster.run(2.0)
        fs.drop_caches()
        results[clean] = (
            tuple(sorted(fs.listdir("/"))),
            tuple(sorted(fs.listdir("/dir"))),
            fs.read_file("/dir/f5"),
            fs.read_file("/post"),
            fs.readlink("/link"),
        )
        roots = {r.state.tree.root_digest for r in cluster.replicas}
        assert len(roots) == 1
    assert results[False] == results[True]
