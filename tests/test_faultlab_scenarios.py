"""Scenario registry coverage and the FaultLab CLI surface."""

import json
import random

import pytest

from repro.faultlab.__main__ import main
from repro.faultlab.explorer import run_trial
from repro.faultlab.plan import FaultPlan, ReplicaFault
from repro.faultlab.report import (
    validate_sweep_report,
    validate_trial_report,
)
from repro.faultlab.scenarios import (
    SCENARIOS,
    get_scenario,
    scenario_names,
)

SWEPT = scenario_names(in_sweep_only=True)


def test_registry_has_the_required_breadth():
    assert len(SWEPT) >= 6
    assert "beyond_f_wrong_reply" in scenario_names()
    assert "beyond_f_wrong_reply" not in SWEPT
    services = {SCENARIOS[name].service for name in SWEPT}
    assert "kv" in services and "nfs" in services


def test_plan_generators_are_seed_deterministic():
    for name in SWEPT:
        gen = get_scenario(name).plan
        first = gen(random.Random(f"{name}:determinism"))
        second = gen(random.Random(f"{name}:determinism"))
        assert first == second, name


@pytest.mark.parametrize("name", SWEPT)
def test_swept_scenarios_hold_their_invariants_at_seed_zero(name):
    result = run_trial(name, 0)
    assert result.ok, [str(v) for v in result.violations]
    assert result.accepted > 0
    assert result.faults_injected > 0


def test_shard_view_change_is_swept_and_sharded():
    scenario = get_scenario("shard_view_change")
    assert "shard_view_change" in SWEPT
    assert scenario.shards == 2 and scenario.service == "sql"


def test_sharded_checks_flag_a_missing_view_change():
    # A window that opens long after the workload drained partitions an
    # idle primary: nothing times out, no view change happens, and the
    # sharded checks must call that out rather than passing vacuously.
    from repro.faultlab.plan import PartitionFault
    plan = FaultPlan((PartitionFault((0,), start=30.0, stop=31.0),))
    result = run_trial("shard_view_change", 0, plan=plan)
    assert [v.invariant for v in result.violations] == ["shard_view_change"]


def test_tentative_viewchange_is_swept_and_rolls_back():
    # The scenario exists to prove the fast path's rollback machinery
    # under view changes: every seed must hold the full invariant suite
    # (reply validity and agreement included), and across a handful of
    # seeds the rollback must actually fire — a trial where no replica
    # ever undoes a tentative execution exercises nothing.
    assert "tentative_viewchange" in SWEPT
    rollbacks = 0
    for seed in range(4):
        result = run_trial("tentative_viewchange", seed)
        assert result.ok, (seed, [str(v) for v in result.violations])
        assert result.accepted == result.issued > 0, seed
        rollbacks += result.rollbacks
    assert rollbacks > 0, "no trial rolled back a tentative execution"


def test_trial_reports_carry_the_rollback_count():
    result = run_trial("tentative_viewchange", 0)
    doc = result.to_dict()
    assert doc["rollbacks"] == result.rollbacks >= 0


def test_cli_list_and_run(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "beyond_f_wrong_reply" in out and "not swept" in out

    assert main(["run", "--scenario", "byzantine_backup",
                 "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "all invariants hold" in out


def test_cli_run_writes_a_validating_report(tmp_path):
    out = tmp_path / "trial.json"
    assert main(["run", "--scenario", "lossy_bursts", "--seed", "1",
                 "--json", str(out)]) == 0
    report = json.loads(out.read_text())
    validate_trial_report(report)
    assert report["scenario"] == "lossy_bursts"


def test_cli_sweep_writes_a_validating_report(tmp_path):
    out = tmp_path / "sweep.json"
    assert main(["sweep", "--quick", "--quiet",
                 "--scenario", "byzantine_backup",
                 "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    validate_sweep_report(report)
    assert report["mode"] == "quick"
    assert report["trials"] == 3  # --quick pins 3 seeds per scenario


def test_cli_replay_with_a_failing_plan_exits_nonzero(tmp_path, capsys):
    plan = FaultPlan((ReplicaFault(1, "wrong_reply"),
                      ReplicaFault(2, "wrong_reply")))
    plan_file = tmp_path / "plan.json"
    plan_file.write_text(plan.to_json())
    code = main(["replay", "--scenario", "beyond_f_wrong_reply",
                 "--seed", "0", "--plan", str(plan_file)])
    assert code == 1
    assert "violation" in capsys.readouterr().out
