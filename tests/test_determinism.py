"""Simulation determinism: identical seeds yield identical runs.

This is the property that makes the whole methodology testable — every
Byzantine schedule in this suite is reproducible.
"""

from repro.bft.config import BftConfig
from repro.nfs.backends import ALL_BACKENDS
from repro.nfs.client import NfsClient
from repro.nfs.service import build_basefs
from repro.nfs.spec import AbstractSpecConfig
from repro.bft.statemachine import InMemoryStateManager
from tests.conftest import make_kv_cluster

put = InMemoryStateManager.op_put


def run_kv(seed):
    cluster = make_kv_cluster(seed=seed)
    client = cluster.add_client("client0")
    for i in range(10):
        client.call(put(i % 4, b"d%d" % i))
    cluster.run(1.0)
    return (cluster.scheduler.now,
            cluster.network.messages_sent,
            cluster.network.bytes_sent,
            tuple(tuple(r.state.values) for r in cluster.replicas))


def test_same_seed_same_everything():
    assert run_kv(13) == run_kv(13)


def test_different_seed_different_timing_same_state():
    a = run_kv(13)
    b = run_kv(14)
    assert a[0] != b[0]          # jitter differs
    assert a[3] == b[3]          # but the replicated state is identical


def run_basefs(seed):
    cluster, transport = build_basefs(
        list(ALL_BACKENDS), spec=AbstractSpecConfig(array_size=64),
        config=BftConfig(n=4, checkpoint_interval=8), branching=8,
        seed=seed)
    fs = NfsClient(transport)
    fs.mkdir("/d")
    for i in range(5):
        fs.write_file(f"/d/f{i}", b"content %d" % i)
    cluster.run(1.0)
    roots = tuple(r.state.tree.root_digest for r in cluster.replicas)
    return cluster.scheduler.now, roots


def test_heterogeneous_basefs_deterministic():
    t1, roots1 = run_basefs(99)
    t2, roots2 = run_basefs(99)
    assert t1 == t2
    assert roots1 == roots2
    # And the four heterogeneous replicas agree within each run.
    assert len(set(roots1)) == 1
