"""Proactive/clean recovery for the SQL and web services (§3.1.4 applied
beyond the file system).

Wrapper level: ``shutdown``/``restart`` with a ``clean_recovery_factory``
must rebuild the whole service onto a *fresh* backend from the abstract
state — including onto a different vendor, which is the N-version twist
the abstraction makes free.  End to end: a replica of the replicated
deployment goes through proactive recovery with ``clean_recovery=True``
and rejoins with a brand-new backend instance serving the same state.
"""

import pytest

from repro.bft.config import BftConfig
from repro.http.engine import ApacheLikeServer, NginxLikeServer
from repro.http.service import build_base_http
from repro.http.wrapper import HttpConformanceWrapper
from repro.service.conformance import Driver, get_probe
from repro.sql.engine import BTreeStoreEngine, HashStoreEngine
from repro.sql.service import build_base_sql
from repro.sql.wrapper import SqlConformanceWrapper


def _clean_restart_roundtrip(wrapper, probe):
    """Drive the probe's workload, clean-restart, repair via
    fetch-and-check, and hand back the driver for post-checks."""
    driver = Driver(probe, wrapper)
    probe.workload(driver)
    before = driver.snapshot()
    assert wrapper.shutdown() > 0
    assert wrapper.restart() > 0
    dirty = {index: blob for index, blob in before.items()
             if wrapper.get_obj(index) != blob}
    assert dirty, "a clean restart must actually lose concrete state"
    wrapper.put_objs(dirty)
    assert driver.snapshot() == before
    return driver


def test_sql_clean_recovery_rebuilds_onto_fresh_engine():
    wrapper = SqlConformanceWrapper(
        HashStoreEngine(), array_size=32,
        clean_recovery_factory=HashStoreEngine)
    old_engine = wrapper.engine
    driver = _clean_restart_roundtrip(wrapper, get_probe("sql"))
    assert wrapper.engine is not old_engine
    driver.ok("insert", "users", (42, "post-recovery", 0))
    assert driver.ok("select", "users", 42,
                     read_only=True)[1] == (42, "post-recovery", 0)


def test_sql_clean_recovery_onto_different_vendor():
    """Rebuilding from abstract state does not care what engine the
    replica ran before the reboot."""
    wrapper = SqlConformanceWrapper(
        HashStoreEngine(), array_size=32,
        clean_recovery_factory=BTreeStoreEngine)
    driver = _clean_restart_roundtrip(wrapper, get_probe("sql"))
    assert isinstance(wrapper.engine, BTreeStoreEngine)
    assert driver.ok("scan", "users", read_only=True)[1] == (
        (1, "ada", 10), (2, "grace", 25))


def test_http_clean_recovery_rebuilds_onto_fresh_server():
    wrapper = HttpConformanceWrapper(
        ApacheLikeServer(boot_salt=3), array_size=32,
        clean_recovery_factory=NginxLikeServer)
    old_server = wrapper.server
    driver = _clean_restart_roundtrip(wrapper, get_probe("http"))
    assert wrapper.server is not old_server
    assert isinstance(wrapper.server, NginxLikeServer)
    # Nested resources survived the vendor swap, with their versions.
    assert driver.ok("GET", "/docs/c.txt", "",
                     read_only=True)[2] == b"gamma"
    assert driver.ok("GET", "/b.txt", "", read_only=True)[1] == '"v2"'
    driver.ok("PUT", "/docs/post.txt", b"post-recovery", "")


def test_sql_proactive_recovery_e2e_with_engine_replacement():
    cluster, client = build_base_sql(
        [HashStoreEngine] * 4,
        config=BftConfig(n=4, checkpoint_interval=8, reboot_delay=0.3,
                         view_change_timeout=2.0,
                         client_retry_timeout=1.0),
        array_size=64, clean_recovery=True)
    client.create_table("accounts", ("id", "owner", "balance"), "id")
    for i in range(8):
        client.insert("accounts", (i, "owner%d" % i, 100 * i))
    cluster.run(1.0)
    victim = cluster.replicas[2]
    old_engine = victim.state.upcalls.engine
    victim.recovery.start_recovery()
    cluster.run(30.0)
    assert not victim.recovery.recovering
    assert victim.state.upcalls.engine is not old_engine
    cluster.run(2.0)
    roots = {r.state.tree.root_digest for r in cluster.replicas}
    assert len(roots) == 1
    assert client.select("accounts", 5) == (5, "owner5", 500)
    client.insert("accounts", (99, "post", 1))
    assert client.row_count("accounts") == 9


def test_http_proactive_recovery_e2e_with_server_replacement():
    cluster, client = build_base_http(
        [ApacheLikeServer, NginxLikeServer, ApacheLikeServer,
         NginxLikeServer],
        config=BftConfig(n=4, checkpoint_interval=8, reboot_delay=0.3,
                         view_change_timeout=2.0,
                         client_retry_timeout=1.0),
        array_size=64, clean_recovery=True)
    client.mkcol("/site")
    client.put("/site/index.html", b"<h1>hello</h1>")
    client.put("/notes.txt", b"remember")
    client.put("/notes.txt", b"remember more")
    # Cross the checkpoint interval so a stable checkpoint certificate
    # exists for the recovering replica's fetch-and-check to verify
    # against (below it, recovery can only re-verify in place).
    for i in range(8):
        client.put(f"/site/page{i}.html", b"body %d" % i)
    cluster.run(1.0)
    victim = cluster.replicas[1]
    old_server = victim.state.upcalls.server
    victim.recovery.start_recovery()
    cluster.run(30.0)
    assert not victim.recovery.recovering
    assert victim.state.upcalls.server is not old_server
    cluster.run(2.0)
    roots = {r.state.tree.root_digest for r in cluster.replicas}
    assert len(roots) == 1
    etag, body = client.get("/site/index.html")
    assert body == b"<h1>hello</h1>"
    assert client.get("/notes.txt") == ('"v2"', b"remember more")
    client.put("/site/post.html", b"post-recovery")
