"""End-to-end BASEFS: the full stack — NfsClient → BFT → wrappers →
heterogeneous backends — plus the NFS-std baseline path."""

import pytest

from repro.bft.config import BftConfig
from repro.nfs.backends import ALL_BACKENDS, LinuxExt2Backend
from repro.nfs.client import NfsClient
from repro.nfs.protocol import NfsError, NfsStatus
from repro.nfs.service import build_basefs, build_nfs_std
from repro.nfs.spec import AbstractSpecConfig

SPEC = AbstractSpecConfig(array_size=128)


def small_config(**kw):
    defaults = dict(n=4, checkpoint_interval=8, view_change_timeout=2.0,
                    client_retry_timeout=1.0)
    defaults.update(kw)
    return BftConfig(**defaults)


@pytest.fixture
def homogeneous():
    cluster, transport = build_basefs([LinuxExt2Backend] * 4, spec=SPEC,
                                      config=small_config(), branching=8)
    return cluster, NfsClient(transport)


@pytest.fixture
def heterogeneous():
    cluster, transport = build_basefs(list(ALL_BACKENDS), spec=SPEC,
                                      config=small_config(), branching=8)
    return cluster, NfsClient(transport)


def exercise(fs: NfsClient):
    fs.mkdir("/proj")
    fs.mkdir("/proj/src")
    fs.write_file("/proj/src/main.c", b"int main() { return 0; }")
    fs.write_file("/proj/README", b"docs " * 100)
    fs.symlink("/proj/latest", "src/main.c")
    assert fs.read_file("/proj/src/main.c") == b"int main() { return 0; }"
    # NFS-std returns the vendor's concrete order; BASEFS sorts (that is
    # part of the abstract spec).  Compare order-insensitively here.
    assert sorted(fs.listdir("/proj")) == ["README", "latest", "src"]
    assert fs.readlink("/proj/latest") == "src/main.c"
    fs.rename("/proj/README", "/proj/README.md")
    assert fs.exists("/proj/README.md")
    assert not fs.exists("/proj/README")
    fs.remove("/proj/src/main.c")
    fs.rmdir("/proj/src")


def test_homogeneous_basefs_full_workload(homogeneous):
    cluster, fs = homogeneous
    exercise(fs)
    stat = fs.getattr("/proj")
    assert stat.fileid > 0


def test_heterogeneous_basefs_full_workload(heterogeneous):
    """Four different operating systems, one replicated file service."""
    cluster, fs = heterogeneous
    exercise(fs)
    # The replicas' *abstract* checkpoints agreed (stable advanced).
    cluster.run(2.0)
    assert max(r.last_stable for r in cluster.replicas) >= 8


def test_nfs_std_baseline_same_workload():
    backend, transport = build_nfs_std(LinuxExt2Backend)
    fs = NfsClient(transport)
    exercise(fs)
    assert backend.ops_served > 0


def test_heterogeneous_with_one_crashed_replica(heterogeneous):
    cluster, fs = heterogeneous
    fs.mkdir("/d")
    cluster.replicas[3].crash()
    fs.write_file("/d/still-works", b"yes")
    assert fs.read_file("/d/still-works") == b"yes"


def test_heterogeneous_recovery_mid_workload(heterogeneous):
    cluster, fs = heterogeneous
    fs.mkdir("/work")
    for i in range(6):
        fs.write_file(f"/work/f{i}", b"payload %d" % i)
    cluster.run(1.0)
    victim = cluster.replicas[1]
    victim.config.reboot_delay = 0.5
    victim.recovery.start_recovery()
    for i in range(6, 10):
        fs.write_file(f"/work/f{i}", b"payload %d" % i)
    cluster.run(30.0)
    assert not victim.recovery.recovering
    # The recovered Solaris replica serves the same abstract state.
    roots = {r.state.tree.root_digest for r in cluster.replicas
             if not r.transfer.active}
    cluster.run(5.0)
    assert victim.state.tree.root_digest == \
        cluster.replicas[0].state.tree.root_digest


def test_attribute_cache_reduces_calls(homogeneous):
    cluster, fs = homogeneous
    fs.write_file("/cached", b"x")
    fs.getattr("/cached")
    calls_before = fs.calls_issued
    for _ in range(5):
        fs.getattr("/cached")
    assert fs.calls_issued == calls_before  # all served from cache
    assert fs.cache_hits >= 5


def test_data_cache_revalidates_by_mtime(homogeneous):
    cluster, fs = homogeneous
    fs.write_file("/data", b"version1")
    assert fs.read_file("/data") == b"version1"
    calls_before = fs.calls_issued
    assert fs.read_file("/data") == b"version1"   # cache hit
    assert fs.calls_issued == calls_before
    fs.drop_caches()
    fs.write_file("/data", b"version2")
    assert fs.read_file("/data") == b"version2"


def test_errors_propagate_to_client(homogeneous):
    cluster, fs = homogeneous
    with pytest.raises(NfsError) as err:
        fs.read_file("/does/not/exist")
    assert err.value.status == NfsStatus.NFSERR_NOENT
    fs.mkdir("/dir")
    with pytest.raises(NfsError) as err:
        fs.remove("/dir")
    assert err.value.status == NfsStatus.NFSERR_ISDIR


def test_basefs_and_nfs_std_give_identical_results():
    """Differential test: the replicated service is functionally
    indistinguishable from the implementation it reuses (modulo times)."""
    cluster, transport = build_basefs([LinuxExt2Backend] * 4, spec=SPEC,
                                      config=small_config(), branching=8)
    base_fs = NfsClient(transport)
    _, std_transport = build_nfs_std(LinuxExt2Backend)
    std_fs = NfsClient(std_transport)
    for fs in (base_fs, std_fs):
        exercise(fs)
    assert sorted(base_fs.listdir("/proj")) == sorted(std_fs.listdir("/proj"))
    assert base_fs.read_file("/proj/README.md") == \
        std_fs.read_file("/proj/README.md")
    a = base_fs.getattr("/proj/README.md")
    b = std_fs.getattr("/proj/README.md")
    assert (a.ftype, a.mode, a.size) == (b.ftype, b.mode, b.size)
