"""Workload generators: Andrew phases and the OO7 database/traversals."""

import pytest

from repro.bft.config import BftConfig
from repro.nfs.backends import LinuxExt2Backend
from repro.nfs.client import NfsClient
from repro.nfs.service import build_basefs, build_nfs_std
from repro.nfs.spec import AbstractSpecConfig
from repro.thor.client import ThorClient
from repro.thor.server import ThorServer, ThorServerConfig
from repro.thor.service import build_base_thor, build_thor_std
from repro.workloads.andrew import AndrewBenchmark, AndrewConfig
from repro.workloads.oo7 import OO7Benchmark, OO7Config, OO7Database

SMALL_ANDREW = AndrewConfig(copies=1, subdirs=("a", "b"),
                            files_per_subdir=2, file_size=500)


def test_andrew_all_phases_run_on_nfs_std():
    _, transport = build_nfs_std(LinuxExt2Backend)
    fs = NfsClient(transport)
    result = AndrewBenchmark(fs, SMALL_ANDREW).run()
    assert set(result.phase_seconds) == {1, 2, 3, 4, 5}
    assert all(t >= 0 for t in result.phase_seconds.values())
    assert result.ops_issued > 0
    # The tree exists: every copy has its compiled output.
    assert fs.exists("/andrew0/a.out")
    assert fs.exists("/andrew0/a/a0.o")


def test_andrew_runs_on_basefs_and_produces_same_tree():
    config = BftConfig(n=4, checkpoint_interval=16)
    cluster, transport = build_basefs(
        [LinuxExt2Backend] * 4, spec=AbstractSpecConfig(array_size=256),
        config=config, branching=8)
    fs = NfsClient(transport)
    AndrewBenchmark(fs, SMALL_ANDREW).run()
    _, std_transport = build_nfs_std(LinuxExt2Backend)
    std_fs = NfsClient(std_transport)
    AndrewBenchmark(std_fs, SMALL_ANDREW).run()
    assert fs.read_file("/andrew0/a/a0.c") == \
        std_fs.read_file("/andrew0/a/a0.c")
    assert sorted(fs.listdir("/andrew0")) == sorted(std_fs.listdir("/andrew0"))


def test_andrew_scaling_copies():
    _, transport = build_nfs_std(LinuxExt2Backend)
    fs = NfsClient(transport)
    AndrewBenchmark(fs, AndrewConfig(copies=3, subdirs=("s",),
                                     files_per_subdir=1)).run()
    for copy in range(3):
        assert fs.exists(f"/andrew{copy}/a.out")


def test_oo7_database_generation_deterministic():
    db1 = OO7Database(OO7Config.tiny())
    db2 = OO7Database(OO7Config.tiny())
    assert db1.num_pages == db2.num_pages
    assert [p.encode() for p in db1.pages] == [p.encode() for p in db2.pages]
    assert db1.total_bytes > 0


def test_oo7_shape_matches_config():
    config = OO7Config.tiny()
    db = OO7Database(config)
    assert len(db.composite_roots) == config.num_composites
    for orefs in db.composite_atomics.values():
        assert len(orefs) == config.atomic_per_composite


def test_oo7_traversals_on_thor_std():
    config = OO7Config.tiny()
    db = OO7Database(config)
    server, transport = build_thor_std(
        db.load_into, ThorServerConfig(cache_pages=64, mob_bytes=1 << 20))
    client = ThorClient(transport, "bench")
    client.start_session()
    bench = OO7Benchmark(db, client)

    t1 = bench.t1()
    assert t1.atomic_visits > 0
    assert t1.fetches > 0
    client.drop_caches()
    t6 = bench.t6()
    assert 0 < t6.atomic_visits < t1.atomic_visits
    client.drop_caches()
    t2a = bench.t2a()
    assert 0 < t2a.updates < t2a.atomic_visits or t2a.updates == \
        len({r for r in db.composite_roots.values()})
    client.drop_caches()
    t2b = bench.t2b()
    assert t2b.updates == t2b.atomic_visits
    assert server.commits == 4


def test_oo7_t1_visits_full_graphs():
    config = OO7Config.tiny()
    db = OO7Database(config)
    _, transport = build_thor_std(db.load_into)
    client = ThorClient(transport, "bench")
    client.start_session()
    t1 = OO7Benchmark(db, client).t1()
    distinct_roots = set()
    rng_roots = set(db.composite_roots.values())
    # T1 visits every atomic part of every composite reachable from the
    # assembly tree; with tiny config every composite is referenced.
    assert t1.atomic_visits <= (config.num_composites
                                * config.atomic_per_composite)
    assert t1.atomic_visits >= config.atomic_per_composite


def test_oo7_on_base_thor():
    config = OO7Config.tiny()
    db = OO7Database(config)
    cluster, transport = build_base_thor(
        db.num_pages + 4, db.load_into,
        server_config=ThorServerConfig(cache_pages=32, mob_bytes=1 << 20),
        config=BftConfig(n=4, checkpoint_interval=32), branching=16)
    client = ThorClient(transport, "bench")
    client.start_session()
    bench = OO7Benchmark(db, client)
    t1 = bench.t1()
    assert t1.atomic_visits > 0
    client.drop_caches()
    t2a = bench.t2a()
    assert t2a.updates > 0
    # All replicas executed the same commits.
    commits = {r.state.upcalls.server.commits for r in cluster.replicas}
    assert commits == {2}
