"""Differential tests for the MAC-over-digest authenticator scheme.

The tentpole optimization changed authenticators to MAC the cached
32-byte message digest instead of the full body.  These tests pin the
security-relevant behaviour: the digest scheme accepts and rejects in
exactly the cases the body-MAC scheme did (honest, forged, wrong
receiver, tampered body), and creating an authenticator for a max-size
batch hashes the body exactly once regardless of receiver count.
"""

import hmac as hmac_stdlib

from hypothesis import given, strategies as st

from repro.bft.messages import PrePrepare, Request
from repro.crypto import Authenticator, KeyRegistry, compute_mac

RECEIVERS = ["r0", "r1", "r2"]


def _body_mac_create(reg, sender, receivers, body):
    """The pre-change scheme: one MAC over the full body per receiver."""
    return {r: compute_mac(reg.session_key(sender, r), body)
            for r in receivers}


def _body_mac_verify(reg, sender, receiver, body, tags):
    tag = tags.get(receiver)
    if tag is None:
        return False
    expected = compute_mac(reg.session_key(sender, receiver), body)
    return hmac_stdlib.compare_digest(expected, tag)


@given(op=st.binary(max_size=256), request_id=st.integers(1, 10_000))
def test_digest_mac_decisions_match_body_mac(op, request_id):
    reg = KeyRegistry()
    req = Request("c1", request_id, op)
    body, dgst = req.body(), req.digest()
    digest_auth = Authenticator.create(reg, "c1", RECEIVERS, dgst)
    body_tags = _body_mac_create(reg, "c1", RECEIVERS, body)

    # Honest: every intended receiver accepts under both schemes.
    for r in RECEIVERS:
        assert digest_auth.verify(reg, r, dgst) is True
        assert _body_mac_verify(reg, "c1", r, body, body_tags) is True

    # Wrong receiver: no tag for it, both schemes reject.
    assert digest_auth.verify(reg, "intruder", dgst) is False
    assert _body_mac_verify(reg, "c1", "intruder", body, body_tags) is False

    # Tampered body: the receiver recomputes over what it received.
    tampered = Request("c1", request_id, op + b"!")
    assert digest_auth.verify(reg, "r0", tampered.digest()) is False
    assert _body_mac_verify(reg, "c1", "r0", tampered.body(),
                            body_tags) is False

    # Forged tags (Byzantine sender without the session keys).
    forged = Authenticator.forged("c1", RECEIVERS)
    forged_body_tags = dict(forged.tags)
    for r in RECEIVERS:
        assert forged.verify(reg, r, dgst) is False
        assert _body_mac_verify(reg, "c1", r, body, forged_body_tags) is False


def test_wrong_sender_keys_rejected_under_both_schemes():
    reg = KeyRegistry()
    req = Request("c1", 1, b"op")
    imposter = Authenticator.create(reg, "c2", RECEIVERS, req.digest())
    imposter_body = _body_mac_create(reg, "c2", RECEIVERS, req.body())
    # Receivers verify against c1's session keys; c2's tags must fail.
    for r in RECEIVERS:
        assert Authenticator(
            "c1", imposter.tags).verify(reg, r, req.digest()) is False
        assert _body_mac_verify(reg, "c1", r, req.body(),
                                imposter_body) is False


def test_batch_authenticator_hashes_body_exactly_once(monkeypatch):
    """Authenticator cost must be independent of batch size and receiver
    count: one body hash (cached on the message), then fixed-size MACs."""
    import repro.bft.messages as messages

    reg = KeyRegistry()
    requests = tuple(Request(f"c{i}", i + 1, b"payload" * 64)
                     for i in range(8))  # a full batch (batch_max=8)
    for r in requests:
        r.digest()  # pre-warm request digests: only the batch hash counts

    pre_prepare = PrePrepare(view=0, seq=1, requests=requests, nondet=b"nd")
    calls = []
    real = messages.sha_digest

    def counting_digest(data):
        calls.append(len(data))
        return real(data)

    monkeypatch.setattr(messages, "sha_digest", counting_digest)
    digest = pre_prepare.digest()
    auth = Authenticator.create(reg, "p", [f"r{i}" for i in range(10)], digest)
    assert len(calls) == 1, f"expected one body hash, saw {len(calls)}"
    assert len(auth.tags) == 10
    for i in range(10):
        assert auth.verify(reg, f"r{i}", digest)
    assert len(calls) == 1  # verification MACs the digest, no rehash
