"""Shared fixtures for the test suite."""

import pytest

from repro.bft.config import BftConfig
from repro.bft.statemachine import InMemoryStateManager
from repro.harness.cluster import build_cluster


def make_kv_cluster(n=4, checkpoint_interval=4, size=64, seed=0, **cfg_kwargs):
    """A 4-replica key-value cluster with small checkpoints for testing."""
    config = BftConfig(n=n, checkpoint_interval=checkpoint_interval,
                       **cfg_kwargs)
    return build_cluster(lambda i: InMemoryStateManager(size=size),
                         config=config, seed=seed)


@pytest.fixture
def kv_cluster():
    return make_kv_cluster()


@pytest.fixture
def kv_client(kv_cluster):
    return kv_cluster.add_client("client0")
