"""End-to-end BASE cluster tests: heterogeneous wrappers, nondeterminism,
recovery through the full upcall interface."""

import pytest

from repro.base import TimestampAgreement, build_base_cluster
from repro.base.nondet import ClockValue
from repro.base.upcalls import Upcalls
from repro.bft.config import BftConfig
from repro.encoding.canonical import canonical, decanonical


class RegisterWrapperA(Upcalls):
    """Common abstract spec: array of registers with a last-write time.

    Implementation A stores values in a dict keyed by index (sparse).
    """

    def __init__(self, size=16, clock=lambda: 0.0):
        super().__init__()
        self._size = size
        self._store = {}       # concrete representation A
        self._times = {}
        self.timestamps = TimestampAgreement(clock)
        self.restart_count = 0

    @property
    def num_objects(self):
        return self._size

    def execute(self, op, client_id, nondet, read_only=False):
        kind, *rest = decanonical(op)
        if kind == "write":
            index, value = rest
            when = self.timestamps.accept(nondet)
            self.library.modify(index)
            self._write_concrete(index, value, when)
            return b"ok"
        if kind == "read":
            value, when = self._read_concrete(rest[0])
            return canonical((value, int(when * 1_000_000)))
        raise ValueError(kind)

    def propose_value(self, requests, seq):
        return self.timestamps.propose()

    def check_value(self, requests, seq, nondet):
        return self.timestamps.check(nondet)

    def get_obj(self, index):
        value, when = self._read_concrete(index)
        return canonical((value, int(when * 1_000_000)))

    def put_objs(self, objects):
        for index, blob in objects.items():
            value, usec = decanonical(blob)
            self._write_concrete(index, value, usec / 1_000_000)

    def shutdown(self):
        return 0.01

    def restart(self):
        self.restart_count += 1
        return 0.01

    # concrete-representation hooks (overridden by implementation B)
    def _write_concrete(self, index, value, when):
        self._store[index] = value
        self._times[index] = when

    def _read_concrete(self, index):
        return self._store.get(index, b""), self._times.get(index, 0.0)


class RegisterWrapperB(RegisterWrapperA):
    """Implementation B: dense list storage plus an access-count 'leak' —
    concrete state deliberately different from A's."""

    def __init__(self, size=16, clock=lambda: 0.0):
        super().__init__(size, clock)
        self._dense = [(b"", 0.0)] * size
        self.leak = []

    def _write_concrete(self, index, value, when):
        self.leak.append(index)  # simulated resource leak
        self._dense[index] = (value, when)

    def _read_concrete(self, index):
        return self._dense[index]


def op_write(i, v):
    return canonical(("write", i, v))


def op_read(i):
    return canonical(("read", i))


def build_heterogeneous(checkpoint_interval=4, **cfg):
    config = BftConfig(n=4, checkpoint_interval=checkpoint_interval, **cfg)
    cluster = None
    factories = []
    for i in range(4):
        wrapper_cls = RegisterWrapperA if i % 2 == 0 else RegisterWrapperB

        def make(cls=wrapper_cls):
            return cls(clock=lambda: clock_box["cluster"].scheduler.now)
        factories.append(make)
    clock_box = {}
    cluster = build_base_cluster(factories, config=config)
    clock_box["cluster"] = cluster
    return cluster


def test_heterogeneous_replicas_agree_on_abstract_state():
    """Two distinct concrete representations, one abstract spec: roots of
    every checkpoint match across implementations."""
    cluster = build_heterogeneous()
    client = cluster.add_client("client0")
    for i in range(8):
        assert client.call(op_write(i % 5, b"h%d" % i)) == b"ok"
    cluster.run(1.0)
    stables = {r.last_stable for r in cluster.replicas}
    assert max(stables) >= 8
    # All replicas marked the same checkpoint stable => roots matched.
    roots = {r.state.checkpoint_root(8) for r in cluster.replicas
             if r.state.checkpoint_root(8) is not None}
    assert len(roots) == 1


def test_nondeterministic_timestamps_agreed_not_local():
    """Replicas never read their own clock for the result: reads return
    the primary-proposed, checked timestamp identically everywhere."""
    cluster = build_heterogeneous()
    client = cluster.add_client("client0")
    client.call(op_write(0, b"v"))
    result = client.call(op_read(0))
    value, usec = decanonical(result)
    assert value == b"v"
    assert usec > 0
    # The f+1 matching replies required implies replicas agreed on usec.


def test_timestamps_monotonic_across_writes():
    cluster = build_heterogeneous()
    client = cluster.add_client("client0")
    times = []
    for i in range(5):
        client.call(op_write(1, b"w%d" % i))
        _, usec = decanonical(client.call(op_read(1)))
        times.append(usec)
    assert times == sorted(times)
    assert len(set(times)) == len(times)


def test_state_transfer_across_different_implementations():
    """A lagging replica running implementation B fetches state produced
    by implementation A replicas — the abstraction function bridges them."""
    cluster = build_heterogeneous()
    client = cluster.add_client("client0")
    lagger = cluster.replicas[1]  # runs RegisterWrapperB
    for other in cluster.config.replica_ids:
        if other != lagger.node_id:
            cluster.network.partition(lagger.node_id, other)
    for i in range(8):
        client.call(op_write(i, b"x%d" % i))
    cluster.network.heal_all()
    for i in range(4):
        client.call(op_write(i, b"y%d" % i))
    cluster.run(5.0)
    assert lagger.last_executed >= 8
    # B's concrete state now reflects A-produced abstract objects.
    assert lagger.state.upcalls._dense[5][0] == b"x5"


def test_proactive_recovery_calls_shutdown_and_restart():
    cluster = build_heterogeneous(reboot_delay=0.5)
    client = cluster.add_client("client0")
    for i in range(8):
        client.call(op_write(i % 3, b"r%d" % i))
    cluster.run(1.0)
    victim = cluster.replicas[2]
    victim.recovery.start_recovery()
    cluster.run(15.0)
    assert not victim.recovery.recovering
    assert victim.state.upcalls.restart_count == 1
    rec = victim.recovery.records[-1]
    assert rec.shutdown == pytest.approx(0.01)
    assert rec.restart == pytest.approx(0.01)


def test_recovery_fixes_corrupt_concrete_state_in_wrapper():
    """Abstraction hides the corruption source: recovery repairs B's dense
    array using abstract objects computed by A replicas."""
    cluster = build_heterogeneous(reboot_delay=0.2)
    client = cluster.add_client("client0")
    for i in range(8):
        client.call(op_write(i, b"good%d" % i))
    cluster.run(1.0)
    victim = cluster.replicas[3]  # implementation B
    victim.state.upcalls._dense[2] = (b"ROTTEN", 0.0)
    victim.recovery.start_recovery()
    cluster.run(15.0)
    assert victim.state.upcalls._dense[2][0] == b"good2"


def test_mismatched_factory_count_rejected():
    with pytest.raises(ValueError):
        build_base_cluster([lambda: RegisterWrapperA()] * 3,
                           config=BftConfig(n=4))
