"""Byzantine replica behaviors: safety under arbitrary faults within f."""

from repro.bft.faults import (
    ForgedAuthBehavior,
    MuteBehavior,
    UnauthReplyBehavior,
    WrongReplyBehavior,
)
from repro.bft.statemachine import InMemoryStateManager
from tests.conftest import make_kv_cluster

put = InMemoryStateManager.op_put
get = InMemoryStateManager.op_get


def test_wrong_reply_from_one_replica_outvoted():
    """f=1 lying backup: the client's f+1 vote rejects the bad result."""
    cluster = make_kv_cluster()
    client = cluster.add_client("client0")
    cluster.replicas[2].behavior = WrongReplyBehavior()
    assert client.call(put(0, b"true")) == b"ok"
    assert client.call(get(0)) == b"true"


def test_wrong_reply_from_designated_replica_still_correct():
    """Even when the replica sending the full result lies, the digest
    votes from correct replicas reject it and a retransmission or another
    full reply wins."""
    cluster = make_kv_cluster(client_retry_timeout=0.3)
    client = cluster.add_client("client0")
    for victim in range(4):
        fresh = make_kv_cluster(client_retry_timeout=0.3)
        c = fresh.add_client("client0")
        fresh.replicas[victim].behavior = WrongReplyBehavior()
        assert c.call(put(1, b"v-%d" % victim)) == b"ok"


def test_forged_authenticators_ignored():
    """A replica sending garbage MACs is equivalent to a mute replica."""
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=0.3)
    client = cluster.add_client("client0")
    cluster.replicas[1].behavior = ForgedAuthBehavior()
    assert client.call(put(0, b"x")) == b"ok"
    for r in (cluster.replicas[0], cluster.replicas[2], cluster.replicas[3]):
        assert r.state.values[0] == b"x"


def test_mute_backup_does_not_block_progress():
    cluster = make_kv_cluster()
    client = cluster.add_client("client0")
    cluster.replicas[3].behavior = MuteBehavior()
    for i in range(8):
        assert client.call(put(i, b"m%d" % i)) == b"ok"


def test_two_faults_with_f_one_can_block_liveness_but_not_safety():
    """With 2 mute replicas out of 4 (beyond f=1), requests cannot commit;
    but no wrong result is ever accepted."""
    cluster = make_kv_cluster(client_retry_timeout=0.2,
                              view_change_timeout=0.3)
    client = cluster.add_client("client0")
    cluster.replicas[2].behavior = MuteBehavior()
    cluster.replicas[3].behavior = MuteBehavior()
    box = {}
    client.client.invoke(put(0, b"never"), lambda res: box.update(r=res))
    cluster.run(10.0)
    assert "r" not in box  # no reply quorum, so no acceptance
    # Safety: no correct replica executed it either way is fine; the key
    # assertion is that the client accepted nothing.


def test_byzantine_client_cannot_break_replica_invariants():
    """A client sending malformed ops gets a deterministic error result;
    replicas neither crash nor diverge."""
    cluster = make_kv_cluster()
    client = cluster.add_client("client0")
    client.call(put(0, b"good"))
    result = client.call(b"\x00garbage-op")
    assert result.startswith(b"__error__:")
    # Cluster still serves correct clients identically.
    client2 = cluster.add_client("client1")
    assert client2.call(get(0)) == b"good"
    states = {tuple(r.state.values) for r in cluster.replicas}
    assert len(states) == 1


def test_unauthenticated_replies_cannot_influence_acceptance():
    """Regression for the quorum-vote bug: a replica stripping the MAC
    from its (wrong) replies must be treated as mute, on both the
    ordered f+1 path and the tentative 2f+1 read-only path."""
    cluster = make_kv_cluster(client_retry_timeout=0.3,
                              view_change_timeout=0.5)
    client = cluster.add_client("client0")
    cluster.replicas[1].behavior = UnauthReplyBehavior()
    assert client.call(put(0, b"x")) == b"ok"
    assert client.call(get(0)) == b"x"
    assert client.call(get(0), read_only=True) == b"x"
    for r in (cluster.replicas[0], cluster.replicas[2], cluster.replicas[3]):
        assert r.state.values[0] == b"x"


def test_read_only_with_one_lying_replica():
    """2f+1 tentative quorum: a single liar cannot fool a read."""
    cluster = make_kv_cluster()
    client = cluster.add_client("client0")
    client.call(put(2, b"secret"))
    cluster.replicas[1].behavior = WrongReplyBehavior()
    assert client.call(get(2), read_only=True) == b"secret"
