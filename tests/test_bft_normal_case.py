"""BFT normal-case protocol: ordering, execution, replies, de-duplication."""

import pytest

from repro.bft.statemachine import InMemoryStateManager
from tests.conftest import make_kv_cluster

put = InMemoryStateManager.op_put
get = InMemoryStateManager.op_get


def test_single_write_executes_on_all_replicas(kv_cluster, kv_client):
    result = kv_client.call(put(3, b"hello"))
    assert result == b"ok"
    for replica in kv_cluster.replicas:
        assert replica.state.values[3] == b"hello"
        assert replica.last_executed == 1


def test_read_returns_written_value(kv_cluster, kv_client):
    kv_client.call(put(7, b"value7"))
    assert kv_client.call(get(7)) == b"value7"


def test_sequence_of_writes_all_replicas_agree(kv_cluster, kv_client):
    for i in range(10):
        kv_client.call(put(i, b"v%d" % i))
    states = [tuple(r.state.values) for r in kv_cluster.replicas]
    assert len(set(states)) == 1
    assert states[0][4] == b"v4"


def test_replicas_execute_same_order(kv_cluster, kv_client):
    for i in range(6):
        kv_client.call(put(i % 2, b"x%d" % i))
    histories = [tuple(op for _, _, _, op in r.state.executed_ops)
                 for r in kv_cluster.replicas]
    assert len(set(histories)) == 1


def test_multiple_clients_interleave_consistently(kv_cluster):
    c1 = kv_cluster.add_client("clientA")
    c2 = kv_cluster.add_client("clientB")
    c1.call(put(0, b"a"))
    c2.call(put(1, b"b"))
    c1.call(put(2, b"c"))
    states = [tuple(r.state.values[:3]) for r in kv_cluster.replicas]
    assert set(states) == {(b"a", b"b", b"c")}


def test_client_accepts_with_quorum_of_matching_replies(kv_cluster, kv_client):
    # f=1: acceptance requires f+1=2 matching replies; just verify a normal
    # call accepted and the tracer saw executions at >= quorum replicas.
    kv_client.call(put(0, b"x"))
    executed = {e.source for e in kv_cluster.tracer.find("executed")}
    assert len(executed) >= kv_cluster.config.quorum


def test_read_only_optimization_single_round(kv_cluster, kv_client):
    kv_client.call(put(5, b"ro"))
    kv_cluster.tracer.clear()
    result = kv_client.call(get(5), read_only=True)
    assert result == b"ro"
    # Read-only ops never go through ordering: no pre-prepare was sent.
    assert not kv_cluster.tracer.find("pre_prepare_sent")
    assert len(kv_cluster.tracer.find("read_only_executed")) >= \
        kv_cluster.config.quorum


def test_read_only_disabled_goes_through_ordering():
    cluster = make_kv_cluster(read_only_optimization=False)
    client = cluster.add_client("client0")
    client.call(put(1, b"v"))
    cluster.tracer.clear()
    assert client.call(get(1), read_only=True) == b"v"
    assert cluster.tracer.find("pre_prepare_sent")


def test_request_deduplication_on_retransmit(kv_cluster, kv_client):
    """A retransmitted request must not execute twice."""
    kv_client.call(put(0, b"first"))
    raw = kv_cluster.clients["client0"]
    # Simulate a stale duplicate arriving at the primary.
    from repro.bft.messages import Request
    from repro.crypto.mac import Authenticator
    dup = Request("client0", 1, put(0, b"first"))
    dup.auth = Authenticator.create(kv_cluster.registry, "client0",
                                    kv_cluster.config.replica_ids, dup.body())
    kv_cluster.network.send("client0", kv_cluster.primary.node_id, dup)
    kv_cluster.run(1.0)
    for replica in kv_cluster.replicas:
        writes = [op for _, _, _, op in replica.state.executed_ops
                  if op == put(0, b"first")]
        assert len(writes) == 1


def test_batching_under_load():
    """Multiple clients issuing concurrently get batched into fewer
    pre-prepares than requests."""
    cluster = make_kv_cluster(batch_max=8)
    clients = [cluster.add_client(f"c{i}") for i in range(6)]
    results = {}
    for i, sync in enumerate(clients):
        sync.client.invoke(put(i, b"b%d" % i),
                           lambda res, i=i: results.__setitem__(i, res))
    cluster.run_until(lambda: len(results) == 6)
    assert all(res == b"ok" for res in results.values())
    pps = cluster.tracer.find("pre_prepare_sent")
    total_batched = sum(e.detail["batch"] for e in pps)
    assert total_batched == 6
    assert len(pps) < 6  # at least some batching happened


def test_tentative_reply_digests_only_one_full_result(kv_cluster, kv_client):
    """With the reply optimization, exactly one replica sends the full
    result; the client still accepts."""
    assert kv_cluster.config.tentative_reply_digests
    assert kv_client.call(put(9, b"z")) == b"ok"


def test_client_cannot_issue_concurrent_requests(kv_cluster, kv_client):
    kv_client.client.invoke(put(0, b"a"), lambda res: None)
    with pytest.raises(RuntimeError):
        kv_client.client.invoke(put(1, b"b"), lambda res: None)


def test_many_requests_cross_checkpoint_boundaries(kv_cluster, kv_client):
    """checkpoint_interval=4: 10 requests force two stable checkpoints and
    log truncation."""
    for i in range(10):
        kv_client.call(put(i % 4, b"n%d" % i))
    kv_cluster.run(1.0)
    for replica in kv_cluster.replicas:
        assert replica.last_stable >= 8
        assert all(s > replica.last_stable for s in replica.log.seqs())


def test_empty_op_executes_as_null(kv_cluster, kv_client):
    assert kv_client.call(b"") == b"null"
