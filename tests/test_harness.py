"""Harness utilities: report rendering, complexity counting, micro-benches."""

import math

import pytest

from repro.harness.complexity import (
    complexity_report,
    count_statements,
)
from repro.harness.report import (
    assert_shape,
    format_table,
    overhead_pct,
)
from repro.workloads.microbench import (
    build_kv_cluster,
    concurrent_ops,
    sequential_ops,
)


def test_overhead_pct():
    assert overhead_pct(130, 100) == pytest.approx(30.0)
    assert overhead_pct(100, 100) == 0.0


def test_overhead_pct_broken_baseline_is_nan():
    # A zero/negative baseline is a broken benchmark, not 0% overhead.
    assert math.isnan(overhead_pct(5, 0))
    assert math.isnan(overhead_pct(5, -1))


def test_assert_shape_bands():
    assert_shape("ok", 25, 20, 30)
    with pytest.raises(AssertionError):
        assert_shape("too low", 10, 20, 30)
    with pytest.raises(AssertionError):
        assert_shape("too high", 40, 20, 30)


def test_assert_shape_rejects_nan():
    with pytest.raises(AssertionError, match="NaN"):
        assert_shape("broken baseline", overhead_pct(5, 0), 0, 100)


def test_format_table_alignment():
    table = format_table("Title", ["a", "bb"], [(1, 2.5), ("x", 100.0)])
    lines = table.splitlines()
    assert lines[0] == "Title"
    assert len({len(line) for line in lines[2:4]}) == 1  # header == rule


def test_format_table_empty_rows():
    table = format_table("t", ["a", "b"], [])
    assert isinstance(table, str)
    assert "(no rows)" in table
    assert table.splitlines()[2].startswith("a")


def test_count_statements_ignores_comments_and_blanks():
    source = '''
# a comment

x = 1  # inline comment
def f():
    """Docstring is a statement (expression stmt)."""
    return x
'''
    # x=1, def, docstring-expr, return -> 4
    assert count_statements(source) == 4


def test_complexity_report_covers_all_components():
    rows = {row.component: row.statements for row in complexity_report()}
    assert rows["BFT library"] > rows["BASE library"]
    assert all(count > 0 for count in rows.values())
    assert "NFS conformance wrapper" in rows
    assert "wrapped Thor implementation" in rows


def test_sequential_microbench_counts():
    cluster = build_kv_cluster()
    result = sequential_ops(cluster, 10, "t")
    assert result.operations == 10
    assert result.messages > 10  # protocol amplification
    assert result.latency > 0
    assert result.throughput > 0


def test_concurrent_microbench_completes_all():
    cluster = build_kv_cluster()
    result = concurrent_ops(cluster, clients=4, per_client=5, label="t")
    assert result.operations == 20
    # All 20 writes actually executed on the replicas.
    executed = [len([op for _, _, _, op in r.state.executed_ops if op])
                for r in cluster.replicas]
    assert max(executed) >= 20


def test_read_only_microbench_uses_fewer_messages():
    writes = sequential_ops(build_kv_cluster(), 20, "w")
    reads = sequential_ops(build_kv_cluster(), 20, "r", read_only=True)
    assert reads.messages < writes.messages
    assert reads.latency < writes.latency
