from repro.sim.node import Node


class Replica(Node):
    def handle_ping(self, src, msg):
        self.log(msg)

    def log(self, msg):
        return msg
