class Message:
    kind = "message"

    def __init__(self, body=()):
        self.payload = body


class Ping(Message):
    kind = "ping"
