from repro.base.state import AbstractStateManager
from repro.bft.messages import Ping
from repro.sim.node import Node


class Batcher:
    def __init__(self):
        self.pending = set()

    def drain(self):
        out = []
        # protolint: disable=RPL-SETITER deliberate bad input for the deep taint pass
        for item in self.pending:
            out.append(item)
        return out


def to_wire(batcher):
    items = batcher.drain()
    return Ping(tuple(items))


class Applier(Node):
    def __init__(self):
        self.state = AbstractStateManager()
        self.dirty = set()

    def handle_ping(self, src, msg):
        index = self.dirty.pop()
        self.charge(1)
        self.state.modify(index)
