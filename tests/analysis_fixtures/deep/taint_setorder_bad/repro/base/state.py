class AbstractStateManager:
    def modify(self, index):
        return index
