from repro.sim.node import Node


class Replica(Node):
    def handle_ping(self, src, msg):
        self.charge(1)
        return msg


class Client:
    def handle_pong(self, src, msg):
        return msg
