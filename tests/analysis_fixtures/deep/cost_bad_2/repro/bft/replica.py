from repro.sim.node import Node


class Replica(Node):
    def handle_ping(self, src, msg):
        self.auth(msg)

    def handle_pong(self, src, msg):
        self.note(msg)

    def auth(self, msg):
        self.charge(1)
        return msg

    def note(self, msg):
        return msg
