class Message:
    kind = "message"


class Ping(Message):
    kind = "ping"


class Pong(Message):
    kind = "pong"
