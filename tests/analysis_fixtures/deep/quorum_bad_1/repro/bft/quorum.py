class Tally:
    def __init__(self, config):
        self.config = config
        self.votes = {}

    def prepared(self):
        return len(self.votes) >= 2 * self.config.f + 1

    def weak(self):
        return len(self.votes) >= self.config.f + 1
