def prepared(votes, config):
    return len(votes) >= config.quorum


def weak(votes, config):
    return len(votes) >= config.weak_quorum
