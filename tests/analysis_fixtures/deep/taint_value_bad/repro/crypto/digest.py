def digest(blob):
    return blob[:8]
