class Message:
    kind = "message"

    def __init__(self, body=()):
        self.payload = body


class Tagged(Message):
    kind = "tagged"
