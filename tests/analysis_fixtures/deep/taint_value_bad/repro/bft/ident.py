from repro.bft.messages import Tagged
from repro.crypto.digest import digest


def fingerprint(obj):
    return digest(bytes([hash(obj) % 251]))


def tag_message(obj):
    # protolint: disable=RPL-IDKEY deliberate bad input for the deep taint pass
    return Tagged((id(obj),))
