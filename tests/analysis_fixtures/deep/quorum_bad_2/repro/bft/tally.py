def committed(votes):
    return len(votes) >= 3


def weak(votes, f):
    return len(votes) >= f + 1
