class Message:
    kind = "message"


class Ping(Message):
    kind = "ping"
