from repro.sim.node import Node


class Replica(Node):
    def handle_ping(self, src, msg):
        self.auth(msg)

    def auth(self, msg):
        self.verify(msg)
        return msg

    def verify(self, msg):
        self.charge(len(msg))
