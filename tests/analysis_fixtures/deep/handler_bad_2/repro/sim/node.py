class Node:
    def charge(self, units):
        return units
