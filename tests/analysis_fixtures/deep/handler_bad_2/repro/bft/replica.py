from repro.sim.node import Node


class Replica(Node):
    def handle_ping(self, src, msg):
        self.charge(1)
        return msg

    def handle_zap(self, src, msg):
        self.charge(1)
        return msg
