class Message:
    kind = "message"


class Ping(Message):
    kind = "ping"


class Query(Message):
    kind = "query"
