def canonical(value):
    return repr(value).encode()
