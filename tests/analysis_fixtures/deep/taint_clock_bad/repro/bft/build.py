import time

from repro.encoding.canonical import canonical


def now_ts():
    # protolint: disable=DET-CLOCK deliberate bad input for the deep taint pass
    return time.time()


def build_payload(seq):
    ts = now_ts()
    return canonical((seq, ts))
