import time

from repro.encoding.canonical import canonical


class Batcher:
    def __init__(self):
        self.pending = set()

    def drain(self):
        return sorted(self.pending)


def build(batcher):
    items = batcher.drain()
    # protolint: disable=DET-CLOCK sanitized below; exercises the len() sanitizer
    elapsed = time.time()
    return canonical((items, len(str(elapsed))))
