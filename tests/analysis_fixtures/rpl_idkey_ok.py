"""RPL-IDKEY fixture (clean): stable identity via the object or a name."""


def register(table, resource, counter):
    if resource not in table:
        table[resource] = next(counter)
    return table[resource]
