"""SIM-BLOCK fixture (clean): waiting is a scheduled simulator event."""


def wait(scheduler, seconds, callback):
    scheduler.call_later(seconds, callback)
