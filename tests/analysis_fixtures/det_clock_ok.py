"""DET-CLOCK fixture (clean): time comes from the simulator clock."""


def stamp(scheduler):
    started = scheduler.now
    deadline = started + 0.25
    return started, deadline
