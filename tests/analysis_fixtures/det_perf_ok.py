"""DET-PERF fixture (clean): durations come from simulated time."""


def measure(scheduler, run):
    t0 = scheduler.now
    run()
    return scheduler.now - t0
