"""WIRE-FLOAT fixture: wire-hostile values in payload construction."""


class Probe:
    kind = "probe"

    def __init__(self, view, delay):
        self.view = view
        self.delay = delay

    def _fields(self):
        return (self.view, 0.5, float(self.delay))


def encode(canonical, view):
    return canonical(("probe", view, 1.25, {"retries": 3}, {1, 2}))
