"""SIM-IO fixture (clean): replica state lives in memory."""


def persist(store, state):
    store["snapshot"] = bytes(state)
    return store["snapshot"]
