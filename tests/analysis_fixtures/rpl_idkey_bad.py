"""RPL-IDKEY fixture: memory addresses used as identity."""


def register(table, resource, counter):
    key = id(resource)
    if key not in table:
        table[key] = next(counter)
    return table[key]
