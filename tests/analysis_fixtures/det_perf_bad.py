"""DET-PERF fixture: perf_counter outside the reporting allowlist.

The per-rule test checks this file twice: under a protocol path it must
fire, under an allowlisted reporting path (sim/metrics.py) it must not.
"""

import time


def measure(run):
    t0 = time.perf_counter()
    run()
    return time.perf_counter() - t0
