"""WIRE-EXCEPT fixture: handlers that hide failure."""


def on_prepare(replica, msg):
    try:
        replica.handle(msg)
    except:  # noqa: E722
        return None


def on_commit(replica, msg):
    try:
        replica.commit(msg)
    except ValueError:
        pass
