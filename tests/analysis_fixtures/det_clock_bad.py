"""DET-CLOCK fixture: wall-clock and entropy reads."""

import datetime
import os
import time
import uuid


def stamp():
    a = time.time()
    b = time.monotonic()
    c = datetime.datetime.now()
    d = uuid.uuid4()
    e = os.urandom(4)
    return a, b, c, d, e
