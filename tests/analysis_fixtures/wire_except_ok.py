"""WIRE-EXCEPT fixture (clean): narrow catches that act or re-raise."""


def on_prepare(replica, msg, log):
    try:
        replica.handle(msg)
    except ValueError as err:
        log.warn("rejected prepare", error=str(err))
        raise
