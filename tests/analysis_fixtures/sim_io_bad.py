"""SIM-IO fixture: real file I/O inside protocol code."""


def persist(path, state, log_path):
    with open(path, "wb") as fh:
        fh.write(state)
    return log_path.read_text()
