"""RPL-MUTDEF fixture: defaults allocated once and shared forever."""


def enqueue(item, queue=[]):
    queue.append(item)
    return queue


def configure(name, options={}, *, tags=set()):
    options[name] = tags
    return options


collect = lambda acc=list(): acc  # noqa: E731
