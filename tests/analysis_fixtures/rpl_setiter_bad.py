"""RPL-SETITER fixture: hash-ordered iteration that escapes."""

from typing import Set


class Tracker:
    def __init__(self):
        self.pending: Set[int] = set()
        self.done = {10, 20}

    def flush(self, emit):
        for index in self.pending:
            emit(index)
        ordered = list(self.done)
        pairs = [(i, i * 2) for i in self.pending | self.done]
        direct = tuple({1, 2, 3})
        return ordered, pairs, direct
