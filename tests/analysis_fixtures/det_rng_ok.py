"""DET-RNG fixture (clean): all randomness is explicitly seeded."""

import random


def draw(options, seed):
    rng = random.Random(seed)
    first = rng.choice(options)
    other = random.Random(seed + 1).randint(0, 7)
    return first, other
