"""WIRE-FLOAT fixture (clean): payloads are ints/strs/bytes/tuples.

Fixed-point integers carry fractional quantities across the wire.
"""


class Probe:
    kind = "probe"

    def __init__(self, view, delay_micros):
        self.view = view
        self.delay_micros = delay_micros

    def _fields(self):
        return (self.view, self.delay_micros, b"payload")


def encode(canonical, view):
    return canonical(("probe", view, 1250, (("retries", 3),)))
