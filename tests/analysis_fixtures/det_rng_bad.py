"""DET-RNG fixture: every statement here consults unseeded randomness."""

import random
import secrets
from random import choice  # noqa: F401  (flagged: binds the global RNG)


def draw(options):
    first = random.choice(options)
    rng = random.Random()
    token = secrets.token_bytes(8)
    return first, rng, token
