"""RPL-MUTDEF fixture (clean): None defaults, allocation per call."""


def enqueue(item, queue=None):
    queue = [] if queue is None else queue
    queue.append(item)
    return queue


def configure(name, options=None, *, tags=()):
    options = {} if options is None else options
    options[name] = tags
    return options
