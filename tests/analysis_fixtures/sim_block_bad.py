"""SIM-BLOCK fixture: real concurrency and blocking sleeps."""

import socket  # noqa: F401
import threading  # noqa: F401
import time
from subprocess import run  # noqa: F401


def wait(seconds):
    time.sleep(seconds)
