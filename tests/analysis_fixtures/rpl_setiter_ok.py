"""RPL-SETITER fixture (clean): sets are sorted before order escapes.

Set-to-set transforms (set comprehensions, membership, len) are fine —
no ordering can leak from them.
"""

from typing import Set


class Tracker:
    def __init__(self):
        self.pending: Set[int] = set()
        self.done = {10, 20}

    def flush(self, emit):
        for index in sorted(self.pending):
            emit(index)
        ordered = sorted(self.done)
        parents = {i // 4 for i in self.pending}  # set -> set: order-free
        count = len(self.done)
        present = 10 in self.done
        rows = [row for row in [[1], [2]]]  # list iteration: ordered
        return ordered, parents, count, present, rows
