"""State transfer: catching up out-of-date replicas, repairing corruption."""

from repro.bft.costs import CostModel
from repro.bft.messages import FetchCert, FetchTable
from repro.bft.statemachine import InMemoryStateManager
from tests.conftest import make_kv_cluster

put = InMemoryStateManager.op_put
get = InMemoryStateManager.op_get


def run_writes(cluster, client, count, start=0):
    for i in range(count):
        client.call(put((start + i) % 16, b"w%d" % (start + i)))


def test_lagging_replica_catches_up_via_state_transfer():
    cluster = make_kv_cluster(checkpoint_interval=4)
    client = cluster.add_client("client0")
    lagger = cluster.replicas[3]
    # Disconnect replica 3 (n=4 still has 2f+1=3 live).
    for other in cluster.config.replica_ids:
        if other != lagger.node_id:
            cluster.network.partition(lagger.node_id, other)
    run_writes(cluster, client, 12)
    assert lagger.last_executed == 0
    cluster.network.heal_all()
    # More traffic delivers checkpoint messages; the lagger transfers.
    run_writes(cluster, client, 4, start=12)
    cluster.run(5.0)
    assert lagger.last_executed >= 12
    reference = cluster.replicas[0]
    assert lagger.state.values == reference.state.values
    assert cluster.tracer.find("transfer_complete", source=lagger.node_id)


def test_transfer_fetches_only_changed_objects():
    """Hierarchical transfer: a lagger missing writes to 3 slots fetches
    only those objects, not the whole array."""
    cluster = make_kv_cluster(checkpoint_interval=4, size=64)
    client = cluster.add_client("client0")
    run_writes(cluster, client, 4)  # everyone at checkpoint 4
    cluster.run(1.0)
    lagger = cluster.replicas[3]
    for other in cluster.config.replica_ids:
        if other != lagger.node_id:
            cluster.network.partition(lagger.node_id, other)
    # Writes touch only slots 0..2.
    for i in range(8):
        client.call(put(i % 3, b"only%d" % i))
    cluster.network.heal_all()
    for i in range(4):
        client.call(put(i % 3, b"more%d" % i))
    cluster.run(5.0)
    assert lagger.state.values == cluster.replicas[0].state.values
    assert 0 < lagger.transfer.objects_fetched_total <= 6


def test_corrupt_replica_detected_and_repaired():
    """A replica whose concrete state silently corrupts diverges at its
    next checkpoint and repairs itself from the others."""
    cluster = make_kv_cluster(checkpoint_interval=4)
    client = cluster.add_client("client0")
    run_writes(cluster, client, 2)
    victim = cluster.replicas[2]
    victim.state.values[0] = b"CORRUPTED"
    victim.state.mark_all_dirty()
    run_writes(cluster, client, 6, start=2)
    cluster.run(5.0)
    assert victim.state.values == cluster.replicas[0].state.values
    assert b"CORRUPTED" not in victim.state.values


def test_transfer_survives_lying_donor():
    """A Byzantine donor sending garbage objects cannot corrupt the
    fetcher: digests fail, the donor is rotated, transfer completes."""
    cluster = make_kv_cluster(checkpoint_interval=4)
    client = cluster.add_client("client0")
    lagger = cluster.replicas[3]
    for other in cluster.config.replica_ids:
        if other != lagger.node_id:
            cluster.network.partition(lagger.node_id, other)
    run_writes(cluster, client, 8)
    cluster.network.heal_all()

    # First donor the lagger will ask is replicas[0]; make it lie.
    from repro.bft.messages import ObjectReply

    def corrupt_object_replies(src, dst, msg):
        if (src == cluster.replicas[0].node_id and dst == lagger.node_id
                and getattr(msg, "kind", "") == "object_reply"):
            msg.value = b"LIES" + msg.value
        return True

    cluster.network.add_filter(corrupt_object_replies)
    run_writes(cluster, client, 4, start=8)
    cluster.run(10.0)
    assert lagger.state.values == cluster.replicas[1].state.values
    assert b"LIES" not in b"".join(v for v in lagger.state.values)
    assert cluster.tracer.find("transfer_bad_object")
    assert cluster.tracer.find("transfer_donor_switch")


def test_client_reply_cache_transfers_with_state():
    """After transfer, the lagger's reply cache matches, so duplicate
    requests are not re-executed by recovered replicas."""
    cluster = make_kv_cluster(checkpoint_interval=4)
    client = cluster.add_client("client0")
    lagger = cluster.replicas[3]
    for other in cluster.config.replica_ids:
        if other != lagger.node_id:
            cluster.network.partition(lagger.node_id, other)
    run_writes(cluster, client, 8)
    cluster.network.heal_all()
    run_writes(cluster, client, 4, start=8)
    cluster.run(5.0)
    assert lagger.client_table.get("client0") is not None
    ref = cluster.replicas[0]
    assert lagger.client_table["client0"][0] == ref.client_table["client0"][0]


def test_meta_walk_prunes_matching_partitions():
    """The fetcher never fetches metadata for subtrees whose digests match."""
    cluster = make_kv_cluster(checkpoint_interval=4, size=64)
    client = cluster.add_client("client0")
    run_writes(cluster, client, 4)
    cluster.run(1.0)
    lagger = cluster.replicas[3]
    for other in cluster.config.replica_ids:
        if other != lagger.node_id:
            cluster.network.partition(lagger.node_id, other)
    for i in range(4):
        client.call(put(0, b"solo%d" % i))
    cluster.network.heal_all()
    before = cluster.network.messages_sent
    for i in range(4):
        client.call(put(0, b"post%d" % i))
    cluster.run(5.0)
    assert lagger.state.values == cluster.replicas[0].state.values
    # Only one object changed; at most a handful of fetches happened.
    assert lagger.transfer.objects_fetched_total <= 2


def test_serving_cert_and_table_charges_cpu():
    """A donor pays simulated CPU for every transfer reply it serves —
    including the certificate and reply-cache paths, so a replica
    bombarded with fetches cannot do free work (regression: these two
    handlers used to skip ``charge``, found by DEEP-COST)."""
    cluster = make_kv_cluster(checkpoint_interval=4)
    client = cluster.add_client("client0")
    run_writes(cluster, client, 8)
    cluster.run(1.0)
    donor = cluster.replicas[0]
    assert donor.stable_cert, "need a stable checkpoint to serve"
    seq = donor.last_stable
    assert seq in donor.table_checkpoints
    # The default test cost model is free; give digests a price so an
    # uncharged serving path shows up as zero CPU.
    donor.costs = CostModel(digest_fixed=1e-4, digest_per_byte=1e-7)
    before = donor.busy_until
    donor.transfer.on_fetch_cert("replica1", FetchCert("replica1", 1))
    after_cert = donor.busy_until
    assert after_cert > before
    donor.transfer.on_fetch_table("replica1", FetchTable("replica1", seq))
    assert donor.busy_until > after_cert
