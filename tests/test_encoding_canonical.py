"""Property tests for the canonical tuple encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.encoding.canonical import canonical, decanonical
from repro.errors import EncodingError

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10 ** 30), max_value=10 ** 30),
    st.binary(max_size=100),
    st.text(max_size=50),
)
values = st.recursive(scalars,
                      lambda children: st.lists(children, max_size=6)
                      .map(tuple),
                      max_leaves=25)


def normalize(value):
    if isinstance(value, list):
        return tuple(normalize(v) for v in value)
    if isinstance(value, tuple):
        return tuple(normalize(v) for v in value)
    return value


@given(values)
def test_roundtrip(value):
    assert decanonical(canonical(value)) == normalize(value)


@given(values, values)
def test_injective(a, b):
    if normalize(a) != normalize(b):
        assert canonical(a) != canonical(b)


@given(values)
def test_deterministic(value):
    assert canonical(value) == canonical(value)


def test_type_tags_distinguish_lookalikes():
    assert canonical(0) != canonical(False)
    assert canonical(1) != canonical(True)
    assert canonical(b"x") != canonical("x")
    assert canonical(()) != canonical(None)
    assert canonical((1,)) != canonical(1)


def test_unencodable_type_rejected():
    with pytest.raises(EncodingError):
        canonical({"dict": 1})
    with pytest.raises(EncodingError):
        canonical(object())


def test_trailing_bytes_rejected():
    blob = canonical(42) + b"\x00"
    with pytest.raises(EncodingError):
        decanonical(blob)


def test_truncation_rejected():
    blob = canonical((1, 2, 3))
    with pytest.raises(EncodingError):
        decanonical(blob[:-2])


def test_unknown_tag_rejected():
    with pytest.raises(EncodingError):
        decanonical(b"Z")


def test_large_int_roundtrip():
    huge = 2 ** 200
    assert decanonical(canonical(huge)) == huge
    assert decanonical(canonical(-huge)) == -huge


def test_float_roundtrip():
    assert decanonical(canonical(3.14159)) == 3.14159
