"""FaultPlan DSL: value semantics, serialization, and validation."""

import pytest

from repro.faultlab.plan import (
    BackendFault,
    CrashFault,
    DelaySpikeFault,
    EdgePartitionFault,
    FaultPlan,
    LossFault,
    PartitionFault,
    RecoveryFault,
    ReplicaFault,
)


def full_plan():
    return FaultPlan((
        ReplicaFault(1, "wrong_reply", start=1.0, stop=5.0),
        ReplicaFault(0, "delay", params={"delay": 0.02, "kinds": ["commit"]}),
        PartitionFault((3, 2), start=2.0, stop=4.0),
        LossFault(0.1, start=0.5, stop=3.0),
        DelaySpikeFault(0.05, start=1.0, stop=2.0),
        CrashFault(2, start=1.0, stop=6.0),
        RecoveryFault(3, start=4.0),
        BackendFault(1, "corrupting", params={"probability": 1.0, "seed": 7},
                     start=0.0, stop=8.0),
        EdgePartitionFault(start=2.5, stop=3.5),
    ))


def test_json_round_trip_covers_every_fault_kind():
    plan = full_plan()
    assert {f.kind for f in plan} == {
        "replica", "partition", "loss", "delay_spike",
        "crash", "recovery", "backend", "edge_partition"}
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_without_is_strictly_smaller_and_order_preserving():
    plan = full_plan()
    smaller = plan.without(2)
    assert len(smaller) == len(plan) - 1
    assert smaller.faults == plan.faults[:2] + plan.faults[3:]
    assert plan == full_plan()  # immutable: original untouched


def test_byzantine_replicas_covers_lying_faults_only():
    plan = full_plan()
    # wrong_reply on 1, delay on 0, corrupting backend on 1 — crash,
    # partition, and recovery victims stay correct.
    assert plan.byzantine_replicas() == (0, 1)
    assert FaultPlan((CrashFault(2),)).byzantine_replicas() == ()


def test_validation_rejects_bad_terms():
    with pytest.raises(ValueError):
        ReplicaFault(1, "segfault")
    with pytest.raises(ValueError):
        BackendFault(1, "bitsquatting")
    with pytest.raises(ValueError):
        LossFault(1.0)
    with pytest.raises(ValueError):
        LossFault(-0.1)
    with pytest.raises(ValueError):
        DelaySpikeFault(0.0)
    with pytest.raises(ValueError):
        PartitionFault(())
    with pytest.raises(ValueError):
        FaultPlan.from_dict({"faults": [{"kind": "gremlin"}]})


def test_params_normalize_to_one_hashable_identity():
    by_dict = ReplicaFault(1, "delay", params={"delay": 0.05, "kinds": None})
    by_pairs = ReplicaFault(1, "delay",
                            params=(("kinds", None), ("delay", 0.05)))
    assert by_dict == by_pairs
    assert hash(by_dict) == hash(by_pairs)
    assert by_dict.params == (("delay", 0.05), ("kinds", None))


def test_partition_group_is_sorted_and_deduplicated():
    fault = PartitionFault((2, 0, 2))
    assert fault.replicas == (0, 2)


def test_describe_is_stable_and_covers_windows():
    plan = FaultPlan((
        ReplicaFault(1, "mute"),
        LossFault(0.1, start=0.5, stop=3.0),
        RecoveryFault(3, start=4.0),
    ))
    assert plan.describe() == ("replica1:mute + loss(0.1)@[0.5,3)s"
                               " + recovery[replica3]@4s")
    assert FaultPlan().describe() == "fault-free"
