"""Open-loop traffic engine: seeded arrivals, SLO accounting, the sweep.

The engine's contract has three legs, each pinned here:

- **Determinism**: the same seed produces the same arrival sequence and
  the same load-latency curve, bit for bit (the perf harness asserts
  this too, but the regression belongs in tier-1);
- **Honest SLOs**: timeouts, shed requests, and service errors all count
  *against* attainment — the engine must never survey only the requests
  that happened to finish;
- **Aggregation**: a million logical users cost O(active requests)
  through a small protocol-client pool.
"""

import random

import pytest

from benchmarks.perf.harness import _validate_open_loop
from repro.bft.config import BftConfig
from repro.bft.statemachine import InMemoryStateManager
from repro.harness import costs as C
from repro.harness.cluster import build_cluster
from repro.workloads.openloop import (
    OpenLoopDriver,
    PROCESSES,
    RequestClass,
    default_kv_classes,
    make_process,
    run_load_point,
    walk_to_knee,
)


def lan_cluster(seed=0, **cfg_kwargs):
    """A cluster with realistic link latency and CPU costs, so offered
    load actually queues (a zero-cost cluster has no knee to find)."""
    config = BftConfig(**cfg_kwargs)
    return build_cluster(lambda i: InMemoryStateManager(size=64),
                         config=config,
                         network_config=C.lan_network(seed),
                         costs=C.PROTOCOL_COSTS, seed=seed)


# -- arrival processes --------------------------------------------------------


@pytest.mark.parametrize("name", sorted(PROCESSES))
def test_arrival_processes_are_seeded_and_monotone(name):
    def draw(seed):
        proc = make_process(name, 200.0, random.Random(f"arr:{seed}"))
        times, t = [], 0.0
        for _ in range(400):
            t = proc.next_after(t)
            times.append(t)
        return times

    first, second = draw(7), draw(7)
    assert first == second                      # bit-identical per seed
    assert all(b > a for a, b in zip(first, first[1:]))
    assert draw(8) != first                     # seed actually matters


def test_poisson_long_run_rate_matches():
    proc = make_process("poisson", 50.0, random.Random("rate-check"))
    t = 0.0
    for _ in range(5000):
        t = proc.next_after(t)
    assert t * 50.0 / 5000 == pytest.approx(1.0, rel=0.1)


def test_onoff_is_bursty_but_keeps_the_long_run_mean():
    proc = make_process("onoff", 100.0, random.Random("bursty"),
                        on_fraction=0.25)
    times, t = [], 0.0
    for _ in range(20_000):
        t = proc.next_after(t)
        times.append(t)
    # Long-run mean within a loose band (heavy-tailed periods converge
    # slowly; the draw is seeded, so this is a fixed number, not flake).
    assert 0.5 < (len(times) / times[-1]) / 100.0 < 2.0
    # Burstiness: within-burst gaps are ~1/burst_rate, so the median gap
    # must sit well below the 1/mean_rate a Poisson stream would show.
    gaps = sorted(b - a for a, b in zip(times, times[1:]))
    assert gaps[len(gaps) // 2] < 0.5 / 100.0


def test_diurnal_intensity_oscillates_around_the_mean():
    proc = make_process("diurnal", 100.0, random.Random("diurnal"),
                        period=10.0, peak_to_trough=4.0)
    assert proc.rate_at(2.5) > 100.0 > proc.rate_at(7.5)
    assert proc.rate_at(2.5) / proc.rate_at(7.5) == pytest.approx(4.0)


def test_make_process_rejects_unknowns_and_bad_parameters():
    rng = random.Random(0)
    with pytest.raises(KeyError):
        make_process("lognormal", 10.0, rng)
    with pytest.raises(ValueError):
        make_process("poisson", 0.0, rng)
    with pytest.raises(ValueError):
        make_process("onoff", 10.0, rng, on_fraction=0.0)
    with pytest.raises(ValueError):
        make_process("diurnal", 10.0, rng, peak_to_trough=0.5)


# -- the aggregated population driver -----------------------------------------


def _drive(cluster, seed=0, rate=300.0, duration=0.4, **kwargs):
    proc = make_process("poisson", rate,
                        random.Random(f"openloop-test:{seed}"))
    driver = OpenLoopDriver(cluster, proc, default_kv_classes(),
                            seed=seed, **kwargs)
    assert driver.drive(duration)
    return driver


def test_same_seed_gives_identical_arrivals_and_summary():
    a = _drive(lan_cluster(seed=0), seed=3, record_arrivals=True)
    b = _drive(lan_cluster(seed=0), seed=3, record_arrivals=True)
    assert a.arrival_log == b.arrival_log
    assert a.arrival_log                      # the run was not empty
    assert a.summary() == b.summary()
    c = _drive(lan_cluster(seed=0), seed=4, record_arrivals=True)
    assert c.arrival_log != a.arrival_log


def test_pool_multiplexes_many_logical_users():
    cluster = lan_cluster()
    driver = _drive(cluster, pool_size=8, n_users=1_000_000)
    assert driver.offered > 8                 # more sessions than clients
    assert driver.completed == driver.offered
    assert driver.shed == 0 and driver.timed_out == 0
    assert driver.attainment == 1.0
    # O(active requests), not O(users): only the pool exists.
    assert len(cluster.clients) == 8


def test_queue_overflow_sheds_and_counts_against_slo():
    driver = _drive(lan_cluster(), rate=3000.0, duration=0.1,
                    pool_size=1, queue_limit=2)
    assert driver.shed > 0
    assert driver.resolved == driver.offered  # every arrival accounted
    assert driver.attainment < 1.0
    summary = driver.summary()
    assert summary["shed"] == driver.shed
    shed_by_class = sum(s.shed for s in driver.stats.values())
    assert shed_by_class == driver.shed


def test_timeouts_count_against_slo_and_censor_latency():
    cluster = lan_cluster()
    cluster.network.add_filter(
        lambda src, dst, msg: not str(src).startswith("openloop-"))
    driver = _drive(cluster, rate=200.0, duration=0.2)
    assert driver.offered > 0
    assert driver.timed_out == driver.offered  # nothing ever completed
    assert driver.attainment == 0.0
    # Censored observations: the recorded p95 is the timeout cap, not a
    # survivors-only figure.
    timeout = default_kv_classes()[0].timeout
    assert driver.latency_percentile(95) == pytest.approx(timeout)


def test_service_errors_count_against_slo():
    classes = [RequestClass("bad", 1.0,
                            lambda rng, user: (b"\x00garbage-op", False),
                            slo_p95=0.05, timeout=0.4)]
    cluster = lan_cluster()
    proc = make_process("poisson", 200.0, random.Random("errs"))
    driver = OpenLoopDriver(cluster, proc, classes, seed=0)
    assert driver.drive(0.2)
    assert driver.completed == driver.offered  # replies did arrive ...
    assert driver.errors == driver.offered     # ... but all were errors
    assert driver.attainment == 0.0            # and none count as met


# -- the load-sweep controller ------------------------------------------------


def test_run_load_point_is_deterministic():
    kwargs = dict(rate=400.0, duration=0.3, seed=5, pool_size=8)
    first, _ = run_load_point(lan_cluster, **kwargs)
    second, _ = run_load_point(lan_cluster, **kwargs)
    assert first.as_dict() == second.as_dict()
    assert first.completed > 0


def test_walk_to_knee_produces_a_monotone_curve_with_a_knee():
    curve = walk_to_knee(lan_cluster, start_rate=400.0, duration=0.25,
                         seed=0, factor=8.0, max_points=3, refine=1,
                         pool_size=2, queue_limit=4)
    rates = [p.offered_rate for p in curve.points]
    assert rates == sorted(rates) and len(set(rates)) == len(rates)
    assert any(p.sustainable for p in curve.points)
    assert any(not p.sustainable for p in curve.points)
    knee = curve.knee
    assert knee is not None and knee.sustainable
    assert knee.offered_rate == max(p.offered_rate for p in curve.points
                                    if p.sustainable)
    assert curve.max_sustainable_rate == knee.achieved_rate > 0
    # The serialized curve round-trips through the BENCH schema check.
    doc = curve.as_dict()
    _validate_open_loop({
        "seed": 0,
        "arrival_process": "poisson",
        "slo_p95_seconds": doc["slo_p95"],
        "target_attainment": doc["target_attainment"],
        "max_sustainable_req_s": doc["max_sustainable_req_s"],
        "knee_offered_req_s": doc["knee_offered_req_s"],
        "curve": doc["points"],
    })


def test_validate_open_loop_rejects_a_non_monotone_sweep():
    def point(rate, sustainable):
        return {"offered_rate": rate, "duration": 0.5, "offered": 10,
                "completed": 10, "timed_out": 0, "shed": 0, "errors": 0,
                "achieved_rate": rate, "p95": 0.001,
                "attainment": 1.0 if sustainable else 0.5,
                "sustainable": sustainable}

    def doc(curve):
        return {"seed": 0, "arrival_process": "poisson",
                "slo_p95": 0.005, "target_attainment": 0.95,
                "slo_p95_seconds": 0.005,
                "max_sustainable_req_s": max(
                    (p["achieved_rate"] for p in curve if p["sustainable"]),
                    default=0.0),
                "knee_offered_req_s": 100.0, "curve": curve}

    _validate_open_loop(doc([point(100.0, True), point(200.0, False)]))
    with pytest.raises(ValueError, match="monotone"):
        _validate_open_loop(doc([point(200.0, False), point(100.0, True)]))
    with pytest.raises(ValueError, match="knee"):
        _validate_open_loop(doc([point(100.0, True), point(200.0, True)]))
    with pytest.raises(ValueError, match="sustainable"):
        _validate_open_loop(doc([point(100.0, False), point(200.0, False)]))
