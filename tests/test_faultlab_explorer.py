"""Explorer: deterministic trials, shrinking, reports, and injector
integration with the tracer/metrics observability layer."""

import pytest

from repro.bft.faults import HONEST
from repro.bft.statemachine import InMemoryStateManager
from repro.faultlab import report as reportlib
from repro.faultlab.explorer import replay_trial, run_trial, shrink, sweep
from repro.faultlab.injector import FaultInjector
from repro.faultlab.plan import (
    DelaySpikeFault,
    FaultPlan,
    LossFault,
    ReplicaFault,
)
from tests.conftest import make_kv_cluster

put = InMemoryStateManager.op_put


def test_same_seed_reruns_are_bit_identical():
    a = run_trial("byzantine_backup", 3)
    b = run_trial("byzantine_backup", 3)
    assert a.plan.describe() == b.plan.describe()
    assert a.violation_keys() == b.violation_keys()
    assert (a.issued, a.accepted, a.sim_seconds) == \
        (b.issued, b.accepted, b.sim_seconds)


def test_different_seeds_draw_different_plans():
    plans = {run_trial("byzantine_backup", s).plan.describe()
             for s in range(4)}
    assert len(plans) > 1


def test_shrink_finds_the_minimal_failing_plan_and_replay_reproduces_it():
    """ACCEPTANCE: a bloated failing plan shrinks to a strictly smaller
    plan that still fails, and replaying it reproduces the violation."""
    bloated = FaultPlan((
        ReplicaFault(1, "wrong_reply"),
        ReplicaFault(2, "wrong_reply"),
        LossFault(0.05, start=0.0, stop=5.0),
        DelaySpikeFault(0.02, start=1.0, stop=3.0),
    ))
    original = run_trial("beyond_f_wrong_reply", 0, plan=bloated)
    assert not original.ok

    result = shrink("beyond_f_wrong_reply", 0, bloated,
                    violations=original.violations)
    assert result.shrunk
    assert len(result.plan) < len(bloated)
    # The colluding pair is the actual cause; the chaff shrinks away.
    assert {f.describe() for f in result.plan} == \
        {"replica1:wrong_reply", "replica2:wrong_reply"}

    replayed = replay_trial("beyond_f_wrong_reply", 0, plan=result.plan)
    assert not replayed.ok
    assert replayed.violation_keys() == sorted(v.key for v in result.violations)


def test_shrink_refuses_a_passing_plan():
    with pytest.raises(ValueError):
        shrink("byzantine_backup", 0, FaultPlan())


def test_trial_report_validates_and_rejects_corruption():
    result = run_trial("byzantine_backup", 1)
    report = reportlib.trial_report(result)
    reportlib.validate_trial_report(report)

    report["ok"] = not report["ok"]
    with pytest.raises(ValueError):
        reportlib.validate_trial_report(report)


def test_small_sweep_counts_and_report():
    result = sweep(scenarios=["byzantine_backup"], n_seeds=2)
    assert result.ok
    assert result.trials == 2
    assert result.issued > 0 and result.accepted > 0
    report = reportlib.sweep_report(result, "custom")
    reportlib.validate_sweep_report(report)
    assert report["per_scenario"]["byzantine_backup"]["trials"] == 2

    report["mode"] = "leisurely"
    with pytest.raises(ValueError):
        reportlib.validate_sweep_report(report)


def test_injector_faults_flow_through_tracer_and_metrics():
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=0.3)
    plan = FaultPlan((
        ReplicaFault(1, "mute", start=0.5, stop=2.0),
        LossFault(0.08, start=0.5, stop=2.0),
    ))
    base_drop = cluster.network.config.default_link.drop_rate
    injector = FaultInjector(cluster, plan)
    injector.arm()

    client = cluster.add_client("client0")
    for i in range(6):
        assert client.call(put(i % 4, b"v%d" % i)) == b"ok"
    cluster.run(3.0)

    assert injector.injected == 2 and injector.cleared == 2
    injected = cluster.tracer.find("fault_injected")
    cleared = cluster.tracer.find("fault_cleared")
    assert len(injected) == 2 and len(cleared) == 2
    assert {e.detail["fault"] for e in injected} == \
        {f.describe() for f in plan}
    assert cluster.metrics.counters["faultlab.fault_injected"] == 2
    assert cluster.metrics.counters["faultlab.fault_cleared"] == 2
    # Reverts restored the system: honest behavior, original link.
    assert cluster.replicas[1].behavior is HONEST
    assert cluster.network.config.default_link.drop_rate == base_drop


def test_quiesce_force_clears_open_ended_faults():
    cluster = make_kv_cluster()
    plan = FaultPlan((ReplicaFault(2, "mute"),))  # no stop: runs forever
    injector = FaultInjector(cluster, plan)
    injector.arm()
    cluster.run(0.5)
    assert cluster.replicas[2].behavior is not HONEST
    injector.quiesce()
    assert cluster.replicas[2].behavior is HONEST
    assert injector.cleared == 1
    forced = cluster.tracer.find("fault_cleared")
    assert forced and forced[-1].detail.get("forced") is True


# -- edge scenarios ----------------------------------------------------------------


def test_edge_partition_trial_passes_and_actually_degrades():
    """The staleness-contract audit passes AND the trial is non-vacuous:
    the 100ms edge<->core partition forced degraded serves, and the
    breaker re-promoted before the final check."""
    result = run_trial("edge_partition", 0)
    assert result.ok, result.violations
    assert result.edge_modes.get("linearizable", 0) > 0
    degraded = sum(count for mode, count in result.edge_modes.items()
                   if mode != "linearizable")
    assert degraded > 0, f"vacuous trial: {result.edge_modes}"


def test_edge_viewchange_trial_degrades_on_the_signal():
    result = run_trial("edge_viewchange_degrade", 0)
    assert result.ok, result.violations
    assert result.edge_modes.get("bounded_stale", 0) > 0, \
        f"vacuous trial: {result.edge_modes}"


def test_edge_trials_are_bit_identical_across_reruns():
    a = run_trial("edge_partition", 2)
    b = run_trial("edge_partition", 2)
    assert a.plan == b.plan
    assert a.edge_modes == b.edge_modes
    assert a.violation_keys() == b.violation_keys()
    assert a.sim_seconds == b.sim_seconds


def test_edge_partition_fault_requires_an_edge_tier():
    from repro.faultlab.plan import EdgePartitionFault
    plan = FaultPlan((EdgePartitionFault(start=0.5, stop=1.0),))
    with pytest.raises(ValueError, match="edge tier"):
        run_trial("byzantine_backup", 0, plan=plan)
