"""Proactive recovery: watchdog-driven rejuvenation with state checking."""

from tests.conftest import make_kv_cluster
from repro.bft.statemachine import InMemoryStateManager

put = InMemoryStateManager.op_put


def test_manual_recovery_completes_and_replica_rejoins():
    cluster = make_kv_cluster(checkpoint_interval=4, reboot_delay=1.0)
    client = cluster.add_client("client0")
    for i in range(8):
        client.call(put(i % 8, b"r%d" % i))
    cluster.run(1.0)
    victim = cluster.replicas[2]
    victim.recovery.start_recovery()
    assert victim.recovery.recovering
    cluster.run(10.0)
    assert not victim.recovery.recovering
    rec = victim.recovery.records[-1]
    assert rec.reboot == 1.0
    assert rec.total > 1.0
    # Rejoined: subsequent writes reach it.
    for i in range(4):
        client.call(put(i, b"post%d" % i))
    cluster.run(2.0)
    assert victim.state.values == cluster.replicas[0].state.values


def test_recovery_repairs_corrupt_state():
    """Recovery's check phase recomputes every object digest, so silent
    corruption is found and repaired even when nothing else flags it."""
    cluster = make_kv_cluster(checkpoint_interval=4, reboot_delay=0.5)
    client = cluster.add_client("client0")
    for i in range(8):
        client.call(put(i % 8, b"v%d" % i))
    cluster.run(1.0)
    victim = cluster.replicas[1]
    victim.state.values[3] = b"ROT"
    victim.recovery.start_recovery()
    cluster.run(10.0)
    assert victim.state.values[3] == b"v3"
    rec = victim.recovery.records[-1]
    assert rec.objects_fetched >= 1


def test_recovery_refreshes_session_keys():
    cluster = make_kv_cluster(reboot_delay=0.5, checkpoint_interval=4)
    client = cluster.add_client("client0")
    for i in range(4):
        client.call(put(i, b"k%d" % i))
    cluster.run(1.0)
    victim = cluster.replicas[3]
    epoch_before = cluster.registry.epoch(victim.node_id)
    victim.recovery.start_recovery()
    cluster.run(10.0)
    assert cluster.registry.epoch(victim.node_id) == epoch_before + 1


def test_service_stays_available_during_recovery():
    """While one replica recovers, the other three keep serving."""
    cluster = make_kv_cluster(checkpoint_interval=4, reboot_delay=5.0)
    client = cluster.add_client("client0")
    for i in range(4):
        client.call(put(i, b"pre%d" % i))
    victim = cluster.replicas[2]
    victim.recovery.start_recovery()
    assert victim.recovery.recovering
    # Issue writes while the victim is down rebooting.
    for i in range(4):
        assert client.call(put(4 + i, b"mid%d" % i)) == b"ok"
    cluster.run(20.0)
    assert not victim.recovery.recovering
    assert victim.state.values[:8] == cluster.replicas[0].state.values[:8]


def test_watchdog_triggers_staggered_recoveries():
    cluster = make_kv_cluster(checkpoint_interval=4, reboot_delay=0.2,
                              recovery_interval=10.0, recovery_stagger=3.0)
    client = cluster.add_client("client0")
    for i in range(8):
        client.call(put(i % 8, b"w%d" % i))
    cluster.run(60.0)
    recovered = [r for r in cluster.replicas if r.recovery.records]
    assert len(recovered) == 4
    # Staggering: no two recoveries started simultaneously.
    starts = sorted(rec.started_at for r in cluster.replicas
                    for rec in r.recovery.records[:1])
    assert all(b - a >= 1.0 for a, b in zip(starts, starts[1:]))


def test_recovery_record_breakdown_phases():
    """Table IV structure: shutdown + reboot + restart + fetch-and-check."""
    cluster = make_kv_cluster(checkpoint_interval=4, reboot_delay=2.0)
    client = cluster.add_client("client0")
    for i in range(8):
        client.call(put(i, b"x%d" % i))
    cluster.run(1.0)
    victim = cluster.replicas[0]
    victim.recovery.start_recovery()
    cluster.run(20.0)
    rec = victim.recovery.records[-1]
    assert rec.reboot == 2.0
    assert rec.fetch_and_check >= 0.0
    assert rec.completed_at > rec.started_at
    assert abs(rec.completed_at - rec.started_at - rec.total) < 1e-6


def test_recovery_with_no_checkpoints_yet():
    """Recovering before any stable checkpoint exists completes at seq 0."""
    cluster = make_kv_cluster(checkpoint_interval=64, reboot_delay=0.2)
    cluster.run(0.1)
    victim = cluster.replicas[1]
    victim.recovery.start_recovery()
    cluster.run(10.0)
    assert not victim.recovery.recovering


def test_repeated_recoveries_tolerate_unbounded_faults_over_time():
    """The point of proactive recovery: one corruption per window, forever."""
    cluster = make_kv_cluster(checkpoint_interval=4, reboot_delay=0.2)
    client = cluster.add_client("client0")
    for round_no in range(3):
        for i in range(4):
            client.call(put(i, b"round%d-%d" % (round_no, i)))
        cluster.run(1.0)
        victim = cluster.replicas[round_no % 4]
        victim.state.values[round_no] = b"BAD"
        victim.recovery.start_recovery()
        cluster.run(15.0)
        assert victim.state.values == cluster.replicas[(round_no + 1) % 4].state.values
