"""View changes: replacing crashed or Byzantine primaries."""

from repro.bft.faults import (
    BadNondetBehavior,
    EquivocatingPrimaryBehavior,
    MuteBehavior,
)
from repro.bft.statemachine import InMemoryStateManager
from tests.conftest import make_kv_cluster

put = InMemoryStateManager.op_put
get = InMemoryStateManager.op_get


def test_crashed_primary_replaced_and_request_completes():
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=0.3)
    client = cluster.add_client("client0")
    cluster.replicas[0].crash()
    result = client.call(put(0, b"survived"))
    assert result == b"ok"
    live = [r for r in cluster.replicas if not r.crashed]
    assert all(r.view >= 1 for r in live)
    assert all(r.state.values[0] == b"survived" for r in live)
    assert cluster.tracer.find("new_view_accepted")


def test_service_continues_after_view_change():
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=0.3)
    client = cluster.add_client("client0")
    client.call(put(0, b"before"))
    cluster.replicas[0].crash()
    client.call(put(1, b"during"))
    client.call(put(2, b"after"))
    live = [r for r in cluster.replicas if not r.crashed]
    for r in live:
        assert r.state.values[:3] == [b"before", b"during", b"after"]


def test_mute_primary_triggers_view_change():
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=0.3)
    client = cluster.add_client("client0")
    cluster.replicas[0].behavior = MuteBehavior()
    assert client.call(put(0, b"x")) == b"ok"
    assert any(r.view >= 1 for r in cluster.replicas[1:])


def test_equivocating_primary_never_splits_state():
    """A primary sending conflicting orderings must not make correct
    replicas diverge.  The replica fed the conflicting pre-prepare cannot
    commit (no quorum for its digest) — it falls behind and converges via
    state transfer at the next stable checkpoint; it never executes the
    conflicting request."""
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=0.3)
    client = cluster.add_client("client0")
    cluster.replicas[0].behavior = EquivocatingPrimaryBehavior()
    assert client.call(put(0, b"safe")) == b"ok"
    # At no point may two correct replicas hold different values for an
    # executed slot: any replica that executed slot 0 saw b"safe".
    executed_values = {r.state.values[0] for r in cluster.replicas[1:]
                       if r.last_executed >= 1}
    assert executed_values <= {b"safe"}
    # Make the primary honest again and drive past a checkpoint so the
    # lagging replica state-transfers.
    from repro.bft.faults import HONEST
    cluster.replicas[0].behavior = HONEST
    for i in range(1, 6):
        client.call(put(i, b"c%d" % i))
    cluster.run(5.0)
    values = {tuple(r.state.values[:6]) for r in cluster.replicas[1:]}
    assert len(values) == 1
    assert cluster.replicas[1].state.values[0] == b"safe"


def test_bad_nondet_primary_rejected_then_replaced():
    """check_nondet rejects the faulty proposal; the view change installs
    an honest primary and the request completes."""
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=0.3)
    client = cluster.add_client("client0")
    cluster.replicas[0].behavior = BadNondetBehavior(b"\xde\xad")
    assert client.call(put(0, b"ok-anyway")) == b"ok"
    assert cluster.tracer.find("nondet_rejected")
    assert any(r.view >= 1 for r in cluster.replicas[1:])


def test_successive_primary_failures_walk_views():
    cluster = make_kv_cluster(view_change_timeout=0.4,
                              client_retry_timeout=0.3)
    client = cluster.add_client("client0")
    cluster.replicas[0].crash()
    cluster.replicas[1].crash()
    # Only 2 of 4 alive: cannot commit (needs 3). Revive one non-primary.
    cluster.replicas[1].restart_node()
    result = client.call(put(0, b"deep"))
    assert result == b"ok"
    live = [r for r in cluster.replicas if not r.crashed]
    assert all(r.state.values[0] == b"deep" for r in live)


def test_view_change_preserves_committed_requests():
    """Requests committed before the view change survive it (the
    re-proposal logic must carry prepared batches forward)."""
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=0.3)
    client = cluster.add_client("client0")
    for i in range(5):
        client.call(put(i, b"v%d" % i))
    cluster.replicas[0].crash()
    client.call(put(5, b"v5"))
    live = [r for r in cluster.replicas if not r.crashed]
    for r in live:
        assert r.state.values[:6] == [b"v%d" % i for i in range(6)]


def test_executed_requests_not_reexecuted_after_view_change():
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=0.3)
    client = cluster.add_client("client0")
    for i in range(3):
        client.call(put(0, b"w%d" % i))
    cluster.replicas[0].crash()
    client.call(put(1, b"post"))
    for r in cluster.replicas[1:]:
        ops = [op for _, _, _, op in r.state.executed_ops if op != b""]
        assert len(ops) == len(set((i, o) for i, o in enumerate(ops)))
        # Each of the four distinct writes executed exactly once.
        assert len([o for o in ops if o == put(1, b"post")]) == 1


def test_view_change_timer_does_not_fire_when_idle():
    cluster = make_kv_cluster(view_change_timeout=0.2)
    client = cluster.add_client("client0")
    client.call(put(0, b"x"))
    cluster.run(5.0)
    assert all(r.view == 0 for r in cluster.replicas)


def test_join_rule_threshold_is_weak_quorum():
    """The liveness rule drags a replica into a view change only once a
    weak quorum (f+1, guaranteeing one correct proposer) wants the view
    — a single view-change message must not move it (regression for the
    join threshold, now spelled ``config.weak_quorum``)."""
    cluster = make_kv_cluster(view_change_timeout=60.0)
    bystander = cluster.replicas[3]
    assert cluster.config.weak_quorum == 2
    # One replica alone asks for view 1: below the weak quorum.
    cluster.replicas[1].view_changes.start(1)
    cluster.run(1.0)
    assert not bystander.view_changes.active
    assert bystander.view == 0
    # A second request reaches f+1 = weak quorum: the bystander joins
    # (and the view change then completes) without its own 60 s timer
    # ever firing.
    cluster.replicas[2].view_changes.start(1)
    cluster.run(1.0)
    assert bystander.view == 1
