"""Wrapper-level concurrency control (§2.4): conflict analysis + waves."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.encoding.canonical import canonical
from repro.nfs.concurrency import (
    ALLOCATOR,
    access_set,
    concurrent_speedup,
    schedule_waves,
)
from repro.nfs.spec import oid_bytes

FH = {i: oid_bytes(i, 1) for i in range(10)}
SATTR = (0o644, 0, 0, -1, -1, -1)


def op(proc, *args):
    return canonical((proc,) + args)


def test_reads_of_same_object_do_not_conflict():
    a = access_set(op("read", FH[3], 0, 100))
    b = access_set(op("getattr", FH[3]))
    assert not a.conflicts_with(b)


def test_write_conflicts_with_read_of_same_object():
    write = access_set(op("write", FH[3], 0, b"x"))
    read = access_set(op("read", FH[3], 0, 100))
    assert write.conflicts_with(read)
    assert read.conflicts_with(write)


def test_writes_to_different_files_do_not_conflict():
    a = access_set(op("write", FH[3], 0, b"x"))
    b = access_set(op("write", FH[4], 0, b"y"))
    assert not a.conflicts_with(b)


def test_creates_conflict_through_the_allocator():
    """Two creates in different directories still race on entry
    allocation (the deterministic lowest-free-slot rule)."""
    a = access_set(op("create", FH[1], "x", SATTR))
    b = access_set(op("create", FH[2], "y", SATTR))
    assert ALLOCATOR in a.writes
    assert a.conflicts_with(b)


def test_rename_conflicts_with_both_directories():
    move = access_set(op("rename", FH[1], "a", FH[2], "b"))
    read1 = access_set(op("readdir", FH[1]))
    read2 = access_set(op("readdir", FH[2]))
    other = access_set(op("readdir", FH[5]))
    assert move.conflicts_with(read1)
    assert move.conflicts_with(read2)
    assert not move.conflicts_with(other)


def test_malformed_op_serializes_conservatively():
    bogus = access_set(b"\x00garbage")
    anything = access_set(op("read", FH[0], 0, 1))
    assert bogus.conflicts_with(bogus)
    # It conflicts with itself and with creates (via the allocator)...
    create = access_set(op("create", FH[1], "x", SATTR))
    assert bogus.conflicts_with(create)


def test_waves_preserve_conflict_order():
    ops = [
        op("write", FH[1], 0, b"a"),   # 0
        op("write", FH[2], 0, b"b"),   # 1: no conflict with 0 -> wave 0
        op("read", FH[1], 0, 10),      # 2: conflicts with 0 -> wave 1
        op("write", FH[1], 5, b"c"),   # 3: conflicts with 0 and 2 -> wave 2
        op("getattr", FH[2]),          # 4: conflicts with 1 -> wave 1
    ]
    waves = schedule_waves(ops)
    assert waves == [[0, 1], [2, 4], [3]]


def test_independent_batch_fully_parallel():
    ops = [op("write", FH[i], 0, b"x") for i in range(8)]
    assert schedule_waves(ops) == [list(range(8))]
    assert concurrent_speedup(ops) == 8.0


def test_conflicting_batch_fully_serial():
    ops = [op("write", FH[1], 0, b"%d" % i) for i in range(5)]
    assert [len(w) for w in schedule_waves(ops)] == [1] * 5
    assert concurrent_speedup(ops) == 1.0


def test_empty_batch():
    assert schedule_waves([]) == []
    assert concurrent_speedup([]) == 1.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["read", "write", "getattr"]),
                          st.integers(0, 5)), max_size=12))
def test_waves_never_reorder_conflicts(spec):
    """Property: for any two conflicting ops, the earlier one is in an
    earlier (or equal... strictly earlier) wave."""
    ops = []
    for proc, idx in spec:
        if proc == "write":
            ops.append(op("write", FH[idx], 0, b"v"))
        elif proc == "read":
            ops.append(op("read", FH[idx], 0, 10))
        else:
            ops.append(op("getattr", FH[idx]))
    waves = schedule_waves(ops)
    wave_of = {}
    for w, members in enumerate(waves):
        for i in members:
            wave_of[i] = w
    assert sorted(wave_of) == list(range(len(ops)))
    footprints = [access_set(o) for o in ops]
    for i in range(len(ops)):
        for j in range(i + 1, len(ops)):
            if footprints[i].conflicts_with(footprints[j]):
                assert wave_of[i] < wave_of[j]
