"""EdgeTier: the lease cache, the circuit breaker, and the full
degradation ladder (LINEARIZABLE -> BOUNDED_STALE -> LAST_KNOWN_GOOD)
over a live cluster, including re-promotion after the partition heals.
"""

import pytest

from repro.bft.statemachine import InMemoryStateManager
from repro.crypto.digest import digest
from repro.edge import (
    BOUNDED_STALE,
    CLOSED,
    EVIDENCE_CERTIFICATE,
    EVIDENCE_VECTOR,
    HALF_OPEN,
    LAST_KNOWN_GOOD,
    LINEARIZABLE,
    OPEN,
    CircuitBreaker,
    EdgeCache,
    EdgeReply,
    EdgeTier,
    EdgeUnavailable,
    ReadLease,
    StalenessEvidence,
)
from tests.conftest import make_kv_cluster

put = InMemoryStateManager.op_put
get = InMemoryStateManager.op_get


def vector_evidence(issued_at, replicas=("replica0",)):
    return StalenessEvidence(kind=EVIDENCE_VECTOR,
                             issued_at_us=int(round(issued_at * 1_000_000)),
                             replicas=tuple(replicas))


# -- units: lease, cache, breaker, evidence ----------------------------------------


def test_read_lease_validity_window():
    lease = ReadLease(issued_at=1.0, ttl=0.5)
    assert lease.expires_at == pytest.approx(1.5)
    assert lease.valid(1.5)
    assert not lease.valid(1.51)


def test_edge_cache_lease_lifecycle():
    clock = [0.0]
    cache = EdgeCache(lambda: clock[0], delta=1.0)
    assert cache.get_fresh("k") is None
    assert cache.misses == 1
    cache.put("k", b"v", vector_evidence(0.0))
    assert len(cache) == 1 and cache.refreshes == 1
    clock[0] = 0.9
    entry = cache.get_fresh("k")
    assert entry is not None and entry.result == b"v"
    assert cache.hits == 1
    assert cache.staleness(entry) == pytest.approx(0.9)
    clock[0] = 1.1  # past Δ: the lease no longer validates
    assert cache.get_fresh("k") is None
    assert cache.misses == 2
    stale = cache.get_any("k")
    assert stale is not None and stale.result == b"v"
    assert cache.expired_hits == 1


def test_edge_cache_lease_starts_at_evidence_time_not_insert_time():
    """A refresh whose evidence is already old must not get a full Δ of
    freshness from the insertion clock."""
    clock = [2.0]
    cache = EdgeCache(lambda: clock[0], delta=1.0)
    entry = cache.put("k", b"v", vector_evidence(0.5))
    assert not entry.lease.valid(clock[0])


def test_edge_cache_rejects_nonpositive_delta():
    with pytest.raises(ValueError):
        EdgeCache(lambda: 0.0, delta=0.0)


def test_breaker_walks_the_state_machine():
    clock = [0.0]
    transitions = []
    breaker = CircuitBreaker(
        lambda: clock[0], failure_threshold=2, cooldown=1.0, probe_quota=2,
        on_transition=lambda old, new: transitions.append((old, new)))
    assert breaker.state == CLOSED and breaker.allow_attempt()
    breaker.record_failure()
    assert breaker.state == CLOSED  # below the threshold
    breaker.record_failure()
    assert breaker.state == OPEN and not breaker.allow_attempt()
    clock[0] = 0.5
    assert breaker.state == OPEN    # cooldown not yet elapsed
    clock[0] = 1.0
    assert breaker.state == HALF_OPEN and breaker.allow_attempt()
    breaker.record_success()
    assert breaker.state == HALF_OPEN  # quota is two probes
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.trips == 1 and breaker.promotions == 1
    assert (CLOSED, OPEN) in transitions
    assert (HALF_OPEN, CLOSED) in transitions


def test_breaker_half_open_probe_failure_reopens():
    clock = [0.0]
    breaker = CircuitBreaker(lambda: clock[0], failure_threshold=1,
                             cooldown=1.0)
    breaker.record_failure()
    clock[0] = 1.0
    assert breaker.state == HALF_OPEN
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.trips == 2


def test_breaker_view_change_signal_trips_immediately():
    clock = [0.0]
    breaker = CircuitBreaker(lambda: clock[0], failure_threshold=5)
    breaker.signal_view_change()
    assert breaker.state == OPEN
    breaker.signal_view_change()  # counted, but no double trip
    assert breaker.view_change_signals == 2
    assert breaker.trips == 1


def test_reply_flags_and_evidence_times():
    evidence = StalenessEvidence(kind=EVIDENCE_CERTIFICATE,
                                 issued_at_us=2_500_000,
                                 replicas=("replica0", "replica1"))
    assert evidence.issued_at == pytest.approx(2.5)
    assert not EdgeReply(b"r", LINEARIZABLE, None, evidence).degraded
    assert EdgeReply(b"r", BOUNDED_STALE, 0.5, evidence).degraded
    assert EdgeReply(b"r", LAST_KNOWN_GOOD, None, evidence).degraded


# -- integration: the ladder over a live cluster -----------------------------------


def make_tier(cluster, **kw):
    kw.setdefault("delta", 0.5)
    kw.setdefault("read_timeout", 0.05)
    kw.setdefault("refresh_timeout", 0.05)
    kw.setdefault("failure_threshold", 1)
    kw.setdefault("cooldown", 0.2)
    return EdgeTier.for_cluster(cluster, **kw)


def isolate_edge(cluster, tier):
    """Partition every edge identity from everything non-edge."""
    for edge_id in tier.edge_node_ids:
        for other in cluster.network.node_ids():
            if other not in tier.edge_node_ids:
                cluster.network.partition(edge_id, other)


def test_linearizable_read_with_certificate_evidence():
    cluster = make_kv_cluster()
    sync = cluster.add_client("client0")
    sync.call(put(3, b"fresh"))
    tier = make_tier(cluster)
    reply = tier.read(get(3))
    assert reply.mode == LINEARIZABLE and not reply.degraded
    assert reply.result == b"fresh"
    assert reply.staleness_bound is None
    assert reply.evidence.kind == EVIDENCE_CERTIFICATE
    quorum = 2 * cluster.config.f + 1
    assert len(reply.evidence.replicas) >= quorum
    record = tier.records[-1]
    assert record.mode == LINEARIZABLE
    assert record.result_digest == digest(b"fresh")
    assert tier.metrics.counter_value("edge.reads") == 1


def test_degradation_ladder_and_repromotion():
    cluster = make_kv_cluster()
    sync = cluster.add_client("client0")
    sync.call(put(1, b"v1"))
    tier = make_tier(cluster)
    op = get(1)
    assert tier.read(op).mode == LINEARIZABLE  # warms the lease

    isolate_edge(cluster, tier)
    # The fast path times out, the breaker trips, the warm lease serves.
    reply = tier.read(op)
    assert reply.mode == BOUNDED_STALE and reply.degraded
    assert reply.staleness_bound == tier.delta
    assert reply.result == b"v1"
    assert tier.now - reply.evidence.issued_at <= tier.delta
    assert tier.ports[0].breaker.state == OPEN

    # Past Δ with the core still gone: flagged last-known-good, no bound.
    cluster.run(tier.delta + 0.2)
    reply = tier.read(op)
    assert reply.mode == LAST_KNOWN_GOOD and reply.degraded
    assert reply.staleness_bound is None
    assert reply.result == b"v1"

    # A key the edge never saw is refused, never fabricated.
    with pytest.raises(EdgeUnavailable):
        tier.read(get(9))

    # Heal, wait out the cooldown: a half-open probe re-promotes.
    cluster.network.heal_all()
    cluster.run(1.0)
    reply = tier.read(op)
    assert reply.mode == LINEARIZABLE and not reply.degraded
    assert tier.ports[0].breaker.state == CLOSED
    assert tier.ports[0].breaker.promotions >= 1
    assert tier.metrics.counter_value("edge.degraded_reads") >= 2
    assert tier.metrics.counter_value("edge.unavailable") == 1
    modes = [record.mode for record in tier.records]
    assert modes[0] == LINEARIZABLE and modes[-1] == LINEARIZABLE
    assert BOUNDED_STALE in modes and LAST_KNOWN_GOOD in modes


def test_vector_refresh_from_a_single_replica():
    """With only the quorum client cut off, bounded-stale reads refresh
    from one replica and carry its stable-checkpoint version vector."""
    cluster = make_kv_cluster(checkpoint_interval=4)
    sync = cluster.add_client("client0")
    for i in range(8):  # past two checkpoint intervals: stable vectors
        sync.call(put(i % 4, bytes([i])))
    tier = make_tier(cluster)
    ro_id = tier.ports[0].client.node_id
    for other in cluster.network.node_ids():
        if other != ro_id:
            cluster.network.partition(ro_id, other)

    reply = tier.read(get(0))
    assert reply.mode == BOUNDED_STALE
    evidence = reply.evidence
    assert evidence.kind == EVIDENCE_VECTOR
    assert len(evidence.replicas) == 1
    assert evidence.checkpoint_seq is not None and evidence.checkpoint_seq > 0
    # The advertised vector is one some correct replica actually made
    # stable — exactly what the FaultLab audit replays.
    vectors = {pair for replica in cluster.replicas
               for pair in replica.checkpoint_history}
    assert (evidence.checkpoint_seq, evidence.root_digest) in vectors
    assert tier.metrics.counter_value("edge.vector_reads") == 1


def test_view_change_signal_degrades_before_any_timeout():
    """The monitoring plane trips the breaker the moment a view change
    is observed — no read has to burn a timeout to find out."""
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=0.2)
    sync = cluster.add_client("client0")
    sync.call(put(2, b"warm"))
    tier = make_tier(cluster, delta=30.0)
    assert tier.read(get(2)).mode == LINEARIZABLE
    cluster.replicas[0].crash()
    sync.call(put(3, b"drive-view-change"))
    assert max(r.view for r in cluster.replicas) >= 1
    reply = tier.read(get(2))
    assert reply.degraded and reply.mode == BOUNDED_STALE
    assert tier.ports[0].breaker.view_change_signals >= 1
    assert tier.metrics.counter_value("edge.view_signals") >= 1


def test_edge_read_routes_across_a_sharded_deployment():
    """for_deployment over a two-shard SQL stack: each shard gets its
    own port, reads route along the service's shard-key axis."""
    from repro.bft.config import BftConfig
    from repro.encoding.canonical import canonical
    from repro.service.sharding import ShardedDeployment, stable_shard
    from repro.sql.service import SQL_SERVICE
    deployment = ShardedDeployment.build(
        SQL_SERVICE, 2, config=BftConfig(checkpoint_interval=8), seed=0)
    client = deployment.client
    tables = {}
    i = 0
    while len(tables) < 2:  # one table hashing to each shard
        tables.setdefault(stable_shard(f"t{i}", 2), f"t{i}")
        i += 1
    for table in tables.values():
        client.create_table(table, ["id", "val"], "id")
        client.insert(table, [1, f"{table}-row"])
    tier = EdgeTier.for_deployment(deployment, read_timeout=0.05)
    assert len(tier.ports) == 2
    for shard, table in tables.items():
        reply = tier.read(canonical(("select", table, 1)))
        assert reply.mode == LINEARIZABLE and not reply.degraded
        assert tier.records[-1].shard == shard


# -- satellite: the read-certificate path on the BFT client ------------------------


def test_collect_read_certificate_happy_path():
    cluster = make_kv_cluster()
    sync = cluster.add_client("client0")
    sync.call(put(7, b"certified"))
    client = cluster.clients["client0"]
    box = {}
    client.collect_read_certificate(get(7), lambda c: box.update(cert=c))
    cluster.run_until(lambda: "cert" in box)
    cert = box["cert"]
    assert cert.result == b"certified"
    assert cert.result_digest == digest(b"certified")
    assert cert.path == "read_only" and not cert.fell_back
    assert len(cert.voters) >= 2 * cluster.config.f + 1
    assert cert.issued_at <= cert.accepted_at


def test_lease_refresh_fallback_clears_banked_votes():
    """A lease refresh that falls back to the ordered path must discard
    every read-only-era vote: votes certifying a read of *unordered*
    state never count toward the ordered quorums, and the certificate
    must say the fallback happened."""
    cluster = make_kv_cluster(client_retry_timeout=0.2)
    sync = cluster.add_client("client0")
    sync.call(put(4, b"right"))
    client = cluster.clients["client0"]

    # Stall the read-only attempt: no read-only reply ever arrives.
    cluster.network.add_filter(
        lambda src, dst, msg: not (getattr(msg, "kind", "") == "reply"
                                   and msg.read_only))
    box = {}
    client.collect_read_certificate(get(4), lambda c: box.update(cert=c))
    request_id = client._next_request_id
    cluster.run(0.05)
    assert client._pending is not None and client._pending.read_only

    # Two colluders bank tentative votes during the read-only attempt.
    from repro.bft.messages import Reply
    from repro.crypto.mac import Authenticator

    def stale_tentative(replica_id):
        reply = Reply(0, request_id, "client0", replica_id, b"stale",
                      digest(b"stale"), tentative=True)
        reply.auth = Authenticator.create(cluster.registry, replica_id,
                                          ["client0"], reply.digest())
        return reply

    client.on_message("replica2", stale_tentative("replica2"))
    client.on_message("replica3", stale_tentative("replica3"))
    assert len(client._pending.tentative_votes[digest(b"stale")]) == 2

    # Two retry timeouts later the refresh falls back to ordering; every
    # read-only-era vote is gone and the ordered path answers.
    cluster.run_until(lambda: client._pending is None
                      or not client._pending.read_only)
    assert client._pending is not None and not client._pending.read_only
    assert not client._pending.tentative_votes
    assert not client._pending.ro_votes
    assert not client._pending.votes
    cluster.run_until(lambda: "cert" in box)
    cert = box["cert"]
    assert cert.result == b"right"
    assert cert.fell_back and cert.path in ("tentative", "committed")
    assert len(cert.voters) >= cluster.config.f + 1
