"""The reusable mapping library (paper §6 future work)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.base.mappings import KeyedArrayMapping, SlotAllocator


def test_allocator_lowest_free_first():
    alloc = SlotAllocator(8, reserved=1)
    a = alloc.allocate()
    alloc.commit(a)
    b = alloc.allocate()
    alloc.commit(b)
    assert (a, b) == (1, 2)


def test_allocator_generation_bumps_on_reuse():
    alloc = SlotAllocator(4, reserved=0)
    index = alloc.allocate()
    assert alloc.commit(index) == 1
    alloc.release(index)
    again = alloc.allocate()
    assert again == index
    assert alloc.commit(again) == 2


def test_allocator_rollback_restores_slot_without_gen_bump():
    alloc = SlotAllocator(4)
    index = alloc.allocate()
    alloc.rollback(index)
    assert alloc.generation(index) == 0
    assert alloc.allocate() == index


def test_allocator_rollback_ignores_committed():
    alloc = SlotAllocator(4)
    index = alloc.allocate()
    alloc.commit(index)
    alloc.rollback(index)  # no-op
    assert alloc.is_used(index)


def test_allocator_reserved_slots_never_allocated():
    alloc = SlotAllocator(3, reserved=1)
    assert alloc.allocate() == 1
    assert alloc.allocate() == 2
    with pytest.raises(IndexError):
        alloc.allocate()
    with pytest.raises(ValueError):
        alloc.release(0)


def test_mapping_assign_release_roundtrip():
    mapping = KeyedArrayMapping(8, reserved=1)
    index, gen = mapping.assign(("t", 1))
    assert (index, gen) == (1, 1)
    assert mapping.index_of(("t", 1)) == 1
    assert mapping.key_of(1) == ("t", 1)
    assert mapping.release(("t", 1)) == 1
    assert mapping.index_of(("t", 1)) is None
    index2, gen2 = mapping.assign(("t", 2))
    assert (index2, gen2) == (1, 2)


def test_mapping_duplicate_key_rejected():
    mapping = KeyedArrayMapping(4)
    mapping.assign("k")
    with pytest.raises(KeyError):
        mapping.assign("k")


def test_mapping_reserve_bind_rollback():
    mapping = KeyedArrayMapping(4)
    index = mapping.reserve()
    mapping.rollback(index)
    index2 = mapping.reserve()
    assert index2 == index
    assert mapping.bind("x", index2) == 1


def test_mapping_install_overrides():
    mapping = KeyedArrayMapping(8)
    mapping.assign("a")
    mapping.install("b", 0, 5)      # transfer says slot 0 now holds "b"
    assert mapping.key_of(0) == "b"
    assert mapping.index_of("a") is None
    assert mapping.generation(0) == 5
    mapping.install(None, 0, 6)     # and then it is freed
    assert mapping.key_of(0) is None
    # Freed slot is allocatable again with the installed generation base.
    index = mapping.reserve()
    assert index == 0
    assert mapping.bind("c", index) == 7


def test_mapping_save_load_roundtrip():
    mapping = KeyedArrayMapping(16, reserved=2)
    mapping.assign(("users", 5))
    mapping.assign(("users", 7))
    mapping.release(("users", 5))
    mapping.assign(("orders", "x"))
    blob = mapping.save()
    loaded = KeyedArrayMapping.load(blob)
    assert loaded.index_of(("users", 7)) == mapping.index_of(("users", 7))
    assert loaded.index_of(("orders", "x")) == \
        mapping.index_of(("orders", "x"))
    assert loaded.index_of(("users", 5)) is None
    # Deterministic continuation: both allocate the same next slot/gen.
    a = mapping.assign(("next", 1))
    b = loaded.assign(("next", 1))
    assert a == b


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 15)), max_size=60))
def test_mapping_determinism_property(ops):
    """Two mappings fed the same op sequence stay identical."""
    m1 = KeyedArrayMapping(16)
    m2 = KeyedArrayMapping(16)
    live = set()
    for is_assign, key in ops:
        for m in (m1, m2):
            if is_assign and key not in live:
                try:
                    m.assign(key)
                except IndexError:
                    pass
            elif not is_assign and key in live:
                m.release(key)
        if is_assign and key not in live:
            if m1.index_of(key) is not None:
                live.add(key)
        elif not is_assign:
            live.discard(key)
    assert list(m1.items()) == list(m2.items())
    assert m1.save() == m2.save()
