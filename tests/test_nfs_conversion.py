"""Inverse-conversion engine edge cases (Figure 5's tricky paths)."""

import pytest

from repro.errors import StateTransferError
from repro.nfs.backends import LinuxExt2Backend, SolarisUfsBackend
from repro.nfs.spec import ROOT_OID
from tests.test_nfs_wrapper import (
    SATTR_DIR,
    SATTR_FILE,
    WrapperHarness,
)


def transfer_delta(src, dst, before):
    after = src.abstract_state()
    changed = {i: blob for i, blob in enumerate(after) if blob != before[i]}
    dst.wrapper.put_objs(changed)
    assert dst.abstract_state() == after
    return changed


def paired(backend_a=LinuxExt2Backend, backend_b=SolarisUfsBackend):
    return WrapperHarness(backend_a), WrapperHarness(backend_b)


def test_cross_directory_move():
    a, b = paired()
    for h in (a, b):
        h.ok("mkdir", ROOT_OID, "src", SATTR_DIR)
        h.ok("mkdir", ROOT_OID, "dst", SATTR_DIR)
        src = h.ok("lookup", ROOT_OID, "src", read_only=True)[0]
        fh, _ = h.ok("create", src, "f.txt", SATTR_FILE)
        h.ok("write", fh, 0, b"move me")
    before = a.abstract_state()
    src = a.ok("lookup", ROOT_OID, "src", read_only=True)[0]
    dst = a.ok("lookup", ROOT_OID, "dst", read_only=True)[0]
    a.ok("rename", src, "f.txt", dst, "f.txt")
    transfer_delta(a, b, before)
    dst_b = b.ok("lookup", ROOT_OID, "dst", read_only=True)[0]
    fh_b = b.ok("lookup", dst_b, "f.txt", read_only=True)[0]
    assert b.ok("read", fh_b, 0, 100, read_only=True)[0] == b"move me"
    src_b = b.ok("lookup", ROOT_OID, "src", read_only=True)[0]
    assert b.ok("readdir", src_b, read_only=True)[0] == ()


def test_rename_replacing_existing_target():
    a, b = paired()
    for h in (a, b):
        f1, _ = h.ok("create", ROOT_OID, "old", SATTR_FILE)
        h.ok("write", f1, 0, b"keep")
        f2, _ = h.ok("create", ROOT_OID, "target", SATTR_FILE)
        h.ok("write", f2, 0, b"die")
    before = a.abstract_state()
    a.ok("rename", ROOT_OID, "old", ROOT_OID, "target")
    transfer_delta(a, b, before)
    fh = b.ok("lookup", ROOT_OID, "target", read_only=True)[0]
    assert b.ok("read", fh, 0, 100, read_only=True)[0] == b"keep"
    entries = b.ok("readdir", ROOT_OID, read_only=True)[0]
    assert [n for n, _ in entries] == ["target"]


def test_entry_type_change_file_to_directory():
    """An entry freed and reassigned as a different type transfers
    cleanly (generation bump, recreate in the backend)."""
    a, b = paired()
    for h in (a, b):
        h.ok("create", ROOT_OID, "thing", SATTR_FILE)
    before = a.abstract_state()
    a.ok("remove", ROOT_OID, "thing")
    a.ok("mkdir", ROOT_OID, "thing", SATTR_DIR)  # reuses index 1, gen 2
    transfer_delta(a, b, before)
    fh = b.ok("lookup", ROOT_OID, "thing", read_only=True)[0]
    assert b.ok("readdir", fh, read_only=True)[0] == ()


def test_deep_tree_created_parent_first():
    """New nested directories transfer even when the child object index
    is lower than the parent's (update_directory recursion)."""
    a, b = paired()
    before = a.abstract_state()
    a.ok("mkdir", ROOT_OID, "x", SATTR_DIR)
    x = a.ok("lookup", ROOT_OID, "x", read_only=True)[0]
    a.ok("mkdir", x, "y", SATTR_DIR)
    y = a.ok("lookup", x, "y", read_only=True)[0]
    fh, _ = a.ok("create", y, "deep.txt", SATTR_FILE)
    a.ok("write", fh, 0, b"deep")
    transfer_delta(a, b, before)
    x_b = b.ok("lookup", ROOT_OID, "x", read_only=True)[0]
    y_b = b.ok("lookup", x_b, "y", read_only=True)[0]
    f_b = b.ok("lookup", y_b, "deep.txt", read_only=True)[0]
    assert b.ok("read", f_b, 0, 100, read_only=True)[0] == b"deep"


def test_subtree_deletion_transfers():
    a, b = paired()
    for h in (a, b):
        h.ok("mkdir", ROOT_OID, "tree", SATTR_DIR)
        t = h.ok("lookup", ROOT_OID, "tree", read_only=True)[0]
        h.ok("mkdir", t, "branch", SATTR_DIR)
        br = h.ok("lookup", t, "branch", read_only=True)[0]
        h.ok("create", br, "leaf", SATTR_FILE)
    before = a.abstract_state()
    t = a.ok("lookup", ROOT_OID, "tree", read_only=True)[0]
    br = a.ok("lookup", t, "branch", read_only=True)[0]
    a.ok("remove", br, "leaf")
    a.ok("rmdir", t, "branch")
    a.ok("rmdir", ROOT_OID, "tree")
    transfer_delta(a, b, before)
    assert b.ok("readdir", ROOT_OID, read_only=True)[0] == ()


def test_symlink_retarget_via_recreate():
    a, b = paired()
    for h in (a, b):
        h.ok("symlink", ROOT_OID, "ln", "old-target", SATTR_FILE)
    before = a.abstract_state()
    a.ok("remove", ROOT_OID, "ln")
    a.ok("symlink", ROOT_OID, "ln", "new-target", SATTR_FILE)
    transfer_delta(a, b, before)
    fh = b.ok("lookup", ROOT_OID, "ln", read_only=True)[0]
    assert b.ok("readlink", fh, read_only=True)[0] == "new-target"


def test_inconsistent_vector_rejected():
    """A directory referencing an object absent from the vector (and from
    the backend) must raise, not silently corrupt."""
    from repro.nfs.spec import (AbstractMeta, AbstractObject, FileType,
                                encode_object)
    _, b = paired()
    meta = AbstractMeta(0o755, 0, 0, 0, 0, 0, parent=0)
    bogus_root = AbstractObject(FileType.NFDIR, 1, meta,
                                entries=(("ghost", 7, 1),))
    with pytest.raises(StateTransferError):
        b.wrapper.put_objs({0: encode_object(bogus_root)})


def test_metadata_only_change_transfers():
    a, b = paired()
    for h in (a, b):
        h.ok("create", ROOT_OID, "m", SATTR_FILE)
    before = a.abstract_state()
    fh = a.ok("lookup", ROOT_OID, "m", read_only=True)[0]
    a.ok("setattr", fh, (0o600, 5, 6, -1, -1, -1))
    transfer_delta(a, b, before)
    fh_b = b.ok("lookup", ROOT_OID, "m", read_only=True)[0]
    from repro.nfs.protocol import Fattr
    attr = Fattr.decode(b.ok("getattr", fh_b, read_only=True)[0])
    assert (attr.mode, attr.uid, attr.gid) == (0o600, 5, 6)
