"""Per-rule golden-fixture tests for the ProtoLint rule library.

Every rule has a ``*_bad.py`` fixture (must fire, with the expected
finding count) and a ``*_ok.py`` fixture (must stay silent) under
``tests/analysis_fixtures/``.  Fixtures are checked under a protocol
path (``bft/...``) so the rules' real scoping is exercised, not
bypassed.
"""

from pathlib import Path

import pytest

from repro.analysis import Engine, select_rules

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"

#: rule id -> (fixture stem, expected findings in bad fixture).
CASES = {
    "DET-RNG": ("det_rng", 4),
    "DET-CLOCK": ("det_clock", 5),
    "DET-PERF": ("det_perf", 2),
    "SIM-BLOCK": ("sim_block", 4),
    "SIM-IO": ("sim_io", 2),
    "RPL-SETITER": ("rpl_setiter", 4),
    "RPL-IDKEY": ("rpl_idkey", 1),
    "RPL-MUTDEF": ("rpl_mutdef", 4),
    "WIRE-FLOAT": ("wire_float", 5),
    "WIRE-EXCEPT": ("wire_except", 2),
}

#: Checked under a protocol/replay-scoped path so scope rules engage.
PROTOCOL_REL = "bft/fixture.py"


def _check(rule_id: str, path: Path, rel: str):
    engine = Engine(select_rules([rule_id]))
    return engine.check_file(path, rel=rel)


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_rule_fires_on_bad_fixture(rule_id):
    stem, expected = CASES[rule_id]
    findings = _check(rule_id, FIXTURES / f"{stem}_bad.py", PROTOCOL_REL)
    assert len(findings) == expected, \
        f"{rule_id}: expected {expected} findings, got " \
        f"{[f.render() for f in findings]}"
    assert all(f.rule == rule_id for f in findings)
    assert all(f.path == PROTOCOL_REL and f.line >= 1 for f in findings)


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_rule_silent_on_ok_fixture(rule_id):
    stem, _ = CASES[rule_id]
    findings = _check(rule_id, FIXTURES / f"{stem}_ok.py", PROTOCOL_REL)
    assert findings == [], [f.render() for f in findings]


@pytest.mark.parametrize("rule_id", sorted(CASES))
def test_bad_fixture_is_clean_python(rule_id):
    """Fixtures must be real, parseable Python (the engine reports
    PL-SYNTAX findings for anything else, which would skew counts)."""
    stem, _ = CASES[rule_id]
    for suffix in ("bad", "ok"):
        findings = _check(rule_id, FIXTURES / f"{stem}_{suffix}.py",
                          PROTOCOL_REL)
        assert not any(f.rule == "PL-SYNTAX" for f in findings)


def test_every_registered_rule_has_fixtures():
    from repro.analysis import all_rules
    assert {r.rule_id for r in all_rules()} == set(CASES)


# -- scope behavior ------------------------------------------------------------

def test_perf_counter_allowed_in_reporting_modules():
    findings = _check("DET-PERF", FIXTURES / "det_perf_bad.py",
                      "sim/metrics.py")
    assert findings == []


def test_io_allowed_in_report_writers():
    findings = _check("SIM-IO", FIXTURES / "sim_io_bad.py",
                      "faultlab/report.py")
    assert findings == []


def test_sim_block_ignores_non_protocol_packages():
    findings = _check("SIM-BLOCK", FIXTURES / "sim_block_bad.py",
                      "harness/report.py")
    assert findings == []


def test_setiter_scoped_to_replay_packages():
    bad = FIXTURES / "rpl_setiter_bad.py"
    assert _check("RPL-SETITER", bad, "thor/cache.py") == []
    assert len(_check("RPL-SETITER", bad, "faultlab/injector.py")) == 4


def test_swallowed_except_scoped_but_bare_except_global():
    bad = FIXTURES / "wire_except_bad.py"
    # Outside replay-critical packages the `except ValueError: pass`
    # swallow is tolerated, but the bare except still fires.
    findings = _check("WIRE-EXCEPT", bad, "sql/wrapper.py")
    assert len(findings) == 1
    assert "bare except" in findings[0].message
