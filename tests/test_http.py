"""BASE-HTTP: replicating web servers with divergent ETag schemes."""

import pytest

from repro.base.state import AbstractStateManager
from repro.bft.config import BftConfig
from repro.encoding.canonical import canonical, decanonical
from repro.http.engine import (
    ApacheLikeServer,
    HttpError,
    HttpStatus,
    NginxLikeServer,
)
from repro.http.service import build_base_http, build_http_std
from repro.http.wrapper import HttpConformanceWrapper


# -- engines --------------------------------------------------------------------

@pytest.fixture(params=[ApacheLikeServer, NginxLikeServer],
                ids=lambda c: c.vendor)
def server(request):
    return request.param()


def test_engine_put_get_roundtrip(server):
    created, etag = server.put("/page.html", b"<html>hi</html>")
    assert created and etag
    body, etag2 = server.get("/page.html")
    assert body == b"<html>hi</html>"
    assert etag2 == etag


def test_engine_collections(server):
    server.mkcol("/docs")
    server.put("/docs/a.txt", b"a")
    members = server.propfind("/docs")
    assert ("a.txt", False) in members
    with pytest.raises(HttpError) as err:
        server.put("/nope/deep.txt", b"x")
    assert err.value.status == HttpStatus.CONFLICT


def test_engine_delete(server):
    server.put("/gone", b"x")
    server.delete("/gone")
    with pytest.raises(HttpError) as err:
        server.get("/gone")
    assert err.value.status == HttpStatus.NOT_FOUND


def test_etag_schemes_differ_across_vendors():
    """The concrete divergence the wrapper must mask."""
    apache1 = ApacheLikeServer(boot_salt=1)
    apache2 = ApacheLikeServer(boot_salt=2)
    nginx = NginxLikeServer()
    for srv in (apache1, apache2, nginx):
        srv.put("/same", b"identical content")
    tag_a1 = apache1.get("/same")[1]
    tag_a2 = apache2.get("/same")[1]
    tag_n = nginx.get("/same")[1]
    assert tag_a1 != tag_a2          # apache: instance-dependent
    assert tag_n.startswith('W/"')   # nginx: different format entirely
    assert tag_a1 != tag_n


def test_listing_orders_differ():
    apache, nginx = ApacheLikeServer(), NginxLikeServer()
    for srv in (apache, nginx):
        srv.mkcol("/d")
        for name in ("zz", "aa", "mm"):
            srv.put(f"/d/{name}", b"x")
    assert [n for n, _ in apache.propfind("/d")] == ["zz", "aa", "mm"]
    assert [n for n, _ in nginx.propfind("/d")] == ["aa", "mm", "zz"]


# -- wrapper ---------------------------------------------------------------------

def make_wrapped(cls, **kwargs):
    wrapper = HttpConformanceWrapper(cls(**kwargs), array_size=64)
    AbstractStateManager(wrapper, branching=8)

    def op(*parts, read_only=False):
        return decanonical(wrapper.execute(canonical(parts), "c", b"",
                                           read_only=read_only))
    return wrapper, op


def workload(op):
    assert op("MKCOL", "/site")[0] == 201
    assert op("PUT", "/site/index.html", b"<h1>home</h1>", "")[0] == 201
    assert op("PUT", "/site/index.html", b"<h1>v2</h1>", "")[0] == 204
    assert op("PUT", "/site/about.html", b"about", "")[0] == 201
    assert op("DELETE", "/site/about.html")[0] == 204
    assert op("PUT", "/robots.txt", b"User-agent: *", "")[0] == 201


def test_abstract_state_identical_across_vendors():
    states = {}
    for cls, kwargs in ((ApacheLikeServer, {"boot_salt": 3}),
                        (NginxLikeServer, {})):
        wrapper, op = make_wrapped(cls, **kwargs)
        workload(op)
        states[cls.vendor] = [wrapper.get_obj(i) for i in range(64)]
    assert states["apachelike"] == states["nginxlike"]


def test_abstract_etags_are_versions_not_vendor_tags():
    wrapper, op = make_wrapped(ApacheLikeServer)
    workload(op)
    status, etag, body = op("GET", "/site/index.html", "", read_only=True)
    assert status == 200
    assert etag == '"v2"'   # two PUTs
    assert body == b"<h1>v2</h1>"


def test_conditional_put_against_abstract_etag():
    wrapper, op = make_wrapped(NginxLikeServer)
    op("PUT", "/doc", b"one", "")
    status, etag = op("PUT", "/doc", b"two", '"v1"')[:2]
    assert status == 204 and etag == '"v2"'
    assert op("PUT", "/doc", b"three", '"v1"')[0] == 412  # stale tag
    assert op("PUT", "/doc", b"three", '"v2"')[0] == 204


def test_conditional_get_not_modified():
    wrapper, op = make_wrapped(ApacheLikeServer)
    op("PUT", "/page", b"cached", "")
    status, etag, _ = op("GET", "/page", "", read_only=True)
    assert op("GET", "/page", etag, read_only=True)[0] == 304


def test_propfind_sorted_regardless_of_vendor():
    wrapper, op = make_wrapped(ApacheLikeServer)
    op("MKCOL", "/c")
    for name in ("zz", "aa"):
        op("PUT", f"/c/{name}", b"x", "")
    assert [n for n, _ in op("PROPFIND", "/c", read_only=True)[1]] == \
        ["aa", "zz"]


def test_put_objs_roundtrip_across_vendors():
    src, src_op = make_wrapped(ApacheLikeServer, boot_salt=9)
    workload(src_op)
    state = {i: src.get_obj(i) for i in range(64)}
    dst, dst_op = make_wrapped(NginxLikeServer)
    dst.put_objs(state)
    assert [dst.get_obj(i) for i in range(64)] == \
        [state[i] for i in range(64)]
    assert dst_op("GET", "/site/index.html", "", read_only=True)[2] == \
        b"<h1>v2</h1>"


def test_wrapper_shutdown_restart():
    wrapper, op = make_wrapped(NginxLikeServer)
    workload(op)
    before = [wrapper.get_obj(i) for i in range(64)]
    wrapper.shutdown()
    wrapper.restart()
    assert [wrapper.get_obj(i) for i in range(64)] == before


# -- replication -------------------------------------------------------------------


def test_nversion_http_cluster():
    cluster, web = build_base_http(
        [ApacheLikeServer, NginxLikeServer, ApacheLikeServer,
         NginxLikeServer],
        config=BftConfig(n=4, checkpoint_interval=8))
    web.mkcol("/blog")
    etag = web.put("/blog/post1", b"hello world")
    assert etag == '"v1"'
    etag2 = web.put("/blog/post1", b"hello again", if_match=etag)
    assert etag2 == '"v2"'
    with pytest.raises(HttpError) as err:
        web.put("/blog/post1", b"lost update", if_match=etag)
    assert err.value.status == HttpStatus.PRECONDITION_FAILED
    returned_etag, body = web.get("/blog/post1")
    assert (returned_etag, body) == ('"v2"', b"hello again")
    assert web.propfind("/blog") == [("post1", False)]
    cluster.run(2.0)
    roots = {r.state.tree.root_digest for r in cluster.replicas}
    assert len(roots) == 1


def test_replicated_matches_unreplicated():
    cluster, replicated = build_base_http(
        [ApacheLikeServer, NginxLikeServer, ApacheLikeServer,
         NginxLikeServer],
        config=BftConfig(n=4, checkpoint_interval=8))
    _, direct = build_http_std(NginxLikeServer)
    for web in (replicated, direct):
        web.mkcol("/a")
        web.put("/a/x", b"1")
        web.put("/a/y", b"2")
        web.delete("/a/x")
    assert replicated.propfind("/a") == direct.propfind("/a")
    assert replicated.get("/a/y") == direct.get("/a/y")


def test_http_recovery():
    cluster, web = build_base_http(
        [ApacheLikeServer, NginxLikeServer, ApacheLikeServer,
         NginxLikeServer],
        config=BftConfig(n=4, checkpoint_interval=8, reboot_delay=0.3))
    web.mkcol("/data")
    for i in range(10):
        web.put(f"/data/item{i}", b"payload %d" % i)
    cluster.run(1.0)
    victim = cluster.replicas[0]  # apache-like: volatile inode etags
    victim.recovery.start_recovery()
    cluster.run(20.0)
    assert not victim.recovery.recovering
    web.put("/data/post-recovery", b"ok")
    cluster.run(2.0)
    roots = {r.state.tree.root_digest for r in cluster.replicas}
    assert len(roots) == 1
