"""Repo-wide audit: no unseeded randomness or wall-clock reads in src/.

Every simulation outcome must be a pure function of (scenario, seed) —
that is what makes FaultLab's replay command and the shrinker sound.
The checks themselves now live in the ProtoLint rule engine
(``repro.analysis``, rules DET-RNG / DET-CLOCK / DET-PERF); this test is
the thin gate that runs the determinism rule set over ``src/repro`` and
expects silence.  The self-test that the rules actually catch offenders
lives in the per-rule fixtures under ``tests/analysis_fixtures/``
(see ``tests/test_analysis_rules.py``); here we just spot-check the
planted determinism fixtures end to end through the engine.
"""

from pathlib import Path

from repro.analysis import DETERMINISM_RULE_IDS, Engine, select_rules

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"


def test_src_tree_is_deterministic():
    engine = Engine(select_rules(DETERMINISM_RULE_IDS))
    findings = engine.run(SRC)
    assert findings == [], "\n".join(f.render() for f in findings)


def test_the_determinism_rules_catch_planted_offenders():
    engine = Engine(select_rules(DETERMINISM_RULE_IDS))
    by_fixture = {
        "det_rng_bad.py": "DET-RNG",
        "det_clock_bad.py": "DET-CLOCK",
        "det_perf_bad.py": "DET-PERF",
    }
    for name, rule_id in by_fixture.items():
        findings = engine.check_file(FIXTURES / name, rel="bft/planted.py")
        assert findings, f"{name}: expected {rule_id} findings"
        assert {f.rule for f in findings} == {rule_id}
