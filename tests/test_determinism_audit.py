"""Repo-wide audit: no unseeded randomness or wall-clock reads in src/.

Every simulation outcome must be a pure function of (scenario, seed) —
that is what makes FaultLab's replay command and the shrinker sound.  So
production code must never consult the process RNG, the wall clock, or
the OS entropy pool.  Seeded ``random.Random(...)`` instances are fine;
``time.perf_counter`` is allowed only in the explicitly listed
reporting-side modules, where it measures wall time *about* a run and
never feeds back into it.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Calls through the module-level (shared, unseeded) random API.
GLOBAL_RNG_CALLS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "uniform", "sample", "getrandbits", "gauss", "betavariate",
}

#: Wall-clock and entropy reads that break replay determinism outright.
FORBIDDEN = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
}

#: Modules allowed to call time.perf_counter: wall-clock *reporting*
#: only (benchmark fallback timing; trial wall_seconds in reports).
PERF_COUNTER_ALLOWED = {"sim/metrics.py", "faultlab/explorer.py"}


def _module_attr(node):
    """(module, attr) for calls like ``random.choice(...)``, else None."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    return None


def audit(path):
    rel = path.relative_to(SRC).as_posix()
    tree = ast.parse(path.read_text(), filename=str(path))
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        target = _module_attr(node)
        if target is None:
            continue
        module, attr = target
        where = f"{rel}:{node.lineno} {module}.{attr}"
        if module == "random" and attr in GLOBAL_RNG_CALLS:
            problems.append(f"{where} (unseeded global RNG)")
        elif module == "random" and attr == "Random" and \
                not node.args and not node.keywords:
            problems.append(f"{where}() (unseeded Random instance)")
        elif module == "secrets":
            problems.append(f"{where} (OS entropy)")
        elif module == "datetime" and attr in ("now", "utcnow", "today"):
            problems.append(f"{where} (wall clock)")
        elif (module, attr) in FORBIDDEN:
            problems.append(f"{where} (wall clock / entropy)")
        elif module == "time" and attr == "perf_counter" and \
                rel not in PERF_COUNTER_ALLOWED:
            problems.append(f"{where} (perf_counter outside the "
                            f"reporting allowlist)")
    return problems


def test_src_tree_is_deterministic():
    sources = sorted(SRC.rglob("*.py"))
    assert sources, f"no sources under {SRC}"
    problems = [p for path in sources for p in audit(path)]
    assert not problems, "\n".join(problems)


def test_the_auditor_itself_catches_offenders(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import random, time\n"
        "x = random.choice([1, 2])\n"
        "r = random.Random()\n"
        "t = time.time()\n")
    # Point the relpath machinery at the temp tree.
    import tests.test_determinism_audit as audit_mod
    original = audit_mod.SRC
    audit_mod.SRC = tmp_path
    try:
        problems = audit(bad)
    finally:
        audit_mod.SRC = original
    assert len(problems) == 3
    assert any("unseeded global RNG" in p for p in problems)
    assert any("unseeded Random instance" in p for p in problems)
    assert any("wall clock" in p for p in problems)
