"""Client protocol details: retransmission, vote counting, view tracking."""

import pytest

from repro.bft.messages import Reply
from repro.bft.statemachine import InMemoryStateManager
from repro.crypto.digest import digest
from repro.crypto.mac import Authenticator
from tests.conftest import make_kv_cluster


def authed_reply(cluster, replica_id, client_id, request_id, result,
                 result_digest=None, view=0):
    """A reply carrying a *valid* MAC from ``replica_id``."""
    reply = Reply(view, request_id, client_id, replica_id, result,
                  result_digest if result_digest is not None
                  else digest(result))
    reply.auth = Authenticator.create(cluster.registry, replica_id,
                                      [client_id], reply.digest())
    return reply

put = InMemoryStateManager.op_put
get = InMemoryStateManager.op_get


def test_client_retransmits_when_primary_drops_request():
    cluster = make_kv_cluster(client_retry_timeout=0.3,
                              view_change_timeout=5.0)
    sync = cluster.add_client("client0")
    dropped = {"count": 0}

    def drop_first_request(src, dst, msg):
        if (getattr(msg, "kind", "") == "request" and src == "client0"
                and dropped["count"] == 0):
            dropped["count"] += 1
            return False
        return True

    cluster.network.add_filter(drop_first_request)
    assert sync.call(put(0, b"x")) == b"ok"
    assert cluster.clients["client0"].retransmissions >= 1


def test_client_ignores_replies_for_other_requests():
    cluster = make_kv_cluster()
    sync = cluster.add_client("client0")
    sync.call(put(0, b"first"))
    client = cluster.clients["client0"]
    # Inject a stale reply for an old request id mid-flight.
    result_box = {}
    client.invoke(put(1, b"second"), lambda res: result_box.update(r=res))
    stale = Reply(0, 1, "client0", "replica0", b"WRONG", digest(b"WRONG"))
    client.on_message("replica0", stale)
    cluster.run_until(lambda: "r" in result_box)
    assert result_box["r"] == b"ok"


def test_client_rejects_reply_with_mismatched_digest():
    cluster = make_kv_cluster()
    client = cluster.add_client("client0").client
    box = {}
    client.invoke(put(0, b"v"), lambda res: box.update(r=res))
    forged = Reply(0, 1, client.node_id, "replica1", b"EVIL",
                   digest(b"not-evil"))
    client.on_message("replica1", forged)
    cluster.run_until(lambda: "r" in box)
    assert box["r"] == b"ok"


def test_client_learns_view_from_replies():
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=0.3)
    sync = cluster.add_client("client0")
    sync.call(put(0, b"a"))
    assert cluster.clients["client0"].view_estimate == 0
    cluster.replicas[0].crash()
    sync.call(put(1, b"b"))
    assert cluster.clients["client0"].view_estimate >= 1
    # Next request goes straight to the new primary: no *timeout-driven*
    # retransmission needed (at most the instant full-reply nudge when the
    # crashed replica happens to be the designated replier).
    before = cluster.clients["client0"].retransmissions
    start = cluster.scheduler.now
    sync.call(put(2, b"c"))
    assert cluster.clients["client0"].retransmissions <= before + 1
    assert cluster.scheduler.now - start < \
        cluster.config.client_retry_timeout


def test_votes_from_same_replica_counted_once():
    cluster = make_kv_cluster()
    client = cluster.add_client("client0").client
    box = {}
    client.invoke(put(0, b"v"), lambda res: box.update(r=res))
    result = b"ok"
    reply = Reply(0, 1, client.node_id, "replica2", result, digest(result))
    # The same replica repeating itself must not reach the f+1 quorum.
    client.on_message("replica2", reply)
    client.on_message("replica2", reply)
    client.on_message("replica2", reply)
    assert "r" not in box
    cluster.run_until(lambda: "r" in box)
    assert box["r"] == b"ok"


def test_reply_from_non_replica_ignored():
    cluster = make_kv_cluster()
    client = cluster.add_client("client0").client
    box = {}
    client.invoke(put(0, b"v"), lambda res: box.update(r=res))
    fake = Reply(0, 1, client.node_id, "intruder", b"x", digest(b"x"))
    client.on_message("intruder", fake)
    assert "r" not in box
    cluster.run_until(lambda: "r" in box)


def test_read_only_falls_back_to_ordered_path():
    """If tentative replies cannot reach a 2f+1 quorum, the client
    re-issues the read through ordering and still completes."""
    cluster = make_kv_cluster(client_retry_timeout=0.2)
    sync = cluster.add_client("client0")
    sync.call(put(3, b"fallback"))

    def drop_tentative_replies(src, dst, msg):
        if (getattr(msg, "kind", "") == "reply" and msg.tentative
                and src in ("replica2", "replica3")):
            return False
        return True

    cluster.network.add_filter(drop_tentative_replies)
    # Only 2 tentative replies can arrive (< 2f+1 = 3): the client times
    # out, downgrades to the ordered path, and gets the result.
    assert sync.call(get(3), read_only=True) == b"fallback"
    assert cluster.clients["client0"].retransmissions >= 2
    assert cluster.tracer.find("pre_prepare_sent")


def test_stale_read_only_attempt_votes_never_survive_the_fallback():
    """Regression for the read-only -> ordered fallback bookkeeping:
    votes gathered while the call was read-only (including *tentative*
    votes from lying replicas) must be discarded when the call is
    re-issued through ordering, or f Byzantine replicas could bank votes
    against the read attempt and complete a 2f+1 certificate for a
    result no correct replica computed once one more vote lands after
    the fallback."""
    cluster = make_kv_cluster(client_retry_timeout=0.2)
    sync = cluster.add_client("client0")
    sync.call(put(5, b"right"))
    client = cluster.clients["client0"]

    # Stall the read-only attempt: no read-only reply ever arrives.
    cluster.network.add_filter(
        lambda src, dst, msg: not (getattr(msg, "kind", "") == "reply"
                                   and msg.read_only))
    box = {}
    client.invoke(get(5), lambda res: box.update(r=res), read_only=True)
    request_id = client._next_request_id
    cluster.run(0.05)

    def stale_tentative(replica_id):
        reply = Reply(0, request_id, "client0", replica_id, b"stale",
                      digest(b"stale"), tentative=True)
        reply.auth = Authenticator.create(cluster.registry, replica_id,
                                          ["client0"], reply.digest())
        return reply

    # Two colluders bank tentative votes during the read-only attempt.
    client.on_message("replica2", stale_tentative("replica2"))
    client.on_message("replica3", stale_tentative("replica3"))
    assert "r" not in box
    assert len(client._pending.tentative_votes[digest(b"stale")]) == 2

    # Two retry timeouts later the call falls back to the ordered path;
    # every read-only-era vote must be gone.
    cluster.run_until(lambda: client._pending is None
                      or not client._pending.read_only)
    assert client._pending is not None and not client._pending.read_only
    assert not client._pending.tentative_votes
    assert not client._pending.ro_votes
    assert not client._pending.votes

    # A third stale vote lands after the fallback: had the first two
    # survived, this would complete a bogus 2f+1 commit certificate.
    client.on_message("replica1", stale_tentative("replica1"))
    assert "r" not in box
    cluster.run_until(lambda: "r" in box)
    assert box["r"] == b"right"
    assert cluster.metrics.counter_value("client.read_only_fallbacks") == 1


def test_unauthenticated_replies_never_reach_a_quorum():
    """Regression: auth-less replies used to be counted as quorum votes
    (the MAC check was skipped when ``reply.auth is None``), so f+1
    forged messages — free to fabricate for anyone on the network —
    could make the client accept an arbitrary result."""
    cluster = make_kv_cluster()
    client = cluster.add_client("client0").client
    box = {}
    client.invoke(put(0, b"v"), lambda res: box.update(r=res))
    # A full weak quorum (f+1 = 2 distinct replicas) of unauthenticated
    # replies, complete with matching full result bytes.
    for replica in ("replica1", "replica2"):
        evil = Reply(0, 1, "client0", replica, b"EVIL", digest(b"EVIL"))
        assert evil.auth is None
        client.on_message(replica, evil)
    assert "r" not in box
    cluster.run_until(lambda: "r" in box)
    assert box["r"] == b"ok"


def test_reply_with_someone_elses_authenticator_rejected():
    """A valid MAC from replica2 on a reply claiming to be replica1's
    must not count as replica1's vote (one replica, one vote)."""
    cluster = make_kv_cluster()
    client = cluster.add_client("client0").client
    box = {}
    client.invoke(put(0, b"v"), lambda res: box.update(r=res))
    for claimed in ("replica1", "replica3"):
        evil = Reply(0, 1, "client0", claimed, b"EVIL", digest(b"EVIL"))
        evil.auth = Authenticator.create(cluster.registry, "replica2",
                                         ["client0"], evil.digest())
        client.on_message(claimed, evil)
    assert "r" not in box
    cluster.run_until(lambda: "r" in box)
    assert box["r"] == b"ok"


def test_missing_full_result_nudge_does_not_escalate_backoff():
    """Regression: the fast retransmit for a digest-certified result with
    no full bytes used to run through ``_on_retry``, bumping
    ``call.retries`` (doubling the next backoff), miscounting
    ``client.retransmissions``, and burning one of a read-only request's
    two attempts before the ordered fallback."""
    cluster = make_kv_cluster(client_retry_timeout=0.3)
    client = cluster.add_client("client0").client
    box = {}
    client.invoke(put(0, b"v"), lambda res: box.update(r=res))
    # f+1 digest-only votes certify the result, but nobody sent bytes.
    rdigest = digest(b"ok")
    for replica in ("replica1", "replica2"):
        client.on_message(replica, authed_reply(cluster, replica, "client0",
                                                1, None, rdigest))
    assert client.fast_retransmissions == 1
    assert client.retransmissions == 0          # not a timeout
    assert client._pending.retries == 0         # backoff schedule untouched
    assert client.tracer.metrics.counter_value(
        "client.fast_retransmissions") == 1
    cluster.run_until(lambda: "r" in box)
    assert box["r"] == b"ok"


def test_timeout_backoff_escalates_exponentially():
    """Only timeout-driven retransmissions advance the backoff: with all
    client traffic dropped, retries land at 0.1, 0.3, 0.7, 1.5s
    (doubling gaps), not on a fixed or double-escalated schedule."""
    cluster = make_kv_cluster(client_retry_timeout=0.1)
    client = cluster.add_client("client0").client
    cluster.network.add_filter(lambda src, dst, msg: src != "client0")
    client.invoke(put(0, b"never"), lambda res: None)
    expected = 0
    for horizon in (0.1, 0.3, 0.7, 1.5):
        cluster.scheduler.run_until(horizon + 0.01)
        expected += 1
        assert client.retransmissions == expected
    assert client.fast_retransmissions == 0


def test_cancel_abandons_the_call_and_frees_the_client():
    cluster = make_kv_cluster()
    client = cluster.add_client("client0").client
    box = {}
    client.invoke(put(0, b"old"), lambda res: box.update(r=res))
    assert client.cancel()
    assert not client.busy
    assert not client.cancel()                  # nothing left to abandon
    cluster.run(1.0)                            # late replies: ignored
    assert "r" not in box
    assert client.cancelled == 1
    # The pool slot is immediately reusable under a fresh request id.
    box2 = {}
    client.invoke(put(1, b"new"), lambda res: box2.update(r=res))
    cluster.run_until(lambda: "r" in box2)
    assert box2["r"] == b"ok"
    assert "r" not in box
