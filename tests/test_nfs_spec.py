"""The abstract specification codec: XDR object encoding, oids, limits."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.nfs.protocol import FileType
from repro.nfs.spec import (
    AbstractMeta,
    AbstractObject,
    AbstractSpecConfig,
    ROOT_OID,
    decode_object,
    encode_object,
    initial_object,
    oid_bytes,
    oid_parse,
)

META = AbstractMeta(mode=0o644, uid=1, gid=2, atime=10, mtime=20, ctime=30,
                    parent=0)


def test_oid_roundtrip():
    assert oid_parse(oid_bytes(7, 42)) == (7, 42)
    assert oid_parse(ROOT_OID) == (0, 1)


def test_oid_bad_length():
    with pytest.raises(EncodingError):
        oid_parse(b"\x00\x01")


def test_null_object_roundtrip():
    obj = AbstractObject(FileType.NFNON, gen=5)
    decoded = decode_object(encode_object(obj))
    assert decoded.is_free and decoded.gen == 5


def test_file_object_roundtrip():
    obj = AbstractObject(FileType.NFREG, 3, META, data=b"contents")
    decoded = decode_object(encode_object(obj))
    assert decoded.ftype == FileType.NFREG
    assert decoded.data == b"contents"
    assert decoded.meta == META


def test_directory_object_roundtrip_sorted():
    entries = (("a", 1, 1), ("b", 2, 1), ("c", 3, 2))
    obj = AbstractObject(FileType.NFDIR, 1, META, entries=entries)
    decoded = decode_object(encode_object(obj))
    assert decoded.entries == entries


def test_directory_unsorted_rejected():
    obj = AbstractObject(FileType.NFDIR, 1, META,
                         entries=(("b", 1, 1), ("a", 2, 1)))
    with pytest.raises(EncodingError):
        encode_object(obj)


def test_symlink_roundtrip():
    obj = AbstractObject(FileType.NFLNK, 2, META, target="../there")
    assert decode_object(encode_object(obj)).target == "../there"


def test_missing_meta_rejected():
    with pytest.raises(EncodingError):
        encode_object(AbstractObject(FileType.NFREG, 1, None))


def test_trailing_garbage_rejected():
    blob = encode_object(AbstractObject(FileType.NFNON, 1)) + b"\x00" * 4
    with pytest.raises(EncodingError):
        decode_object(blob)


def test_initial_state():
    root = initial_object(0)
    assert root.ftype == FileType.NFDIR
    assert root.gen == 1
    assert root.meta.parent == 0
    free = initial_object(5)
    assert free.is_free and free.gen == 0


def test_abstract_size_accounting():
    small = AbstractObject(FileType.NFREG, 1, META, data=b"")
    big = AbstractObject(FileType.NFREG, 1, META, data=b"x" * 1000)
    assert big.abstract_size() - small.abstract_size() == 1000
    d = AbstractObject(FileType.NFDIR, 1, META,
                       entries=(("name", 1, 1),))
    assert d.abstract_size() > 64


def test_spec_config_validation():
    with pytest.raises(ValueError):
        AbstractSpecConfig(array_size=0)


@given(st.binary(max_size=500), st.integers(0, 2**32 - 1))
def test_file_encoding_injective_in_data_and_gen(data, gen):
    a = encode_object(AbstractObject(FileType.NFREG, gen, META, data=data))
    b = encode_object(AbstractObject(FileType.NFREG, gen, META,
                                     data=data + b"!"))
    assert a != b


@given(st.lists(st.tuples(st.text(min_size=1, max_size=10,
                                  alphabet="abcdefgh"),
                          st.integers(1, 100), st.integers(1, 5)),
                max_size=8, unique_by=lambda e: e[0]))
def test_directory_roundtrip_property(entries):
    entries = tuple(sorted(entries, key=lambda e: e[0]))
    obj = AbstractObject(FileType.NFDIR, 1, META, entries=entries)
    assert decode_object(encode_object(obj)).entries == entries
