"""Conformance wrapper: the heart of the BASE methodology.

The central property: wrappers around *different* backends, fed the same
operation sequence with the same agreed nondeterministic values, produce
byte-identical abstract states and byte-identical client replies.
"""

import pytest

from repro.base.state import AbstractStateManager
from repro.encoding.canonical import canonical, decanonical
from repro.nfs.backends import ALL_BACKENDS, FreeBsdUfsBackend, LinuxExt2Backend
from repro.nfs.protocol import FileType, NfsStatus
from repro.nfs.spec import (
    AbstractSpecConfig,
    ROOT_OID,
    decode_object,
    oid_bytes,
)
from repro.nfs.wrapper import NfsConformanceWrapper
from repro.base.nondet import ClockValue

SPEC = AbstractSpecConfig(array_size=64, capacity_bytes=1024 * 1024,
                          max_file_size=64 * 1024, max_name_len=48)


class WrapperHarness:
    """Drives a wrapper the way the BASE library would."""

    def __init__(self, backend_cls, spec=SPEC, **backend_kwargs):
        self.clock = 0.0
        backend = backend_cls(clock=lambda: self.clock + 0.001,
                              **backend_kwargs)
        self.wrapper = NfsConformanceWrapper(backend, spec=spec,
                                             clock=lambda: self.clock)
        self.manager = AbstractStateManager(self.wrapper, branching=8)
        self.seq = 0

    def op(self, proc, *args, read_only=False):
        self.seq += 1
        self.clock += 1.0
        nondet = b"" if read_only else ClockValue.encode(self.clock)
        raw = self.wrapper.execute(canonical((proc,) + args), "client",
                                   nondet, read_only=read_only)
        result = decanonical(raw)
        return result

    def ok(self, proc, *args, read_only=False):
        result = self.op(proc, *args, read_only=read_only)
        assert result[0] == 0, f"{proc} failed: {NfsStatus(result[0]).name}"
        return result[1:]

    def abstract_state(self):
        return [self.wrapper.get_obj(i) for i in range(SPEC.array_size)]


SATTR_FILE = (0o644, 0, 0, -1, -1, -1)
SATTR_DIR = (0o755, 0, 0, -1, -1, -1)


def standard_workload(h: WrapperHarness):
    h.ok("mkdir", ROOT_OID, "docs", SATTR_DIR)
    dir_fh = h.ok("lookup", ROOT_OID, "docs", read_only=True)[0]
    f1, _ = h.ok("create", dir_fh, "b.txt", SATTR_FILE)
    f2, _ = h.ok("create", dir_fh, "a.txt", SATTR_FILE)
    h.ok("write", f1, 0, b"contents of b")
    h.ok("write", f2, 0, b"contents of a")
    h.ok("symlink", dir_fh, "link", "a.txt", SATTR_FILE)
    h.ok("rename", dir_fh, "b.txt", dir_fh, "z.txt")
    h.ok("create", ROOT_OID, "top", SATTR_FILE)
    h.ok("remove", ROOT_OID, "top")
    return dir_fh, f1, f2


@pytest.mark.parametrize("backend_cls", ALL_BACKENDS,
                         ids=lambda c: c.vendor)
def test_basic_operation_flow(backend_cls):
    h = WrapperHarness(backend_cls)
    standard_workload(h)
    entries = h.ok("readdir",
                   h.ok("lookup", ROOT_OID, "docs", read_only=True)[0],
                   read_only=True)[0]
    assert [name for name, _ in entries] == ["a.txt", "link", "z.txt"]


def test_identical_abstract_state_across_all_backends():
    """THE property: four different implementations, one abstract state."""
    states = {}
    replies = {}
    for backend_cls in ALL_BACKENDS:
        kwargs = {"boot_salt": hash(backend_cls.vendor) & 0xFFFF} \
            if backend_cls is FreeBsdUfsBackend else {}
        h = WrapperHarness(backend_cls, **kwargs)
        standard_workload(h)
        states[backend_cls.vendor] = h.abstract_state()
        dir_fh = h.ok("lookup", ROOT_OID, "docs", read_only=True)[0]
        replies[backend_cls.vendor] = (
            h.ok("readdir", dir_fh, read_only=True),
            h.ok("getattr", dir_fh, read_only=True),
        )
    reference = states["linux-ext2"]
    for vendor, state in states.items():
        assert state == reference, f"{vendor} abstract state diverged"
    reference_reply = replies["linux-ext2"]
    for vendor, reply in replies.items():
        assert reply == reference_reply, f"{vendor} replies diverged"


def test_readdir_sorted_regardless_of_backend_order():
    h = WrapperHarness(OpenBsdFfsBackend := ALL_BACKENDS[2])
    for name in ["zz", "aa", "mm"]:
        h.ok("create", ROOT_OID, name, SATTR_FILE)
    entries = h.ok("readdir", ROOT_OID, read_only=True)[0]
    assert [n for n, _ in entries] == ["aa", "mm", "zz"]


def test_timestamps_are_agreed_values_not_backend_clock():
    """The backend's clock is skewed +1ms and Linux rounds to seconds; the
    abstract mtime must be exactly the agreed value regardless."""
    h = WrapperHarness(LinuxExt2Backend)
    fh, fattr_fields = h.ok("create", ROOT_OID, "f", SATTR_FILE)
    from repro.nfs.protocol import Fattr
    fattr = Fattr.decode(fattr_fields)
    assert fattr.mtime == 1_000_000  # == the nondet value (1.0s), exactly


def test_oids_assigned_deterministically_lowest_free():
    h = WrapperHarness(LinuxExt2Backend)
    f1, _ = h.ok("create", ROOT_OID, "one", SATTR_FILE)
    f2, _ = h.ok("create", ROOT_OID, "two", SATTR_FILE)
    assert f1 == oid_bytes(1, 1)
    assert f2 == oid_bytes(2, 1)
    h.ok("remove", ROOT_OID, "one")
    f3, _ = h.ok("create", ROOT_OID, "three", SATTR_FILE)
    assert f3 == oid_bytes(1, 2)  # reused index, bumped generation


def test_stale_oid_rejected_after_generation_bump():
    h = WrapperHarness(LinuxExt2Backend)
    f1, _ = h.ok("create", ROOT_OID, "one", SATTR_FILE)
    h.ok("remove", ROOT_OID, "one")
    h.ok("create", ROOT_OID, "two", SATTR_FILE)
    result = h.op("getattr", f1, read_only=True)
    assert result[0] == int(NfsStatus.NFSERR_STALE)


def test_virtualized_nospc_from_abstract_capacity():
    spec = AbstractSpecConfig(array_size=16, capacity_bytes=1000,
                              max_file_size=64 * 1024, max_name_len=48)
    h = WrapperHarness(LinuxExt2Backend, spec=spec)
    fh, _ = h.ok("create", ROOT_OID, "big", SATTR_FILE)
    result = h.op("write", fh, 0, b"x" * 2000)
    assert result[0] == int(NfsStatus.NFSERR_NOSPC)


def test_virtualized_fbig():
    spec = AbstractSpecConfig(array_size=16, capacity_bytes=10**9,
                              max_file_size=100, max_name_len=48)
    h = WrapperHarness(LinuxExt2Backend, spec=spec)
    fh, _ = h.ok("create", ROOT_OID, "f", SATTR_FILE)
    assert h.op("write", fh, 0, b"y" * 200)[0] == int(NfsStatus.NFSERR_FBIG)
    assert h.op("write", fh, 0, b"y" * 50)[0] == 0


def test_virtualized_nametoolong():
    h = WrapperHarness(LinuxExt2Backend)
    result = h.op("create", ROOT_OID, "n" * 100, SATTR_FILE)
    assert result[0] == int(NfsStatus.NFSERR_NAMETOOLONG)


def test_link_rejected_outside_spec():
    h = WrapperHarness(LinuxExt2Backend)
    assert h.op("link", ROOT_OID, ROOT_OID, "hard")[0] == \
        int(NfsStatus.NFSERR_PERM)


def test_mutating_op_on_read_only_path_rejected():
    h = WrapperHarness(LinuxExt2Backend)
    result = h.op("create", ROOT_OID, "f", SATTR_FILE, read_only=True)
    assert result[0] == int(NfsStatus.NFSERR_ROFS)


def test_get_obj_encodes_decoded_roundtrip():
    h = WrapperHarness(LinuxExt2Backend)
    dir_fh, f1, f2 = standard_workload(h)
    for index in range(SPEC.array_size):
        obj = decode_object(h.wrapper.get_obj(index))
        if index == 0:
            assert obj.ftype == FileType.NFDIR
    root_obj = decode_object(h.wrapper.get_obj(0))
    assert [e[0] for e in root_obj.entries] == ["docs"]


def test_put_objs_roundtrip_to_fresh_backend():
    """Full-state transfer: abstract state from a Linux wrapper installed
    into a fresh FreeBSD wrapper reproduces identical abstract state."""
    src = WrapperHarness(LinuxExt2Backend)
    standard_workload(src)
    state = src.abstract_state()

    dst = WrapperHarness(FreeBsdUfsBackend, boot_salt=99)
    dst.wrapper.put_objs({i: blob for i, blob in enumerate(state)})
    assert dst.abstract_state() == state
    # And the concrete file system is actually usable.
    dir_fh = dst.ok("lookup", ROOT_OID, "docs", read_only=True)[0]
    entries = dst.ok("readdir", dir_fh, read_only=True)[0]
    assert [n for n, _ in entries] == ["a.txt", "link", "z.txt"]
    a_fh = dst.ok("lookup", dir_fh, "a.txt", read_only=True)[0]
    data = dst.ok("read", a_fh, 0, 100, read_only=True)[0]
    assert data == b"contents of a"


def test_put_objs_partial_update():
    """Only the changed objects are shipped; unchanged ones survive."""
    a = WrapperHarness(LinuxExt2Backend)
    b = WrapperHarness(LinuxExt2Backend)
    standard_workload(a)
    standard_workload(b)
    before = b.abstract_state()
    # Extra ops only on a.
    dir_fh = a.ok("lookup", ROOT_OID, "docs", read_only=True)[0]
    f = a.ok("lookup", dir_fh, "a.txt", read_only=True)[0]
    a.ok("write", f, 0, b"UPDATED")
    after = a.abstract_state()
    changed = {i: blob for i, blob in enumerate(after)
               if blob != before[i]}
    assert 0 < len(changed) < 5
    b.wrapper.put_objs(changed)
    assert b.abstract_state() == after


def test_put_objs_handles_deletions_and_frees():
    a = WrapperHarness(LinuxExt2Backend)
    b = WrapperHarness(LinuxExt2Backend)
    standard_workload(a)
    standard_workload(b)
    before = a.abstract_state()
    dir_fh = a.ok("lookup", ROOT_OID, "docs", read_only=True)[0]
    a.ok("remove", dir_fh, "z.txt")
    after = a.abstract_state()
    changed = {i: blob for i, blob in enumerate(after) if blob != before[i]}
    b.wrapper.put_objs(changed)
    assert b.abstract_state() == after
    dir_fh_b = b.ok("lookup", ROOT_OID, "docs", read_only=True)[0]
    entries = b.ok("readdir", dir_fh_b, read_only=True)[0]
    assert [n for n, _ in entries] == ["a.txt", "link"]


def test_put_objs_rename_in_place_preserves_unshipped_data():
    """A pure rename changes only the directory object; the file object is
    unchanged and NOT shipped — its data must survive via backend rename."""
    a = WrapperHarness(LinuxExt2Backend)
    b = WrapperHarness(LinuxExt2Backend)
    for h in (a, b):
        fh, _ = h.ok("create", ROOT_OID, "old-name", SATTR_FILE)
        h.ok("write", fh, 0, b"precious data")
    before = a.abstract_state()
    # Rename on a only — note mtime changes on the dir, and the file's
    # ctime changes, so the file object IS shipped here.  To force the
    # pure-rename path, craft the delta manually: ship only the root dir.
    a.ok("rename", ROOT_OID, "old-name", ROOT_OID, "new-name")
    after = a.abstract_state()
    changed = {i: blob for i, blob in enumerate(after) if blob != before[i]}
    b.wrapper.put_objs(changed)
    assert b.abstract_state() == after
    fh_b = b.ok("lookup", ROOT_OID, "new-name", read_only=True)[0]
    assert b.ok("read", fh_b, 0, 100, read_only=True)[0] == b"precious data"
