"""Backend tests: NFS semantics of the core plus every vendor quirk."""

import pytest

from repro.nfs.backends import (
    ALL_BACKENDS,
    CorruptingBackend,
    FreeBsdUfsBackend,
    LeakyBackend,
    LinuxExt2Backend,
    OpenBsdFfsBackend,
    SolarisUfsBackend,
)
from repro.nfs.protocol import FileType, NfsError, NfsStatus, Sattr


@pytest.fixture(params=ALL_BACKENDS, ids=lambda cls: cls.vendor)
def backend(request):
    return request.param()


def test_mount_and_root_attrs(backend):
    root = backend.mount()
    fattr = backend.getattr(root)
    assert fattr.ftype == FileType.NFDIR
    assert fattr.fileid == 2


def test_create_write_read_roundtrip(backend):
    root = backend.mount()
    fh, fattr = backend.create(root, "file.txt", Sattr())
    assert fattr.ftype == FileType.NFREG
    backend.write(fh, 0, b"hello world")
    data, fattr2 = backend.read(fh, 0, 100)
    assert data == b"hello world"
    assert fattr2.size == 11


def test_sparse_write_zero_fills(backend):
    root = backend.mount()
    fh, _ = backend.create(root, "sparse", Sattr())
    backend.write(fh, 10, b"end")
    data, _ = backend.read(fh, 0, 100)
    assert data == b"\x00" * 10 + b"end"


def test_mkdir_lookup_nested(backend):
    root = backend.mount()
    d1, _ = backend.mkdir(root, "a", Sattr())
    d2, _ = backend.mkdir(d1, "b", Sattr())
    backend.create(d2, "deep", Sattr())
    found, fattr = backend.lookup(d2, "deep")
    assert fattr.ftype == FileType.NFREG


def test_lookup_missing_is_noent(backend):
    root = backend.mount()
    with pytest.raises(NfsError) as err:
        backend.lookup(root, "ghost")
    assert err.value.status == NfsStatus.NFSERR_NOENT


def test_duplicate_create_is_exist(backend):
    root = backend.mount()
    backend.create(root, "dup", Sattr())
    with pytest.raises(NfsError) as err:
        backend.create(root, "dup", Sattr())
    assert err.value.status == NfsStatus.NFSERR_EXIST


def test_remove_then_stale_handle(backend):
    root = backend.mount()
    fh, _ = backend.create(root, "gone", Sattr())
    backend.remove(root, "gone")
    with pytest.raises(NfsError) as err:
        backend.getattr(fh)
    assert err.value.status == NfsStatus.NFSERR_STALE


def test_rmdir_nonempty_rejected(backend):
    root = backend.mount()
    d, _ = backend.mkdir(root, "full", Sattr())
    backend.create(d, "child", Sattr())
    with pytest.raises(NfsError) as err:
        backend.rmdir(root, "full")
    assert err.value.status == NfsStatus.NFSERR_NOTEMPTY


def test_rename_within_and_across_dirs(backend):
    root = backend.mount()
    d1, _ = backend.mkdir(root, "src", Sattr())
    d2, _ = backend.mkdir(root, "dst", Sattr())
    fh, _ = backend.create(d1, "f", Sattr())
    backend.write(fh, 0, b"payload")
    backend.rename(d1, "f", d1, "g")
    backend.rename(d1, "g", d2, "h")
    fh2, _ = backend.lookup(d2, "h")
    data, _ = backend.read(fh2, 0, 100)
    assert data == b"payload"
    with pytest.raises(NfsError):
        backend.lookup(d1, "f")


def test_symlink_readlink(backend):
    root = backend.mount()
    backend.symlink(root, "ln", "/target/path", Sattr())
    fh, fattr = backend.lookup(root, "ln")
    assert fattr.ftype == FileType.NFLNK
    assert backend.readlink(fh) == "/target/path"


def test_setattr_truncate(backend):
    root = backend.mount()
    fh, _ = backend.create(root, "t", Sattr())
    backend.write(fh, 0, b"0123456789")
    backend.setattr(fh, Sattr(size=4))
    data, _ = backend.read(fh, 0, 100)
    assert data == b"0123"


def test_statfs_reports_capacity(backend):
    root = backend.mount()
    stat = backend.statfs(root)
    assert stat.blocks > 0
    assert stat.bfree <= stat.blocks


def test_bad_handle_rejected(backend):
    with pytest.raises(NfsError) as err:
        backend.getattr(b"\x01\x02")
    assert err.value.status == NfsStatus.NFSERR_STALE


# -- vendor quirks ------------------------------------------------------------------


def test_file_handle_schemes_differ_across_vendors():
    handles = {}
    for cls in ALL_BACKENDS:
        backend = cls()
        root = backend.mount()
        fh, _ = backend.create(root, "same-name", Sattr())
        handles[cls.vendor] = fh
    assert len(set(handles.values())) == len(ALL_BACKENDS)
    assert len(handles["linux-ext2"]) == 8
    assert len(handles["solaris-ufs"]) == 16
    assert len(handles["openbsd-ffs"]) == 12


def test_readdir_orders_differ():
    names = ["zeta", "alpha", "mid", "beta"]
    orders = {}
    for cls in ALL_BACKENDS:
        backend = cls()
        root = backend.mount()
        for name in names:
            backend.create(root, name, Sattr())
        orders[cls.vendor] = [n for n, _ in backend.readdir(root)]
    assert orders["linux-ext2"] == names                    # insertion
    assert orders["openbsd-ffs"] == list(reversed(names))   # reverse
    assert len({tuple(o) for o in orders.values()}) >= 3    # mostly distinct


def test_linux_second_granularity_timestamps():
    backend = LinuxExt2Backend(clock=lambda: 12.789)
    root = backend.mount()
    fh, fattr = backend.create(root, "f", Sattr())
    assert fattr.mtime == 12_000_000  # rounded down to the second
    solaris = SolarisUfsBackend(clock=lambda: 12.789)
    fh2, fattr2 = solaris.create(solaris.mount(), "f", Sattr())
    assert fattr2.mtime == 12_789_000


def test_linux_unstable_writes_flag():
    assert LinuxExt2Backend.stable_writes is False
    assert all(cls.stable_writes for cls in ALL_BACKENDS
               if cls is not LinuxExt2Backend)


def test_freebsd_handles_nondeterministic_across_instances():
    a = FreeBsdUfsBackend(boot_salt=1)
    b = FreeBsdUfsBackend(boot_salt=2)
    fa, _ = a.create(a.mount(), "x", Sattr())
    fb, _ = b.create(b.mount(), "x", Sattr())
    assert fa != fb


def test_freebsd_server_restart_invalidates_handles():
    backend = FreeBsdUfsBackend(boot_salt=7)
    root = backend.mount()
    fh, _ = backend.create(root, "f", Sattr())
    backend.server_restart()
    with pytest.raises(NfsError) as err:
        backend.getattr(fh)
    assert err.value.status == NfsStatus.NFSERR_STALE
    # But the object is still reachable by name with a fresh handle.
    fh2, fattr = backend.lookup(backend.mount(), "f")
    assert fattr.ftype == FileType.NFREG


def test_other_vendors_keep_handles_across_restart():
    backend = SolarisUfsBackend()
    root = backend.mount()
    fh, _ = backend.create(root, "f", Sattr())
    backend.server_restart()
    assert backend.getattr(fh).ftype == FileType.NFREG


# -- fault injection ------------------------------------------------------------------


def test_leaky_backend_ages_out_and_rejuvenates():
    leaky = LeakyBackend(LinuxExt2Backend(), leak_per_op=600, limit=1500)
    root = leaky.mount()               # leaked: 600
    leaky.create(root, "ok", Sattr())  # leaked: 1200, still under limit
    with pytest.raises(NfsError) as err:
        leaky.create(root, "fails", Sattr())  # leaked: 1800 >= limit
    assert err.value.status == NfsStatus.NFSERR_IO
    leaky.rejuvenate()
    leaky.create(root, "fine-again", Sattr())


def test_leaky_backend_reads_survive_aging():
    leaky = LeakyBackend(LinuxExt2Backend(), leak_per_op=600, limit=1500)
    root = leaky.mount()
    fh, _ = leaky.create(root, "f", Sattr())
    for _ in range(5):
        leaky.getattr(fh)  # reads keep working after aging
    assert leaky.aged_out


def test_corrupting_backend_flips_written_bytes():
    inner = LinuxExt2Backend()
    corrupting = CorruptingBackend(inner, probability=1.0, seed=1)
    root = corrupting.mount()
    fh, _ = corrupting.create(root, "f", Sattr())
    corrupting.write(fh, 0, b"AAAAAAAAAA")
    data, _ = corrupting.read(fh, 0, 10)
    assert data != b"AAAAAAAAAA"
    assert corrupting.corruptions == 1
