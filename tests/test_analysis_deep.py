"""DeepLint: fixture rules, call-graph edge cases, CLI flags.

Fixture trees live under ``tests/analysis_fixtures/deep/<case>/repro/``:
the ``repro/`` directory makes the loader assign the same dotted module
names the real package gets, so the sink/root anchors in the analysis
config resolve against the fixtures unchanged.
"""

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis import baseline as baselinelib
from repro.analysis import report as reportlib
from repro.analysis.__main__ import main
from repro.analysis.config import DEEP_EVERYWHERE
from repro.analysis.deep.callgraph import build_callgraph
from repro.analysis.deep.catalog import DEEP_RULE_IDS, DEEP_RULES_BY_ID
from repro.analysis.deep.driver import run_deep
from repro.analysis.deep.project import load_project
from repro.analysis.engine import Finding

FIXTURES = Path(__file__).parent / "analysis_fixtures" / "deep"

#: case dir -> (rule id, expected findings of that rule)
CASES = {
    "taint_clock_bad": ("DEEP-TAINT", 1),
    "taint_value_bad": ("DEEP-TAINT", 2),
    "taint_setorder_bad": ("DEEP-TAINT", 2),
    "taint_ok": ("DEEP-TAINT", 0),
    "handler_bad_1": ("DEEP-HANDLER", 1),
    "handler_bad_2": ("DEEP-HANDLER", 2),
    "handler_ok": ("DEEP-HANDLER", 0),
    "cost_bad_1": ("DEEP-COST", 1),
    "cost_bad_2": ("DEEP-COST", 1),
    "cost_ok": ("DEEP-COST", 0),
    "quorum_bad_1": ("DEEP-QUORUM", 2),
    "quorum_bad_2": ("DEEP-QUORUM", 2),
    "quorum_ok": ("DEEP-QUORUM", 0),
}


def deep(case: str):
    return run_deep([FIXTURES / case], DEEP_EVERYWHERE)


def of_rule(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


def test_every_deep_rule_has_fixture_coverage():
    covered = {rule for rule, count in CASES.values() if count}
    assert covered == set(DEEP_RULE_IDS)
    # At least two bad fixtures and one ok fixture per rule.
    for rule_id in DEEP_RULE_IDS:
        bad = [c for c, (r, n) in CASES.items() if r == rule_id and n]
        ok = [c for c, (r, n) in CASES.items() if r == rule_id and not n]
        assert len(bad) >= 2, f"{rule_id} needs >=2 bad fixtures"
        assert ok, f"{rule_id} needs an ok fixture"


@pytest.mark.parametrize("case", sorted(CASES))
def test_fixture(case):
    rule_id, expected = CASES[case]
    found = of_rule(deep(case), rule_id)
    rendered = "\n".join(f.render() for f in found)
    assert len(found) == expected, \
        f"{case}: expected {expected} {rule_id}, got:\n{rendered}"


def test_catalog_is_complete():
    for rule_id in DEEP_RULE_IDS:
        info = DEEP_RULES_BY_ID[rule_id]
        assert info.title and info.rationale and info.example


def test_taint_finding_carries_source_to_sink_chain():
    (finding,) = deep("taint_clock_bad")
    assert finding.rule == "DEEP-TAINT"
    assert finding.path == "bft/build.py"
    assert finding.chain[0].startswith("source: time.time()")
    assert finding.chain[-1].startswith("sink: canonical()")
    assert any("now_ts" in hop for hop in finding.chain)
    # The message names the path by function only — line churn in the
    # chain must not churn the baseline fingerprint.
    assert "now_ts" in finding.message
    assert ":" not in finding.message.split(" via ")[1]


def test_handler_orphan_is_a_warning():
    findings = of_rule(deep("handler_bad_2"), "DEEP-HANDLER")
    by_severity = {f.severity for f in findings}
    assert by_severity == {"error", "warning"}
    orphan = [f for f in findings if f.severity == "warning"]
    assert "handle_zap" in orphan[0].message


def test_state_sink_reported_through_handler():
    findings = of_rule(deep("taint_setorder_bad"), "DEEP-TAINT")
    labels = {f.message.split(" reaches ")[1].split(" in ")[0]
              for f in findings}
    assert any("abstract-state write" in label for label in labels)
    assert any("wire message Ping" in label for label in labels)


def test_deep_runs_are_deterministic():
    roots = [FIXTURES / case for case in sorted(CASES)]
    one = run_deep(roots, DEEP_EVERYWHERE)
    two = run_deep(roots, DEEP_EVERYWHERE)
    assert one == two
    dump = lambda fs: json.dumps([f.to_dict() for f in fs])  # noqa: E731
    assert dump(one) == dump(two)


# -- call-graph edge cases (synthetic trees) -----------------------------------

CANONICAL_SRC = "def canonical(value):\n    return repr(value).encode()\n"


def write_tree(root: Path, files):
    for rel, source in files.items():
        path = root / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def test_op_dispatch_edge(tmp_path):
    """@op methods get a synthetic edge from execute(): a handler that
    charges only inside an @op body still satisfies DEEP-COST."""
    write_tree(tmp_path, {
        "sim/node.py": """\
            class Node:
                def charge(self, units):
                    return units
            """,
        "bft/messages.py": """\
            class Message:
                kind = "message"


            class Ping(Message):
                kind = "ping"
            """,
        "bft/svc.py": """\
            from repro.sim.node import Node


            def op(method):
                return method


            class Service(Node):
                def handle_ping(self, src, msg):
                    self.execute(msg)

                def execute(self, args):
                    return args

                @op
                def put(self, value):
                    self.charge(1)
                    return value
            """,
    })
    project = load_project([tmp_path], DEEP_EVERYWHERE)
    graph = build_callgraph(project)
    execute = "repro.bft.svc.Service.execute"
    assert "repro.bft.svc.Service.put" in graph.callees(execute)
    findings = run_deep([tmp_path], DEEP_EVERYWHERE)
    assert not of_rule(findings, "DEEP-COST")


def test_super_call_resolution(tmp_path):
    write_tree(tmp_path, {
        "encoding/canonical.py": CANONICAL_SRC,
        "bft/layers.py": """\
            import time

            from repro.encoding.canonical import canonical


            class Base:
                def stamp(self):
                    return time.time()


            class Child(Base):
                def stamp(self):
                    return 0

                def build(self):
                    return canonical(super().stamp())
            """,
    })
    findings = of_rule(run_deep([tmp_path], DEEP_EVERYWHERE),
                       "DEEP-TAINT")
    # super().stamp() resolves past Child.stamp (which is clean) to
    # Base.stamp (tainted).
    assert len(findings) == 1
    assert any("Base.stamp" in hop for hop in findings[0].chain)


def test_lambda_and_comprehension(tmp_path):
    write_tree(tmp_path, {
        "encoding/canonical.py": CANONICAL_SRC,
        "bft/funcs.py": """\
            import time

            from repro.encoding.canonical import canonical


            def via_lambda():
                f = lambda: time.time()
                return canonical(f())


            def via_comprehension():
                pending = {1, 2, 3}
                return canonical([x for x in pending])
            """,
    })
    findings = of_rule(run_deep([tmp_path], DEEP_EVERYWHERE),
                       "DEEP-TAINT")
    kinds = sorted(f.message.split("(")[1].split(":")[0]
                   for f in findings)
    assert kinds == ["set-order", "wall-clock"]


def test_aliased_imports(tmp_path):
    write_tree(tmp_path, {
        "encoding/canonical.py": CANONICAL_SRC,
        "bft/aliased.py": """\
            import time as clock

            from repro.encoding.canonical import canonical as canon


            def build():
                return canon(clock.time())
            """,
    })
    findings = of_rule(run_deep([tmp_path], DEEP_EVERYWHERE),
                       "DEEP-TAINT")
    assert len(findings) == 1
    assert "time.time()" in findings[0].message


def test_mutual_recursion_reaches_fixpoint(tmp_path):
    write_tree(tmp_path, {
        "encoding/canonical.py": CANONICAL_SRC,
        "bft/mutual.py": """\
            import time

            from repro.encoding.canonical import canonical


            def ping(n):
                if n:
                    return pong(n - 1)
                return time.time()


            def pong(n):
                return ping(n)


            def build():
                return canonical(ping(3))
            """,
    })
    findings = of_rule(run_deep([tmp_path], DEEP_EVERYWHERE),
                       "DEEP-TAINT")
    assert len(findings) == 1


def test_suppression_silences_deep_finding(tmp_path):
    write_tree(tmp_path, {
        "encoding/canonical.py": CANONICAL_SRC,
        "bft/build.py": """\
            import time

            from repro.encoding.canonical import canonical


            def build():
                # protolint: disable=DEEP-TAINT ts is display-only here
                ts = time.time()
                return canonical(ts)
            """,
    })
    findings = run_deep([tmp_path], DEEP_EVERYWHERE)
    assert not of_rule(findings, "DEEP-TAINT")


# -- report schema v2 ----------------------------------------------------------

def test_report_schema_accepts_chain():
    finding = Finding("bft/a.py", 3, 0, "DEEP-TAINT", "taint msg",
                      chain=("source: x at bft/a.py:3",
                             "sink: canonical() at bft/b.py:9"))
    diff = baselinelib.apply([finding], [])
    doc = reportlib.build(diff, DEEP_RULE_IDS, ["src/repro"])
    assert doc["findings"][0]["chain"] == list(finding.chain)
    rehydrated = reportlib.finding_from_dict(doc["findings"][0])
    assert rehydrated == finding


def test_report_schema_rejects_bad_chain():
    finding = Finding("bft/a.py", 3, 0, "DEEP-TAINT", "taint msg")
    diff = baselinelib.apply([finding], [])
    doc = reportlib.build(diff, DEEP_RULE_IDS, ["src/repro"])
    doc["findings"][0]["chain"] = "not-a-list"
    with pytest.raises(ValueError):
        reportlib.validate(doc)


# -- CLI -----------------------------------------------------------------------

def test_cli_deep_flag(tmp_path, capsys):
    out = tmp_path / "report.json"
    code = main([str(FIXTURES / "taint_clock_bad"), "--deep",
                 "--out", str(out)])
    assert code == 1
    report = json.loads(out.read_text())
    reportlib.validate(report)
    rules = {doc["rule"] for doc in report["findings"]}
    assert rules == {"DEEP-TAINT"}
    assert report["findings"][0]["chain"]
    assert set(DEEP_RULE_IDS) <= set(report["rules"])
    text = capsys.readouterr().out
    assert "DEEP-TAINT" in text and "source: time.time()" in text


def test_cli_without_deep_skips_deep_rules(tmp_path):
    out = tmp_path / "report.json"
    code = main([str(FIXTURES / "taint_clock_bad"), "--out", str(out)])
    assert code == 0
    report = json.loads(out.read_text())
    assert not set(DEEP_RULE_IDS) & set(report["rules"])


def test_cli_prune_baseline_is_idempotent(tmp_path, capsys):
    path = tmp_path / "baseline.json"
    baselinelib.dump(["DEEP-TAINT:bft/gone.py:no longer fires"], path)
    args = [str(FIXTURES / "taint_ok"), "--deep",
            "--baseline", str(path), "--prune-baseline"]
    assert main(args) == 0
    assert "pruned stale baseline entry" in capsys.readouterr().out
    assert baselinelib.load(path) == []
    before = path.read_text()
    assert main(args) == 0
    assert "pruned" not in capsys.readouterr().out
    assert path.read_text() == before


def _git(repo, *argv):
    subprocess.run(["git", "-C", str(repo), *argv], check=True,
                   capture_output=True)


def test_cli_changed_since(tmp_path, monkeypatch):
    """--changed-since limits per-file rules to changed files, but the
    deep passes stay whole-program."""
    repo = tmp_path / "work"
    pkg = repo / "repro" / "bft"
    pkg.mkdir(parents=True)
    (pkg / "stable.py").write_text(textwrap.dedent("""\
        import time


        def old_violation():
            return time.time()


        def quorum(votes):
            return len(votes) >= 3
        """), encoding="utf-8")
    (pkg / "touched.py").write_text("def touched():\n    return 1\n",
                                    encoding="utf-8")
    _git(repo, "init", "-q")
    _git(repo, "add", ".")
    _git(repo, "-c", "user.email=t@t", "-c", "user.name=t",
         "commit", "-q", "-m", "seed")
    (pkg / "touched.py").write_text(textwrap.dedent("""\
        import time


        def touched():
            return time.time()
        """), encoding="utf-8")
    monkeypatch.chdir(repo)

    out = repo / "report.json"
    code = main([str(repo / "repro"), "--changed-since", "HEAD",
                 "--out", str(out)])
    assert code == 1
    paths = {d["path"] for d in json.loads(out.read_text())["findings"]}
    # stable.py's DET-CLOCK violation is filtered (unchanged)...
    assert paths == {"bft/touched.py"}

    code = main([str(repo / "repro"), "--changed-since", "HEAD",
                 "--deep", "--out", str(out)])
    assert code == 1
    report = json.loads(out.read_text())
    deep_paths = {d["path"] for d in report["findings"]
                  if d["rule"].startswith("DEEP-")}
    # ...but the whole-program quorum check still sees it.
    assert "bft/stable.py" in deep_paths


def test_cli_changed_since_bad_ref(tmp_path, monkeypatch, capsys):
    repo = tmp_path / "work"
    (repo / "repro").mkdir(parents=True)
    _git(repo, "init", "-q")
    monkeypatch.chdir(repo)
    code = main([str(repo / "repro"), "--changed-since",
                 "no-such-ref"])
    assert code == 2
    assert "--changed-since" in capsys.readouterr().err
