"""Fast-path differential battery: replies must be byte-identical with
the fast path on and off.

For every registered service, the same deterministic op script runs
through two replicated deployments — one with tentative execution and
the read-only optimization enabled (the fast path), one fully ordered —
and every reply must match byte for byte.  The fast path changes *when*
a replica replies (at prepared, or immediately for reads), never *what*
it computes, so any divergence is a correctness bug, not a tuning
artifact.

Services whose mutations execute under an agreed timestamp (NFS, Thor)
get their nondet propose/check pinned to a deterministic function of
the request id: the real proposal reads the simulated clock, and the
two deployments reach any given request at different simulated times
precisely because the fast path is faster.
"""

import pytest

from repro.base.nondet import ClockValue
from repro.bft.config import BftConfig
from repro.encoding.canonical import canonical, decanonical
from repro.service.deploy import ReplicatedDeployment
from repro.service.registry import get_service, load_all

load_all()

SERVICES = ("nfs", "sql", "http", "thor")

#: Services whose wrappers propose clock nondeterminism.
USES_NONDET = {"nfs": True, "sql": False, "http": False, "thor": True}


def _pin_nondet(cluster) -> None:
    """Replace the wall-clock nondet agreement with a function of the
    batch's first request id — identical across deployments no matter
    how fast each one runs."""

    def propose(requests, seq):
        if not requests:
            return b""
        return ClockValue.encode(float(requests[0].request_id))

    def check(requests, seq, nondet):
        return nondet == propose(requests, seq)

    for replica in cluster.replicas:
        replica.state.propose_nondet = propose
        replica.state.check_nondet = check


def _service_options(name: str) -> dict:
    if name == "nfs":
        from repro.nfs.spec import AbstractSpecConfig
        return {"spec": AbstractSpecConfig(array_size=64)}
    if name == "thor":
        from repro.thor.objects import ObjectRecord
        from repro.thor.pages import Page

        def db_loader(server):
            for pagenum in range(4):
                server.load_page(Page(pagenum, {
                    o: ObjectRecord("Item", (pagenum * 10 + o,)).encode()
                    for o in range(4)}))

        return {"db_loader": db_loader, "num_pages": 8, "max_clients": 4}
    return {}


# -- per-service scripts ------------------------------------------------------------
#
# Each script is a generator of ``(op_tuple, read_only)`` receiving the
# decoded reply of the previous op (so ops can use returned handles).
# Scripts mix mutations with read-only ops: the read-only optimization
# only matters when reads interleave with ordered writes.


def _nfs_script():
    from repro.nfs.spec import ROOT_OID
    sattr = (0o644, 0, 0, -1, -1, -1)
    created = yield (("create", ROOT_OID, "a.txt", sattr), False)
    assert created[0] == 0, created
    oid = created[1]
    yield (("write", oid, 0, b"fast path bytes"), False)
    yield (("getattr", oid), True)
    other = yield (("create", ROOT_OID, "b.txt", sattr), False)
    yield (("write", other[1], 0, b"second file"), False)
    yield (("getattr", other[1]), True)
    yield (("write", oid, 4, b"PATCHED"), False)
    yield (("getattr", ROOT_OID), True)


def _sql_script():
    ok = yield (("create_table", "t", ("id", "val"), "id"), False)
    assert ok[0] == "OK", ok
    for i in range(5):
        yield (("insert", "t", (i, f"v{i}")), False)
    yield (("select", "t", 2), True)
    yield (("tables",), True)
    yield (("insert", "t", (9, "late")), False)
    yield (("select", "t", 9), True)


def _http_script():
    status = yield (("PUT", "/a.txt", b"alpha", ""), False)
    assert status[0] == 201, status
    yield (("PUT", "/b.txt", b"bravo", ""), False)
    yield (("GET", "/a.txt", ""), True)
    yield (("MKCOL", "/docs"), False)
    yield (("PUT", "/docs/c.html", b"<p>c</p>", ""), False)
    yield (("PROPFIND", "/docs"), True)
    yield (("DELETE", "/b.txt"), False)
    yield (("GET", "/a.txt", ""), True)


def _thor_script():
    # Commit timestamps must sit within the slack of the agreed receive
    # time, which the pinned nondet makes ``request_id`` seconds: op k
    # here is request k+1.
    from repro.thor.objects import ObjectRecord
    from repro.thor.orefs import make_oref

    def rec(value):
        return ObjectRecord("Item", (value,)).encode()

    yield (("start_session", "alice"), False)            # request 1
    yield (("start_session", "bob"), False)              # request 2
    yield (("fetch", "alice", 0, (), ()), False)         # request 3
    yield (("fetch", "bob", 0, (), ()), False)           # request 4
    oref = make_oref(0, 1)
    committed = yield (("commit", "alice", 5_000_001, (oref,),
                        ((oref, rec("alice-v1")),), (), ()), False)
    assert committed[0] == 0 and committed[1], committed
    yield (("fetch", "bob", 1, (), ()), False)           # request 6
    oref2 = make_oref(1, 2)
    yield (("commit", "bob", 7_000_001, (oref2,),
            ((oref2, rec("bob-v1")),), (), (oref,)), False)


SCRIPTS = {
    "nfs": _nfs_script,
    "sql": _sql_script,
    "http": _http_script,
    "thor": _thor_script,
}


def _run_script(name: str, fast: bool):
    """Run the service's script through one replicated deployment;
    returns (raw reply bytes per op, the client's accept-path counters)."""
    config = BftConfig(checkpoint_interval=8,
                       tentative_execution=fast,
                       read_only_optimization=fast)
    deployment = ReplicatedDeployment.build(
        get_service(name), config=config, seed=11,
        **_service_options(name))
    if USES_NONDET[name]:
        _pin_nondet(deployment.cluster)
    channel = deployment.channel
    replies = []
    script = SCRIPTS[name]()
    decoded = None
    while True:
        try:
            op, read_only = script.send(decoded) if replies else next(script)
        except StopIteration:
            break
        raw = channel.call(canonical(op), read_only=read_only)
        replies.append(raw)
        decoded = decanonical(raw)
    metrics = deployment.cluster.metrics
    paths = {p: metrics.counter_value(f"client.accept_{p}")
             for p in ("committed", "tentative", "read_only")}
    return replies, paths


@pytest.mark.parametrize("name", SERVICES)
def test_fast_path_replies_are_byte_identical(name):
    fast_replies, fast_paths = _run_script(name, fast=True)
    ordered_replies, ordered_paths = _run_script(name, fast=False)
    assert len(fast_replies) == len(ordered_replies) > 0
    for i, (fast_raw, ordered_raw) in enumerate(
            zip(fast_replies, ordered_replies)):
        assert fast_raw == ordered_raw, (name, i, fast_raw, ordered_raw)
    # The comparison must actually compare the two paths: the fast run
    # has to accept via tentative certificates (and read-only replies
    # when the script reads), the ordered run only via committed f+1.
    assert fast_paths["tentative"] > 0, fast_paths
    assert ordered_paths["tentative"] == ordered_paths["read_only"] == 0, \
        ordered_paths
    assert ordered_paths["committed"] == len(ordered_replies)


# Thor is absent: every Thor op mutates server state, so its script has
# no read-only traffic to route.
@pytest.mark.parametrize("name", ["nfs", "sql", "http"])
def test_read_only_ops_take_the_read_only_path(name):
    _, fast_paths = _run_script(name, fast=True)
    assert fast_paths["read_only"] > 0, fast_paths
