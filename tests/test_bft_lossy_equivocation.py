"""Equivocating primary on a lossy network.

Equivocation alone is survivable (the split backup falls behind and
catches up via state transfer); message loss alone is survivable (retry
and retransmission).  This is the combination: the conflicting
pre-prepares *and* the repair traffic both ride a network that drops a
slice of everything, so retries, view changes, and checkpoint catch-up
all have to work at once."""

import pytest

from repro.bft.config import BftConfig
from repro.bft.faults import EquivocatingPrimaryBehavior
from repro.bft.statemachine import InMemoryStateManager
from repro.harness.cluster import build_cluster
from repro.sim.network import LinkConfig, NetworkConfig

put = InMemoryStateManager.op_put


def make_lossy_cluster(seed, drop_rate):
    config = BftConfig(checkpoint_interval=4, view_change_timeout=0.5,
                       client_retry_timeout=0.3)
    network_config = NetworkConfig(
        seed=seed, default_link=LinkConfig(drop_rate=drop_rate))
    return build_cluster(lambda i: InMemoryStateManager(size=64),
                         config=config, network_config=network_config,
                         seed=seed)


@pytest.mark.parametrize("seed,drop_rate", [(1, 0.05), (7, 0.08)])
def test_lossy_equivocating_primary_never_splits_state(seed, drop_rate):
    cluster = make_lossy_cluster(seed, drop_rate)
    cluster.replicas[0].behavior = EquivocatingPrimaryBehavior()
    client = cluster.add_client("client0")

    for i in range(8):
        assert client.call(put(i % 8, b"op%d" % i)) == b"ok"

    # Let retransmissions, view changes, and catch-up drain.
    cluster.run(5.0)

    correct = cluster.replicas[1:]
    frontier = max(r.last_executed for r in correct)
    at_frontier = [r for r in correct if r.last_executed == frontier]
    # 2f+1 correct replicas exist; loss may leave a laggard mid-fetch,
    # but a weak quorum must reach the frontier with identical state.
    assert len(at_frontier) >= cluster.config.weak_quorum
    values = {tuple(r.state.values) for r in at_frontier}
    assert len(values) == 1, "equivocation under loss split the state"
    assert all(r.state.values[i % 8] == b"op%d" % i
               for r in at_frontier for i in range(8))


def test_lossy_equivocation_forces_and_survives_a_view_change():
    cluster = make_lossy_cluster(3, 0.08)
    cluster.replicas[0].behavior = EquivocatingPrimaryBehavior()
    client = cluster.add_client("client0")
    for i in range(10):
        assert client.call(put(i % 4, b"v%d" % i)) == b"ok"
    cluster.run(5.0)
    # Under sustained equivocation plus loss the backups eventually give
    # up on the primary; the service keeps running either way, and if a
    # view change fired the trace records it on the correct replicas.
    if any(r.view >= 1 for r in cluster.replicas[1:]):
        assert cluster.tracer.find("new_view_accepted")
    assert client.call(put(0, b"final")) == b"ok"
