"""The deep gate: ``src/repro`` stays DeepLint-clean.

Mirrors the file-level gate in ``test_analysis_engine.py``: the deep
passes run over the real tree against the committed
``deeplint-baseline.json``.  New findings fail (fix the code or add a
reasoned inline suppression); stale baseline entries fail too, so the
baseline only ever shrinks.
"""

from pathlib import Path

from repro.analysis import baseline as baselinelib
from repro.analysis.deep.driver import run_deep

REPO = Path(__file__).parent.parent
SRC = REPO / "src" / "repro"
BASELINE = REPO / "deeplint-baseline.json"


def test_src_tree_is_deeplint_clean():
    findings = run_deep([SRC])
    fingerprints = baselinelib.load(BASELINE)
    diff = baselinelib.apply(findings, fingerprints)
    assert not diff.new, (
        "new deep findings (fix them or suppress with a reasoned "
        "'# protolint: disable=' comment):\n"
        + "\n".join(f.render() + "\n" + "\n".join(
            f"    {hop}" for hop in f.chain) for f in diff.new))
    assert not diff.stale, (
        "stale deeplint-baseline.json entries (debt paid — delete "
        "them):\n" + "\n".join(diff.stale))
