"""Thor server unit tests: OCC validation, MOB, cache, invalidations."""

import pytest

from repro.thor.mob import ModifiedObjectBuffer
from repro.thor.cache import PageCache
from repro.thor.objects import ObjectRecord
from repro.thor.orefs import make_oref, oref_onum, oref_pagenum
from repro.thor.pages import Page, PageStore
from repro.thor.server import ThorServer, ThorServerConfig, ThorError
from repro.thor.vq import ValidationQueue


def rec(value):
    return ObjectRecord("Item", (value,)).encode()


def loaded_server(seed=0, **cfg):
    server = ThorServer(ThorServerConfig(seed=seed, **cfg))
    for pagenum in range(4):
        page = Page(pagenum, {onum: rec(pagenum * 100 + onum)
                              for onum in range(8)})
        server.load_page(page)
    return server


def test_oref_packing_roundtrip():
    oref = make_oref(12345, 678)
    assert oref_pagenum(oref) == 12345
    assert oref_onum(oref) == 678
    with pytest.raises(ValueError):
        make_oref(2**21, 0)
    with pytest.raises(ValueError):
        make_oref(0, 4096)


def test_page_encode_decode_roundtrip():
    page = Page(3, {1: b"one", 5: b"five"})
    assert Page.decode(3, page.encode()).objects == page.objects


def test_fetch_requires_session():
    server = loaded_server()
    with pytest.raises(ThorError):
        server.fetch("nobody", 0)


def test_fetch_returns_page_and_tracks_directory():
    server = loaded_server()
    server.start_session("c1")
    result = server.fetch("c1", 2)
    page = Page.decode(2, result.page_blob)
    assert page.objects[3] == rec(203)
    assert "c1" in server.directory.clients_caching(2)


def test_commit_applies_via_mob_not_disk():
    server = loaded_server()
    server.start_session("c1")
    server.fetch("c1", 0)
    oref = make_oref(0, 1)
    result = server.commit("c1", 1000, frozenset([oref]),
                           {oref: rec(b"updated")})
    assert result.committed
    assert len(server.mob) == 1
    # Disk still has the old value; the *current* page has the new one.
    disk_page = Page.decode(0, server.disk.raw(0))
    assert disk_page.objects[1] == rec(1)
    assert server.current_page(0).objects[1] == rec(b"updated")


def test_occ_write_write_conflict_aborts_earlier_timestamp():
    server = loaded_server()
    for c in ("c1", "c2"):
        server.start_session(c)
    oref = make_oref(0, 0)
    assert server.commit("c2", 2000, frozenset([oref]),
                         {oref: rec("late")}).committed
    # c1's txn has an *earlier* timestamp but arrives after: rejected.
    assert not server.commit("c1", 1500, frozenset([oref]),
                             {oref: rec("early")}).committed
    assert server.aborts == 1


def test_occ_read_write_conflict():
    server = loaded_server()
    for c in ("c1", "c2"):
        server.start_session(c)
    oref = make_oref(1, 0)
    other = make_oref(1, 1)
    assert server.commit("c2", 2000, frozenset([oref]), {}).committed
    # c1 wrote what c2 read, with an earlier timestamp: abort.
    assert not server.commit("c1", 1500, frozenset([oref]),
                             {oref: rec("x")}).committed
    # Disjoint objects with earlier timestamps are fine.
    assert server.commit("c1", 1800, frozenset([other]),
                         {other: rec("y")}).committed


def test_commit_with_invalid_object_aborts():
    server = loaded_server()
    for c in ("reader", "writer"):
        server.start_session(c)
    server.fetch("reader", 0)
    oref = make_oref(0, 2)
    assert server.commit("writer", 1000, frozenset([oref]),
                         {oref: rec("w")}).committed
    assert oref in server.invalid_sets.get("reader")
    # reader uses the stale object without acking the invalidation: abort.
    assert not server.commit("reader", 2000, frozenset([oref]),
                             {oref: rec("r")}).committed
    # After acking, a retry with fresh data commits.
    result = server.commit("reader", 3000, frozenset([oref]),
                           {oref: rec("r2")}, invalidation_acks=(oref,))
    assert result.committed


def test_invalidations_only_for_clients_caching_the_page():
    server = loaded_server()
    for c in ("c1", "c2", "c3"):
        server.start_session(c)
    server.fetch("c1", 0)
    server.fetch("c2", 1)
    oref = make_oref(0, 0)
    server.commit("c3", 1000, frozenset([oref]), {oref: rec("z")})
    assert oref in server.invalid_sets.get("c1")
    assert not server.invalid_sets.get("c2")


def test_page_discard_stops_invalidations():
    server = loaded_server()
    for c in ("c1", "c2"):
        server.start_session(c)
    server.fetch("c1", 0)
    server.fetch("c1", 1, discarded_pages=(0,))
    oref = make_oref(0, 0)
    server.commit("c2", 1000, frozenset([oref]), {oref: rec("n")})
    assert oref not in server.invalid_sets.get("c1")


def test_mob_flush_installs_to_disk():
    server = loaded_server(mob_bytes=100)
    server.start_session("c1")
    orefs = [make_oref(0, i) for i in range(8)]
    for i, oref in enumerate(orefs):
        server.commit("c1", 1000 + i, frozenset([oref]),
                      {oref: rec("v%d" % i)})
    assert server.mob.flushes > 0
    # Every object is still current regardless of where it lives.
    for i, oref in enumerate(orefs):
        assert server.read_object(oref) == rec("v%d" % i)


def test_vq_eviction_raises_threshold():
    vq = ValidationQueue(capacity=2)
    vq.insert(100, frozenset([1]), frozenset())
    vq.insert(200, frozenset([2]), frozenset())
    vq.insert(300, frozenset([3]), frozenset())  # evicts ts=100
    assert vq.threshold == 100
    assert not vq.validate(90, frozenset([9]), frozenset(), frozenset())
    assert vq.validate(400, frozenset([9]), frozenset(), frozenset())


def test_vq_lowest_free_index_allocation():
    vq = ValidationQueue(capacity=4)
    assert vq.insert(100, frozenset(), frozenset()) == 0
    assert vq.insert(50, frozenset(), frozenset()) == 1  # not sorted by ts
    assert vq.insert(200, frozenset(), frozenset()) == 2


def test_cache_lru_with_jitter_stays_bounded():
    cache = PageCache(capacity_pages=4, seed=3, jitter=0.5)
    for i in range(20):
        cache.put(Page(i))
    assert len(cache) <= 4
    assert cache.evictions == 16


def test_concrete_nondeterminism_across_seeds():
    """Two servers with different seeds, same workload: same reads, but
    different internal (cache/MOB/disk) states."""
    def run(seed):
        server = loaded_server(seed=seed, cache_pages=2, mob_bytes=120)
        server.start_session("c")
        for i in range(10):
            oref = make_oref(i % 4, i % 8)
            server.commit("c", 1000 + i, frozenset([oref]),
                          {oref: rec("w%d" % i)})
        reads = [server.read_object(make_oref(p, o))
                 for p in range(4) for o in range(8)]
        return server, reads

    s1, reads1 = run(1)
    s2, reads2 = run(2)
    assert reads1 == reads2  # observable behaviour identical
    internal1 = (sorted(s1.mob.orefs()), s1.disk.writes)
    internal2 = (sorted(s2.mob.orefs()), s2.disk.writes)
    assert internal1 != internal2  # concrete states drifted


def test_end_session_clears_client_state():
    server = loaded_server()
    server.start_session("c1")
    server.fetch("c1", 0)
    server.end_session("c1")
    assert "c1" not in server.directory.clients_caching(0)
    with pytest.raises(ThorError):
        server.fetch("c1", 0)
