"""ReplayBehavior and DelayBehavior: stale traffic and slow replicas."""

from repro.bft.faults import HONEST, DelayBehavior, ReplayBehavior
from repro.bft.statemachine import InMemoryStateManager
from repro.sim.scheduler import Scheduler
from tests.conftest import make_kv_cluster

put = InMemoryStateManager.op_put


class FakeMsg:
    def __init__(self, kind, tag):
        self.kind = kind
        self.tag = tag


class FakeNetwork:
    def __init__(self):
        self.sent = []

    def send(self, src, dst, msg):
        self.sent.append((src, dst, msg))


class FakeNode:
    def __init__(self, scheduler):
        self.node_id = "replica1"
        self.network = FakeNetwork()
        self.scheduler = scheduler


def test_replay_resends_stale_messages_every_nth_send():
    node = FakeNode(Scheduler())
    behavior = ReplayBehavior(history=4, every=2).bind(node)
    m1, m2, m3, m4 = [FakeMsg("prepare", i) for i in range(4)]

    assert behavior.rewrite_outgoing(m1, "replica2") is m1
    assert node.network.sent == []  # nothing stale yet

    assert behavior.rewrite_outgoing(m2, "replica3") is m2
    assert node.network.sent == [("replica1", "replica2", m1)]
    assert behavior.replayed == 1

    behavior.rewrite_outgoing(m3, "replica0")
    behavior.rewrite_outgoing(m4, "replica2")
    assert behavior.replayed == 2
    # The replay targets the stale message's original destination.
    assert node.network.sent[1][1] == "replica2"


def test_replay_history_is_bounded():
    node = FakeNode(Scheduler())
    behavior = ReplayBehavior(history=2, every=1000).bind(node)
    for i in range(10):
        behavior.rewrite_outgoing(FakeMsg("prepare", i), "replica2")
    assert len(behavior._stale) == 2
    assert [m.tag for _, m in behavior._stale] == [8, 9]


def test_delay_holds_messages_for_the_configured_interval():
    scheduler = Scheduler()
    node = FakeNode(scheduler)
    behavior = DelayBehavior(delay=0.05).bind(node)
    msg = FakeMsg("commit", 0)

    assert behavior.rewrite_outgoing(msg, "replica2") is None
    assert behavior.held == 1
    scheduler.run_until(0.04)
    assert node.network.sent == []  # still held
    scheduler.run_until(0.06)
    assert node.network.sent == [("replica1", "replica2", msg)]


def test_delay_kind_filter_passes_other_kinds_through():
    node = FakeNode(Scheduler())
    behavior = DelayBehavior(delay=0.05, kinds=("commit",)).bind(node)
    prepare = FakeMsg("prepare", 0)
    commit = FakeMsg("commit", 1)

    assert behavior.rewrite_outgoing(prepare, "replica2") is prepare
    assert behavior.rewrite_outgoing(commit, "replica2") is None
    assert behavior.held == 1


def test_assigning_a_behavior_binds_it_but_honest_stays_shared():
    cluster = make_kv_cluster()
    behavior = DelayBehavior(delay=0.01)
    cluster.replicas[1].behavior = behavior
    assert behavior.node is cluster.replicas[1]
    cluster.replicas[1].behavior = HONEST
    # The shared honest singleton must never be bound to any one node.
    assert HONEST.node is None


def test_replaying_backup_does_not_disrupt_service():
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=0.3)
    behavior = ReplayBehavior(every=2)
    cluster.replicas[2].behavior = behavior
    client = cluster.add_client("client0")
    for i in range(8):
        assert client.call(put(i % 4, b"v%d" % i)) == b"ok"
    assert behavior.replayed > 0, "the replayer never replayed anything"
    cluster.run(2.0)
    frontier = max(r.last_executed for r in cluster.replicas)
    at_frontier = [r for r in cluster.replicas if r.last_executed == frontier]
    assert len(at_frontier) >= cluster.config.quorum
    values = {tuple(r.state.values) for r in at_frontier}
    assert len(values) == 1, "replayed traffic split the state"


def test_delayed_backup_does_not_disrupt_service():
    cluster = make_kv_cluster(view_change_timeout=0.5,
                              client_retry_timeout=0.3)
    behavior = DelayBehavior(delay=0.02)
    cluster.replicas[1].behavior = behavior
    client = cluster.add_client("client0")
    for i in range(8):
        assert client.call(put(i % 4, b"v%d" % i)) == b"ok"
    assert behavior.held > 0, "the delayer never held anything"
    cluster.run(2.0)  # held messages drain
    frontier = max(r.last_executed for r in cluster.replicas)
    at_frontier = [r for r in cluster.replicas if r.last_executed == frontier]
    assert len(at_frontier) >= cluster.config.quorum
    values = {tuple(r.state.values) for r in at_frontier}
    assert len(values) == 1, "delayed traffic split the state"
