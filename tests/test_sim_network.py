"""Unit tests for the simulated network and node base class."""

from dataclasses import dataclass

import pytest

from repro.sim import LinkConfig, Network, NetworkConfig, Node, Scheduler


@dataclass
class Ping:
    kind: str = "ping"
    payload: str = ""

    def wire_size(self):
        return 64 + len(self.payload)


class Recorder(Node):
    def __init__(self, node_id, network):
        super().__init__(node_id, network)
        self.received = []

    def handle_ping(self, src, msg):
        self.received.append((src, msg.payload, self.now))


def make_net(seed=0, **link_kwargs):
    sched = Scheduler()
    link = LinkConfig(**link_kwargs) if link_kwargs else LinkConfig()
    net = Network(sched, NetworkConfig(seed=seed, default_link=link))
    return sched, net


def test_point_to_point_delivery():
    sched, net = make_net(jitter=0.0)
    a = Recorder("a", net)
    b = Recorder("b", net)
    a.send("b", Ping(payload="hi"))
    sched.run()
    assert len(b.received) == 1
    src, payload, t = b.received[0]
    assert src == "a" and payload == "hi"
    assert t > 0  # latency + bandwidth charged


def test_bandwidth_charge_scales_with_size():
    sched, net = make_net(jitter=0.0)
    a = Recorder("a", net)
    b = Recorder("b", net)
    a.send("b", Ping(payload="x"))
    a.send("b", Ping(payload="y" * 100_000))
    sched.run()
    t_small = b.received[0][2]
    t_big = b.received[1][2]
    assert t_big - t_small > 0.001  # 100 KB at 100 Mb/s ~ 8 ms


def test_multicast_reaches_all_destinations():
    sched, net = make_net()
    a = Recorder("a", net)
    others = [Recorder(f"r{i}", net) for i in range(3)]
    a.multicast([r.node_id for r in others], Ping(payload="m"))
    sched.run()
    assert all(len(r.received) == 1 for r in others)


def test_broadcast_excludes_sender():
    sched, net = make_net()
    a = Recorder("a", net)
    b = Recorder("b", net)
    net.broadcast("a", Ping(payload="b"))
    sched.run()
    assert len(a.received) == 0
    assert len(b.received) == 1


def test_partition_drops_messages_and_heals():
    sched, net = make_net()
    a = Recorder("a", net)
    b = Recorder("b", net)
    net.partition("a", "b")
    a.send("b", Ping())
    sched.run()
    assert b.received == []
    assert net.messages_dropped == 1
    net.heal("a", "b")
    a.send("b", Ping())
    sched.run()
    assert len(b.received) == 1


def test_drop_rate_loses_some_messages():
    sched, net = make_net(seed=42, drop_rate=0.5, jitter=0.0)
    a = Recorder("a", net)
    b = Recorder("b", net)
    for _ in range(200):
        a.send("b", Ping())
    sched.run()
    assert 30 < len(b.received) < 170


def test_filter_can_drop_selectively():
    sched, net = make_net()
    a = Recorder("a", net)
    b = Recorder("b", net)
    net.add_filter(lambda s, d, m: m.payload != "evil")
    a.send("b", Ping(payload="evil"))
    a.send("b", Ping(payload="good"))
    sched.run()
    assert [p for _, p, _ in b.received] == ["good"]


def test_crashed_node_neither_sends_nor_receives():
    sched, net = make_net()
    a = Recorder("a", net)
    b = Recorder("b", net)
    b.crash()
    a.send("b", Ping())
    sched.run()
    assert b.received == []
    a.crash()
    a.send("b", Ping())
    sched.run()
    assert net.messages_sent == 1  # second send suppressed at the node


def test_restarted_node_receives_again():
    sched, net = make_net()
    a = Recorder("a", net)
    b = Recorder("b", net)
    b.crash()
    a.send("b", Ping())
    sched.run()
    b.restart_node()
    a.send("b", Ping())
    sched.run()
    assert len(b.received) == 1


def test_per_link_override():
    sched, net = make_net(jitter=0.0)
    a = Recorder("a", net)
    b = Recorder("b", net)
    c = Recorder("c", net)
    net.set_link("a", "c", LinkConfig(latency=1.0, jitter=0.0))
    a.send("b", Ping())
    a.send("c", Ping())
    sched.run()
    assert b.received[0][2] < 0.01
    assert c.received[0][2] >= 1.0


def test_multicast_charges_per_destination_bandwidth():
    # Regression: multicast used to compute the serialization delay from
    # the *first* destination's bandwidth and apply it to everyone.
    sched, net = make_net(jitter=0.0, latency=0.0)
    a = Recorder("a", net)
    slow = Recorder("slow", net)
    fast = Recorder("fast", net)
    default = Recorder("default", net)
    nbytes = 64 + 100_000
    net.set_link("a", "slow", LinkConfig(latency=0.0, jitter=0.0,
                                         bandwidth=1_000_000.0))
    net.set_link("a", "fast", LinkConfig(latency=0.0, jitter=0.0,
                                         bandwidth=100_000_000.0))
    # "slow" is deliberately first: its bandwidth must not leak onto the
    # other destinations' delays.
    a.multicast(["slow", "fast", "default"], Ping(payload="y" * 100_000))
    sched.run()
    t_slow = slow.received[0][2]
    t_fast = fast.received[0][2]
    t_default = default.received[0][2]
    assert t_slow == pytest.approx(nbytes / 1_000_000.0)
    assert t_fast == pytest.approx(nbytes / 100_000_000.0)
    # Unconfigured links fall back to the sender's default link config.
    assert t_default == pytest.approx(nbytes / LinkConfig().bandwidth)
    # The sender still serializes once: one payload against bytes_sent.
    assert net.bytes_sent == nbytes


def test_duplicate_gets_independent_delay():
    # Regression: duplicates used to arrive at exactly delay * 2.
    sched, net = make_net(seed=3, jitter=0.01, duplicate_rate=1.0)
    a = Recorder("a", net)
    b = Recorder("b", net)
    a.send("b", Ping())
    sched.run()
    assert len(b.received) == 2
    assert net.messages_duplicated == 1
    t1, t2 = sorted(t for _, _, t in b.received)
    assert t2 != pytest.approx(2 * t1)


def test_duplicate_without_jitter_is_not_double_delay():
    # With zero jitter both copies take the same deterministic trip —
    # the duplicate must not be charged the path twice.
    sched, net = make_net(jitter=0.0, duplicate_rate=1.0)
    a = Recorder("a", net)
    b = Recorder("b", net)
    a.send("b", Ping())
    sched.run()
    assert len(b.received) == 2
    t1, t2 = (t for _, _, t in b.received)
    assert t1 == pytest.approx(t2)


def test_determinism_same_seed_same_delivery_times():
    def run(seed):
        sched, net = make_net(seed=seed, jitter=0.001)
        a = Recorder("a", net)
        b = Recorder("b", net)
        for _ in range(20):
            a.send("b", Ping())
        sched.run()
        return [t for _, _, t in b.received]

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_timer_restart_and_stop():
    sched, net = make_net()
    fired = []
    node = Recorder("a", net)
    timer = node.make_timer(1.0, lambda: fired.append(sched.now))
    timer.start()
    assert timer.running
    sched.run()
    assert fired == [1.0]
    assert not timer.running
    timer.start()
    timer.stop()
    sched.run()
    assert fired == [1.0]
    timer.restart(2.0)
    sched.run()
    assert fired == [1.0, 3.0]


def test_timer_start_while_running_records_new_period():
    sched, net = make_net()
    fired = []
    node = Recorder("a", net)
    timer = node.make_timer(1.0, lambda: fired.append(sched.now))
    timer.start()
    # A running timer keeps its current deadline, but the new period must
    # not be silently discarded: it takes effect on the next arm.
    timer.start(period=5.0)
    assert timer.period == 5.0
    sched.run()
    assert fired == [1.0]
    timer.start()
    sched.run()
    assert fired == [1.0, 6.0]


def test_multicast_counts_bytes_only_when_a_copy_enters_fabric():
    sched, net = make_net(jitter=0.0)
    a = Recorder("a", net)
    b = Recorder("b", net)
    c = Recorder("c", net)
    msg = Ping(payload="x" * 100)
    net.partition("a", "b")
    net.partition("a", "c")
    a.multicast(["b", "c"], msg)
    sched.run()
    # Every copy was partitioned: nothing went onto the wire.
    assert net.bytes_sent == 0
    assert net.messages_dropped == 2
    assert b.received == [] and c.received == []
    # Filters that drop every copy must not count bytes either.
    drop_all = lambda src, dst, m: False
    net.heal_all()
    net.add_filter(drop_all)
    a.multicast(["b", "c"], msg)
    sched.run()
    assert net.bytes_sent == 0
    net.remove_filter(drop_all)
    # One reachable destination: the single serialization counts once.
    net.partition("a", "c")
    a.multicast(["b", "c"], msg)
    sched.run()
    assert net.bytes_sent == msg.wire_size()
    assert [p for _, p, _ in b.received] == [msg.payload]
