"""Invariant checkers against synthetic execution logs, plus the
end-to-end regression: a beyond-f colluding pair must be caught."""

from repro.faultlab.explorer import run_trial
from repro.faultlab.invariants import (
    AcceptedReply,
    ExecutionEntry,
    RollbackEntry,
    check_agreement,
    check_liveness,
    check_reply_validity,
)

CORRECT = ("replica0", "replica1", "replica2")


def entry(seq, rid, digest, client="c0", read_only=False):
    return ExecutionEntry(seq=seq, client_id=client, request_id=rid,
                          result_digest=digest, read_only=read_only)


def test_agreement_accepts_identical_histories():
    log = {r: [entry(1, 1, b"a"), entry(2, 2, b"b")] for r in CORRECT}
    assert check_agreement(log, CORRECT) == []


def test_agreement_catches_divergent_digest_at_a_seq():
    log = {r: [entry(1, 1, b"a")] for r in CORRECT}
    log["replica2"] = [entry(1, 1, b"X")]
    violations = check_agreement(log, CORRECT)
    assert len(violations) == 1
    assert violations[0].invariant == "agreement"
    assert "seq 1 diverged" in violations[0].detail


def test_agreement_compares_whole_batches_at_one_seq():
    # One pre-prepare batch = several executions at the same seq; same
    # ordered batch everywhere is agreement, a reordered batch is not.
    batch = [entry(1, 1, b"a"), entry(1, 2, b"b", client="c1")]
    log = {r: list(batch) for r in CORRECT}
    assert check_agreement(log, CORRECT) == []
    log["replica1"] = [batch[1], batch[0]]
    violations = check_agreement(log, CORRECT)
    assert len(violations) == 1 and "seq 1 diverged" in violations[0].detail


def test_agreement_allows_reexecution_after_rollback():
    # replica2 state-transferred back to seq 1 and legitimately re-ran
    # seq 2; without the marker the same trace is an ordering violation.
    log = {r: [entry(1, 1, b"a"), entry(2, 2, b"b")] for r in CORRECT}
    log["replica2"] = log["replica2"] + [RollbackEntry(1), entry(2, 2, b"b")]
    assert check_agreement(log, CORRECT) == []

    # The same rewind without the marker is an ordering violation.
    log["replica2"] = [entry(1, 1, b"a"), entry(2, 2, b"b"), entry(1, 1, b"a")]
    violations = check_agreement(log, CORRECT)
    assert any("out of order" in v.detail for v in violations)


def test_agreement_ignores_read_only_and_byzantine_entries():
    log = {r: [entry(1, 1, b"a")] for r in CORRECT}
    log["replica0"].append(entry(1, 3, b"r", read_only=True))
    log["replica3"] = [entry(1, 1, b"LIE")]  # not in correct_ids
    assert check_agreement(log, CORRECT) == []


def test_reply_validity_accepts_backed_replies():
    log = {"replica0": [entry(1, 1, b"a")], "replica1": [entry(1, 1, b"a")]}
    accepted = [AcceptedReply("c0", 1, b"a", at=0.5)]
    assert check_reply_validity(accepted, log, CORRECT) == []


def test_reply_validity_catches_unbacked_digest_and_unknown_request():
    log = {"replica0": [entry(1, 1, b"a")]}
    accepted = [AcceptedReply("c0", 1, b"FORGED", at=0.5),
                AcceptedReply("c0", 99, b"a", at=0.6)]
    violations = check_reply_validity(accepted, log, CORRECT)
    assert [v.invariant for v in violations] == ["reply_validity"] * 2
    assert "correct replicas computed" in violations[0].detail
    assert "no correct replica executed" in violations[1].detail


def test_liveness_flags_stuck_clients_only_when_expected():
    done = [("c0", True), ("c1", False)]
    violations = check_liveness(done, expect_liveness=True, duration=40.0)
    assert len(violations) == 1 and "c1" in violations[0].detail
    assert check_liveness(done, expect_liveness=False, duration=40.0) == []
    assert check_liveness([("c0", True)], True, 40.0) == []


def test_beyond_f_collusion_is_caught_by_reply_validity():
    """ACCEPTANCE: two colluding wrong-reply replicas out-vote f=1 — the
    client accepts a fabricated result and the checker must say so."""
    result = run_trial("beyond_f_wrong_reply", 0)
    assert not result.ok
    kinds = {v.invariant for v in result.violations}
    assert kinds & {"reply_validity", "agreement"}, result.violations


# -- the edge staleness contract ---------------------------------------------------


def _edge_record(mode, bound, served_at, evidence):
    from repro.edge.evidence import EdgeReadRecord
    return EdgeReadRecord(op_digest=b"op", result_digest=b"res", key=0,
                          shard=0, mode=mode, staleness_bound=bound,
                          served_at=served_at, evidence=evidence)


def _cert_evidence(issued_at):
    from repro.edge.evidence import EVIDENCE_CERTIFICATE, StalenessEvidence
    return StalenessEvidence(kind=EVIDENCE_CERTIFICATE,
                             issued_at_us=int(issued_at * 1_000_000),
                             replicas=("replica0", "replica1", "replica2"))


def _vector_evidence(issued_at, seq=8, root=b"root8"):
    from repro.edge.evidence import EVIDENCE_VECTOR, StalenessEvidence
    return StalenessEvidence(kind=EVIDENCE_VECTOR,
                             issued_at_us=int(issued_at * 1_000_000),
                             replicas=("replica1",), checkpoint_seq=seq,
                             root_digest=root,
                             stable_at_us=int(issued_at * 1_000_000))


_HISTORIES = {r: [(0, b"root0"), (4, b"root4"), (8, b"root8")]
              for r in CORRECT}


def test_staleness_contract_accepts_a_clean_ladder():
    from repro.faultlab.invariants import check_staleness_contract
    records = [
        _edge_record("linearizable", None, 1.0, _cert_evidence(1.0)),
        _edge_record("bounded_stale", 0.5, 1.4, _vector_evidence(1.0)),
        _edge_record("last_known_good", None, 9.0, _vector_evidence(1.0)),
    ]
    assert check_staleness_contract(
        records, _HISTORIES, breaker_states=[(0, "closed")],
        expect_repromotion=True) == []


def test_staleness_contract_rejects_masquerading_linearizable():
    from repro.faultlab.invariants import check_staleness_contract
    records = [_edge_record("linearizable", None, 1.0, _vector_evidence(1.0))]
    violations = check_staleness_contract(records, _HISTORIES)
    assert len(violations) == 1
    assert "claims linearizable" in violations[0].detail


def test_staleness_contract_rejects_bound_overrun():
    from repro.faultlab.invariants import check_staleness_contract
    records = [_edge_record("bounded_stale", 0.5, 2.0, _vector_evidence(1.0))]
    violations = check_staleness_contract(records, _HISTORIES)
    assert len(violations) == 1
    assert "exceeds its advertised bound" in violations[0].detail


def test_staleness_contract_rejects_fabricated_vector():
    from repro.faultlab.invariants import check_staleness_contract
    records = [_edge_record("bounded_stale", 0.5, 1.2,
                            _vector_evidence(1.0, seq=99, root=b"forged"))]
    violations = check_staleness_contract(records, _HISTORIES)
    assert len(violations) == 1
    assert "matches no correct replica" in violations[0].detail


def test_staleness_contract_requires_evidence_and_repromotion():
    from repro.faultlab.invariants import check_staleness_contract
    records = [_edge_record("bounded_stale", 0.5, 1.2, None)]
    violations = check_staleness_contract(
        records, _HISTORIES, breaker_states=[(0, "open")],
        expect_repromotion=True)
    assert len(violations) == 2
    assert "no staleness evidence" in violations[0].detail
    assert "expected re-promotion" in violations[1].detail
