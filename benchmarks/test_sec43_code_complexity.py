"""§4.3 — code complexity: the wrapper + conversion code is small.

The paper counts semicolons: 1105 for the whole replicated file system
(624 wrapper + 481 conversions) against 17 735 for the kernel code it
wraps, and 658 for replicated Thor against 37 055 of Thor itself.  The
claim being supported: the *new* code the methodology requires is a small
fraction of the systems it reuses, so it is cheap to write and unlikely
to introduce many new bugs.

The Python analogue counts AST statements.  The claim to reproduce is the
ratio, not the absolute counts.
"""

from benchmarks.conftest import run_once
from repro.harness.complexity import complexity_report
from repro.harness.report import format_table


def test_sec43_code_complexity(benchmark):
    rows_data = run_once(benchmark, complexity_report)
    counts = {row.component: row.statements for row in rows_data}

    rows = [(row.component, row.statements) for row in rows_data]
    print()
    print(format_table("Section 4.3: code complexity (AST statements)",
                       ["component", "statements"], rows))

    kernel = counts["service kernel (shared)"]
    nfs_new = (counts["NFS conformance wrapper"]
               + counts["NFS state conversions"]
               + counts["NFS abstract spec"])
    nfs_reused = counts["wrapped NFS implementations"]
    thor_new = counts["Thor conformance wrapper + conversions"]
    thor_reused = counts["wrapped Thor implementation"]
    print(f"\nNFS: new {nfs_new} vs reused {nfs_reused} "
          f"({100 * nfs_new / nfs_reused:.0f}%)  [paper: 1105 vs 17735, 6%]")
    print(f"Thor: new {thor_new} vs reused {thor_reused} "
          f"({100 * thor_new / thor_reused:.0f}%)  [paper: 658 vs 37055, 2%]")

    # Shape: the new code is small next to the machinery it composes.
    # Caveat for the first ratio: our "reused" implementations are
    # miniature simulators (hundreds of statements, not a kernel's tens
    # of thousands), which inflates new/reused enormously versus the
    # paper; the within-new structure is what transfers.
    assert thor_new < thor_reused
    assert nfs_new < counts["BFT library"]
    assert thor_new < counts["BFT library"]
    # Many NFS procedures make the wrapper bigger than the conversions,
    # exactly as the paper observes (624 vs 481).
    assert counts["NFS conformance wrapper"] > \
        counts["NFS state conversions"]
    # The conversions plus spec are themselves modest (the paper's
    # "simple enough not to introduce bugs" argument).
    assert counts["NFS state conversions"] < 400
    assert counts["Thor conformance wrapper + conversions"] < 400
    # The shared service kernel (dispatch + deployment + conformance
    # battery) amortizes across all four services; it is infrastructure
    # like the BFT library, and smaller than it.
    assert kernel < counts["BFT library"]
