"""Ablations — the design choices DESIGN.md calls out.

Micro-benchmarks isolating each mechanism's contribution, in the spirit
of the BFT evaluation the paper leans on:

- request batching under concurrent load;
- the read-only optimization (one round trip vs ordering reads);
- copy-on-write incremental checkpoints vs checkpointing everything;
- hierarchical state transfer vs a flat full-state fetch.
"""

import pytest

from repro.bft.config import BftConfig
from repro.bft.statemachine import InMemoryStateManager
from repro.harness import costs as C
from repro.workloads.microbench import (
    build_kv_cluster,
    concurrent_ops,
    sequential_ops,
)


def _config(**kw):
    defaults = dict(n=4, checkpoint_interval=32)
    defaults.update(kw)
    return BftConfig(**defaults)


def _cluster(**kw):
    return build_kv_cluster(config=_config(**kw),
                            network_config=C.lan_network(),
                            costs=C.PROTOCOL_COSTS)


def test_ablation_batching(benchmark):
    def run():
        batched = concurrent_ops(_cluster(batch_max=16), clients=8,
                                 per_client=12, label="batched")
        unbatched = concurrent_ops(_cluster(batch_max=1), clients=8,
                                   per_client=12, label="unbatched")
        return batched, unbatched
    batched, unbatched = benchmark.pedantic(run, rounds=1, iterations=1)
    gain = unbatched.elapsed / batched.elapsed
    msg_gain = unbatched.messages / batched.messages
    print(f"\nbatching: {batched.throughput:.0f} vs {unbatched.throughput:.0f}"
          f" ops/s ({gain:.2f}x elapsed, {msg_gain:.2f}x messages)")
    assert gain > 1.2, "batching should speed up concurrent load"
    assert msg_gain > 1.5, "batching should cut protocol messages"


def test_ablation_read_only_optimization(benchmark):
    def run():
        fast = sequential_ops(_cluster(read_only_optimization=True), 50,
                              "ro-on", read_only=True)
        slow = sequential_ops(_cluster(read_only_optimization=False), 50,
                              "ro-off", read_only=True)
        return fast, slow
    fast, slow = benchmark.pedantic(run, rounds=1, iterations=1)
    gain = slow.latency / fast.latency
    print(f"\nread-only opt: {fast.latency * 1e6:.0f}us vs "
          f"{slow.latency * 1e6:.0f}us per read ({gain:.2f}x)")
    assert gain > 1.4, "the read-only path must skip ordering"
    assert fast.messages < slow.messages


def test_ablation_incremental_checkpoints(benchmark):
    """COW checkpoints only touch modified objects: with a large array and
    a small working set, checkpoint work stays proportional to the writes,
    not the state size."""
    from repro.base.state import AbstractStateManager
    from tests.test_base_state import ToyWrapper, op_set

    def run():
        wrapper = ToyWrapper(size=4096)
        manager = AbstractStateManager(wrapper, branching=64)
        touched = []
        manager.charge_hook = lambda s: None
        calls = {"count": 0}
        original = wrapper.get_obj

        def counting(index):
            calls["count"] += 1
            return original(index)
        manager.take_checkpoint(0)
        wrapper.get_obj = counting
        for seq in range(1, 33):
            manager.execute(op_set(seq % 5, b"x%d" % seq), "c", seq, seq,
                            b"")
        manager.take_checkpoint(64)
        return calls["count"]
    get_obj_calls = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nCOW checkpoint touched {get_obj_calls} objects of 4096")
    # 5 distinct slots written -> ~10 get_obj calls (pre-image + digest),
    # not thousands.
    assert get_obj_calls <= 3 * 5


def test_ablation_hierarchical_transfer(benchmark):
    """A lagger missing writes to 3 of 512 slots fetches ~3 objects, not
    the whole array — the point of the partition tree."""
    from tests.conftest import make_kv_cluster
    put = InMemoryStateManager.op_put

    def run():
        cluster = make_kv_cluster(checkpoint_interval=4, size=512)
        client = cluster.add_client("client0")
        for i in range(4):
            client.call(put(i % 3, b"seed%d" % i))
        cluster.run(1.0)
        lagger = cluster.replicas[3]
        for other in cluster.config.replica_ids:
            if other != lagger.node_id:
                cluster.network.partition(lagger.node_id, other)
        for i in range(8):
            client.call(put(i % 3, b"x%d" % i))
        cluster.network.heal_all()
        for i in range(4):
            client.call(put(i % 3, b"y%d" % i))
        cluster.run(5.0)
        return lagger
    lagger = benchmark.pedantic(run, rounds=1, iterations=1)
    fetched = lagger.transfer.objects_fetched_total
    print(f"\nhierarchical transfer fetched {fetched} of 512 objects")
    assert 0 < fetched <= 6
    assert lagger.state.values == \
        lagger.network._nodes["replica0"].state.values
