"""Ablation — in-place vs clean-disk proactive recovery (§3.1.4).

The paper's prototype restarts the NFS server on the same file system and
repairs it in place; it *proposes* restarting on a second, empty disk to
widen the fault classes tolerated.  This bench quantifies the trade:
clean recovery fetches the whole state (slower fetch phase), in-place
recovery fetches only what changed or rotted.
"""

from repro.bft.config import BftConfig
from repro.harness import costs as C
from repro.harness.report import format_table
from repro.nfs.backends import LinuxExt2Backend
from repro.nfs.client import NfsClient
from repro.nfs.service import build_basefs
from repro.nfs.spec import AbstractSpecConfig


def run(clean: bool):
    cluster, transport = build_basefs(
        [LinuxExt2Backend] * 4,
        spec=AbstractSpecConfig(array_size=512),
        config=BftConfig(n=4, checkpoint_interval=16, reboot_delay=0.3,
                         view_change_timeout=0.5, client_retry_timeout=0.3),
        profiles=[C.vendor_profile("linux-ext2")] * 4,
        replica_costs=C.replica_costs(),
        network_config=C.lan_network(),
        per_object_check_cost=C.PER_OBJECT_CHECK_COST,
        checkpoint_cost=C.CHECKPOINT_COST, branching=16)
    if clean:
        for replica in cluster.replicas:
            wrapper = replica.state.upcalls
            wrapper.clean_recovery_factory = \
                lambda w=wrapper: LinuxExt2Backend(clock=w.timestamps.clock)
    fs = NfsClient(transport)
    fs.mkdir("/data")
    for i in range(40):
        fs.write_file(f"/data/file{i}", b"x" * 600)
    cluster.run(1.0)
    victim = cluster.replicas[2]
    victim.recovery.start_recovery()
    cluster.run(60.0)
    assert not victim.recovery.recovering
    return victim.recovery.records[-1], victim, \
        victim.transfer.bytes_fetched_total


def test_ablation_clean_vs_inplace_recovery(benchmark):
    in_place, _, bytes_in_place = benchmark.pedantic(
        lambda: run(clean=False), rounds=1, iterations=1)
    clean, victim, bytes_clean = run(clean=True)

    rows = [
        ("in-place", in_place.fetch_and_check, in_place.objects_fetched,
         bytes_in_place, in_place.total),
        ("clean disk", clean.fetch_and_check, clean.objects_fetched,
         bytes_clean, clean.total),
    ]
    print()
    print(format_table(
        "Ablation: recovery flavours (simulated seconds)",
        ["flavour", "fetch+check", "objects", "bytes fetched", "total"],
        rows,
        note="Clean recovery rebuilds everything from the abstract state "
             "(wider fault coverage, whole-state fetch); in-place pays "
             "the local check but fetches only the delta."))

    live = sum(1 for e in victim.state.upcalls.rep.entries if not e.is_free)
    assert clean.objects_fetched >= live          # everything re-fetched
    assert in_place.objects_fetched < 0.5 * clean.objects_fetched
    assert bytes_clean > 5 * bytes_in_place
