"""Figure 6 — OO7 cold read-only traversals: Thor vs BASE-Thor.

Paper: BASE-Thor takes +39% on T1 (full composite-graph DFS) and +29% on
T6 (root atomic parts only); the commit bar is a small fraction of both;
T6's overhead is *lower* because its page reads have less locality, so
disk time dilutes the protocol overhead.
"""

from benchmarks.conftest import oo7, run_once
from repro.harness.report import assert_shape, format_table, overhead_pct

TRAVERSALS = ("T1", "T6", "T2a", "T2b")
PAPER_PCT = {"T1": 39, "T6": 29}


def test_fig6_oo7_readonly(benchmark):
    base = run_once(benchmark, lambda: oo7("base", TRAVERSALS))
    std = oo7("std", TRAVERSALS)

    rows = []
    for name in ("T1", "T6"):
        s, b = std.results[name], base.results[name]
        pct = overhead_pct(b.total, s.total)
        rows.append((name, f"{s.traversal_seconds:.3f}",
                     f"{s.commit_seconds:.3f}", f"{b.traversal_seconds:.3f}",
                     f"{b.commit_seconds:.3f}", f"+{pct:.0f}%",
                     f"+{PAPER_PCT[name]}%"))
    print()
    print(format_table(
        "Figure 6: OO7 cold read-only traversals (seconds, simulated)",
        ["traversal", "Thor trav", "Thor commit", "BASE trav",
         "BASE commit", "overhead", "paper"], rows,
        note="Scaled-down medium database (100 composites x 50 atomic "
             "parts); cold client and server caches per traversal."))

    t1_pct = overhead_pct(base.results["T1"].total, std.results["T1"].total)
    t6_pct = overhead_pct(base.results["T6"].total, std.results["T6"].total)
    assert_shape("OO7 T1", t1_pct, 20, 60)
    assert_shape("OO7 T6", t6_pct, 15, 50)
    # T6 pays less than T1 (less locality -> disk dilutes the protocol).
    assert t6_pct < t1_pct
    # Commit time is a small fraction of read-only traversals.
    for name in ("T1", "T6"):
        for run in (std, base):
            r = run.results[name]
            assert r.commit_seconds < 0.15 * r.total
    # T6 touches far fewer objects/pages than T1.
    assert base.results["T6"].atomic_visits < \
        0.25 * base.results["T1"].atomic_visits
    assert base.results["T6"].fetches < base.results["T1"].fetches
