"""Shared, cached experiment runs for the benchmark harness.

Each paper table/figure gets its own test file; expensive simulation runs
are cached here so that, e.g., the Andrew100 BASEFS run feeds Table I,
Table III, and Table IV without re-simulating.
"""

from __future__ import annotations

import functools

import pytest

from repro.harness import experiments as E
from repro.nfs.backends import ALL_BACKENDS


@functools.lru_cache(maxsize=None)
def andrew_std(scale: str, vendor: str = "linux-ext2"):
    config = E.ANDREW100 if scale == "100" else E.ANDREW500
    backend_class = next(c for c in ALL_BACKENDS if c.vendor == vendor)
    return E.run_andrew_std(config, backend_class=backend_class)


@functools.lru_cache(maxsize=None)
def andrew_basefs(scale: str, heterogeneous: bool = False,
                  recovery: bool = False):
    config = E.ANDREW100 if scale == "100" else E.ANDREW500
    backends = list(ALL_BACKENDS) if heterogeneous else None
    if recovery:
        # Staggered so the four replicas rejuvenate one at a time
        # (reverse order; see RecoveryManager), scaled from the paper's
        # cadence: 80 s (A100) / 250 s (A500) / 425 s (heterogeneous,
        # which the paper spaced widest because its recoveries take the
        # longest — the slow replica refetches a lot).
        if heterogeneous:
            interval, stagger = (1.0, 3.0)
        elif scale == "100":
            interval, stagger = (0.8, 1.1)
        else:
            interval, stagger = (1.5, 3.3)
        return E.run_andrew_basefs(config, backend_classes=backends,
                                   recovery_interval=interval,
                                   recovery_stagger=stagger)
    return E.run_andrew_basefs(config, backend_classes=backends)


@functools.lru_cache(maxsize=None)
def oo7(system: str, names: tuple):
    if system == "std":
        return E.run_oo7_std(list(names))
    return E.run_oo7_base(list(names))


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
