"""Table IV — maximum time to complete a recovery, by phase.

Paper (seconds):

                 Andrew100   Andrew500
    Shutdown     0.07        0.32
    Reboot       30.05       30.05
    Restart      0.18        0.97
    Fetch+check  18.28       141.37
    Total        48.58       172.71

Shape to reproduce: the reboot is a fixed cost; shutdown/restart are
negligible; fetch-and-check grows with the state size and comes to rival
then dominate the reboot as the state grows (82% of the A500 total).
"""

from benchmarks.conftest import andrew_basefs, run_once
from repro.harness.experiments import REBOOT_DELAY
from repro.harness.report import format_table


def slowest_recovery(run):
    records = [rec for r in run.cluster.replicas
               for rec in r.recovery.records]
    assert records, "no recoveries completed during the run"
    return max(records, key=lambda rec: rec.total), len(records)


def test_table4_recovery_breakdown(benchmark):
    run100 = run_once(benchmark,
                      lambda: andrew_basefs("100", recovery=True))
    run500 = andrew_basefs("500", recovery=True)
    rec100, n100 = slowest_recovery(run100)
    rec500, n500 = slowest_recovery(run500)

    rows = [
        ("shutdown", rec100.shutdown, rec500.shutdown, 0.07, 0.32),
        ("reboot", rec100.reboot, rec500.reboot, 30.05, 30.05),
        ("restart", rec100.restart, rec500.restart, 0.18, 0.97),
        ("fetch+check", rec100.fetch_and_check, rec500.fetch_and_check,
         18.28, 141.37),
        ("total", rec100.total, rec500.total, 48.58, 172.71),
    ]
    print()
    print(format_table(
        "Table IV: slowest recovery breakdown (seconds; paper columns at "
        "100x scale)",
        ["phase", "A100 (sim)", "A500 (sim)", "paper A100", "paper A500"],
        rows,
        note=f"({n100} recoveries in the A100 run, {n500} in A500; "
             f"reboot scaled to {REBOOT_DELAY}s)"))

    # Shape assertions.
    assert rec100.reboot == REBOOT_DELAY
    assert rec500.reboot == REBOOT_DELAY
    # Shutdown/restart are negligible next to the reboot.
    assert rec100.shutdown < 0.1 * rec100.reboot
    assert rec100.restart < 0.1 * rec100.reboot
    # Fetch-and-check grows with the state...
    assert rec500.fetch_and_check > 1.5 * rec100.fetch_and_check
    # ...and rivals/overtakes the fixed reboot at the larger scale, while
    # staying below it at the smaller one (paper: 18 vs 30, then 141 vs 30).
    assert rec100.fetch_and_check < rec100.reboot
    assert rec500.fetch_and_check > 0.5 * rec500.reboot
    share500 = rec500.fetch_and_check / rec500.total
    share100 = rec100.fetch_and_check / rec100.total
    assert share500 > share100, "fetch+check share must grow with state"
