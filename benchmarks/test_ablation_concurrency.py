"""Ablation — what the wrapper's serialization costs (§2.4).

The prototype issues read-write requests to the backend one at a time.
Using the conflict analyzer on the actual request stream of an Andrew
run, this bench reports the idealized speedup wave-parallel execution
would allow — the paper's "we could improve performance by implementing
a simple form of concurrency control in the wrapper" quantified.
"""

from repro.harness.report import format_table
from repro.nfs.backends import LinuxExt2Backend
from repro.nfs.client import NfsClient
from repro.nfs.concurrency import concurrent_speedup, schedule_waves
from repro.nfs.service import build_nfs_std
from repro.workloads.andrew import AndrewBenchmark, AndrewConfig


def capture_request_stream():
    """Record the ops an Andrew run issues, batched by arrival bursts."""
    _, transport = build_nfs_std(LinuxExt2Backend)
    stream = []
    original = transport.call

    def recording(proc, *args, read_only=False):
        from repro.encoding.canonical import canonical
        stream.append(canonical((proc.value,) + args))
        return original(proc, *args, read_only=read_only)

    transport.call = recording
    fs = NfsClient(transport)
    AndrewBenchmark(fs, AndrewConfig(copies=4)).run()
    return stream


def test_ablation_wrapper_concurrency(benchmark):
    stream = benchmark.pedantic(capture_request_stream, rounds=1,
                                iterations=1)
    # Analyze in batches the size the primary would actually assemble.
    batch_sizes = (4, 8, 16)
    rows = []
    for size in batch_sizes:
        batches = [stream[i:i + size] for i in range(0, len(stream), size)]
        speedups = [concurrent_speedup(batch) for batch in batches]
        avg = sum(speedups) / len(speedups)
        best = max(speedups)
        rows.append((size, f"{avg:.2f}x", f"{best:.2f}x"))
    print()
    print(format_table(
        "Ablation: idealized wrapper concurrency (Andrew request stream)",
        ["batch size", "mean speedup", "best batch"], rows,
        note=f"{len(stream)} requests analyzed; creates serialize through "
             "the deterministic entry allocator, reads parallelize."))

    # Shape: real request streams have exploitable parallelism, but
    # nothing close to perfect (directory and allocator conflicts bite).
    batches16 = [stream[i:i + 16] for i in range(0, len(stream), 16)]
    avg16 = sum(concurrent_speedup(b) for b in batches16) / len(batches16)
    assert 1.1 < avg16 < 16.0
    # Order preservation sanity on a real batch.
    waves = schedule_waves(stream[:16])
    assert sum(len(w) for w in waves) == 16
