"""Table II — Andrew500: the scaled-up run (state no longer cache-resident
in the paper; 3x the work in this reproduction).

Paper: BASEFS 2328.7 s vs NFS-std 1824.4 s (+28%), overhead slightly
above Andrew100's +26%.
"""

from benchmarks.conftest import andrew_basefs, andrew_std, run_once
from repro.harness.report import assert_shape, format_table, overhead_pct

PAPER = {1: (5.0, 2.4), 2: (248.2, 137.6), 3: (231.5, 199.2),
         4: (298.5, 238.1), 5: (1545.5, 1247.1)}
PAPER_TOTAL_PCT = 27.6


def test_table2_andrew500(benchmark):
    base = run_once(benchmark, lambda: andrew_basefs("500")).result
    std = andrew_std("500").result

    rows = []
    for phase in range(1, 6):
        measured = overhead_pct(base.phase_seconds[phase],
                                std.phase_seconds[phase])
        paper = overhead_pct(*PAPER[phase])
        rows.append((f"phase {phase}", base.phase_seconds[phase],
                     std.phase_seconds[phase], f"+{measured:.0f}%",
                     f"+{paper:.0f}%"))
    total_pct = overhead_pct(base.total, std.total)
    rows.append(("total", base.total, std.total, f"+{total_pct:.0f}%",
                 f"+{PAPER_TOTAL_PCT:.0f}%"))
    print()
    print(format_table(
        "Table II: Andrew500 elapsed time (seconds, simulated)",
        ["phase", "BASEFS", "NFS-std", "overhead", "paper"], rows))

    assert_shape("Andrew500 total", total_pct, 15, 45)
    # Larger state does not change who wins or the rough factor.
    a100_base = andrew_basefs("100").result
    a100_std = andrew_std("100").result
    a100_pct = overhead_pct(a100_base.total, a100_std.total)
    assert abs(total_pct - a100_pct) < 15, (
        f"A500 overhead {total_pct:.0f}% wildly different from "
        f"A100 {a100_pct:.0f}%")
    # And it really is a bigger run.
    assert std.total > 2 * a100_std.total
