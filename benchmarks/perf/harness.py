"""Fixed protocol scenarios timed against the real (wall) clock.

Each scenario builds a fresh cluster with fixed seeds, drives a fixed
amount of protocol work, and reports how long that took in *real*
seconds.  Scenarios repeat several times; the report carries p50/p95 of
the per-repeat wall time plus aggregate events/sec and requests/sec.

The scenarios cover the three hot paths the simulator spends its life in:

- ``normal_case`` — f=1 three-phase ordering with client-driven batching
  (MAC/digest work on every message hop);
- ``read_heavy`` — the fast path's headline workload: a 90/10 read/write
  closed loop where reads travel the read-only optimization and writes
  complete on tentative commit certificates (the scenario reports the
  per-path accept counts so the hit rates are part of the artifact);
- ``state_transfer`` — hierarchical fetch of a dirty partition tree
  (digest checks and per-object messages);
- ``recovery`` — one proactive recovery round: shutdown, reboot, fetch
  and check (session-key refresh plus a full state audit).

Timed repeats run after one untimed warmup repeat and with the garbage
collector paused, so the numbers measure the protocol, not allocator
warm-up or an unlucky mid-repeat GC pass.  Every closed-loop scenario
also carries the merged ``batch.size`` histogram (the adaptive batching
controller's actual output) and the report is tagged with the event
scheduler backend it ran on.

A fourth scenario, ``open_loop``, is different in kind: it runs the
open-loop traffic engine's load-sweep controller
(:mod:`repro.workloads.openloop`) against the same f=1 cluster and
reports the **maximum sustainable req/s at a stated p95 SLO** — the
knee of the latency-vs-offered-load curve — rather than a raw rate.
The sweep is seeded and runs twice per report; the harness asserts the
two curves are bit-identical before emitting them.

A fifth scenario, ``sharded_scaling``, sweeps a
:class:`~repro.service.sharding.ShardedDeployment` of the SQL service
over 1 → 2 → 4 shards on one fabric, with closed-loop clients pinned to
each shard's tables, and reports **simulated** req/s per shard count
(completed ops over simulated seconds — the quantity sharding actually
scales; wall time grows with shard count because one process simulates
every group).  Like ``open_loop`` it repeats with one seed and demands
bit-identical sweeps, using the router's per-shard rolling digest
chains as the O(1) witness that every repeat routed and observed the
same bytes.

A sixth scenario, ``edge_read``, measures the EdgeTier's headline
claim: after warming the tier with linearizable (quorum) reads and then
partitioning the edge from the core, bounded-stale serves come straight
from the lease cache — no messages, no quorum — so read throughput must
beat ``read_heavy``'s by at least :data:`EDGE_READ_MIN_SPEEDUP`.  The
validator enforces the cross-check; a rolling digest over every served
``(result, mode)`` record, compared across two identical-seed repeats,
is the determinism witness.
"""

from __future__ import annotations

import gc
import json
import platform
import random
import time
from typing import Callable, Dict, List, Optional

from repro.bft.config import BftConfig
from repro.bft.statemachine import InMemoryStateManager
from repro.harness import costs as C
from repro.harness.cluster import Cluster, build_cluster
from repro.sim.metrics import Metrics
from repro.sim.scheduler import DEFAULT_BACKEND

BENCH_ID = 7
SCHEMA_VERSION = 5  # v5: edge_read scenario (cache-served staleness-bounded
#                     reads vs the quorum read path)

put = InMemoryStateManager.op_put
get = InMemoryStateManager.op_get


def _build(seed: int, **cfg_kwargs) -> Cluster:
    config = BftConfig(**cfg_kwargs)
    return build_cluster(lambda i: InMemoryStateManager(size=64),
                         config=config,
                         network_config=C.lan_network(seed),
                         costs=C.PROTOCOL_COSTS, seed=seed)


def _events_run(cluster: Cluster) -> int:
    # ``events_run`` is the scheduler's cumulative executed-event counter;
    # fall back to the number of events ever scheduled on older trees.
    sched = cluster.scheduler
    return getattr(sched, "events_run", sched._seq)


# -- scenarios ----------------------------------------------------------------
#
# Each scenario fn takes (seed, scale) and returns (cluster, requests):
# the cluster it drove and how many protocol-level requests that involved.

def scenario_normal_case(seed: int, scale: int):
    """Closed-loop ordered writes from concurrent clients (batching)."""
    cluster = _build(seed, checkpoint_interval=16, batch_max=8)
    n_clients = 4
    per_client = scale
    done: Dict[str, int] = {}
    clients = []
    for c in range(n_clients):
        sync = cluster.add_client(f"client{c}", costs=C.PROTOCOL_COSTS)
        clients.append(sync.client)

    def make_cb(client, idx):
        def cb(_result):
            done[client.node_id] = done.get(client.node_id, 0) + 1
            if done[client.node_id] < per_client:
                client.invoke(put((idx + done[client.node_id]) % 16,
                                  b"w%d" % done[client.node_id]), cb)
        return cb

    for idx, client in enumerate(clients):
        client.invoke(put(idx % 16, b"w0"), make_cb(client, idx))
    ok = cluster.run_until(
        lambda: all(done.get(c.node_id, 0) >= per_client for c in clients))
    if not ok:
        raise RuntimeError("normal_case scenario did not complete")
    return cluster, n_clients * per_client


def scenario_read_heavy(seed: int, scale: int):
    """90/10 read/write closed loop over the fast path.

    Reads are issued with ``read_only=True`` and normally complete from
    a 2f+1 quorum of unordered read-only replies; the 10% writes keep
    ordered traffic (and tentative commit certificates) flowing and make
    the occasional read race a write — exercising retry and the ordered
    fallback, not just the happy path.  The op mix is a pure function of
    the seed.
    """
    cluster = _build(seed, checkpoint_interval=16, batch_max=8,
                     client_retry_timeout=0.4)
    n_clients = 4
    per_client = scale
    rng = random.Random(1_000_003 * seed + 17)
    plans: List[List[tuple]] = []
    for c in range(n_clients):
        ops = []
        for i in range(per_client):
            key = rng.randrange(16)
            if rng.random() < 0.9:
                ops.append((get(key), True))
            else:
                ops.append((put(key, b"rh%d" % i), False))
        plans.append(ops)

    done: Dict[str, int] = {}
    clients = []
    for c in range(n_clients):
        sync = cluster.add_client(f"client{c}", costs=C.PROTOCOL_COSTS)
        clients.append(sync.client)
    # Seed every key once so reads never hit an unwritten slot.
    warm = cluster.add_client("warmup", costs=C.PROTOCOL_COSTS)
    for key in range(16):
        warm.call(put(key, b"seed"))

    def make_cb(client, ops):
        def cb(_result):
            seq = done[client.node_id] = done.get(client.node_id, 0) + 1
            if seq < len(ops):
                op, read_only = ops[seq]
                client.invoke(op, cb, read_only=read_only)
        return cb

    for client, ops in zip(clients, plans):
        op, read_only = ops[0]
        client.invoke(op, make_cb(client, ops), read_only=read_only)
    ok = cluster.run_until(
        lambda: all(done.get(c.node_id, 0) >= per_client for c in clients))
    if not ok:
        raise RuntimeError("read_heavy scenario did not complete")
    return cluster, n_clients * per_client


def scenario_state_transfer(seed: int, scale: int):
    """A partitioned replica misses writes across the whole tree, then
    catches up by hierarchical state transfer."""
    cluster = _build(seed, checkpoint_interval=4)
    client = cluster.add_client("client0", costs=C.PROTOCOL_COSTS)
    lagger = cluster.replicas[3]
    requests = 0
    for other in cluster.config.replica_ids:
        if other != lagger.node_id:
            cluster.network.partition(lagger.node_id, other)
    # Dirty a wide slice of the tree while the lagger is cut off.
    for i in range(scale):
        client.call(put(i % 48, b"dirty%d" % i))
        requests += 1
    cluster.network.heal_all()
    for i in range(4):
        client.call(put(i % 48, b"heal%d" % i))
        requests += 1
    ok = cluster.run_until(lambda: lagger.last_executed
                           >= cluster.replicas[0].last_stable
                           and not lagger.transfer.active)
    if not ok:
        raise RuntimeError("state_transfer scenario did not complete")
    return cluster, requests


def scenario_recovery(seed: int, scale: int):
    """One proactive recovery round: shutdown, reboot, fetch-and-check."""
    cluster = _build(seed, checkpoint_interval=4, reboot_delay=0.5)
    client = cluster.add_client("client0", costs=C.PROTOCOL_COSTS)
    requests = 0
    for i in range(scale):
        client.call(put(i % 32, b"pre%d" % i))
        requests += 1
    victim = cluster.replicas[2]
    victim.recovery.start_recovery()
    ok = cluster.run_until(lambda: not victim.recovery.recovering
                           and victim.recovery.records)
    if not ok:
        raise RuntimeError("recovery scenario did not complete")
    return cluster, requests


#: name -> (scenario fn, full-mode scale, quick-mode scale)
SCENARIOS: Dict[str, tuple] = {
    "normal_case": (scenario_normal_case, 150, 25),
    "read_heavy": (scenario_read_heavy, 150, 25),
    "state_transfer": (scenario_state_transfer, 40, 12),
    "recovery": (scenario_recovery, 24, 8),
}


# -- the open-loop scenario ---------------------------------------------------
#
# Unlike the closed-loop scenarios above, open_loop is a *sweep*: the
# load-sweep controller walks offered load up a geometric ladder on a
# fresh cluster per point until the p95 SLO breaks, then refines toward
# the knee.  Everything simulated is a pure function of OPEN_LOOP_SEED.

OPEN_LOOP_SEED = 0
OPEN_LOOP_SLO_P95 = 0.005          # seconds, applied to every class
OPEN_LOOP_TARGET_ATTAINMENT = 0.95
OPEN_LOOP_PROCESS = "poisson"
#: mode -> (start_rate, factor, max_points, refine, duration_seconds)
OPEN_LOOP_MODES = {
    "full": (500.0, 2.0, 7, 2, 0.5),
    "quick": (1000.0, 2.5, 5, 1, 0.2),
}


def run_open_loop(quick: bool, repeats: int = 2) -> Dict[str, object]:
    """Run the seeded load sweep ``repeats`` times and report the knee.

    Every repeat uses the same seed, so the simulated curves must agree
    bit for bit — the harness asserts it, making the CI smoke job double
    as the engine's determinism regression.  Wall-time percentiles come
    from the repeats as usual.
    """
    from repro.workloads.openloop import default_kv_classes, walk_to_knee

    start_rate, factor, max_points, refine, duration = \
        OPEN_LOOP_MODES["quick" if quick else "full"]
    classes = default_kv_classes(slo_p95=OPEN_LOOP_SLO_P95)
    walls: List[float] = []
    events_total = 0
    requests_total = 0
    curves = []
    for _ in range(repeats):
        clusters: List[Cluster] = []

        def factory(seed: int) -> Cluster:
            cluster = _build(seed, checkpoint_interval=16, batch_max=8)
            clusters.append(cluster)
            return cluster

        start = time.perf_counter()
        curve = walk_to_knee(factory, start_rate=start_rate,
                             duration=duration, seed=OPEN_LOOP_SEED,
                             factor=factor, max_points=max_points,
                             refine=refine, classes=classes,
                             target_attainment=OPEN_LOOP_TARGET_ATTAINMENT,
                             process=OPEN_LOOP_PROCESS)
        walls.append(time.perf_counter() - start)
        events_total += sum(_events_run(c) for c in clusters)
        requests_total += sum(p.completed for p in curve.points)
        curves.append(curve.as_dict())
    for other in curves[1:]:
        if other != curves[0]:
            raise RuntimeError("open_loop sweep is not deterministic: "
                               "two repeats with the same seed disagree")
    walls_sorted = sorted(walls)
    total = sum(walls)
    curve_dict = curves[0]
    return {
        "repeats": repeats,
        "scale": int(duration * 1000),
        "wall_seconds_total": total,
        "wall_seconds_p50": _percentile(walls_sorted, 0.50),
        "wall_seconds_p95": _percentile(walls_sorted, 0.95),
        "events": events_total,
        "events_per_sec": events_total / total,
        "requests": requests_total,
        "requests_per_sec": requests_total / total,
        "seed": OPEN_LOOP_SEED,
        "arrival_process": OPEN_LOOP_PROCESS,
        "slo_p95_seconds": OPEN_LOOP_SLO_P95,
        "target_attainment": OPEN_LOOP_TARGET_ATTAINMENT,
        "max_sustainable_req_s": curve_dict["max_sustainable_req_s"],
        "knee_offered_req_s": curve_dict["knee_offered_req_s"],
        "curve": curve_dict["points"],
    }


# -- the sharded-scaling scenario ---------------------------------------------
#
# Weak-scaling sweep over ShardedDeployment: every shard carries the
# same closed-loop load (clients x ops pinned to tables that hash to
# it), so simulated elapsed time stays flat while completed work grows
# with the shard count — simulated req/s should rise near-linearly.
# The determinism gate is the whole sweep, bit for bit, including the
# router's per-shard request-log digest chains.

SHARDED_SEED = 7
SHARD_COUNTS = (1, 2, 4)
SHARDED_CLIENTS_PER_SHARD = 2
#: mode -> closed-loop ops per client
SHARDED_MODES = {"full": 20, "quick": 6}


def _shard_tables(num_shards: int) -> List[str]:
    """One table name per shard, in shard order (stable digest hashing)."""
    from repro.service.sharding import stable_shard

    tables: Dict[int, str] = {}
    i = 0
    while len(tables) < num_shards:
        name = f"t{i}"
        tables.setdefault(stable_shard(name, num_shards), name)
        i += 1
    return [tables[shard] for shard in range(num_shards)]


def _sharded_point(num_shards: int, per_client: int) -> tuple:
    """One sweep point: build, load every shard, audit, measure.

    Returns ``(point_dict, deployment)`` where the point carries only
    deterministic simulated quantities (safe to compare across repeats).
    """
    from repro.encoding.canonical import canonical
    from repro.service.sharding import ShardedDeployment
    from repro.sql.service import SQL_SERVICE

    deployment = ShardedDeployment.build(
        SQL_SERVICE, num_shards,
        config=BftConfig(checkpoint_interval=16, batch_max=8),
        network_config=C.lan_network(SHARDED_SEED),
        replica_costs=[C.PROTOCOL_COSTS] * 4,
        seed=SHARDED_SEED)
    tables = _shard_tables(num_shards)
    for table in tables:
        deployment.client.create_table(table, ["id", "val"], "id")

    done: Dict[str, int] = {}
    drivers = []
    for shard_index, table in enumerate(tables):
        cluster = deployment.shards[shard_index].cluster
        for c in range(SHARDED_CLIENTS_PER_SHARD):
            sync = cluster.add_client(f"shard{shard_index}/loadgen{c}",
                                      costs=C.PROTOCOL_COSTS)
            drivers.append((sync.client, table, (c + 1) * 1_000_000))

    def make_cb(client, table, base):
        def cb(_result):
            done[client.node_id] = done.get(client.node_id, 0) + 1
            seq = done[client.node_id]
            if seq < per_client:
                client.invoke(
                    canonical(("insert", table, (base + seq, f"w{seq}"))),
                    cb)
        return cb

    sim_start = deployment.scheduler.now
    for client, table, base in drivers:
        client.invoke(canonical(("insert", table, (base, "w0"))),
                      make_cb(client, table, base))
    ok = deployment.scheduler.run_until_idle_or(
        lambda: all(done.get(client.node_id, 0) >= per_client
                    for client, _, _ in drivers))
    if not ok:
        raise RuntimeError(f"sharded_scaling point ({num_shards} shards) "
                           f"did not complete")
    sim_seconds = deployment.scheduler.now - sim_start
    completed = sum(done.values())
    # Audit through the router: every shard holds exactly its clients'
    # rows (this also extends the digest chains deterministically).
    counts = [deployment.client.row_count(table) for table in tables]
    expected = SHARDED_CLIENTS_PER_SHARD * per_client
    if counts != [expected] * num_shards:
        raise RuntimeError(f"sharded_scaling audit failed: per-shard row "
                           f"counts {counts} != {expected}")
    point = {
        "shards": num_shards,
        "requests": completed,
        "sim_seconds": sim_seconds,
        "sim_req_s": completed / sim_seconds,
        "ops_routed": list(deployment.router.ops_routed),
        "shard_log": [d.hex() for d in deployment.router.shard_logs],
    }
    return point, deployment


def run_sharded_scaling(quick: bool, repeats: int = 2) -> Dict[str, object]:
    """Sweep shard counts, ``repeats`` times with one seed.

    Every repeat must reproduce the sweep bit for bit — simulated
    seconds, rates, routing counts, and the per-shard request-log
    digest chains — so the CI smoke job doubles as the sharding
    layer's determinism regression.
    """
    per_client = SHARDED_MODES["quick" if quick else "full"]
    walls: List[float] = []
    events_total = 0
    requests_total = 0
    sweeps = []
    for _ in range(repeats):
        start = time.perf_counter()
        points = []
        for num_shards in SHARD_COUNTS:
            point, deployment = _sharded_point(num_shards, per_client)
            points.append(point)
            events_total += _events_run(deployment)
            requests_total += point["requests"]
        walls.append(time.perf_counter() - start)
        sweeps.append(points)
    for other in sweeps[1:]:
        if other != sweeps[0]:
            raise RuntimeError("sharded_scaling sweep is not deterministic: "
                               "two repeats with the same seed disagree")
    sweep = sweeps[0]
    scaling = sweep[-1]["sim_req_s"] / sweep[0]["sim_req_s"]
    walls_sorted = sorted(walls)
    total = sum(walls)
    return {
        "repeats": repeats,
        "scale": per_client,
        "wall_seconds_total": total,
        "wall_seconds_p50": _percentile(walls_sorted, 0.50),
        "wall_seconds_p95": _percentile(walls_sorted, 0.95),
        "events": events_total,
        "events_per_sec": events_total / total,
        "requests": requests_total,
        "requests_per_sec": requests_total / total,
        "seed": SHARDED_SEED,
        "shard_counts": list(SHARD_COUNTS),
        "clients_per_shard": SHARDED_CLIENTS_PER_SHARD,
        "ops_per_client": per_client,
        "scaling_factor": scaling,
        "sweep": sweep,
    }


# -- the edge-read scenario ---------------------------------------------------
#
# Warm the EdgeTier with linearizable reads (full quorum protocol), cut
# the edge off from the core, then serve a large batch of bounded-stale
# reads from the lease cache.  Cache serves move no messages and burn no
# simulated time, so this measures the edge serving path itself — the
# speedup over read_heavy is the subsystem's reason to exist, and the
# validator refuses the report if it is not there.

EDGE_READ_SEED = 3
EDGE_READ_SLOTS = 16
EDGE_READ_DELTA = 60.0             # lease ttl: every degraded serve is a hit
#: mode -> (warm linearizable reads, degraded cache-hit reads)
EDGE_READ_MODES = {"full": (64, 4000), "quick": (16, 800)}
#: edge_read req/s must beat read_heavy req/s by at least this factor.
EDGE_READ_MIN_SPEEDUP = 2.0


def _edge_read_once(warm_reads: int, degraded_reads: int):
    """One edge_read repeat; returns (cluster, requests, digest chain)."""
    from repro.crypto.digest import digest as _digest
    from repro.edge import BOUNDED_STALE, LINEARIZABLE, EdgeTier

    cluster = _build(EDGE_READ_SEED, checkpoint_interval=16, batch_max=8)
    client = cluster.add_client("warmup", costs=C.PROTOCOL_COSTS)
    for key in range(EDGE_READ_SLOTS):
        client.call(put(key, b"edge%d" % key))
    tier = EdgeTier.for_cluster(cluster, delta=EDGE_READ_DELTA,
                                read_timeout=0.05, failure_threshold=1,
                                cooldown=3600.0, costs=C.PROTOCOL_COSTS)
    for i in range(warm_reads):
        reply = tier.read(get(i % EDGE_READ_SLOTS))
        if reply.mode != LINEARIZABLE:
            raise RuntimeError("edge_read warmup left the linearizable path")
    edge_ids = set(tier.edge_node_ids)
    for edge_id in sorted(edge_ids):
        for other in cluster.network.node_ids():
            if other not in edge_ids:
                cluster.network.partition(edge_id, other)
    for i in range(degraded_reads):
        reply = tier.read(get(i % EDGE_READ_SLOTS))
        if reply.mode != BOUNDED_STALE:
            raise RuntimeError(f"edge_read degraded serve {i} came back "
                               f"{reply.mode}, expected bounded_stale")
    chain = b""
    for record in tier.records:
        chain = _digest(chain + record.result_digest + record.mode.encode())
    return cluster, warm_reads + degraded_reads, chain.hex()


def run_edge_read(quick: bool, repeats: int = 2) -> Dict[str, object]:
    """Run the edge-read scenario ``repeats`` times with one seed.

    Every repeat must reproduce the served-record digest chain bit for
    bit — same results, same modes, same order — so the CI smoke job
    doubles as the edge tier's determinism regression.
    """
    warm_reads, degraded_reads = \
        EDGE_READ_MODES["quick" if quick else "full"]
    walls: List[float] = []
    chains: List[str] = []
    events_total = 0
    requests_total = 0
    for _ in range(repeats):
        start = time.perf_counter()
        cluster, requests, chain = _edge_read_once(warm_reads,
                                                   degraded_reads)
        walls.append(time.perf_counter() - start)
        events_total += _events_run(cluster)
        requests_total += requests
        chains.append(chain)
    for other in chains[1:]:
        if other != chains[0]:
            raise RuntimeError("edge_read is not deterministic: two repeats "
                               "with the same seed served different records")
    walls_sorted = sorted(walls)
    total = sum(walls)
    return {
        "repeats": repeats,
        "scale": degraded_reads,
        "wall_seconds_total": total,
        "wall_seconds_p50": _percentile(walls_sorted, 0.50),
        "wall_seconds_p95": _percentile(walls_sorted, 0.95),
        "events": events_total,
        "events_per_sec": events_total / total,
        "requests": requests_total,
        "requests_per_sec": requests_total / total,
        "seed": EDGE_READ_SEED,
        "warm_reads": warm_reads,
        "degraded_reads": degraded_reads,
        "delta_seconds": EDGE_READ_DELTA,
        "record_digest": chains[0],
    }


# -- runner -------------------------------------------------------------------

def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    idx = min(len(sorted_values) - 1,
              max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def _batch_size_summary(acc: Metrics) -> Dict[str, float]:
    """The merged adaptive-batching output across timed repeats."""
    hist = acc.histograms.get("batch.size")
    if hist is None or not hist.count:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p90": 0.0, "p99": 0.0}
    return {"count": hist.count, "mean": hist.mean,
            "min": hist.min, "max": hist.max,
            "p50": hist.percentile(50), "p90": hist.percentile(90),
            "p99": hist.percentile(99)}


def _fast_path_summary(acc: Metrics) -> Dict[str, float]:
    """Per-accept-path counts and hit rates from the client counters."""
    counts = {path: acc.counter_value(f"client.accept_{path}")
              for path in ("committed", "tentative", "read_only")}
    total = sum(counts.values())
    return {
        "accept_committed": counts["committed"],
        "accept_tentative": counts["tentative"],
        "accept_read_only": counts["read_only"],
        "tentative_rate": counts["tentative"] / total if total else 0.0,
        "read_only_rate": counts["read_only"] / total if total else 0.0,
    }


def run_scenario(name: str, quick: bool, repeats: int) -> Dict[str, object]:
    fn, full_scale, quick_scale = SCENARIOS[name]
    scale = quick_scale if quick else full_scale
    walls: List[float] = []
    events_total = 0
    requests_total = 0
    acc = Metrics()
    # One untimed warmup repeat heats allocator pools, method caches, and
    # lazily-built protocol tables; pausing the collector keeps a
    # mid-repeat GC pass from landing in exactly one timing.
    fn(seed=repeats, scale=scale)
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for rep in range(repeats):
            start = time.perf_counter()
            cluster, requests = fn(seed=rep, scale=scale)
            walls.append(time.perf_counter() - start)
            events_total += _events_run(cluster)
            requests_total += requests
            acc.merge(cluster.metrics)
    finally:
        if gc_was_enabled:
            gc.enable()
    walls_sorted = sorted(walls)
    total = sum(walls)
    data: Dict[str, object] = {
        "repeats": repeats,
        "scale": scale,
        "wall_seconds_total": total,
        "wall_seconds_p50": _percentile(walls_sorted, 0.50),
        "wall_seconds_p95": _percentile(walls_sorted, 0.95),
        "events": events_total,
        "events_per_sec": events_total / total,
        "requests": requests_total,
        "requests_per_sec": requests_total / total,
        "batch_size": _batch_size_summary(acc),
    }
    if name == "read_heavy":
        data["fast_path"] = _fast_path_summary(acc)
    return data


def run_all(quick: bool = False, repeats: Optional[int] = None,
            progress: Optional[Callable[[str], None]] = None) -> Dict[str, object]:
    if repeats is None:
        repeats = 3 if quick else 7
    scenarios: Dict[str, object] = {}
    for name in SCENARIOS:
        if progress:
            progress(f"running {name} (repeats={repeats}, "
                     f"{'quick' if quick else 'full'}) ...")
        scenarios[name] = run_scenario(name, quick, repeats)
    if progress:
        progress(f"running open_loop sweep "
                 f"({'quick' if quick else 'full'}, 2 identical-seed "
                 f"repeats) ...")
    scenarios["open_loop"] = run_open_loop(quick)
    if progress:
        progress(f"running sharded_scaling sweep over shards "
                 f"{SHARD_COUNTS} ({'quick' if quick else 'full'}, "
                 f"2 identical-seed repeats) ...")
    scenarios["sharded_scaling"] = run_sharded_scaling(quick)
    if progress:
        progress(f"running edge_read ({'quick' if quick else 'full'}, "
                 f"2 identical-seed repeats) ...")
    scenarios["edge_read"] = run_edge_read(quick)
    return {
        "bench_id": BENCH_ID,
        "schema_version": SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scheduler_backend": DEFAULT_BACKEND,
        "scenarios": scenarios,
    }


# -- profiling ----------------------------------------------------------------

PROFILE_TOP_N = 25


def profile_scenarios(quick: bool = False,
                      progress: Optional[Callable[[str], None]] = None) -> str:
    """cProfile every closed-loop scenario; return the text artifact.

    Each scenario runs once untimed (warmup) and once under the
    profiler, at the mode's scale and seed 0, and contributes its top
    ``PROFILE_TOP_N`` functions by cumulative time.  The artifact is
    what the CI perf-smoke job uploads next to the BENCH report so a
    throughput regression comes with the hot-path breakdown attached.
    """
    import cProfile
    import io
    import pstats

    sections: List[str] = []
    for name, (fn, full_scale, quick_scale) in SCENARIOS.items():
        scale = quick_scale if quick else full_scale
        if progress:
            progress(f"profiling {name} (scale={scale}) ...")
        fn(seed=0, scale=scale)                     # warmup, unprofiled
        profiler = cProfile.Profile()
        profiler.enable()
        fn(seed=0, scale=scale)
        profiler.disable()
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats("cumulative").print_stats(PROFILE_TOP_N)
        sections.append(f"== {name} (scale={scale}, seed=0, "
                        f"top {PROFILE_TOP_N} by cumulative time) ==\n"
                        f"{buf.getvalue()}")
    return "\n".join(sections)


# -- schema -------------------------------------------------------------------

_TOP_FIELDS = {
    "bench_id": int,
    "schema_version": int,
    "mode": str,
    "python": str,
    "platform": str,
    "scheduler_backend": str,
    "scenarios": dict,
}

_SCENARIO_FIELDS = {
    "repeats": int,
    "scale": int,
    "wall_seconds_total": float,
    "wall_seconds_p50": float,
    "wall_seconds_p95": float,
    "events": int,
    "events_per_sec": float,
    "requests": int,
    "requests_per_sec": float,
}

#: The merged adaptive-batching histogram every closed-loop scenario carries.
_BATCH_SIZE_FIELDS = {
    "count": int,
    "mean": float,
    "min": float,
    "max": float,
    "p50": float,
    "p90": float,
    "p99": float,
}

#: Per-accept-path accounting the read_heavy scenario must report.
_FAST_PATH_FIELDS = {
    "accept_committed": int,
    "accept_tentative": int,
    "accept_read_only": int,
    "tentative_rate": float,
    "read_only_rate": float,
}

#: Extra fields the open_loop scenario must carry on top of the common set.
_OPEN_LOOP_FIELDS = {
    "seed": int,
    "arrival_process": str,
    "slo_p95_seconds": float,
    "target_attainment": float,
    "max_sustainable_req_s": float,
    "knee_offered_req_s": float,
    "curve": list,
}

_CURVE_POINT_FIELDS = {
    "offered_rate": float,
    "duration": float,
    "offered": int,
    "completed": int,
    "timed_out": int,
    "shed": int,
    "errors": int,
    "achieved_rate": float,
    "attainment": float,
    "sustainable": bool,
}


#: Extra fields the edge_read scenario must carry.
_EDGE_READ_FIELDS = {
    "seed": int,
    "warm_reads": int,
    "degraded_reads": int,
    "delta_seconds": float,
    "record_digest": str,
}


def _validate_edge_read(data: Dict[str, object]) -> None:
    for key, typ in _EDGE_READ_FIELDS.items():
        if key not in data:
            raise ValueError(f"edge_read missing field {key!r}")
        value = data[key]
        if typ is float:
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"edge_read.{key} must be numeric >= 0")
        elif not isinstance(value, typ):
            raise ValueError(f"edge_read.{key} must be {typ.__name__}")
    if data["warm_reads"] < 1 or data["degraded_reads"] < 1:
        raise ValueError("edge_read must serve both linearizable warmup "
                         "reads and degraded cache reads")
    if not data["record_digest"]:
        raise ValueError("edge_read.record_digest (the determinism "
                         "witness) must be non-empty")


#: Extra fields the sharded_scaling scenario must carry.
_SHARDED_FIELDS = {
    "seed": int,
    "shard_counts": list,
    "clients_per_shard": int,
    "ops_per_client": int,
    "scaling_factor": float,
    "sweep": list,
}

_SWEEP_POINT_FIELDS = {
    "shards": int,
    "requests": int,
    "sim_seconds": float,
    "sim_req_s": float,
    "ops_routed": list,
    "shard_log": list,
}

#: The headline claim BENCH_5 exists to witness: at the top of the
#: sweep (4 shards vs 1) simulated throughput must scale at least 3x.
SHARDED_MIN_SCALING = 3.0


def _validate_sharded_scaling(data: Dict[str, object]) -> None:
    for key, typ in _SHARDED_FIELDS.items():
        if key not in data:
            raise ValueError(f"sharded_scaling missing field {key!r}")
        value = data[key]
        if typ is float:
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"sharded_scaling.{key} must be "
                                 f"numeric >= 0")
        elif not isinstance(value, typ):
            raise ValueError(f"sharded_scaling.{key} must be {typ.__name__}")
    sweep = data["sweep"]
    if not sweep:
        raise ValueError("sharded_scaling.sweep must be non-empty")
    for i, point in enumerate(sweep):
        for key, typ in _SWEEP_POINT_FIELDS.items():
            if key not in point:
                raise ValueError(f"sweep point {i} missing field {key!r}")
            value = point[key]
            if typ is float:
                if not isinstance(value, (int, float)):
                    raise ValueError(f"sweep[{i}].{key} must be numeric")
            elif not isinstance(value, typ):
                raise ValueError(f"sweep[{i}].{key} must be {typ.__name__}")
        if len(point["shard_log"]) != point["shards"]:
            raise ValueError(f"sweep[{i}]: expected one request-log digest "
                             f"per shard")
        if point["sim_req_s"] <= 0 or point["sim_seconds"] <= 0:
            raise ValueError(f"sweep[{i}]: simulated rate must be positive")
    shards = [point["shards"] for point in sweep]
    if shards != sorted(set(shards)) or shards[0] != 1:
        raise ValueError("sharded_scaling.sweep must walk strictly "
                         "increasing shard counts starting at 1")
    if shards != data["shard_counts"]:
        raise ValueError("sharded_scaling.shard_counts disagrees with "
                         "the sweep")
    scaling = sweep[-1]["sim_req_s"] / sweep[0]["sim_req_s"]
    if abs(scaling - data["scaling_factor"]) > 1e-9:
        raise ValueError("sharded_scaling.scaling_factor disagrees with "
                         "the sweep's endpoint rates")
    if scaling < SHARDED_MIN_SCALING:
        raise ValueError(f"sharded_scaling: {shards[-1]} shards delivered "
                         f"only {scaling:.2f}x the 1-shard simulated "
                         f"req/s (need >= {SHARDED_MIN_SCALING}x)")


def _validate_open_loop(data: Dict[str, object]) -> None:
    for key, typ in _OPEN_LOOP_FIELDS.items():
        if key not in data:
            raise ValueError(f"open_loop missing field {key!r}")
        value = data[key]
        if typ is float:
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"open_loop.{key} must be numeric >= 0")
        elif not isinstance(value, typ):
            raise ValueError(f"open_loop.{key} must be {typ.__name__}")
    curve = data["curve"]
    if not curve:
        raise ValueError("open_loop.curve must be non-empty")
    rates = []
    for i, point in enumerate(curve):
        for key, typ in _CURVE_POINT_FIELDS.items():
            if key not in point:
                raise ValueError(f"curve point {i} missing field {key!r}")
            value = point[key]
            if typ is float:
                if not isinstance(value, (int, float)):
                    raise ValueError(f"curve[{i}].{key} must be numeric")
            elif not isinstance(value, typ):
                raise ValueError(f"curve[{i}].{key} must be {typ.__name__}")
        rates.append(point["offered_rate"])
    if rates != sorted(rates) or len(set(rates)) != len(rates):
        raise ValueError("open_loop.curve offered rates must be a "
                         "strictly increasing (monotone) sweep")
    if not any(p["sustainable"] for p in curve):
        raise ValueError("open_loop.curve shows no sustainable point — "
                         "lower the starting offered rate")
    if not any(not p["sustainable"] for p in curve):
        raise ValueError("open_loop.curve never crossed the knee — "
                         "raise max_points or the load factor")
    best = max((p["achieved_rate"] for p in curve if p["sustainable"]),
               default=0.0)
    if abs(best - data["max_sustainable_req_s"]) > 1e-9:
        raise ValueError("open_loop.max_sustainable_req_s disagrees with "
                         "the curve's best sustainable point")


def _validate_batch_size(name: str, data: Dict[str, object]) -> None:
    batch = data.get("batch_size")
    if not isinstance(batch, dict):
        raise ValueError(f"{name}.batch_size must be a dict")
    for key, typ in _BATCH_SIZE_FIELDS.items():
        value = batch.get(key)
        if typ is int:
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"{name}.batch_size.{key} must be int")
        elif not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"{name}.batch_size.{key} must be numeric")
        if value < 0:
            raise ValueError(f"{name}.batch_size.{key} must be >= 0")
    if batch["count"] > 0 and not (batch["min"] <= batch["p50"]
                                   <= batch["p99"] <= batch["max"]):
        raise ValueError(f"{name}.batch_size percentiles out of order")
    if batch["count"] == 0 and name in ("normal_case", "read_heavy"):
        raise ValueError(f"{name}: no batches were formed — the ordering "
                         f"path never ran")


def _validate_fast_path(data: Dict[str, object]) -> None:
    fast = data.get("fast_path")
    if not isinstance(fast, dict):
        raise ValueError("read_heavy.fast_path must be a dict")
    for key, typ in _FAST_PATH_FIELDS.items():
        value = fast.get(key)
        if typ is int:
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"read_heavy.fast_path.{key} must be int")
        elif not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"read_heavy.fast_path.{key} must be numeric")
        if value < 0:
            raise ValueError(f"read_heavy.fast_path.{key} must be >= 0")
    for rate in ("tentative_rate", "read_only_rate"):
        if not 0.0 <= fast[rate] <= 1.0:
            raise ValueError(f"read_heavy.fast_path.{rate} outside [0, 1]")
    # The scenario exists to witness both fast paths actually taken.
    if fast["accept_read_only"] == 0:
        raise ValueError("read_heavy: no request completed via the "
                         "read-only optimization")
    if fast["accept_tentative"] == 0:
        raise ValueError("read_heavy: no request completed on a tentative "
                         "commit certificate")


def validate_report(report: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``report`` is a valid BENCH document."""
    for key, typ in _TOP_FIELDS.items():
        if key not in report:
            raise ValueError(f"missing top-level field {key!r}")
        if not isinstance(report[key], typ):
            raise ValueError(f"field {key!r} must be {typ.__name__}, "
                             f"got {type(report[key]).__name__}")
    if report["mode"] not in ("quick", "full"):
        raise ValueError(f"mode must be quick|full, got {report['mode']!r}")
    missing = ((set(SCENARIOS) | {"open_loop", "sharded_scaling",
                                  "edge_read"})
               - set(report["scenarios"]))
    if missing:
        raise ValueError(f"missing scenarios: {sorted(missing)}")
    for name, data in report["scenarios"].items():
        for key, typ in _SCENARIO_FIELDS.items():
            if key not in data:
                raise ValueError(f"scenario {name!r} missing field {key!r}")
            value = data[key]
            if typ is float:
                if not isinstance(value, (int, float)):
                    raise ValueError(f"{name}.{key} must be numeric")
                if value < 0:
                    raise ValueError(f"{name}.{key} must be >= 0")
            elif not isinstance(value, typ):
                raise ValueError(f"{name}.{key} must be {typ.__name__}")
        if data["wall_seconds_p95"] < data["wall_seconds_p50"]:
            raise ValueError(f"{name}: p95 below p50")
        if data["repeats"] < 1 or data["requests"] < 1:
            raise ValueError(f"{name}: repeats/requests must be positive")
        if name in SCENARIOS:
            _validate_batch_size(name, data)
        if name == "read_heavy":
            _validate_fast_path(data)
        if name == "open_loop":
            _validate_open_loop(data)
        elif name == "sharded_scaling":
            _validate_sharded_scaling(data)
        elif name == "edge_read":
            _validate_edge_read(data)
    # The headline cross-check BENCH_7 exists to witness: edge-served
    # reads must out-rate the quorum read path by the stated factor.
    edge = report["scenarios"]["edge_read"]
    baseline = report["scenarios"]["read_heavy"]
    speedup = (edge["requests_per_sec"]
               / baseline["requests_per_sec"])
    if speedup < EDGE_READ_MIN_SPEEDUP:
        raise ValueError(f"edge_read delivered only {speedup:.2f}x "
                         f"read_heavy's req/s "
                         f"(need >= {EDGE_READ_MIN_SPEEDUP}x)")


def extract_curve_artifact(report: Dict[str, object]) -> Dict[str, object]:
    """The standalone load-latency curve artifact for the open_loop
    scenario (what the CI job uploads next to the BENCH report)."""
    data = report["scenarios"]["open_loop"]
    return {
        "bench_id": report["bench_id"],
        "schema_version": report["schema_version"],
        "mode": report["mode"],
        "scenario": "open_loop",
        "seed": data["seed"],
        "arrival_process": data["arrival_process"],
        "slo_p95_seconds": data["slo_p95_seconds"],
        "target_attainment": data["target_attainment"],
        "max_sustainable_req_s": data["max_sustainable_req_s"],
        "knee_offered_req_s": data["knee_offered_req_s"],
        "curve": data["curve"],
    }


def write_report(report: Dict[str, object], path: str) -> None:
    validate_report(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
