"""Fixed protocol scenarios timed against the real (wall) clock.

Each scenario builds a fresh cluster with fixed seeds, drives a fixed
amount of protocol work, and reports how long that took in *real*
seconds.  Scenarios repeat several times; the report carries p50/p95 of
the per-repeat wall time plus aggregate events/sec and requests/sec.

The scenarios cover the three hot paths the simulator spends its life in:

- ``normal_case`` — f=1 three-phase ordering with client-driven batching
  (MAC/digest work on every message hop);
- ``state_transfer`` — hierarchical fetch of a dirty partition tree
  (digest checks and per-object messages);
- ``recovery`` — one proactive recovery round: shutdown, reboot, fetch
  and check (session-key refresh plus a full state audit).
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, List, Optional

from repro.bft.config import BftConfig
from repro.bft.statemachine import InMemoryStateManager
from repro.harness import costs as C
from repro.harness.cluster import Cluster, build_cluster

BENCH_ID = 3
SCHEMA_VERSION = 1

put = InMemoryStateManager.op_put


def _build(seed: int, **cfg_kwargs) -> Cluster:
    config = BftConfig(**cfg_kwargs)
    return build_cluster(lambda i: InMemoryStateManager(size=64),
                         config=config,
                         network_config=C.lan_network(seed),
                         costs=C.PROTOCOL_COSTS, seed=seed)


def _events_run(cluster: Cluster) -> int:
    # ``events_run`` is the scheduler's cumulative executed-event counter;
    # fall back to the number of events ever scheduled on older trees.
    sched = cluster.scheduler
    return getattr(sched, "events_run", sched._seq)


# -- scenarios ----------------------------------------------------------------
#
# Each scenario fn takes (seed, scale) and returns (cluster, requests):
# the cluster it drove and how many protocol-level requests that involved.

def scenario_normal_case(seed: int, scale: int):
    """Closed-loop ordered writes from concurrent clients (batching)."""
    cluster = _build(seed, checkpoint_interval=16, batch_max=8)
    n_clients = 4
    per_client = scale
    done: Dict[str, int] = {}
    clients = []
    for c in range(n_clients):
        sync = cluster.add_client(f"client{c}", costs=C.PROTOCOL_COSTS)
        clients.append(sync.client)

    def make_cb(client, idx):
        def cb(_result):
            done[client.node_id] = done.get(client.node_id, 0) + 1
            if done[client.node_id] < per_client:
                client.invoke(put((idx + done[client.node_id]) % 16,
                                  b"w%d" % done[client.node_id]), cb)
        return cb

    for idx, client in enumerate(clients):
        client.invoke(put(idx % 16, b"w0"), make_cb(client, idx))
    ok = cluster.run_until(
        lambda: all(done.get(c.node_id, 0) >= per_client for c in clients))
    if not ok:
        raise RuntimeError("normal_case scenario did not complete")
    return cluster, n_clients * per_client


def scenario_state_transfer(seed: int, scale: int):
    """A partitioned replica misses writes across the whole tree, then
    catches up by hierarchical state transfer."""
    cluster = _build(seed, checkpoint_interval=4)
    client = cluster.add_client("client0", costs=C.PROTOCOL_COSTS)
    lagger = cluster.replicas[3]
    requests = 0
    for other in cluster.config.replica_ids:
        if other != lagger.node_id:
            cluster.network.partition(lagger.node_id, other)
    # Dirty a wide slice of the tree while the lagger is cut off.
    for i in range(scale):
        client.call(put(i % 48, b"dirty%d" % i))
        requests += 1
    cluster.network.heal_all()
    for i in range(4):
        client.call(put(i % 48, b"heal%d" % i))
        requests += 1
    ok = cluster.run_until(lambda: lagger.last_executed
                           >= cluster.replicas[0].last_stable
                           and not lagger.transfer.active)
    if not ok:
        raise RuntimeError("state_transfer scenario did not complete")
    return cluster, requests


def scenario_recovery(seed: int, scale: int):
    """One proactive recovery round: shutdown, reboot, fetch-and-check."""
    cluster = _build(seed, checkpoint_interval=4, reboot_delay=0.5)
    client = cluster.add_client("client0", costs=C.PROTOCOL_COSTS)
    requests = 0
    for i in range(scale):
        client.call(put(i % 32, b"pre%d" % i))
        requests += 1
    victim = cluster.replicas[2]
    victim.recovery.start_recovery()
    ok = cluster.run_until(lambda: not victim.recovery.recovering
                           and victim.recovery.records)
    if not ok:
        raise RuntimeError("recovery scenario did not complete")
    return cluster, requests


#: name -> (scenario fn, full-mode scale, quick-mode scale)
SCENARIOS: Dict[str, tuple] = {
    "normal_case": (scenario_normal_case, 150, 25),
    "state_transfer": (scenario_state_transfer, 40, 12),
    "recovery": (scenario_recovery, 24, 8),
}


# -- runner -------------------------------------------------------------------

def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    idx = min(len(sorted_values) - 1,
              max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def run_scenario(name: str, quick: bool, repeats: int) -> Dict[str, object]:
    fn, full_scale, quick_scale = SCENARIOS[name]
    scale = quick_scale if quick else full_scale
    walls: List[float] = []
    events_total = 0
    requests_total = 0
    for rep in range(repeats):
        start = time.perf_counter()
        cluster, requests = fn(seed=rep, scale=scale)
        walls.append(time.perf_counter() - start)
        events_total += _events_run(cluster)
        requests_total += requests
    walls_sorted = sorted(walls)
    total = sum(walls)
    return {
        "repeats": repeats,
        "scale": scale,
        "wall_seconds_total": total,
        "wall_seconds_p50": _percentile(walls_sorted, 0.50),
        "wall_seconds_p95": _percentile(walls_sorted, 0.95),
        "events": events_total,
        "events_per_sec": events_total / total,
        "requests": requests_total,
        "requests_per_sec": requests_total / total,
    }


def run_all(quick: bool = False, repeats: Optional[int] = None,
            progress: Optional[Callable[[str], None]] = None) -> Dict[str, object]:
    if repeats is None:
        repeats = 3 if quick else 7
    scenarios: Dict[str, object] = {}
    for name in SCENARIOS:
        if progress:
            progress(f"running {name} (repeats={repeats}, "
                     f"{'quick' if quick else 'full'}) ...")
        scenarios[name] = run_scenario(name, quick, repeats)
    return {
        "bench_id": BENCH_ID,
        "schema_version": SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": scenarios,
    }


# -- schema -------------------------------------------------------------------

_TOP_FIELDS = {
    "bench_id": int,
    "schema_version": int,
    "mode": str,
    "python": str,
    "platform": str,
    "scenarios": dict,
}

_SCENARIO_FIELDS = {
    "repeats": int,
    "scale": int,
    "wall_seconds_total": float,
    "wall_seconds_p50": float,
    "wall_seconds_p95": float,
    "events": int,
    "events_per_sec": float,
    "requests": int,
    "requests_per_sec": float,
}


def validate_report(report: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``report`` is a valid BENCH document."""
    for key, typ in _TOP_FIELDS.items():
        if key not in report:
            raise ValueError(f"missing top-level field {key!r}")
        if not isinstance(report[key], typ):
            raise ValueError(f"field {key!r} must be {typ.__name__}, "
                             f"got {type(report[key]).__name__}")
    if report["mode"] not in ("quick", "full"):
        raise ValueError(f"mode must be quick|full, got {report['mode']!r}")
    missing = set(SCENARIOS) - set(report["scenarios"])
    if missing:
        raise ValueError(f"missing scenarios: {sorted(missing)}")
    for name, data in report["scenarios"].items():
        for key, typ in _SCENARIO_FIELDS.items():
            if key not in data:
                raise ValueError(f"scenario {name!r} missing field {key!r}")
            value = data[key]
            if typ is float:
                if not isinstance(value, (int, float)):
                    raise ValueError(f"{name}.{key} must be numeric")
                if value < 0:
                    raise ValueError(f"{name}.{key} must be >= 0")
            elif not isinstance(value, typ):
                raise ValueError(f"{name}.{key} must be {typ.__name__}")
        if data["wall_seconds_p95"] < data["wall_seconds_p50"]:
            raise ValueError(f"{name}: p95 below p50")
        if data["repeats"] < 1 or data["requests"] < 1:
            raise ValueError(f"{name}: repeats/requests must be positive")


def write_report(report: Dict[str, object], path: str) -> None:
    validate_report(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
