"""Wall-clock performance harness (separate from the simulated-time tables).

The tables under ``benchmarks/`` reproduce the *paper's* numbers in
simulated seconds; this package measures how fast the simulator itself
runs on real hardware.  It drives fixed protocol scenarios — normal-case
f=1 batching, state transfer of a dirty tree, a proactive recovery
round — under ``time.perf_counter`` and emits ``BENCH_<n>.json`` so that
every perf PR has a before/after baseline.  A fourth scenario runs the
open-loop traffic engine's load sweep and reports the max sustainable
(simulated) req/s at a p95 SLO, plus a load-latency curve artifact.

Run it from the repository root::

    PYTHONPATH=src python -m benchmarks.perf --quick --out BENCH_4.json

See ``docs/PERFORMANCE.md`` for how to read the output.
"""

from benchmarks.perf.harness import (  # noqa: F401
    BENCH_ID,
    SCENARIOS,
    run_all,
    validate_report,
)
