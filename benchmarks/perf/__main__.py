"""CLI: run the wall-clock perf scenarios and emit a BENCH JSON report.

Usage (from the repository root)::

    PYTHONPATH=src python -m benchmarks.perf [--quick] [--repeats N]
                                             [--out BENCH_3.json]
"""

from __future__ import annotations

import argparse
import sys

from benchmarks.perf.harness import BENCH_ID, run_all, write_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="benchmarks.perf")
    parser.add_argument("--quick", action="store_true",
                        help="smaller scenario scales and fewer repeats "
                             "(CI smoke mode)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override per-scenario repeat count")
    parser.add_argument("--out", default=f"BENCH_{BENCH_ID}.json",
                        help="output path (default: %(default)s)")
    args = parser.parse_args(argv)

    report = run_all(quick=args.quick, repeats=args.repeats,
                     progress=lambda line: print(line, file=sys.stderr))
    write_report(report, args.out)
    print(f"wrote {args.out}", file=sys.stderr)
    for name, data in report["scenarios"].items():
        print(f"{name:16s} {data['requests_per_sec']:10.1f} req/s "
              f"{data['events_per_sec']:12.0f} events/s "
              f"p50 {data['wall_seconds_p50'] * 1e3:8.1f} ms "
              f"p95 {data['wall_seconds_p95'] * 1e3:8.1f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
