"""CLI: run the wall-clock perf scenarios and emit a BENCH JSON report.

Usage (from the repository root)::

    PYTHONPATH=src python -m benchmarks.perf [--quick] [--repeats N]
                                             [--out BENCH_6.json]
                                             [--curve-out openloop_curve.json]
                                             [--profile]
                                             [--profile-out profile_top25.txt]
"""

from __future__ import annotations

import argparse
import json
import sys

from benchmarks.perf.harness import (
    BENCH_ID,
    extract_curve_artifact,
    profile_scenarios,
    run_all,
    write_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="benchmarks.perf")
    parser.add_argument("--quick", action="store_true",
                        help="smaller scenario scales and fewer repeats "
                             "(CI smoke mode)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override per-scenario repeat count "
                             "(closed-loop scenarios only)")
    parser.add_argument("--out", default=f"BENCH_{BENCH_ID}.json",
                        help="output path (default: %(default)s)")
    parser.add_argument("--curve-out", default="openloop_curve.json",
                        help="load-latency curve artifact path "
                             "(default: %(default)s)")
    parser.add_argument("--profile", action="store_true",
                        help="also cProfile each closed-loop scenario and "
                             "write the top-25-by-cumulative-time artifact")
    parser.add_argument("--profile-out", default="profile_top25.txt",
                        help="profile artifact path (default: %(default)s)")
    args = parser.parse_args(argv)

    report = run_all(quick=args.quick, repeats=args.repeats,
                     progress=lambda line: print(line, file=sys.stderr))
    write_report(report, args.out)
    print(f"wrote {args.out}", file=sys.stderr)
    with open(args.curve_out, "w", encoding="utf-8") as fh:
        json.dump(extract_curve_artifact(report), fh, indent=2,
                  sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.curve_out}", file=sys.stderr)
    if args.profile:
        text = profile_scenarios(
            quick=args.quick,
            progress=lambda line: print(line, file=sys.stderr))
        with open(args.profile_out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {args.profile_out}", file=sys.stderr)
    for name, data in report["scenarios"].items():
        print(f"{name:16s} {data['requests_per_sec']:10.1f} req/s "
              f"{data['events_per_sec']:12.0f} events/s "
              f"p50 {data['wall_seconds_p50'] * 1e3:8.1f} ms "
              f"p95 {data['wall_seconds_p95'] * 1e3:8.1f} ms")
    fast = report["scenarios"]["read_heavy"]["fast_path"]
    print(f"read_heavy paths: {fast['read_only_rate']:.0%} read-only, "
          f"{fast['tentative_rate']:.0%} tentative, "
          f"{fast['accept_committed']} committed "
          f"(scheduler: {report['scheduler_backend']})")
    ol = report["scenarios"]["open_loop"]
    print(f"open_loop: max sustainable {ol['max_sustainable_req_s']:.1f} "
          f"req/s (simulated) at p95 SLO {ol['slo_p95_seconds'] * 1e3:.1f} ms "
          f"(knee offered {ol['knee_offered_req_s']:.1f} req/s, "
          f"{len(ol['curve'])} sweep points)")
    ss = report["scenarios"]["sharded_scaling"]
    rates = ", ".join(f"{p['shards']}sh {p['sim_req_s']:.1f}"
                      for p in ss["sweep"])
    print(f"sharded_scaling: {ss['scaling_factor']:.2f}x simulated req/s "
          f"at {ss['sweep'][-1]['shards']} shards vs 1 ({rates})")
    er = report["scenarios"]["edge_read"]
    speedup = (er["requests_per_sec"]
               / report["scenarios"]["read_heavy"]["requests_per_sec"])
    print(f"edge_read: {speedup:.1f}x read_heavy req/s "
          f"({er['degraded_reads']} cache-served bounded-stale reads, "
          f"digest {er['record_digest'][:12]})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
