"""CLI: run the wall-clock perf scenarios and emit a BENCH JSON report.

Usage (from the repository root)::

    PYTHONPATH=src python -m benchmarks.perf [--quick] [--repeats N]
                                             [--out BENCH_5.json]
                                             [--curve-out openloop_curve.json]
"""

from __future__ import annotations

import argparse
import json
import sys

from benchmarks.perf.harness import (
    BENCH_ID,
    extract_curve_artifact,
    run_all,
    write_report,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="benchmarks.perf")
    parser.add_argument("--quick", action="store_true",
                        help="smaller scenario scales and fewer repeats "
                             "(CI smoke mode)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override per-scenario repeat count "
                             "(closed-loop scenarios only)")
    parser.add_argument("--out", default=f"BENCH_{BENCH_ID}.json",
                        help="output path (default: %(default)s)")
    parser.add_argument("--curve-out", default="openloop_curve.json",
                        help="load-latency curve artifact path "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    report = run_all(quick=args.quick, repeats=args.repeats,
                     progress=lambda line: print(line, file=sys.stderr))
    write_report(report, args.out)
    print(f"wrote {args.out}", file=sys.stderr)
    with open(args.curve_out, "w", encoding="utf-8") as fh:
        json.dump(extract_curve_artifact(report), fh, indent=2,
                  sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.curve_out}", file=sys.stderr)
    for name, data in report["scenarios"].items():
        print(f"{name:16s} {data['requests_per_sec']:10.1f} req/s "
              f"{data['events_per_sec']:12.0f} events/s "
              f"p50 {data['wall_seconds_p50'] * 1e3:8.1f} ms "
              f"p95 {data['wall_seconds_p95'] * 1e3:8.1f} ms")
    ol = report["scenarios"]["open_loop"]
    print(f"open_loop: max sustainable {ol['max_sustainable_req_s']:.1f} "
          f"req/s (simulated) at p95 SLO {ol['slo_p95_seconds'] * 1e3:.1f} ms "
          f"(knee offered {ol['knee_offered_req_s']:.1f} req/s, "
          f"{len(ol['curve'])} sweep points)")
    ss = report["scenarios"]["sharded_scaling"]
    rates = ", ".join(f"{p['shards']}sh {p['sim_req_s']:.1f}"
                      for p in ss["sweep"])
    print(f"sharded_scaling: {ss['scaling_factor']:.2f}x simulated req/s "
          f"at {ss['sweep'][-1]['shards']} shards vs 1 ({rates})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
