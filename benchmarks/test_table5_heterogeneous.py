"""Table V — Andrew100 in the heterogeneous (N-version) setup.

Paper (seconds):

    BASEFS-PR    1950.6
    BASEFS       1662.2
    OpenBSD      1599.1
    Solaris      1009.2
    FreeBSD      848.4
    Linux        338.3

Shape: the native implementations span ~4.7x (Linux replies without
stable writes — fast and non-compliant; the BSDs/Solaris sync), and the
heterogeneous BASEFS lands *near the slowest replica* (+4% vs OpenBSD in
the paper) because it needs a quorum of 3 including the (fast, Linux)
primary — i.e. +391% vs Linux but barely slower than OpenBSD alone.
"""

from benchmarks.conftest import andrew_basefs, andrew_std, run_once
from repro.harness.report import assert_shape, format_table, overhead_pct

PAPER = {"linux-ext2": 338.3, "freebsd-ufs": 848.4, "solaris-ufs": 1009.2,
         "openbsd-ffs": 1599.1, "basefs-het": 1662.2,
         "basefs-het-pr": 1950.6}
VENDORS = ("linux-ext2", "freebsd-ufs", "solaris-ufs", "openbsd-ffs")


def test_table5_heterogeneous(benchmark):
    het = run_once(benchmark,
                   lambda: andrew_basefs("100", heterogeneous=True))
    natives = {v: andrew_std("100", vendor=v).result.total for v in VENDORS}
    het_total = het.result.total
    linux = natives["linux-ext2"]

    rows = []
    for vendor in VENDORS:
        rows.append((vendor, natives[vendor],
                     f"{natives[vendor] / linux:.2f}x",
                     f"{PAPER[vendor] / PAPER['linux-ext2']:.2f}x"))
    rows.append(("BASEFS (heterogeneous)", het_total,
                 f"{het_total / linux:.2f}x",
                 f"{PAPER['basefs-het'] / PAPER['linux-ext2']:.2f}x"))
    print()
    print(format_table(
        "Table V: Andrew100 heterogeneous setup (seconds, simulated; "
        "ratios vs native Linux)",
        ["system", "seconds", "vs linux", "paper"], rows))

    # Native spread matches the paper's ordering and rough factors.
    assert natives["linux-ext2"] < natives["freebsd-ufs"] \
        < natives["solaris-ufs"] < natives["openbsd-ffs"]
    assert_shape("FreeBSD/Linux ratio",
                 100 * (natives["freebsd-ufs"] / linux - 1), 100, 220)
    assert_shape("OpenBSD/Linux ratio",
                 100 * (natives["openbsd-ffs"] / linux - 1), 280, 480)
    # The headline: heterogeneous BASEFS costs multiples of the fastest
    # native implementation while remaining a working service.  The paper
    # measured it a touch *above* the slowest native (+4% vs OpenBSD)
    # because the permanently-lagging replica's constant state transfers
    # thrashed the others' real disks; our simulator charges donors for
    # serving but cannot reproduce the full disk-contention drag, so our
    # BASEFS-het lands between the 3rd-fastest and slowest natives.
    vs_linux = overhead_pct(het_total, linux)
    vs_solaris = overhead_pct(het_total, natives["solaris-ufs"])
    vs_slowest = overhead_pct(het_total, natives["openbsd-ffs"])
    print(f"BASEFS-het: +{vs_linux:.0f}% vs Linux (paper +391%), "
          f"+{vs_solaris:.0f}% vs Solaris (paper +65%), "
          f"{vs_slowest:+.0f}% vs OpenBSD (paper +4%)")
    assert_shape("BASEFS-het vs Linux", vs_linux, 180, 450)
    assert vs_solaris > 0, "must cost more than the 3rd-fastest native"
    assert vs_slowest <= 30, "must not exceed the slowest native by much"


def test_table5_heterogeneous_with_recovery(benchmark):
    het_pr = run_once(benchmark, lambda: andrew_basefs(
        "100", heterogeneous=True, recovery=True))
    het = andrew_basefs("100", heterogeneous=True)
    linux = andrew_std("100").result.total
    print(f"\nBASEFS-het-PR {het_pr.result.total:.2f}s vs BASEFS-het "
          f"{het.result.total:.2f}s (paper: 1950.6 vs 1662.2, +17%)")
    premium = overhead_pct(het_pr.result.total, het.result.total)
    # Paper: +17% premium (recoveries periodically make slow replicas
    # primary).  Our simulated premium runs higher because the plain
    # het baseline is *faster* than the paper's (no disk-contention
    # drag), which the recovery stalls are measured against.
    assert 0 <= premium <= 100, f"PR premium {premium:.0f}% out of band"
    recoveries = {rec.replica_id for r in het_pr.cluster.replicas
                  for rec in r.recovery.records}
    assert len(recoveries) == 4
