"""Table III — Andrew with proactive recovery.

Paper: every replica rejuvenates during the run (recovery every 80 s for
Andrew100, 250 s for Andrew500; 30 s simulated reboots), yet:

    System       Andrew100   Andrew500
    BASEFS-PR    448.2       2385.1
    BASEFS       427.65      2328.7
    NFS-std      338.33      1824.4

i.e. +32% / +31% vs NFS-std — recovery costs only a few points over
plain BASEFS because recoveries are staggered and the service keeps
running on the other three replicas.
"""

from benchmarks.conftest import andrew_basefs, andrew_std, run_once
from repro.harness.report import assert_shape, format_table, overhead_pct

PAPER = {"100": (448.2, 427.65, 338.33), "500": (2385.1, 2328.7, 1824.4)}


def _run(scale: str, benchmark=None):
    if benchmark is not None:
        pr = run_once(benchmark,
                      lambda: andrew_basefs(scale, recovery=True))
    else:
        pr = andrew_basefs(scale, recovery=True)
    return pr, andrew_basefs(scale), andrew_std(scale)


def test_table3_proactive_recovery_andrew100(benchmark):
    pr, base, std = _run("100", benchmark)
    _report("Andrew100", "100", pr, base, std)


def test_table3_proactive_recovery_andrew500(benchmark):
    pr, base, std = _run("500", benchmark)
    _report("Andrew500", "500", pr, base, std)


def _report(label, scale, pr, base, std):
    paper_pr, paper_base, paper_std = PAPER[scale]
    rows = [
        ("BASEFS-PR", pr.result.total,
         f"+{overhead_pct(pr.result.total, std.result.total):.0f}%",
         f"+{overhead_pct(paper_pr, paper_std):.0f}%"),
        ("BASEFS", base.result.total,
         f"+{overhead_pct(base.result.total, std.result.total):.0f}%",
         f"+{overhead_pct(paper_base, paper_std):.0f}%"),
        ("NFS-std", std.result.total, "-", "-"),
    ]
    print()
    print(format_table(
        f"Table III ({label}): elapsed time with proactive recovery",
        ["system", "seconds", "vs NFS-std", "paper"], rows))

    recoveries = [rec for r in pr.cluster.replicas
                  for rec in r.recovery.records]
    replicas_recovered = {rec.replica_id for rec in recoveries}
    print(f"recoveries completed: {len(recoveries)} across "
          f"{len(replicas_recovered)} replicas")

    # Shape: every replica rejuvenated at least once, and the PR run costs
    # only a modest premium over plain BASEFS.
    assert len(replicas_recovered) == 4
    pr_pct = overhead_pct(pr.result.total, std.result.total)
    base_pct = overhead_pct(base.result.total, std.result.total)
    assert_shape(f"{label} BASEFS-PR vs NFS-std", pr_pct, 15, 60)
    premium = pr_pct - base_pct
    assert -2 <= premium <= 25, (
        f"recovery premium {premium:.0f}pp outside the expected band "
        f"(paper: ~5pp)")
