"""Table I — Andrew100: elapsed seconds per phase, BASEFS vs NFS-std.

Paper (homogeneous Linux setup):

    Phase     BASEFS   NFS-std
    1         0.9      0.5
    2         49.2     27.4
    3         45.4     39.2
    4         44.7     36.5
    5         287.3    234.7
    Total     427.65   338.3     (BASEFS +26%)

We reproduce the scaled workload's *shape*: per-phase and total overhead
ratios of the replicated service against the implementation it reuses.
"""

from benchmarks.conftest import andrew_basefs, andrew_std, run_once
from repro.harness.report import assert_shape, format_table, overhead_pct

PAPER = {1: (0.9, 0.5), 2: (49.2, 27.4), 3: (45.4, 39.2),
         4: (44.7, 36.5), 5: (287.3, 234.7)}
PAPER_TOTAL_PCT = 26.4


def test_table1_andrew100(benchmark):
    base = run_once(benchmark, lambda: andrew_basefs("100")).result
    std = andrew_std("100").result

    rows = []
    for phase in range(1, 6):
        measured = overhead_pct(base.phase_seconds[phase],
                                std.phase_seconds[phase])
        paper = overhead_pct(*PAPER[phase])
        rows.append((f"phase {phase}", base.phase_seconds[phase],
                     std.phase_seconds[phase], f"+{measured:.0f}%",
                     f"+{paper:.0f}%"))
    total_pct = overhead_pct(base.total, std.total)
    rows.append(("total", base.total, std.total, f"+{total_pct:.0f}%",
                 f"+{PAPER_TOTAL_PCT:.0f}%"))
    print()
    print(format_table(
        "Table I: Andrew100 elapsed time (seconds, simulated)",
        ["phase", "BASEFS", "NFS-std", "overhead", "paper"], rows,
        note="Workload scaled 100x down; overhead ratios are the "
             "reproduction target."))

    # Shape assertions: the replicated service is tens-of-percent slower,
    # never multiples; write phases pay more than read phases.
    assert_shape("Andrew100 total", total_pct, 15, 45)
    assert_shape("Andrew100 phase 2 (writes)",
                 overhead_pct(base.phase_seconds[2], std.phase_seconds[2]),
                 40, 130)
    assert_shape("Andrew100 phase 5 (compile)",
                 overhead_pct(base.phase_seconds[5], std.phase_seconds[5]),
                 10, 40)
    # Phase 5 dominates the run in both systems, as in the paper.
    assert base.phase_seconds[5] > 0.5 * base.total
    assert std.phase_seconds[5] > 0.5 * std.total
