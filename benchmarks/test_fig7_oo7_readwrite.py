"""Figure 7 — OO7 cold read-write traversals: Thor vs BASE-Thor.

Paper: +38% on T2a (updates the root atomic part of each composite) and
+45% on T2b (updates *every* atomic part).  The traversal portions of
T1/T2a/T2b are nearly identical; the difference is commit time — a small
fraction for T2a, a large fraction for T2b (100 000 modified objects),
with BASE adding significant commit overhead there due to checkpoint
maintenance.
"""

from benchmarks.conftest import oo7, run_once
from repro.harness.report import assert_shape, format_table, overhead_pct

TRAVERSALS = ("T1", "T6", "T2a", "T2b")
PAPER_PCT = {"T2a": 38, "T2b": 45}


def test_fig7_oo7_readwrite(benchmark):
    base = run_once(benchmark, lambda: oo7("base", TRAVERSALS))
    std = oo7("std", TRAVERSALS)

    rows = []
    for name in ("T2a", "T2b"):
        s, b = std.results[name], base.results[name]
        pct = overhead_pct(b.total, s.total)
        rows.append((name, f"{s.traversal_seconds:.3f}",
                     f"{s.commit_seconds:.3f}", f"{b.traversal_seconds:.3f}",
                     f"{b.commit_seconds:.3f}", f"+{pct:.0f}%",
                     f"+{PAPER_PCT[name]}%"))
    print()
    print(format_table(
        "Figure 7: OO7 cold read-write traversals (seconds, simulated)",
        ["traversal", "Thor trav", "Thor commit", "BASE trav",
         "BASE commit", "overhead", "paper"], rows))

    t2a_pct = overhead_pct(base.results["T2a"].total,
                           std.results["T2a"].total)
    t2b_pct = overhead_pct(base.results["T2b"].total,
                           std.results["T2b"].total)
    assert_shape("OO7 T2a", t2a_pct, 20, 65)
    assert_shape("OO7 T2b", t2b_pct, 25, 70)

    # Traversal times of T1/T2a/T2b are almost identical (same DFS).
    t1 = std.results["T1"].traversal_seconds
    for name in ("T2a", "T2b"):
        assert abs(std.results[name].traversal_seconds - t1) < 0.35 * t1
    # T2a modifies one part per composite; T2b every part.
    assert base.results["T2b"].updates > 10 * base.results["T2a"].updates
    assert base.results["T2b"].updates == base.results["T2b"].atomic_visits
    # Commit is a significant fraction of T2b but not of T2a, and BASE
    # increases T2b's commit cost markedly (checkpoint maintenance).
    assert std.results["T2b"].commit_seconds > 0.25 * std.results["T2b"].total
    assert base.results["T2a"].commit_seconds < 0.2 * base.results["T2a"].total
    assert base.results["T2b"].commit_seconds > \
        1.2 * std.results["T2b"].commit_seconds
