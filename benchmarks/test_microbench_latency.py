"""Protocol micro-benchmarks in the style of the BFT evaluation the paper
leans on (Castro 2000; Castro & Liskov 2002): operation latency for the
0/0, 4K/0 and 0/4K argument/result combinations, read-write vs read-only.

The published BFS/BFT micro-benchmarks report roughly:

- null ops (0/0) cost two round trips read-write, one read-only;
- 4 KB arguments raise read-write latency (the request rides to the
  primary and again inside the pre-prepare);
- 4 KB results are cheap with the digest-replies optimization (one
  replica sends the payload).
"""

from repro.bft.config import BftConfig
from repro.bft.statemachine import InMemoryStateManager
from repro.harness import costs as C
from repro.harness.cluster import build_cluster
from repro.harness.report import format_table, phase_breakdown_table
from repro.workloads.microbench import sequential_ops


def make_cluster(**cfg):
    defaults = dict(n=4, checkpoint_interval=64)
    defaults.update(cfg)
    return build_cluster(lambda i: InMemoryStateManager(size=16),
                         config=BftConfig(**defaults),
                         network_config=C.lan_network(),
                         costs=C.PROTOCOL_COSTS)


def measure(payload: bytes, read_only: bool, preload: bytes = b""):
    cluster = make_cluster()
    client = cluster.add_client("lat")
    if preload:
        client.call(InMemoryStateManager.op_put(0, preload))
    op = (InMemoryStateManager.op_get(0) if read_only
          else InMemoryStateManager.op_put(0, payload))
    # Warm, then measure 30 back-to-back ops.
    client.call(op, read_only=read_only)
    cluster.metrics.clear()  # per-phase stats cover only the measured ops
    start = cluster.scheduler.now
    for _ in range(30):
        client.call(op, read_only=read_only)
    return (cluster.scheduler.now - start) / 30, cluster


def test_microbench_latency_table(benchmark):
    def run():
        return {
            ("0/0", "read-write"): measure(b"", False),
            ("0/0", "read-only"): measure(b"", True),
            ("4K/0", "read-write"): measure(b"x" * 4096, False),
            ("0/4K", "read-only"): measure(b"", True, preload=b"r" * 4096),
            ("0/4K", "read-write gets 4K reply"): measure(
                b"", False, preload=b"r" * 4096),
        }
    runs = benchmark.pedantic(run, rounds=1, iterations=1)
    lat = {k: v[0] for k, v in runs.items()}

    rows = [(k[0], k[1], f"{v * 1e6:.0f}") for k, v in lat.items()]
    print()
    print(format_table(
        "Micro-benchmark: operation latency (microseconds, simulated)",
        ["arg/result", "mode", "latency (us)"], rows))

    # Where the time goes for the null read-write op, from the
    # observability layer's per-phase histograms.
    rw_metrics = runs[("0/0", "read-write")][1].metrics
    print()
    print(phase_breakdown_table(
        rw_metrics, title="0/0 read-write: per-phase latency "
                          "(microseconds, simulated)"))
    e2e = rw_metrics.histogram("phase.request_to_reply")
    assert e2e.count == 30
    ordering = rw_metrics.histogram("phase.pre_prepare_to_prepared")
    assert ordering.count >= 30  # every replica orders every op
    assert ordering.mean < e2e.mean  # one phase cannot exceed end-to-end

    # Read-only is the cheap path.
    assert lat[("0/0", "read-only")] < lat[("0/0", "read-write")]
    # 4KB arguments cost noticeably more than null read-write ops (the
    # payload crosses the wire twice on the ordered path).
    assert lat[("4K/0", "read-write")] > 1.3 * lat[("0/0", "read-write")]
    # 4KB results are cheaper than 4KB arguments (digest replies: only
    # the designated replica ships the payload, and only once).
    assert lat[("0/4K", "read-write gets 4K reply")] < \
        lat[("4K/0", "read-write")]


def test_microbench_throughput_scales_with_batching(benchmark):
    from repro.workloads.microbench import concurrent_ops

    def run():
        results = {}
        for clients in (1, 4, 10):
            cluster = make_cluster(batch_max=16)
            results[clients] = concurrent_ops(cluster, clients=clients,
                                              per_client=10,
                                              label=f"c{clients}")
        return results
    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [(n, f"{r.throughput:.0f}", r.messages)
            for n, r in results.items()]
    print()
    print(format_table("Micro-benchmark: throughput vs concurrent clients",
                       ["clients", "ops/s", "messages"], rows))
    # Batching lets throughput grow with offered load.
    assert results[10].throughput > 2 * results[1].throughput
    # Messages per op fall as batches grow.
    per_op_1 = results[1].messages / results[1].operations
    per_op_10 = results[10].messages / results[10].operations
    assert per_op_10 < 0.6 * per_op_1
