"""Cross-service conformance battery.

Every service built on the kernel must honor the same contract, no
matter which off-the-shelf implementation sits underneath:

- **round-trip** — the abstract state captured by ``get_obj`` rebuilds a
  fresh wrapper (over a *different* vendor) through ``put_objs`` into an
  identical abstract state;
- **determinism** — heterogeneous wrapper pairs that execute the same
  op sequence expose identical abstract states (the paper's §2.4 core
  obligation for opportunistic N-version programming);
- **read-only gating** — a mutating op issued on the BFT read-only path
  draws the service's deterministic rejection and leaves the abstract
  state untouched;
- **malformed handling** — undecodable blobs, unknown op tags, and
  ill-typed arguments from a (possibly Byzantine) client draw identical
  deterministic error envelopes from every replica, never an exception;
- **restart survival** — ``shutdown``/``restart`` persist the
  conformance representation; the state-transfer delta repairs whatever
  the reboot lost and the service keeps executing.
- **consistency modes** — the edge ladder's staleness contract holds
  over the service's abstract state: LINEARIZABLE reads return the
  current state unflagged, BOUNDED_STALE reads are flagged and match
  *some* state the service exposed within Δ of the serve time, and
  LAST_KNOWN_GOOD reads are flagged with no bound.

One :class:`ServiceProbe` per registered service supplies the minimum
service-specific knowledge: how to build a heterogeneous wrapper pair,
a deterministic workload, and what an error envelope looks like.  The
battery itself is service-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.base.nondet import ClockValue
from repro.crypto.digest import digest
from repro.edge.cache import EdgeCache
from repro.edge.evidence import (BOUNDED_STALE, EVIDENCE_CERTIFICATE,
                                 EVIDENCE_VECTOR, LAST_KNOWN_GOOD,
                                 LINEARIZABLE, MODES, EdgeReply,
                                 StalenessEvidence)
from repro.encoding.canonical import canonical, decanonical
from repro.service.kernel import AbstractService

#: The edge ladder's rungs, in degradation order — the conformance axis
#: every service is checked under (see :func:`check_consistency_mode`).
CONSISTENCY_MODES: Tuple[str, ...] = MODES


class Driver:
    """Issues wire ops against one wrapper with a deterministic clock.

    The clock advances one second per issued op, and (for services whose
    mutations take an agreed timestamp) each op carries the matching
    :class:`ClockValue` nondet payload — the stand-in for the BFT
    propose/check agreement, identical across a wrapper pair.
    """

    def __init__(self, probe: "ServiceProbe", wrapper: AbstractService):
        self.probe = probe
        self.wrapper = wrapper
        self.clock = 0.0

    def _nondet(self) -> bytes:
        if not self.probe.uses_nondet:
            return b""
        return ClockValue.encode(self.clock)

    def raw(self, op_blob: bytes, read_only: bool = False) -> bytes:
        self.clock += 1.0
        return self.wrapper.execute(op_blob, "conformance-client",
                                    self._nondet(), read_only=read_only)

    def op(self, *parts, read_only: bool = False) -> tuple:
        return decanonical(self.raw(canonical(parts), read_only=read_only))

    def ok(self, *parts, read_only: bool = False) -> tuple:
        result = self.op(*parts, read_only=read_only)
        assert not self.probe.is_error(result), \
            f"{self.probe.name}: {parts[0]} failed: {result!r}"
        return result

    def next_agreed_us(self) -> int:
        """The agreed timestamp the *next* op will execute under (for
        workloads that must pass a timestamp argument)."""
        return int((self.clock + 1.0) * 1_000_000)

    def snapshot(self) -> Dict[int, bytes]:
        return {i: self.wrapper.get_obj(i)
                for i in range(self.wrapper.num_objects)}


@dataclass
class ServiceProbe:
    """Service-specific inputs to the service-agnostic battery."""

    name: str
    #: Build one wrapper; variants 0 and 1 must wrap *different*
    #: concrete implementations (different vendor, or — for Thor, which
    #: has one nondeterministic implementation — different seeds and
    #: sizing so the concrete states diverge).
    make_wrapper: Callable[[int], AbstractService]
    #: A deterministic workload driving every op class of the service.
    workload: Callable[[Driver], None]
    #: Reply envelope predicate: True for the service's error replies.
    is_error: Callable[[tuple], bool]
    #: A mutating op (wire tuple) for the read-only-gating check.
    mutating_op: tuple = ()
    #: An op that must succeed after a shutdown/restart round-trip.
    post_restart_op: tuple = ()
    #: A read-only op that must *succeed* on the read-only path (None
    #: for services with no read-only ops, e.g. Thor).
    read_only_op: Optional[tuple] = None
    #: Known ops with missing/ill-typed arguments.
    malformed_ops: List[tuple] = field(default_factory=list)
    #: Op tags outside the abstract specification.
    unknown_ops: List[tuple] = field(
        default_factory=lambda: [("__no_such_op__",), (123,)])
    #: Whether mutations execute under an agreed timestamp.
    uses_nondet: bool = False

    def driver(self, variant: int) -> Driver:
        return Driver(self, self.make_wrapper(variant))

    def pair(self) -> Tuple[Driver, Driver]:
        return self.driver(0), self.driver(1)


# -- the battery -------------------------------------------------------------------


def check_round_trip(probe: ServiceProbe) -> None:
    """get_obj on a worked wrapper rebuilds a fresh heterogeneous
    wrapper through put_objs into an identical abstract state."""
    worked, fresh = probe.pair()
    probe.workload(worked)
    state = worked.snapshot()
    fresh.wrapper.put_objs(dict(state))
    assert fresh.snapshot() == state, \
        f"{probe.name}: put_objs(get_obj(*)) is not the identity"


def check_abstract_determinism(probe: ServiceProbe) -> None:
    """The same op sequence leaves heterogeneous wrappers in identical
    abstract states."""
    first, second = probe.pair()
    probe.workload(first)
    probe.workload(second)
    assert first.snapshot() == second.snapshot(), \
        f"{probe.name}: heterogeneous pair diverged abstractly"


def check_read_only_rejection(probe: ServiceProbe) -> None:
    """A mutating op on the read-only path is rejected deterministically
    and leaves the abstract state untouched."""
    driver, _ = probe.pair()
    probe.workload(driver)
    before = driver.snapshot()
    reply = driver.op(*probe.mutating_op, read_only=True)
    assert probe.is_error(reply), \
        f"{probe.name}: read-only path accepted a mutation: {reply!r}"
    assert driver.snapshot() == before, \
        f"{probe.name}: rejected mutation still changed state"
    if probe.read_only_op is not None:
        driver.ok(*probe.read_only_op, read_only=True)


def check_malformed_ops(probe: ServiceProbe) -> None:
    """Garbage from a Byzantine client — undecodable blobs, unknown op
    tags, ill-typed arguments — draws identical deterministic error
    envelopes from both wrappers of a pair, and never an exception."""
    first, second = probe.pair()
    probe.workload(first)
    probe.workload(second)
    blobs = [canonical(parts)
             for parts in list(probe.malformed_ops) + list(probe.unknown_ops)]
    blobs.append(b"\xff\x00 not canonical at all")
    for blob in blobs:
        raws = []
        for driver in (first, second):
            before = driver.snapshot()
            raw = driver.raw(blob)
            reply = decanonical(raw)
            assert probe.is_error(reply), \
                f"{probe.name}: accepted garbage {blob!r}: {reply!r}"
            assert driver.snapshot() == before, \
                f"{probe.name}: rejected op {blob!r} changed state"
            raws.append(raw)
        assert raws[0] == raws[1], \
            f"{probe.name}: error reply for {blob!r} not deterministic"


def check_restart_survival(probe: ServiceProbe) -> None:
    """shutdown persists the conformance rep; after restart, the state
    transfer delta repairs whatever the reboot lost, and the service
    keeps executing."""
    driver, _ = probe.pair()
    probe.workload(driver)
    before = driver.snapshot()
    down_cost = driver.wrapper.shutdown()
    up_cost = driver.wrapper.restart()
    assert down_cost > 0.0 and up_cost > 0.0, \
        f"{probe.name}: rep persistence must model disk I/O time"
    # Fetch-and-check: every object whose digest changed is re-fetched.
    dirty = {index: blob for index, blob in before.items()
             if driver.wrapper.get_obj(index) != blob}
    if dirty:
        driver.wrapper.put_objs(dirty)
    assert driver.snapshot() == before, \
        f"{probe.name}: state transfer did not repair the restart"
    driver.ok(*probe.post_restart_op)


def check_txn_framing(probe: ServiceProbe) -> None:
    """The kernel's two-phase meta-ops frame a sub-op without changing
    its semantics: prepare + commit yields byte-identical replies and an
    identical abstract state to direct execution, while refused votes,
    aborts, and read-only-path commits have zero abstract-state effect.
    """
    from repro.service.kernel import TXN_TAG
    framed, direct = probe.pair()
    probe.workload(framed)
    probe.workload(direct)
    sub = canonical(probe.mutating_op)
    reply = framed.op("__prepare__", "txn-1", (sub,))
    assert reply[:2] == (TXN_TAG, "prepared"), \
        f"{probe.name}: prepare vote failed: {reply!r}"
    # Advance the direct driver's clock past an op with no state effect,
    # so the sub-op executes under the same agreed timestamp on both.
    direct.raw(canonical(("__no_such_op__",)))
    commit = framed.op("__commit__", "txn-1", (sub,))
    assert commit[:2] == (TXN_TAG, "committed"), \
        f"{probe.name}: commit failed: {commit!r}"
    assert commit[3][0] == direct.raw(sub), \
        f"{probe.name}: framed sub-op reply differs from direct execution"
    assert framed.snapshot() == direct.snapshot(), \
        f"{probe.name}: framed sub-op left a different abstract state"
    # Refusals, aborts, abandoned prepares: all state-neutral.
    before = framed.snapshot()
    refused = framed.op("__prepare__", "txn-2",
                        (canonical(("__no_such_op__",)),))
    assert refused[:2] == (TXN_TAG, "refused"), \
        f"{probe.name}: prepared an undispatchable sub-op: {refused!r}"
    framed.op("__prepare__", "txn-3", (sub,))
    aborted = framed.op("__abort__", "txn-3")
    assert aborted[:2] == (TXN_TAG, "aborted"), \
        f"{probe.name}: abort failed: {aborted!r}"
    gated = framed.op("__commit__", "txn-4", (sub,), read_only=True)
    assert gated[:2] == (TXN_TAG, "read_only"), \
        f"{probe.name}: read-only path accepted a commit: {gated!r}"
    assert framed.snapshot() == before, \
        f"{probe.name}: a non-committing meta-op changed abstract state"


def _state_blob(snapshot: Dict[int, bytes]) -> bytes:
    """One canonical blob for a whole abstract state — the 'result' an
    edge read of the service's abstraction function would return."""
    return canonical(tuple(sorted(snapshot.items())))


def check_consistency_mode(probe: ServiceProbe, mode: str) -> None:
    """The edge staleness contract holds over this service's abstract
    state, exercised through the real cache/lease machinery on a manual
    clock (the driver's own op clock):

    - LINEARIZABLE — the reply is unflagged, carries no bound, holds
      certificate evidence, and equals the *latest* abstract state;
    - BOUNDED_STALE — the reply is flagged, carries Δ, its lease is
      still valid, and the result matches *some* abstract state the
      service exposed within Δ of the serve time;
    - LAST_KNOWN_GOOD — past Δ the lease no longer validates, the reply
      is flagged with no bound, and the result still matches some
      historical abstract state (stale, never fabricated).
    """
    assert mode in CONSISTENCY_MODES, mode
    delta = 3.0
    driver, _ = probe.pair()
    history: List[Tuple[float, bytes]] = []
    inner_raw = driver.raw

    def recording_raw(op_blob: bytes, read_only: bool = False) -> bytes:
        out = inner_raw(op_blob, read_only=read_only)
        history.append((driver.clock, _state_blob(driver.snapshot())))
        return out

    driver.raw = recording_raw  # record the abstract-state history
    probe.workload(driver)
    assert len(history) >= 2, f"{probe.name}: workload too short"

    # A near-final state enters the edge cache under the lease
    # machinery, timestamped with the clock it was captured at.
    cache = EdgeCache(lambda: driver.clock, delta)
    cached_at, cached_blob = history[-2]
    cache.put("state", cached_blob, StalenessEvidence(
        kind=EVIDENCE_VECTOR,
        issued_at_us=int(round(cached_at * 1_000_000)),
        replicas=("replica0",),
        checkpoint_seq=len(history) - 2,
        root_digest=digest(cached_blob),
        stable_at_us=int(round(cached_at * 1_000_000))))

    now = driver.clock
    if mode == LINEARIZABLE:
        reply = EdgeReply(
            result=_state_blob(driver.snapshot()), mode=LINEARIZABLE,
            staleness_bound=None,
            evidence=StalenessEvidence(
                kind=EVIDENCE_CERTIFICATE,
                issued_at_us=int(round(now * 1_000_000)),
                replicas=("replica0", "replica1", "replica2")))
        assert not reply.degraded, \
            f"{probe.name}: linearizable reply must not be flagged"
        assert reply.staleness_bound is None
        assert reply.evidence.kind == EVIDENCE_CERTIFICATE
        assert reply.result == history[-1][1], \
            f"{probe.name}: linearizable read missed the latest state"
    elif mode == BOUNDED_STALE:
        entry = cache.get_fresh("state")
        assert entry is not None, \
            f"{probe.name}: lease within Δ did not validate"
        reply = EdgeReply(result=entry.result, mode=BOUNDED_STALE,
                          staleness_bound=delta, evidence=entry.evidence)
        assert reply.degraded, \
            f"{probe.name}: bounded-stale reply must be flagged"
        assert reply.staleness_bound == delta
        assert now - reply.evidence.issued_at <= delta
        window = [blob for when, blob in history if now - when <= delta]
        assert reply.result in window, \
            f"{probe.name}: bounded-stale read matches no state within Δ"
    else:  # LAST_KNOWN_GOOD
        driver.clock += delta + 1.0  # the lease ages out, core is gone
        assert cache.get_fresh("state") is None, \
            f"{probe.name}: lease validated past Δ"
        entry = cache.get_any("state")
        assert entry is not None
        assert cache.staleness(entry) > delta
        reply = EdgeReply(result=entry.result, mode=LAST_KNOWN_GOOD,
                          staleness_bound=None, evidence=entry.evidence)
        assert reply.degraded, \
            f"{probe.name}: last-known-good reply must be flagged"
        assert reply.staleness_bound is None, \
            f"{probe.name}: an expired lease cannot advertise a bound"
        assert reply.result in [blob for _, blob in history], \
            f"{probe.name}: last-known-good read fabricated a state"


def check_consistency_modes(probe: ServiceProbe) -> None:
    """Every rung of the edge ladder honors the staleness contract over
    this service's abstract state."""
    for mode in CONSISTENCY_MODES:
        check_consistency_mode(probe, mode)


#: The battery, in the order the checks are usually discussed.
BATTERY: Tuple[Callable[[ServiceProbe], None], ...] = (
    check_round_trip,
    check_abstract_determinism,
    check_read_only_rejection,
    check_malformed_ops,
    check_restart_survival,
    check_txn_framing,
    check_consistency_modes,
)


def run_battery(probe: ServiceProbe) -> None:
    for check in BATTERY:
        check(probe)


# -- probes ------------------------------------------------------------------------

_SATTR_FILE = (0o644, 0, 0, -1, -1, -1)
_SATTR_DIR = (0o755, 0, 0, -1, -1, -1)


def _nfs_make_wrapper(variant: int) -> AbstractService:
    from repro.nfs.backends.vendors import (LinuxExt2Backend,
                                            SolarisUfsBackend)
    from repro.nfs.spec import AbstractSpecConfig
    from repro.nfs.wrapper import NfsConformanceWrapper
    backend_class = (LinuxExt2Backend, SolarisUfsBackend)[variant]
    return NfsConformanceWrapper(backend_class(),
                                 spec=AbstractSpecConfig(array_size=32))


def _nfs_root() -> bytes:
    from repro.nfs.spec import ROOT_OID
    return ROOT_OID


def _nfs_workload(d: Driver) -> None:
    root = _nfs_root()
    docs = d.ok("mkdir", root, "docs", _SATTR_DIR)[1]
    a = d.ok("create", root, "a.txt", _SATTR_FILE)[1]
    d.ok("write", a, 0, b"hello abstract world")
    b = d.ok("create", docs, "b.txt", _SATTR_FILE)[1]
    d.ok("write", b, 0, b"doomed")
    d.ok("symlink", root, "link", "a.txt", _SATTR_FILE)
    d.ok("setattr", a, (0o600, 0, 0, -1, -1, -1))
    d.ok("remove", docs, "b.txt")
    d.ok("getattr", a, read_only=True)
    d.ok("readdir", root, read_only=True)


def _sql_make_wrapper(variant: int) -> AbstractService:
    from repro.sql.engine import BTreeStoreEngine, HashStoreEngine
    from repro.sql.wrapper import SqlConformanceWrapper
    engine_class = (HashStoreEngine, BTreeStoreEngine)[variant]
    return SqlConformanceWrapper(engine_class(), array_size=32)


def _sql_workload(d: Driver) -> None:
    d.ok("create_table", "users", ("id", "name", "karma"), "id")
    d.ok("insert", "users", (1, "ada", 10))
    d.ok("insert", "users", (2, "grace", 20))
    d.ok("insert", "users", (3, "alan", 30))
    d.ok("update", "users", 2, (2, "grace", 25))
    d.ok("delete", "users", 3)
    d.ok("create_table", "tags", ("tag", "count"), "tag")
    d.ok("insert", "tags", ("base", 1))
    d.ok("select", "users", 1, read_only=True)
    d.ok("scan", "users", read_only=True)


def _http_make_wrapper(variant: int) -> AbstractService:
    from repro.http.engine import ApacheLikeServer, NginxLikeServer
    from repro.http.wrapper import HttpConformanceWrapper
    if variant == 0:
        server = ApacheLikeServer(boot_salt=7)
    else:
        server = NginxLikeServer()
    return HttpConformanceWrapper(server, array_size=32)


def _http_workload(d: Driver) -> None:
    d.ok("MKCOL", "/docs")
    d.ok("PUT", "/docs/a.html", b"<p>alpha</p>")
    d.ok("PUT", "/b.txt", b"beta")
    d.ok("PUT", "/b.txt", b"beta v2")
    d.ok("PUT", "/docs/c.txt", b"gamma")
    d.ok("DELETE", "/docs/a.html")
    d.ok("GET", "/b.txt", "", read_only=True)
    d.ok("PROPFIND", "/docs", read_only=True)


def _thor_rec(value) -> bytes:
    from repro.thor.objects import ObjectRecord
    return ObjectRecord("Item", (value,)).encode()


def _thor_make_wrapper(variant: int) -> AbstractService:
    from repro.thor.pages import Page
    from repro.thor.server import ThorServer, ThorServerConfig
    from repro.thor.wrapper import ThorConformanceWrapper
    # Same single implementation, concretely divergent: different seeds
    # and cache/MOB pressure (§3.2 — "identical nondeterministic
    # implementation with different internal schedules").
    sizing = ({"cache_pages": 2, "mob_bytes": 200},
              {"cache_pages": 1, "mob_bytes": 50})[variant]
    server = ThorServer(ThorServerConfig(seed=11 + 31 * variant, **sizing))
    for pagenum in range(4):
        server.load_page(Page(pagenum, {o: _thor_rec(pagenum * 10 + o)
                                        for o in range(4)}))
    return ThorConformanceWrapper(server, num_pages=8, max_clients=4)


def _thor_workload(d: Driver) -> None:
    from repro.thor.orefs import make_oref
    d.ok("start_session", "alice")
    d.ok("start_session", "bob")
    d.ok("fetch", "alice", 0, (), ())
    d.ok("fetch", "bob", 0, (), ())
    d.ok("fetch", "bob", 1, (), ())
    oref = make_oref(0, 1)
    committed, _ = d.ok("commit", "alice", d.next_agreed_us() + 1,
                        (oref,), ((oref, _thor_rec("alice-v1")),),
                        (), ())[1:]
    assert committed
    oref2 = make_oref(1, 2)
    d.ok("commit", "bob", d.next_agreed_us() + 1, (oref2,),
         ((oref2, _thor_rec("bob-v1")),), (), (oref,))


PROBES: Dict[str, ServiceProbe] = {probe.name: probe for probe in (
    ServiceProbe(
        name="nfs",
        make_wrapper=_nfs_make_wrapper,
        workload=_nfs_workload,
        is_error=lambda reply: reply[0] != 0,
        mutating_op=("create", _nfs_root(), "denied.txt", _SATTR_FILE),
        post_restart_op=("create", _nfs_root(), "post-restart.txt",
                         _SATTR_FILE),
        read_only_op=("getattr", _nfs_root()),
        malformed_ops=[("getattr",), ("write", _nfs_root()),
                       ("setattr", _nfs_root())],
        uses_nondet=True,
    ),
    ServiceProbe(
        name="sql",
        make_wrapper=_sql_make_wrapper,
        workload=_sql_workload,
        is_error=lambda reply: reply[0] != "OK",
        mutating_op=("insert", "users", (9, "mallory", 0)),
        post_restart_op=("insert", "users", (7, "post-restart", 1)),
        read_only_op=("tables",),
        malformed_ops=[("insert",), ("select", "users"),
                       ("create_table", "t")],
    ),
    ServiceProbe(
        name="http",
        make_wrapper=_http_make_wrapper,
        workload=_http_workload,
        is_error=lambda reply: not isinstance(reply[0], int)
        or reply[0] >= 400,
        mutating_op=("PUT", "/denied.txt", b"x", ""),
        post_restart_op=("PUT", "/post-restart.txt", b"post", ""),
        read_only_op=("GET", "/b.txt", ""),
        malformed_ops=[("PUT", "/x"), ("GET",), ("MKCOL",)],
    ),
    ServiceProbe(
        name="thor",
        make_wrapper=_thor_make_wrapper,
        workload=_thor_workload,
        is_error=lambda reply: reply[0] != 0,
        mutating_op=("start_session", "mallory"),
        post_restart_op=("start_session", "carol"),
        read_only_op=None,  # every Thor op mutates server state
        malformed_ops=[("fetch", "alice"), ("commit", "alice"),
                       ("start_session",)],
        uses_nondet=True,
    ),
)}


def probe_names() -> List[str]:
    return sorted(PROBES)


def get_probe(name: str) -> ServiceProbe:
    return PROBES[name]


# -- faulty-backend probes (software ageing under the same battery) ----------------
#
# The battery's contract must also hold when the off-the-shelf backend is
# *ageing* (paper §1: leaks and latent corruption are exactly what
# proactive recovery exists to mask).  These probes wrap the NFS vendors
# in the fault injectors from :mod:`repro.nfs.backends.faulty` and run
# the identical checks:
#
# - ``nfs-leaky`` — the backend leaks on every call but has not yet aged
#   out: conformance must be oblivious to sub-critical ageing, and the
#   restart-survival check doubles as the rejuvenation path (``load_rep``
#   clears the leak before remounting).
# - ``nfs-corrupting`` — the backend silently corrupts every file write
#   during the workload (the rot stops before repair, as when recovery
#   rejuvenates the process): heterogeneous determinism must hold even
#   over the rotten state, and state transfer must reproduce that state
#   faithfully rather than laundering it.
#
# Kept out of :data:`PROBES` deliberately: that registry mirrors the
# service registry one-to-one (asserted by the conformance tests).


def _faulty_nfs_wrapper(variant: int, fault: str):
    from repro.nfs.backends.faulty import CorruptingBackend, LeakyBackend
    from repro.nfs.backends.vendors import (LinuxExt2Backend,
                                            SolarisUfsBackend)
    from repro.nfs.spec import AbstractSpecConfig
    from repro.nfs.wrapper import NfsConformanceWrapper
    inner = (LinuxExt2Backend, SolarisUfsBackend)[variant]()
    if fault == "leaky":
        backend = LeakyBackend(inner, leak_per_op=1024, limit=1 << 30)
    else:
        # Same seed for both variants: identical fault sequences must
        # keep a heterogeneous pair abstractly identical.
        backend = CorruptingBackend(inner, probability=0.0, seed=7)
    return NfsConformanceWrapper(backend,
                                 spec=AbstractSpecConfig(array_size=32))


def _leaky_nfs_workload(d: Driver) -> None:
    _nfs_workload(d)
    assert d.wrapper.backend.leaked > 0, \
        "nfs-leaky: the workload never exercised the leak"


def _corrupting_nfs_workload(d: Driver) -> None:
    backend = d.wrapper.backend
    backend.probability = 1.0  # rot is live for the whole working period
    try:
        _nfs_workload(d)
    finally:
        backend.probability = 0.0  # ...and stops before any repair runs
    assert backend.corruptions > 0, \
        "nfs-corrupting: the workload never drew a corruption"


def _make_faulty_nfs_probe(fault: str) -> ServiceProbe:
    workload = {"leaky": _leaky_nfs_workload,
                "corrupting": _corrupting_nfs_workload}[fault]
    return ServiceProbe(
        name=f"nfs-{fault}",
        make_wrapper=lambda variant: _faulty_nfs_wrapper(variant, fault),
        workload=workload,
        is_error=lambda reply: reply[0] != 0,
        mutating_op=("create", _nfs_root(), "denied.txt", _SATTR_FILE),
        post_restart_op=("create", _nfs_root(), "post-restart.txt",
                         _SATTR_FILE),
        read_only_op=("getattr", _nfs_root()),
        malformed_ops=[("getattr",), ("write", _nfs_root()),
                       ("setattr", _nfs_root())],
        uses_nondet=True,
    )


FAULTY_PROBES: Dict[str, ServiceProbe] = {
    probe.name: probe
    for probe in (_make_faulty_nfs_probe("leaky"),
                  _make_faulty_nfs_probe("corrupting"))
}


def faulty_probe_names() -> List[str]:
    return sorted(FAULTY_PROBES)


def get_faulty_probe(name: str) -> ServiceProbe:
    return FAULTY_PROBES[name]
