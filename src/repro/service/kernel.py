"""Declarative operation dispatch for conformance wrappers.

Every conformance wrapper used to hand-roll the same ``execute`` shape:
decode the canonical op tuple, ``getattr(self, f"_op_{kind}")`` (one of
them without a default — an unknown op from a Byzantine client became an
``AttributeError`` through the replica), gate the read-only path, accept
the agreed nondeterministic value, and translate service exceptions into
a deterministic error envelope.  :class:`AbstractService` implements
that shape once, over a dispatch table built at class-definition time
from ``@op``-decorated methods, with small per-service hooks for the
envelope formats the wire protocols pin down.

The same class also centralizes the shutdown/restart persistence of the
conformance representation (paper §3.1.4): subclasses implement
``save_rep``/``load_rep`` over plain canonical-encodable values and the
kernel owns the serialization and the simulated I/O cost.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Optional, Tuple

from repro.base.upcalls import Upcalls
from repro.encoding.canonical import canonical, decanonical

#: Kernel-level transaction meta-ops (client-driven two-phase commit for
#: cross-shard operations; see docs/SHARDING.md).  These tags live outside
#: every service's abstract specification — the kernel intercepts them
#: before table dispatch, so no service can shadow them.
TXN_PREPARE = "__prepare__"
TXN_COMMIT = "__commit__"
TXN_ABORT = "__abort__"
#: Reply envelope tag shared by all three meta-ops.
TXN_TAG = "__txn__"
_TXN_OPS = frozenset((TXN_PREPARE, TXN_COMMIT, TXN_ABORT))


class OpSpec:
    """One registered operation of a service's abstract specification."""

    __slots__ = ("name", "method", "read_only", "cost")

    def __init__(self, name: str, method: Callable, read_only: bool,
                 cost: float):
        self.name = name
        self.method = method
        #: Eligible for BFT's read-only optimization; mutating ops issued
        #: on the read-only path are rejected with the service's envelope.
        self.read_only = read_only
        #: Extra simulated CPU seconds charged per invocation (on top of
        #: the service-wide ``per_op_cost``).
        self.cost = cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"OpSpec({self.name!r}, read_only={self.read_only}, "
                f"cost={self.cost})")


def op(name: Optional[str] = None, *, read_only: bool = False,
       cost: float = 0.0):
    """Register a method as one operation of the abstract specification.

    The wire op tag defaults to the method name with its ``_op_`` prefix
    stripped; pass ``name`` to register under a different tag (e.g. the
    HTTP wrapper registers ``_op_get`` as ``GET`` is normalized through
    :meth:`AbstractService.op_key`).
    """

    def decorate(method: Callable) -> Callable:
        tag = name
        if tag is None:
            tag = method.__name__
            if tag.startswith("_op_"):
                tag = tag[len("_op_"):]
        method.__op_spec__ = OpSpec(tag, method, read_only, cost)
        return method

    return decorate


class AbstractService(Upcalls):
    """Upcalls base with table dispatch and shared recovery persistence.

    Subclasses declare operations with ``@op`` and override the small
    envelope hooks; ``execute`` itself is final in spirit — the dispatch,
    gating, and error-translation logic lives here once.
    """

    #: Built by ``__init_subclass__``: wire op tag -> OpSpec.
    OPS: Dict[str, OpSpec] = {}

    #: Exceptions treated as malformed client input when no service
    #: envelope claims them: wrong arity or argument types from a faulty
    #: client must produce a deterministic error reply, not crash the
    #: replica.
    MALFORMED_EXC: Tuple[type, ...] = (TypeError, ValueError)

    #: Simulated seconds per byte to persist/reload the conformance
    #: representation around proactive-recovery reboots.
    REP_IO_COST_PER_BYTE: float = 1e-8

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        table: Dict[str, OpSpec] = {}
        for base in reversed(cls.__mro__):
            for value in vars(base).values():
                spec = getattr(value, "__op_spec__", None)
                if spec is not None:
                    table[spec.name] = spec
        cls.OPS = table

    def __init__(self) -> None:
        super().__init__()
        #: Simulated CPU seconds charged for every operation (faulty or
        #: not) before dispatch; per-op extras come from ``@op(cost=...)``.
        self.per_op_cost: float = 0.0
        self._saved_rep: Optional[bytes] = None
        #: Advisory staging of prepared-but-uncommitted transaction
        #: sub-ops.  NOT part of the abstract state: a replica restored
        #: from a checkpoint (state transfer between prepare and commit)
        #: loses it harmlessly, because ``__commit__`` carries the
        #: sub-ops redundantly and never consults this map to execute.
        self._txn_staged: Dict[Any, Tuple[bytes, ...]] = {}

    # -- introspection -----------------------------------------------------------

    @classmethod
    def read_only_ops(cls) -> FrozenSet[str]:
        """Wire tags of the ops eligible for the read-only path."""
        return frozenset(name for name, spec in cls.OPS.items()
                         if spec.read_only)

    # -- execute (the shared shape) ----------------------------------------------

    def execute(self, op: bytes, client_id: str, nondet: bytes,
                read_only: bool = False) -> bytes:
        kind: Any = None
        try:
            decoded = decanonical(op)
            kind, args = decoded[0], tuple(decoded[1:])
        except Exception:
            return canonical(self.malformed_reply(kind, None))
        if isinstance(kind, str) and kind in _TXN_OPS:
            return self._execute_txn(kind, args, client_id, nondet, read_only)
        key = self.op_key(kind) if isinstance(kind, str) else None
        spec = self.OPS.get(key) if key is not None else None
        self.charge_op(spec)
        if spec is None:
            return canonical(self.unknown_op_reply(kind))
        if read_only and not spec.read_only:
            return canonical(self.read_only_reply(kind))
        now = self.agreed_time(spec, nondet)
        if now is not None:
            args = (now,) + args
        try:
            payload = spec.method(self, *args)
        except Exception as exc:
            reply = self.service_error_reply(exc)
            if reply is None and isinstance(exc, self.MALFORMED_EXC):
                reply = self.malformed_reply(kind, exc)
            if reply is None:
                raise
            return canonical(reply)
        return canonical(self.ok_reply(payload))

    # -- transaction meta-ops (cross-shard two-phase commit) -----------------------

    def _execute_txn(self, kind: str, args: tuple, client_id: str,
                     nondet: bytes, read_only: bool) -> bytes:
        """Execute one kernel transaction meta-op.

        Every reply is a ``(TXN_TAG, status, ...)`` envelope, and every
        outcome is a deterministic function of the op bytes and the
        current abstract state — Byzantine coordinators can at worst
        abandon a prepared transaction, which holds no locks and has
        zero abstract-state effect.
        """
        self.charge_op(None)
        if read_only:
            # Mutating by construction: committing applies sub-ops.
            return canonical((TXN_TAG, "read_only", kind))
        if kind == TXN_ABORT:
            if len(args) != 1 or not isinstance(args[0], str):
                return canonical((TXN_TAG, "malformed", kind))
            self._txn_staged.pop(args[0], None)
            return canonical((TXN_TAG, "aborted", args[0]))
        if (len(args) != 2 or not isinstance(args[0], str)
                or not isinstance(args[1], tuple) or not args[1]
                or not all(isinstance(sub, bytes) for sub in args[1])):
            return canonical((TXN_TAG, "malformed", kind))
        txn_id, sub_ops = args[0], args[1]
        if kind == TXN_PREPARE:
            if all(self._txn_vote(sub) for sub in sub_ops):
                self._txn_staged[txn_id] = sub_ops
                return canonical((TXN_TAG, "prepared", txn_id))
            return canonical((TXN_TAG, "refused", txn_id))
        # TXN_COMMIT: apply the carried sub-ops in order at this sequence
        # point.  The staged copy (if any survives) is dropped unread.
        self._txn_staged.pop(txn_id, None)
        replies = tuple(self.execute(sub, client_id, nondet)
                        for sub in sub_ops)
        return canonical((TXN_TAG, "committed", txn_id, replies))

    def _txn_vote(self, sub_op: bytes) -> bool:
        """Would this sub-op dispatch?  (The prepare-phase vote: depends
        only on the op bytes, so every correct replica votes alike.)"""
        try:
            decoded = decanonical(sub_op)
            kind = decoded[0]
        except Exception:
            return False
        if not isinstance(kind, str) or kind in _TXN_OPS:
            return False
        return self.op_key(kind) in self.OPS

    # -- per-service hooks ---------------------------------------------------------

    def op_key(self, kind: str) -> str:
        """Normalize a wire op tag to a table key (e.g. HTTP methods)."""
        return kind

    def charge_op(self, spec: Optional[OpSpec]) -> None:
        """Charge simulated CPU for one request (unknown ops included —
        a faulty client still costs the replica the decode)."""
        seconds = self.per_op_cost + (spec.cost if spec is not None else 0.0)
        if seconds:
            self.charge(seconds)

    def agreed_time(self, spec: OpSpec, nondet: bytes) -> Optional[int]:
        """Accept the agreed nondeterministic value and return the value
        to prepend to the handler's arguments, or None for services whose
        handlers do not take one."""
        return None

    def ok_reply(self, payload: tuple) -> tuple:
        """Wrap a handler's payload in the service's success envelope."""
        return payload

    def unknown_op_reply(self, kind: Any) -> tuple:
        """Envelope for an op tag outside the abstract specification."""
        raise NotImplementedError

    def read_only_reply(self, kind: Any) -> tuple:
        """Envelope for a mutating op issued on the read-only path."""
        raise NotImplementedError

    def malformed_reply(self, kind: Any, exc: Optional[Exception]) -> tuple:
        """Envelope for undecodable or ill-typed requests.  Defaults to
        the unknown-op envelope; services with a richer error vocabulary
        override it."""
        return self.unknown_op_reply(kind)

    def service_error_reply(self, exc: Exception) -> Optional[tuple]:
        """Map a service exception to its deterministic error envelope,
        or return None to let it propagate (library bugs must surface)."""
        return None

    # -- library plumbing shared by every wrapper ---------------------------------

    def _modify(self, index: int) -> None:
        """Record the imminent mutation of abstract object ``index``
        (copy-on-write checkpointing)."""
        if self.library is not None:
            self.library.modify(index)

    def charge(self, seconds: float) -> None:
        if self.library is not None:
            self.library.charge(seconds)

    # -- proactive recovery (shutdown / restart) ----------------------------------

    def save_rep(self) -> Optional[Any]:
        """The conformance representation as a canonical-encodable value,
        or None if the service keeps nothing across reboots."""
        return None

    def load_rep(self, saved: Any) -> None:
        """Rebuild the conformance representation from ``save_rep``'s
        value after the reboot."""

    def shutdown(self) -> float:
        saved = self.save_rep()
        if saved is None:
            return 0.0
        self._saved_rep = canonical(saved)
        return self.REP_IO_COST_PER_BYTE * len(self._saved_rep)

    def restart(self) -> float:
        if self._saved_rep is None:
            return 0.0
        self.load_rep(decanonical(self._saved_rep))
        return self.REP_IO_COST_PER_BYTE * len(self._saved_rep)
