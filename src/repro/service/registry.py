"""Registry of the services built on the kernel.

Each service's ``service.py`` registers its
:class:`~repro.service.deploy.ServiceDefinition` at import time; the
cross-service conformance harness and any by-name tooling iterate the
registry instead of hard-coding the four stacks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.service.deploy import ServiceDefinition

#: Importing these modules populates the default registry.
_SERVICE_MODULES = (
    "repro.nfs.service",
    "repro.thor.service",
    "repro.sql.service",
    "repro.http.service",
)


class ServiceRegistry:
    """Name -> :class:`ServiceDefinition` mapping."""

    def __init__(self) -> None:
        self._services: Dict[str, ServiceDefinition] = {}

    def register(self, definition: ServiceDefinition) -> ServiceDefinition:
        existing = self._services.get(definition.name)
        if existing is not None and existing is not definition:
            raise ValueError(f"service {definition.name!r} already "
                             f"registered")
        self._services[definition.name] = definition
        return definition

    def get(self, name: str) -> ServiceDefinition:
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(f"unknown service {name!r}; registered: "
                           f"{sorted(self._services)}") from None

    def names(self) -> List[str]:
        return sorted(self._services)

    def __iter__(self) -> Iterator[ServiceDefinition]:
        return iter(self._services.values())

    def __contains__(self, name: str) -> bool:
        return name in self._services


#: The default registry used by the builders and the conformance harness.
REGISTRY = ServiceRegistry()


def register(definition: ServiceDefinition) -> ServiceDefinition:
    return REGISTRY.register(definition)


def load_all() -> ServiceRegistry:
    """Import every service module so the registry is fully populated."""
    import importlib

    for module in _SERVICE_MODULES:
        importlib.import_module(module)
    return REGISTRY


def get_service(name: str) -> ServiceDefinition:
    """Look up a service by name, loading the service modules on demand."""
    if name not in REGISTRY:
        load_all()
    return REGISTRY.get(name)


def service_names() -> List[str]:
    load_all()
    return REGISTRY.names()
