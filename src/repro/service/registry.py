"""Registry of the services built on the kernel.

Each service's ``service.py`` registers its
:class:`~repro.service.deploy.ServiceDefinition` at import time; the
cross-service conformance harness and any by-name tooling iterate the
registry instead of hard-coding the four stacks.

Registration is **idempotent**: re-registering the same (or an
equal-valued) definition is a no-op rather than an error, and
``load_all`` repopulates even a *fresh* registry from already-imported
service modules — ``importlib.import_module`` is a no-op for cached
modules, so without the rescan a new registry would silently stay
empty.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.service.deploy import ServiceDefinition

#: Importing these modules populates the default registry.
_SERVICE_MODULES = (
    "repro.nfs.service",
    "repro.thor.service",
    "repro.sql.service",
    "repro.http.service",
)


class ServiceRegistry:
    """Name -> :class:`ServiceDefinition` mapping."""

    def __init__(self) -> None:
        self._services: Dict[str, ServiceDefinition] = {}

    def register(self, definition: ServiceDefinition) -> ServiceDefinition:
        """Add a definition; idempotent for equal-valued re-registrations.

        Registering the same object twice, or a value-equal rebuild of
        an existing definition (the repeated-import case), returns the
        already-registered definition.  Only a *conflicting* definition
        under an existing name raises.
        """
        existing = self._services.get(definition.name)
        if existing is not None:
            if existing is definition or existing == definition:
                return existing
            raise ValueError(f"service {definition.name!r} already "
                             f"registered with a different definition")
        self._services[definition.name] = definition
        return definition

    def load_all(self) -> "ServiceRegistry":
        """Populate this registry with every known service definition.

        Imports any service module not yet loaded, then rescans the
        (possibly already-cached) modules for their module-level
        :class:`ServiceDefinition` instances and registers each
        idempotently — so the call works on a fresh registry even when
        every module import is a cache hit.
        """
        import importlib

        for module_name in _SERVICE_MODULES:
            module = importlib.import_module(module_name)
            for value in vars(module).values():
                if isinstance(value, ServiceDefinition):
                    self.register(value)
        return self

    def get(self, name: str) -> ServiceDefinition:
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(f"unknown service {name!r}; registered: "
                           f"{sorted(self._services)}") from None

    def names(self) -> List[str]:
        return sorted(self._services)

    def __iter__(self) -> Iterator[ServiceDefinition]:
        return iter(self._services.values())

    def __contains__(self, name: str) -> bool:
        return name in self._services


#: The default registry used by the builders and the conformance harness.
REGISTRY = ServiceRegistry()


def register(definition: ServiceDefinition) -> ServiceDefinition:
    return REGISTRY.register(definition)


def load_all(registry: Optional[ServiceRegistry] = None) -> ServiceRegistry:
    """Import every service module so ``registry`` (default: the default
    registry) is fully populated."""
    return (registry if registry is not None else REGISTRY).load_all()


def get_service(name: str) -> ServiceDefinition:
    """Look up a service by name, loading the service modules on demand."""
    if name not in REGISTRY:
        load_all()
    return REGISTRY.get(name)


def service_names() -> List[str]:
    load_all()
    return REGISTRY.names()
