"""Shard the abstract state space across independent BASE groups.

A :class:`ShardedDeployment` mounts N
:class:`~repro.service.deploy.ReplicatedDeployment` groups on one
simulation fabric (one scheduler, one network — distinct node ids per
shard, so the groups cannot interact by construction) and fronts them
with a :class:`ShardRouter`: a :class:`~repro.service.deploy.Channel`
that maps each operation to its owning group using the service's
declared :class:`~repro.service.deploy.ShardKeySpec`.

Routing is deterministic and stable: keys hash through
``digest(canonical(key))`` (never Python's per-process-randomized
``hash``), learned pins bind service-minted identifiers (NFS file
handles) to the shard that minted them, and every routed call extends a
per-shard rolling digest chain — two runs with the same seed and op
stream agree on every assignment iff the chains match, an O(1) check.

Ops whose keys straddle shards do not route; callers run them through
:meth:`ShardRouter.cross_shard_call`, a client-driven two-phase commit
over the kernel's ``__prepare__``/``__commit__``/``__abort__`` meta-ops
(the Basil pattern: clients drive cross-group atomic commit, each
phase's messages individually ordered by the BFT groups they touch).
The contract is all-or-nothing *application* — if any shard refuses the
prepare vote, no shard applies anything — not isolation between
concurrent coordinators; see docs/SHARDING.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.bft.config import BftConfig
from repro.bft.costs import CostModel
from repro.base.library import BaseServiceConfig
from repro.crypto.digest import digest
from repro.encoding.canonical import canonical, decanonical
from repro.errors import ReproError
from repro.service.deploy import (BROADCAST, Broadcast, Channel, Deployment,
                                  LearnedKey, ReplicatedDeployment,
                                  ServiceDefinition, ShardKeySpec)
from repro.service.kernel import TXN_ABORT, TXN_COMMIT, TXN_PREPARE, TXN_TAG
from repro.sim.metrics import Metrics
from repro.sim.network import Network, NetworkConfig
from repro.sim.scheduler import Scheduler


class RoutingError(ReproError):
    """The router cannot map an op (or a learned pin) to one shard."""


class CrossShardOp(RoutingError):
    """An op's keys resolve to more than one shard: it cannot ride the
    plain ``call`` path — use :meth:`ShardRouter.cross_shard_call`."""

    def __init__(self, kind: Any, shards: Sequence[int]):
        super().__init__(f"op {kind!r} spans shards {sorted(shards)}")
        self.kind = kind
        self.shards = sorted(shards)


class TxnAborted(ReproError):
    """A cross-shard transaction was refused in the prepare phase; every
    prepared shard was aborted and no sub-op was applied anywhere."""

    def __init__(self, txn_id: str, refused: Sequence[int]):
        super().__init__(f"transaction {txn_id} refused by shards "
                         f"{sorted(refused)}")
        self.txn_id = txn_id
        self.refused = sorted(refused)


def stable_shard(key: Any, num_shards: int) -> int:
    """Deterministic shard for a canonical-encodable key.

    Hashes ``digest(canonical(key))`` — stable across processes and
    Python versions, unlike builtin ``hash`` (randomized by
    PYTHONHASHSEED, which would make routing unreproducible).
    """
    return int.from_bytes(digest(canonical(key))[:4], "big") % num_shards


class ShardRouter(Channel):
    """Deterministic op-to-shard routing behind the ``Channel`` interface.

    Service clients are oblivious: the same client class that drives one
    replicated group drives N of them through this router.  The router
    models one logical client machine — ``charge``/``now`` ride its home
    (shard 0) channel.
    """

    def __init__(self, channels: Sequence[Channel], spec: ShardKeySpec,
                 *, client_id: str = "router"):
        if not channels:
            raise ValueError("need at least one shard channel")
        self.channels = list(channels)
        self.spec = spec
        self.num_shards = len(self.channels)
        #: Learned key -> shard bindings (service-minted identifiers).
        self.pins: Dict[Any, int] = {}
        #: Shard index of every routed call, in issue order.
        self.assignments: List[int] = []
        #: Routed-op count per shard.
        self.ops_routed = [0] * self.num_shards
        #: Rolling digest chain per shard over (op, reply) pairs: equal
        #: chains <=> byte-identical per-shard request logs.
        self.shard_logs = [digest(canonical(("shard-log", i)))
                           for i in range(self.num_shards)]
        self._client_tag = client_id
        self._txn_counter = 0

    # -- routing -----------------------------------------------------------

    def shard_of(self, key: Any) -> int:
        """The shard owning ``key`` (pin first, stable hash otherwise).

        :class:`~repro.service.deploy.LearnedKey` keys never fall back
        to hashing — an unpinned one is a deterministic routing error.
        """
        if isinstance(key, LearnedKey):
            pinned = self.pins.get(key.value)
            if pinned is None:
                raise RoutingError(f"service-minted key {key.value!r} was "
                                   f"never learned from a reply")
            return pinned
        pinned = self.pins.get(key)
        if pinned is not None:
            return pinned
        return stable_shard(key, self.num_shards)

    def _resolve(self, target: Any, kind: Any) -> int:
        if target is None:
            return 0  # keyless registry-style ops live on the home shard
        keys = target if isinstance(target, list) else [target]
        shards = {self.shard_of(key) for key in keys}
        if len(shards) != 1:
            raise CrossShardOp(kind, shards)
        # protolint: disable=DEEP-TAINT singleton set (guarded by the len != 1 raise above), so pop() is deterministic
        return shards.pop()

    def _pin(self, key: Any, shard: int) -> None:
        existing = self.pins.get(key)
        if existing is None:
            self.pins[key] = shard
        elif existing != shard:
            raise RoutingError(f"key {key!r} already pinned to shard "
                               f"{existing}, shard {shard} minted it again")

    def _record(self, shard: int, op: bytes, reply: bytes) -> None:
        self.ops_routed[shard] += 1
        self.assignments.append(shard)
        self.shard_logs[shard] = digest(self.shard_logs[shard] + op + reply)

    # -- Channel -----------------------------------------------------------

    def call(self, op: bytes, read_only: bool = False) -> bytes:
        decoded = decanonical(op)
        target = self.spec.extract(decoded)
        if isinstance(target, Broadcast):
            return self._broadcast(op, read_only)
        shard = self._resolve(target, decoded[0])
        reply = self.channels[shard].call(op, read_only=read_only)
        self._record(shard, op, reply)
        if self.spec.learn is not None:
            for key in self.spec.learn(decoded, decanonical(reply)) or ():
                self._pin(key, shard)
        return reply

    def _broadcast(self, op: bytes, read_only: bool) -> bytes:
        replies = []
        for shard, channel in enumerate(self.channels):
            reply = channel.call(op, read_only=read_only)
            self._record(shard, op, reply)
            replies.append(reply)
        if any(reply != replies[0] for reply in replies[1:]):
            raise RoutingError(f"broadcast replies diverged for op "
                               f"{decanonical(op)[0]!r}")
        return replies[0]

    def charge(self, seconds: float) -> None:
        self.channels[0].charge(seconds)

    @property
    def now(self) -> float:
        return self.channels[0].now

    # -- cross-shard two-phase commit --------------------------------------

    def cross_shard_call(self, ops: Sequence[bytes]) -> List[bytes]:
        """Apply a batch of single-shard ops atomically across shards.

        Groups the ops by owning shard, prepares every shard (each vote
        is a deterministic function of the sub-op bytes), then commits —
        each ``__commit__`` carries its shard's sub-ops redundantly, so
        a replica that checkpointed past the prepare still executes the
        identical sub-ops at the commit's sequence point.  Any refusal
        aborts the prepared shards and raises :class:`TxnAborted` with
        nothing applied anywhere.

        Returns the sub-op replies in the order the ops were given.
        """
        if not ops:
            return []
        plan: Dict[int, List[Tuple[int, bytes]]] = {}
        for index, sub in enumerate(ops):
            decoded = decanonical(sub)
            target = self.spec.extract(decoded)
            if isinstance(target, Broadcast):
                raise RoutingError("broadcast ops cannot join a "
                                   "cross-shard transaction")
            shard = self._resolve(target, decoded[0])
            plan.setdefault(shard, []).append((index, sub))
        self._txn_counter += 1
        txn_id = f"{self._client_tag}:{self._txn_counter}"
        prepared: List[int] = []
        refused: List[int] = []
        for shard in sorted(plan):
            subs = tuple(sub for _, sub in plan[shard])
            raw = self.channels[shard].call(
                canonical((TXN_PREPARE, txn_id, subs)))
            reply = decanonical(raw)
            if reply[:2] == (TXN_TAG, "prepared"):
                prepared.append(shard)
            else:
                refused.append(shard)
        if refused:
            for shard in prepared:
                self.channels[shard].call(canonical((TXN_ABORT, txn_id)))
            raise TxnAborted(txn_id, refused)
        results: List[bytes] = [b""] * len(ops)
        for shard in sorted(plan):
            subs = tuple(sub for _, sub in plan[shard])
            raw = self.channels[shard].call(
                canonical((TXN_COMMIT, txn_id, subs)))
            reply = decanonical(raw)
            if reply[:2] != (TXN_TAG, "committed"):
                raise RoutingError(f"shard {shard} failed to commit "
                                   f"{txn_id}: {reply!r}")
            for (index, sub), sub_reply in zip(plan[shard], reply[3]):
                results[index] = sub_reply
                self._record(shard, sub, sub_reply)
        return results


@dataclass
class ShardedDeployment(Deployment):
    """N independent BASE groups on one fabric behind a shard router."""

    shards: List[ReplicatedDeployment] = field(default_factory=list)
    router: ShardRouter = None  # type: ignore[assignment]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def metrics(self) -> Metrics:
        """One registry aggregating every shard under ``shard{i}.``."""
        merged = Metrics()
        for i, shard in enumerate(self.shards):
            merged.merge(shard.metrics, prefix=f"shard{i}.")
        return merged

    def shard_metrics(self, index: int) -> Metrics:
        return self.shards[index].metrics

    @classmethod
    def build(cls, definition: ServiceDefinition, num_shards: int,
              backend_classes: Optional[Sequence[Optional[type]]] = None,
              *,
              config: Optional[BftConfig] = None,
              base_config: Optional[BaseServiceConfig] = None,
              network_config: Optional[NetworkConfig] = None,
              replica_costs: Optional[List[CostModel]] = None,
              client_id: Optional[str] = None,
              seed: int = 0,
              **options: Any) -> "ShardedDeployment":
        """Build ``num_shards`` groups of one service on a shared fabric.

        Each group gets the same ``config`` with its replica ids
        namespaced ``shard{i}/...`` (so the co-tenant groups' nodes can
        never collide on the shared network), its own key registry and
        tracer, and its own client ``shard{i}/{client_id}``.
        """
        if definition.shard_key is None:
            raise ValueError(f"service {definition.name!r} declares no "
                             f"shard key and cannot be sharded")
        if num_shards < 1:
            raise ValueError("need at least one shard")
        config = config or BftConfig()
        scheduler = Scheduler()
        network = Network(scheduler,
                          network_config or NetworkConfig(seed=seed))
        client_id = client_id or definition.client_id
        shards: List[ReplicatedDeployment] = []
        for i in range(num_shards):
            shard_config = replace(config, replica_ids=[
                f"shard{i}/{rid}" for rid in config.replica_ids])
            shards.append(ReplicatedDeployment.build(
                definition, backend_classes, config=shard_config,
                base_config=base_config, replica_costs=replica_costs,
                client_id=f"shard{i}/{client_id}", seed=seed,
                scheduler=scheduler, network=network, **options))
        router = ShardRouter([shard.channel for shard in shards],
                             definition.shard_key, client_id=client_id)
        return cls(definition=definition, scheduler=scheduler,
                   network=network, channel=router,
                   client=definition.make_client(router),
                   shards=shards, router=router)
