"""The unified service kernel.

Every replicated service in this repository is a *conformance wrapper*
(paper §3) around an off-the-shelf implementation plus a deployment that
puts four of those wrappers behind the BASE library.  This package
factors the parts every service used to re-implement by hand into one
kernel:

- :mod:`repro.service.kernel` — :class:`AbstractService`, a base class
  over :class:`~repro.base.upcalls.Upcalls` with declarative ``@op``
  registration (dispatch table built at class-definition time), uniform
  read-only gating, canonical error envelopes, malformed-request
  handling, shared shutdown/restart persistence of the conformance
  representation, and the ``__prepare__``/``__commit__``/``__abort__``
  transaction meta-ops behind cross-shard atomic commit;
- :mod:`repro.service.deploy` — composable :class:`Deployment` objects
  (replicated, unreplicated) over a declarative
  :class:`ServiceDefinition`, with the legacy tuple-returning builders
  kept as thin shims;
- :mod:`repro.service.sharding` — :class:`ShardedDeployment`: N
  independent BASE groups on one simulation fabric behind the
  deterministic :class:`ShardRouter` (see ``docs/SHARDING.md``);
- :mod:`repro.service.registry` — the :class:`ServiceRegistry` mapping
  service names to their :class:`~repro.service.deploy.ServiceDefinition`;
- :mod:`repro.service.conformance` — the cross-service conformance
  battery run by ``tests/test_service_conformance.py`` against every
  registered service.

Adding a backend is now a wrapper subclass plus one registration; see
``docs/SERVICES.md``.
"""

from repro.service.kernel import AbstractService, OpSpec, op
from repro.service.deploy import (
    BROADCAST,
    Broadcast,
    Channel,
    Deployment,
    DirectChannel,
    DirectService,
    DirectServiceServer,
    LearnedKey,
    ReplicatedChannel,
    ReplicatedDeployment,
    ServiceDefinition,
    ShardKeySpec,
    UnreplicatedDeployment,
    WrapperContext,
    build_replicated,
    build_unreplicated,
)
from repro.service.sharding import (
    CrossShardOp,
    RoutingError,
    ShardRouter,
    ShardedDeployment,
    TxnAborted,
    stable_shard,
)
from repro.service.registry import (
    ServiceRegistry,
    get_service,
    load_all,
    register,
    service_names,
)

__all__ = [
    "AbstractService",
    "BROADCAST",
    "Broadcast",
    "Channel",
    "CrossShardOp",
    "Deployment",
    "DirectChannel",
    "DirectService",
    "DirectServiceServer",
    "LearnedKey",
    "OpSpec",
    "ReplicatedChannel",
    "ReplicatedDeployment",
    "RoutingError",
    "ServiceDefinition",
    "ServiceRegistry",
    "ShardKeySpec",
    "ShardRouter",
    "ShardedDeployment",
    "TxnAborted",
    "UnreplicatedDeployment",
    "WrapperContext",
    "build_replicated",
    "build_unreplicated",
    "get_service",
    "load_all",
    "op",
    "register",
    "service_names",
    "stable_shard",
]
