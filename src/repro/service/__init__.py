"""The unified service kernel.

Every replicated service in this repository is a *conformance wrapper*
(paper §3) around an off-the-shelf implementation plus a deployment that
puts four of those wrappers behind the BASE library.  This package
factors the parts every service used to re-implement by hand into one
kernel:

- :mod:`repro.service.kernel` — :class:`AbstractService`, a base class
  over :class:`~repro.base.upcalls.Upcalls` with declarative ``@op``
  registration (dispatch table built at class-definition time), uniform
  read-only gating, canonical error envelopes, malformed-request
  handling, and shared shutdown/restart persistence of the conformance
  representation;
- :mod:`repro.service.deploy` — one replicated and one unreplicated
  deployment code path (channels, direct-server node, builders) that the
  per-service ``build_*`` functions are thin declarations over;
- :mod:`repro.service.registry` — the :class:`ServiceRegistry` mapping
  service names to their :class:`~repro.service.deploy.ServiceDefinition`;
- :mod:`repro.service.conformance` — the cross-service conformance
  battery run by ``tests/test_service_conformance.py`` against every
  registered service.

Adding a backend is now a wrapper subclass plus one registration; see
``docs/SERVICES.md``.
"""

from repro.service.kernel import AbstractService, OpSpec, op
from repro.service.deploy import (
    Channel,
    DirectChannel,
    DirectService,
    DirectServiceServer,
    ReplicatedChannel,
    ServiceDefinition,
    WrapperContext,
    build_replicated,
    build_unreplicated,
)
from repro.service.registry import ServiceRegistry, get_service, register, service_names

__all__ = [
    "AbstractService",
    "Channel",
    "DirectChannel",
    "DirectService",
    "DirectServiceServer",
    "OpSpec",
    "ReplicatedChannel",
    "ServiceDefinition",
    "ServiceRegistry",
    "WrapperContext",
    "build_replicated",
    "build_unreplicated",
    "get_service",
    "op",
    "register",
    "service_names",
]
