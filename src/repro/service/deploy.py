"""Composable deployments of a registered service.

Each service used to carry a near-identical ``build_base_*`` /
``build_*_std`` pair: the replicated builder wired wrapper factories
into :func:`~repro.base.library.build_base_cluster` and wrapped a
:class:`~repro.bft.client.SyncClient`; the baseline builder stood up a
scheduler, a network, a request/response server node, and a client node
with its own nonce/mailbox plumbing.  This module implements both paths
once, as first-class :class:`Deployment` objects over a declarative
:class:`ServiceDefinition`:

- :class:`ReplicatedDeployment` — one BASE group (four conformance
  wrappers behind the BFT library) plus its service client;
- :class:`UnreplicatedDeployment` — the paper's unreplicated baseline;
- :class:`~repro.service.sharding.ShardedDeployment` — N independent
  replicated groups on one simulation fabric behind a deterministic
  shard router (see :mod:`repro.service.sharding`).

The legacy ``build_replicated``/``build_unreplicated`` functions remain
as thin shims returning the historical tuples, so the per-service
``build_*`` registrations and every existing caller keep working.

Clients talk to any deployment through a :class:`Channel` — ``call``
one canonical-encoded op, ``charge`` client CPU, read ``now`` — so each
service defines a single client class that is oblivious to whether it is
driving four replicas, one plain server, or N sharded groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple, Type)

from repro.base.library import BaseServiceConfig, build_base_cluster
from repro.base.upcalls import Upcalls
from repro.bft.client import SyncClient
from repro.bft.config import BftConfig
from repro.bft.costs import CostModel
from repro.harness.cluster import Cluster
from repro.sim.network import Network, NetworkConfig
from repro.sim.node import Node
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Tracer


class Channel:
    """How a service client reaches its deployment."""

    def call(self, op: bytes, read_only: bool = False) -> bytes:
        raise NotImplementedError

    def charge(self, seconds: float) -> None:
        """Burn client-machine CPU (workload think time)."""
        raise NotImplementedError

    @property
    def now(self) -> float:
        raise NotImplementedError


class ReplicatedChannel(Channel):
    """Rides the BASE invoke path of a replicated deployment."""

    def __init__(self, sync_client: SyncClient):
        self.sync_client = sync_client

    def call(self, op: bytes, read_only: bool = False) -> bytes:
        return self.sync_client.call(op, read_only=read_only)

    def charge(self, seconds: float) -> None:
        self.sync_client.client.charge(seconds)

    @property
    def now(self) -> float:
        return self.sync_client.now


class DirectChannel(Channel):
    """Request/response to an unreplicated server node.

    Drives the scheduler synchronously, exactly like
    :class:`~repro.bft.client.SyncClient` does for the replicated path,
    so elapsed simulated time is comparable.
    """

    def __init__(self, service: str, scheduler: Scheduler, network: Network,
                 server_id: str, client_id: str):
        self.service = service
        self.scheduler = scheduler
        self.server_id = server_id
        self._nonce = 0
        self._box: Dict[int, bytes] = {}
        self._node = Node(client_id, network)
        self._node.on_message = self._on_message  # type: ignore

    def _on_message(self, src, msg) -> None:
        nonce, raw = msg
        self._box[nonce] = raw

    def call(self, op: bytes, read_only: bool = False) -> bytes:
        self._nonce += 1
        nonce = self._nonce
        self._node.send(self.server_id, (nonce, op), size=64 + len(op))
        if not self.scheduler.run_until_idle_or(lambda: nonce in self._box):
            raise TimeoutError(f"{self.service} server never answered")
        return self._box.pop(nonce)

    def charge(self, seconds: float) -> None:
        self._node.charge(seconds)

    @property
    def now(self) -> float:
        return self.scheduler.now


class DirectServiceServer(Node):
    """Unreplicated server node: one handler answers each request."""

    def __init__(self, node_id: str, network: Network,
                 handler: Callable[["DirectServiceServer", str, bytes],
                                   Tuple[bytes, int]]):
        super().__init__(node_id, network)
        self.handler = handler

    def on_message(self, src, msg) -> None:
        nonce, op = msg
        reply, size = self.handler(self, src, op)
        self.send(src, (nonce, reply), size=size)


@dataclass
class WrapperContext:
    """What a service's factories get to build one wrapper or baseline."""

    index: int
    backend_class: Optional[type]
    #: Reads the deployment's simulated clock (zero while still building).
    clock: Callable[[], float]
    #: Service-specific build options, passed through the builder.
    options: Dict[str, Any] = field(default_factory=dict)


@dataclass
class DirectService:
    """One unreplicated baseline: the backend object, the request handler
    (returns the reply blob and its wire size), and optional wiring run
    once the server node exists (e.g. routing disk charges to it)."""

    backend: Any
    handler: Callable[[DirectServiceServer, str, bytes], Tuple[bytes, int]]
    wire: Optional[Callable[[DirectServiceServer], None]] = None


class Broadcast:
    """Shard-key sentinel: the op must reach *every* shard (e.g. Thor
    session management); replies must agree and one is returned."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Broadcast"


BROADCAST = Broadcast()


@dataclass(frozen=True)
class LearnedKey:
    """A key routable only through a pin learned from an earlier reply.

    Service-minted identifiers (NFS file handles) are allocated
    independently by each shard, so identical bytes can name different
    objects in different shards — stable-hash fallback would route them
    arbitrarily.  Wrapping the key forces the router to consult its pin
    table and fail deterministically when no pin exists.
    """

    value: Any


@dataclass
class ShardKeySpec:
    """How a service's abstract state partitions across shards.

    ``extract`` maps a decoded wire-op tuple to its shard key(s):

    - a single hashable key — route to ``stable_hash(key) % shards``
      (or to a pinned shard, see ``learn``);
    - ``None`` — no partitionable key; route to the home shard 0
      (registry-style ops like SQL ``tables``);
    - :data:`BROADCAST` — deliver to every shard (session management);
    - a ``list`` of keys — the op touches several keys; if they resolve
      to different shards the router refuses with
      :class:`~repro.service.sharding.CrossShardOp` (callers use the
      two-phase ``cross_shard_call`` instead).

    ``learn`` (optional) maps (decoded op, decoded reply) to keys that
    are *pinned* to the shard that answered — how NFS binds the file
    handles a shard mints to that shard's subtree.
    """

    extract: Callable[[tuple], Any]
    learn: Optional[Callable[[tuple, tuple], Iterable[Any]]] = None
    #: Human-readable description of the partitioning axis (docs/UI).
    axis: str = ""


@dataclass
class ServiceDefinition:
    """Declarative registration of one service with the kernel."""

    name: str
    #: Build one conformance wrapper for replica ``ctx.index``.
    make_wrapper: Callable[[WrapperContext], Upcalls]
    #: Build the service's client/transport over a channel.
    make_client: Callable[[Channel], Any]
    #: Build the unreplicated baseline.
    make_direct: Optional[Callable[[WrapperContext], DirectService]] = None
    #: Client class for the baseline, when it differs (e.g. NFS resolves
    #: the mount handle differently).
    make_direct_client: Optional[Callable[[Channel], Any]] = None
    #: Per-replica backend classes when the caller passes none.
    default_backends: Tuple[Optional[type], ...] = (None,) * 4
    #: Default partition-tree branching for this service's state size.
    branching: int = 16
    client_id: str = ""
    direct_server_id: str = ""
    direct_client_id: str = ""
    #: Run once per replica after the cluster is built (e.g. charge hooks).
    wire_replica: Optional[Callable[[Any, Upcalls], None]] = None
    #: How ops map onto shards of a :class:`ShardedDeployment` (None:
    #: the service cannot be sharded).
    shard_key: Optional[ShardKeySpec] = None

    def __post_init__(self) -> None:
        self.client_id = self.client_id or f"{self.name}-client"
        self.direct_server_id = self.direct_server_id or f"{self.name}-server"
        self.direct_client_id = (self.direct_client_id
                                 or f"{self.name}-client-node")


# -- deployments -------------------------------------------------------------------


@dataclass
class Deployment:
    """A built service stack: the channel ops ride, the service-level
    client facade, and the simulation plumbing they share."""

    definition: ServiceDefinition
    scheduler: Scheduler
    network: Network
    channel: Channel
    client: Any

    @property
    def metrics(self):
        """The deployment's aggregated metrics registry."""
        raise NotImplementedError

    def run(self, seconds: float) -> None:
        """Advance simulated time (processing everything due in between)."""
        self.scheduler.run_until(self.scheduler.now + seconds)

    def settle(self, max_events: int = 5_000_000) -> None:
        """Drain the event queue completely (timers permitting)."""
        self.scheduler.run(max_events)


@dataclass
class ReplicatedDeployment(Deployment):
    """One BASE group: four (or n) conformance wrappers behind BFT."""

    cluster: Cluster = None  # type: ignore[assignment]
    sync: SyncClient = None  # type: ignore[assignment]

    @property
    def metrics(self):
        return self.cluster.metrics

    @property
    def replicas(self):
        return self.cluster.replicas

    @classmethod
    def build(cls, definition: ServiceDefinition,
              backend_classes: Optional[Sequence[Optional[type]]] = None,
              *,
              config: Optional[BftConfig] = None,
              base_config: Optional[BaseServiceConfig] = None,
              network_config: Optional[NetworkConfig] = None,
              replica_costs: Optional[List[CostModel]] = None,
              client_id: Optional[str] = None,
              seed: int = 0,
              scheduler: Optional[Scheduler] = None,
              network: Optional[Network] = None,
              tracer: Optional[Tracer] = None,
              **options: Any) -> "ReplicatedDeployment":
        """Build a BASE-replicated deployment of one registered service.

        ``backend_classes`` has one entry per replica — all the same
        class for homogeneous replication, one per vendor for the
        opportunistic N-version setups.  Extra keyword arguments flow to
        the service's wrapper factory through :class:`WrapperContext`.

        Pass ``scheduler``/``network`` to mount the group on an existing
        simulation fabric (how :class:`ShardedDeployment` composes N
        groups); pass ``config`` with distinct ``replica_ids`` so the
        co-tenant groups' node ids cannot collide.
        """
        if backend_classes is None:
            if config is not None and config.n != len(
                    definition.default_backends):
                backends: List[Optional[type]] = \
                    list(definition.default_backends[:1]) * config.n
            else:
                backends = list(definition.default_backends)
        else:
            backends = list(backend_classes)
        config = config or BftConfig(n=len(backends))
        base_config = base_config or BaseServiceConfig(
            branching=definition.branching)
        clock_box: Dict[str, Cluster] = {}

        def sim_clock() -> float:
            # Wrapper factories run while the cluster is still being
            # built; until then the simulation clock reads zero.
            cluster = clock_box.get("cluster")
            return cluster.scheduler.now if cluster is not None else 0.0

        def factory_for(i: int) -> Callable[[], Upcalls]:
            def factory() -> Upcalls:
                return definition.make_wrapper(WrapperContext(
                    index=i, backend_class=backends[i], clock=sim_clock,
                    options=dict(options)))
            return factory

        cluster = build_base_cluster(
            [factory_for(i) for i in range(config.n)], config=config,
            base_config=base_config, network_config=network_config,
            replica_costs=replica_costs, seed=seed,
            scheduler=scheduler, network=network, tracer=tracer)
        clock_box["cluster"] = cluster
        if definition.wire_replica is not None:
            for replica in cluster.replicas:
                definition.wire_replica(replica, replica.state.upcalls)
        sync = cluster.add_client(client_id or definition.client_id)
        channel = ReplicatedChannel(sync)
        return cls(definition=definition, scheduler=cluster.scheduler,
                   network=cluster.network, channel=channel,
                   client=definition.make_client(channel),
                   cluster=cluster, sync=sync)


@dataclass
class UnreplicatedDeployment(Deployment):
    """The unreplicated baseline: one backend behind a plain server node."""

    backend: Any = None
    server: DirectServiceServer = None  # type: ignore[assignment]

    @property
    def metrics(self):
        raise AttributeError("the unreplicated baseline records no metrics")

    @classmethod
    def build(cls, definition: ServiceDefinition,
              backend_class: Optional[type] = None,
              *,
              network_config: Optional[NetworkConfig] = None,
              seed: int = 0,
              **options: Any) -> "UnreplicatedDeployment":
        """Build the unreplicated baseline deployment on its own network."""
        if definition.make_direct is None:
            raise ValueError(f"service {definition.name!r} has no baseline")
        scheduler = Scheduler()
        network = Network(scheduler,
                          network_config or NetworkConfig(seed=seed))
        direct = definition.make_direct(WrapperContext(
            index=0, backend_class=backend_class,
            clock=lambda: scheduler.now, options=dict(options)))
        node = DirectServiceServer(definition.direct_server_id, network,
                                   direct.handler)
        if direct.wire is not None:
            direct.wire(node)
        channel = DirectChannel(definition.name, scheduler, network,
                                definition.direct_server_id,
                                definition.direct_client_id)
        make_client = definition.make_direct_client or definition.make_client
        return cls(definition=definition, scheduler=scheduler,
                   network=network, channel=channel,
                   client=make_client(channel),
                   backend=direct.backend, server=node)


# -- legacy tuple shims -------------------------------------------------------------


def build_replicated(definition: ServiceDefinition,
                     backend_classes: Optional[Sequence[Optional[type]]] = None,
                     *,
                     config: Optional[BftConfig] = None,
                     base_config: Optional[BaseServiceConfig] = None,
                     network_config: Optional[NetworkConfig] = None,
                     replica_costs: Optional[List[CostModel]] = None,
                     client_id: Optional[str] = None,
                     seed: int = 0,
                     **options: Any) -> Tuple[Cluster, Any]:
    """Historical entry point: build and return ``(cluster, client)``."""
    deployment = ReplicatedDeployment.build(
        definition, backend_classes, config=config, base_config=base_config,
        network_config=network_config, replica_costs=replica_costs,
        client_id=client_id, seed=seed, **options)
    return deployment.cluster, deployment.client


def build_unreplicated(definition: ServiceDefinition,
                       backend_class: Optional[type] = None,
                       *,
                       network_config: Optional[NetworkConfig] = None,
                       seed: int = 0,
                       **options: Any) -> Tuple[Any, Any]:
    """Historical entry point: build and return ``(backend, client)``."""
    deployment = UnreplicatedDeployment.build(
        definition, backend_class, network_config=network_config, seed=seed,
        **options)
    return deployment.backend, deployment.client
