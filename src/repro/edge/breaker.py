"""Per-shard circuit breaker driving the consistency-mode ladder.

State machine::

    CLOSED ──(failure_threshold consecutive timeouts,
              or a view-change signal)──────────────► OPEN
    OPEN ──(cooldown simulated seconds elapse)──────► HALF_OPEN
    HALF_OPEN ──(probe_quota consecutive successes)─► CLOSED
    HALF_OPEN ──(any failure or view-change signal)─► OPEN

The OPEN→HALF_OPEN edge is *lazy*: it is taken when :attr:`state` is
next read after the cooldown, off the simulation clock — no timer event,
so an idle breaker costs the scheduler nothing.  While OPEN the edge
skips the linearizable attempt entirely; HALF_OPEN admits attempts as
probes, and only their success re-promotes the shard to the top of the
ladder.
"""

from __future__ import annotations

from typing import Callable, Optional

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"
STATES = (CLOSED, OPEN, HALF_OPEN)


class CircuitBreaker:
    """Failure-driven gate in front of one shard's linearizable path."""

    def __init__(self, clock: Callable[[], float], *,
                 failure_threshold: int = 2,
                 cooldown: float = 1.0,
                 probe_quota: int = 1,
                 on_transition: Optional[Callable[[str, str], None]] = None):
        if failure_threshold < 1 or probe_quota < 1 or cooldown <= 0:
            raise ValueError("breaker thresholds must be positive")
        self.clock = clock
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.probe_quota = probe_quota
        self.on_transition = on_transition
        self._state = CLOSED
        self._failures = 0
        self._probe_successes = 0
        self._opened_at = 0.0
        self.trips = 0         # transitions into OPEN
        self.promotions = 0    # transitions into CLOSED
        self.view_change_signals = 0

    @property
    def state(self) -> str:
        """Current state; reading it takes the lazy OPEN→HALF_OPEN edge."""
        if (self._state == OPEN
                and self.clock() - self._opened_at >= self.cooldown):
            self._probe_successes = 0
            self._set(HALF_OPEN)
        return self._state

    def allow_attempt(self) -> bool:
        """May the caller try the linearizable path right now?"""
        return self.state != OPEN

    def record_success(self) -> None:
        state = self.state
        if state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.probe_quota:
                self._failures = 0
                self.promotions += 1
                self._set(CLOSED)
        elif state == CLOSED:
            self._failures = 0

    def record_failure(self) -> None:
        state = self.state
        if state == HALF_OPEN:
            self._trip()
        elif state == CLOSED:
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._trip()

    def signal_view_change(self) -> None:
        """A view change is (or just was) in progress: the ordered path
        is suspect regardless of the failure count — open immediately."""
        self.view_change_signals += 1
        if self.state != OPEN:
            self._trip()

    def _trip(self) -> None:
        self._failures = 0
        self._probe_successes = 0
        self._opened_at = self.clock()
        self.trips += 1
        self._set(OPEN)

    def _set(self, state: str) -> None:
        if state != self._state:
            old, self._state = self._state, state
            if self.on_transition is not None:
                self.on_transition(old, state)
