"""EdgeTier: bounded-staleness edge reads with a graceful-degradation
ladder in front of the replicated core.  See docs/EDGE.md."""

from repro.edge.breaker import (CLOSED, HALF_OPEN, OPEN, STATES,
                                CircuitBreaker)
from repro.edge.cache import CacheEntry, EdgeCache, ReadLease
from repro.edge.evidence import (BOUNDED_STALE, EVIDENCE_CERTIFICATE,
                                 EVIDENCE_KINDS, EVIDENCE_VECTOR,
                                 LAST_KNOWN_GOOD, LINEARIZABLE, MODES,
                                 EdgeReadRecord, EdgeReply,
                                 StalenessEvidence)
from repro.edge.tier import EdgeTier, EdgeUnavailable

__all__ = [
    "BOUNDED_STALE", "CLOSED", "CacheEntry", "CircuitBreaker", "EdgeCache",
    "EdgeReadRecord", "EdgeReply", "EdgeTier", "EdgeUnavailable",
    "EVIDENCE_CERTIFICATE", "EVIDENCE_KINDS", "EVIDENCE_VECTOR", "HALF_OPEN",
    "LAST_KNOWN_GOOD", "LINEARIZABLE", "MODES", "OPEN", "ReadLease",
    "STATES", "StalenessEvidence",
]
