"""The staleness-contract vocabulary: modes, evidence, edge replies.

Every reply served from the edge names the consistency mode it was
served under, and degraded replies carry *evidence* of how stale the
answer can be:

- ``EVIDENCE_CERTIFICATE`` — a 2f+1 read-only quorum accepted this
  result (the BFT read-only fast path); the result was current at
  ``issued_at``, so its staleness at serve time is bounded by the
  certificate's age.
- ``EVIDENCE_VECTOR`` — a single replica served the result and anchored
  it with its version vector ``(checkpoint_seq, abstract-state digest,
  sim-time lease)`` MAC'd at its last *stable* checkpoint.  One replica
  cannot prove the value is correct (that is what the staleness-contract
  audit replays the abstract-state history for), but the vector makes
  the staleness claim checkable after the fact.

Times ride as integer microseconds end to end (the wire format bans
floats in canonical fields); the ``issued_at`` property converts back to
simulated seconds for lease arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: The consistency-mode ladder, strongest first.  The edge only ever
#: degrades one rung at a time and re-promotes to the top.
LINEARIZABLE = "linearizable"
BOUNDED_STALE = "bounded_stale"
LAST_KNOWN_GOOD = "last_known_good"
MODES = (LINEARIZABLE, BOUNDED_STALE, LAST_KNOWN_GOOD)

EVIDENCE_CERTIFICATE = "read_certificate"
EVIDENCE_VECTOR = "checkpoint_vector"
EVIDENCE_KINDS = (EVIDENCE_CERTIFICATE, EVIDENCE_VECTOR)


@dataclass(frozen=True)
class StalenessEvidence:
    """Why the edge believes a cached result is no staler than claimed."""

    kind: str
    #: When the result was provably current (certificate issue time, or
    #: the serving replica's reply time), integer microseconds.
    issued_at_us: int
    #: Replicas vouching: the accepting quorum, or the single server.
    replicas: Tuple[str, ...]
    #: Version vector (EVIDENCE_VECTOR only): the serving replica's last
    #: stable checkpoint and its abstract-state digest at that seq.
    checkpoint_seq: Optional[int] = None
    root_digest: Optional[bytes] = None
    #: When that checkpoint became stable (EVIDENCE_VECTOR only), us.
    stable_at_us: Optional[int] = None

    @property
    def issued_at(self) -> float:
        """Issue time in simulated seconds."""
        return self.issued_at_us / 1_000_000.0


@dataclass(frozen=True)
class EdgeReply:
    """One answer from the edge, flagged with its consistency mode.

    ``staleness_bound`` is the *advertised* contract: ``None`` for
    linearizable replies (no staleness) and for last-known-good replies
    (no bound — the flag itself is the warning); the configured Δ for
    bounded-stale replies.
    """

    result: bytes
    mode: str
    staleness_bound: Optional[float]
    evidence: Optional[StalenessEvidence]

    @property
    def degraded(self) -> bool:
        return self.mode != LINEARIZABLE


@dataclass(frozen=True)
class EdgeReadRecord:
    """One served read, as the staleness-contract audit consumes it."""

    op_digest: bytes
    result_digest: bytes
    key: object
    shard: int
    mode: str
    staleness_bound: Optional[float]
    served_at: float
    evidence: Optional[StalenessEvidence]
