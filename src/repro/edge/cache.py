"""EdgeCache: abstract-state reads held under sim-clock freshness leases.

An entry is *fresh* while its :class:`ReadLease` is valid — the lease
starts at the evidence's issue time (not the local arrival time, which
would flatter stale answers by the transfer delay) and runs for the
cache's staleness budget Δ.  A fresh hit can be served as
``BOUNDED_STALE(Δ)``; an expired entry can still back a flagged
``LAST_KNOWN_GOOD`` answer but proves nothing about recency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.edge.evidence import StalenessEvidence


@dataclass
class ReadLease:
    """Freshness window for one cached read, in simulated seconds."""

    issued_at: float
    ttl: float

    @property
    def expires_at(self) -> float:
        return self.issued_at + self.ttl

    def valid(self, now: float) -> bool:
        return now - self.issued_at <= self.ttl


@dataclass
class CacheEntry:
    result: bytes
    lease: ReadLease
    evidence: StalenessEvidence


class EdgeCache:
    """One result per key, each under a lease derived from its evidence.

    ``clock`` is the simulation clock (never wall time); ``delta`` is the
    staleness budget Δ every lease runs for.  Keys are whatever axis the
    caller partitions reads by — the edge tier keys on the service's
    ``ShardKeySpec`` axis plus the op digest.
    """

    def __init__(self, clock: Callable[[], float], delta: float):
        if delta <= 0:
            raise ValueError("staleness budget delta must be positive")
        self.clock = clock
        self.delta = delta
        self._entries: Dict[Any, CacheEntry] = {}
        self.hits = 0          # fresh-lease hits
        self.expired_hits = 0  # entries served past their lease (LKG)
        self.misses = 0
        self.refreshes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, key: Any, result: bytes,
            evidence: StalenessEvidence) -> CacheEntry:
        """Install/refresh an entry; the lease starts at evidence time."""
        entry = CacheEntry(result, ReadLease(evidence.issued_at, self.delta),
                           evidence)
        self._entries[key] = entry
        self.refreshes += 1
        return entry

    def get_fresh(self, key: Any) -> Optional[CacheEntry]:
        """The entry for ``key`` iff its lease is still valid."""
        entry = self._entries.get(key)
        if entry is None or not entry.lease.valid(self.clock()):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def get_any(self, key: Any) -> Optional[CacheEntry]:
        """The entry for ``key`` regardless of lease state (LKG path)."""
        entry = self._entries.get(key)
        if entry is not None:
            self.expired_hits += 1
        return entry

    def staleness(self, entry: CacheEntry) -> float:
        """How stale the entry can be *right now* (seconds since the
        result was provably current)."""
        return self.clock() - entry.lease.issued_at
