"""EdgeTier: serve reads from the edge under an explicit staleness contract.

The tier fronts a replication group (or several sharded groups) with a
per-shard *consistency-mode ladder*::

    LINEARIZABLE ──► BOUNDED_STALE(Δ) ──► LAST_KNOWN_GOOD

- **LINEARIZABLE** reads ride the BFT read-only fast path through
  :meth:`~repro.bft.client.BftClient.collect_read_certificate`; the
  accepting quorum becomes certificate evidence and refreshes the edge
  cache's lease for the key.
- When the shard's :class:`~repro.edge.breaker.CircuitBreaker` is open
  (consecutive timeouts, or a view-change signal), reads degrade to
  **BOUNDED_STALE(Δ)**: a cache hit under a valid lease, or a
  single-replica refresh carrying the replica's stable-checkpoint
  version vector as evidence.  A single replica cannot *prove* the value
  (the staleness-contract audit replays the abstract-state history for
  that); the vector makes the staleness claim checkable after the fact.
- With no fresh lease and no reachable replica, the tier answers
  **LAST_KNOWN_GOOD** from the expired cache — flagged, with no bound —
  or raises :class:`EdgeUnavailable` if it has never seen the key.

Every reply is flagged ``(mode, staleness_bound, evidence)`` and logged
to :attr:`EdgeTier.records` for the FaultLab ``staleness_contract``
checker.  Half-open probes re-promote a healed shard back to the top of
the ladder.

Like :class:`~repro.bft.client.SyncClient`, :meth:`EdgeTier.read` drives
the scheduler and must only be called from *outside* event context —
never from inside a scheduled callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bft.client import BftClient
from repro.bft.config import BftConfig
from repro.bft.costs import CostModel, ZERO_COSTS
from repro.bft.messages import EdgeRead, EdgeReadReply
from repro.crypto.digest import digest
from repro.crypto.keys import KeyRegistry
from repro.crypto.mac import Authenticator
from repro.edge.breaker import OPEN, CircuitBreaker
from repro.edge.cache import CacheEntry, EdgeCache
from repro.edge.evidence import (BOUNDED_STALE, EVIDENCE_CERTIFICATE,
                                 EVIDENCE_VECTOR, LAST_KNOWN_GOOD,
                                 LINEARIZABLE, EdgeReadRecord, EdgeReply,
                                 StalenessEvidence)
from repro.encoding.canonical import decanonical
from repro.errors import ReproError
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Tracer


class EdgeUnavailable(ReproError):
    """No rung of the ladder could serve the read: the core is
    unreachable and the cache has never seen this key.  The contract
    allows refusal; it never allows an unflagged stale answer."""


class _EdgeNode(Node):
    """The edge's network presence for single-replica vector reads."""

    def __init__(self, edge_id: str, network: Network, registry: KeyRegistry,
                 costs: CostModel = ZERO_COSTS):
        super().__init__(edge_id, network)
        self.registry = registry
        self.costs = costs
        registry.enroll(edge_id)
        self._next_nonce = 0
        # nonce -> reply box ({} until the verified reply lands).
        self._boxes: Dict[int, Dict[str, EdgeReadReply]] = {}

    def fetch(self, replica_id: str, op: bytes) -> int:
        """Issue one EdgeRead to one replica; returns the nonce to poll."""
        self._next_nonce += 1
        nonce = self._next_nonce
        msg = EdgeRead(self.node_id, nonce, op)
        msg.auth = Authenticator.create(self.registry, self.node_id,
                                        [replica_id], msg.digest())
        self.charge(self.costs.auth_create(1, len(msg.body())))
        self._boxes[nonce] = {}
        self.send(replica_id, msg)
        return nonce

    def reply_for(self, nonce: int) -> Optional[EdgeReadReply]:
        box = self._boxes.get(nonce)
        return box.get("reply") if box else None

    def forget(self, nonce: int) -> None:
        self._boxes.pop(nonce, None)

    def handle_edge_read_reply(self, src, reply: EdgeReadReply) -> None:
        box = self._boxes.get(reply.nonce)
        if box is None or "reply" in box:
            return
        if src != reply.replica_id or reply.edge_id != self.node_id:
            return
        auth = reply.auth
        if auth is None or auth.sender != src:
            return
        self.charge(self.costs.auth_verify(len(reply.body())))
        if not auth.verify(self.registry, self.node_id, reply.digest()):
            return
        if digest(reply.result) != reply.result_digest:
            return
        box["reply"] = reply


@dataclass
class _ShardPort:
    """Everything the tier holds per shard: clients, breaker, monitors."""

    shard: int
    config: BftConfig
    client: BftClient          # linearizable fast-path reads
    node: _EdgeNode            # single-replica vector reads
    replicas: Sequence         # live replica objects (monitoring plane)
    breaker: CircuitBreaker
    rotation: int = 0          # round-robin cursor for vector reads
    last_view: int = 0         # view-signal edge detection
    last_vc_active: bool = False


@dataclass
class _Fetched:
    result: bytes
    evidence: StalenessEvidence


_UNSET = object()


class EdgeTier:
    """Bounded-staleness edge reads over one or more BASE groups.

    ``groups`` is one ``(config, registry, replicas)`` triple per shard —
    sharded deployments keep one key registry per group, so the edge
    enrolls (a node and a read client) in each.  Observing the live
    replica objects is the tier's *monitoring* plane: it stands in for an
    out-of-band health feed and powers the view-change breaker signal;
    the *data* plane is messages only.
    """

    def __init__(self, *, scheduler: Scheduler, network: Network,
                 groups: Sequence[Tuple[BftConfig, KeyRegistry, Sequence]],
                 tracer: Optional[Tracer] = None,
                 edge_id: str = "edge0",
                 delta: float = 0.5,
                 read_timeout: float = 0.05,
                 refresh_timeout: float = 0.05,
                 refresh_attempts: int = 2,
                 failure_threshold: int = 2,
                 cooldown: float = 1.0,
                 probe_quota: int = 1,
                 costs: CostModel = ZERO_COSTS):
        if not groups:
            raise ValueError("need at least one replication group")
        self.scheduler = scheduler
        self.network = network
        self.tracer = tracer or Tracer(keep_events=False)
        self.edge_id = edge_id
        self.delta = delta
        self.read_timeout = read_timeout
        self.refresh_timeout = refresh_timeout
        self.refresh_attempts = refresh_attempts
        self.cache = EdgeCache(lambda: scheduler.now, delta)
        self.records: List[EdgeReadRecord] = []
        self._spec = None    # ShardKeySpec (key extraction only)
        self._router = None  # ShardRouter (extraction + shard routing)
        self.ports: List[_ShardPort] = []
        for i, (config, registry, replicas) in enumerate(groups):
            suffix = f"/s{i}" if len(groups) > 1 else ""
            client = BftClient(f"{edge_id}{suffix}/ro", network, config,
                               registry, tracer=self.tracer, costs=costs)
            node = _EdgeNode(f"{edge_id}{suffix}", network, registry, costs)
            breaker = CircuitBreaker(
                lambda: scheduler.now,
                failure_threshold=failure_threshold,
                cooldown=cooldown, probe_quota=probe_quota,
                on_transition=self._note_transition)
            self.ports.append(_ShardPort(i, config, client, node,
                                         list(replicas), breaker))

    # -- wiring ------------------------------------------------------------

    @classmethod
    def for_cluster(cls, cluster, **kw) -> "EdgeTier":
        """Front one :class:`~repro.harness.cluster.Cluster`."""
        kw.setdefault("tracer", cluster.tracer)
        return cls(scheduler=cluster.scheduler, network=cluster.network,
                   groups=[(cluster.config, cluster.registry,
                            cluster.replicas)], **kw)

    @classmethod
    def for_deployment(cls, deployment, **kw) -> "EdgeTier":
        """Front a Replicated or Sharded deployment; reads route along
        the service's declared ``ShardKeySpec`` axis."""
        shard_deps = getattr(deployment, "shards", None)
        if shard_deps is not None:
            tier = cls(scheduler=deployment.scheduler,
                       network=deployment.network,
                       groups=[(s.cluster.config, s.cluster.registry,
                                s.cluster.replicas) for s in shard_deps],
                       **kw)
            tier._router = deployment.router
            return tier
        cluster = deployment.cluster
        kw.setdefault("tracer", cluster.tracer)
        tier = cls(scheduler=cluster.scheduler, network=cluster.network,
                   groups=[(cluster.config, cluster.registry,
                            cluster.replicas)], **kw)
        tier._spec = deployment.definition.shard_key
        return tier

    @property
    def edge_node_ids(self) -> Tuple[str, ...]:
        """Every network id the edge occupies (for fault injection)."""
        ids: List[str] = []
        for port in self.ports:
            ids.append(port.node.node_id)
            ids.append(port.client.node_id)
        return tuple(ids)

    @property
    def now(self) -> float:
        return self.scheduler.now

    @property
    def metrics(self):
        return self.tracer.metrics

    def _note_transition(self, old: str, new: str) -> None:
        self.metrics.inc(f"edge.breaker.{old}_to_{new}")

    # -- routing -----------------------------------------------------------

    def _route(self, op: bytes, key: Any) -> Tuple[int, Any]:
        """Resolve (shard, cache-axis key) for an op.

        With a router (sharded), routing errors propagate: an op that
        does not map to exactly one shard cannot be edge-read.  With a
        bare key spec, extraction failures just disable per-key caching.
        """
        if key is not _UNSET:
            shard = self._router.shard_of(key) if self._router else 0
            return shard, key
        extractor = self._router.spec if self._router else self._spec
        if extractor is None:
            return 0, None
        if self._router is not None:
            decoded = decanonical(op)
            target = extractor.extract(decoded)
            if target is None:
                return 0, None
            keys = target if isinstance(target, list) else [target]
            shards = {self._router.shard_of(k) for k in keys}
            if len(shards) != 1:
                raise EdgeUnavailable(
                    f"op {decoded[0]!r} spans shards {sorted(shards)}")
            # protolint: disable=DEEP-TAINT singleton set (guarded by the len != 1 raise above), so pop() is deterministic
            return shards.pop(), keys[0] if len(keys) == 1 else tuple(keys)
        try:
            target = extractor.extract(decanonical(op))
        except Exception:
            return 0, None
        if target is None or isinstance(target, list):
            return 0, None
        return 0, target

    # -- monitoring plane --------------------------------------------------

    def _poll_view_signal(self, port: _ShardPort) -> None:
        """Edge-detect view changes on the shard: a view advance or a
        newly active view-change protocol opens the breaker."""
        view = max(r.view for r in port.replicas)
        active = any(r.view_changes.active for r in port.replicas)
        if view > port.last_view or (active and not port.last_vc_active):
            port.breaker.signal_view_change()
            self.metrics.inc("edge.view_signals")
        port.last_view = max(port.last_view, view)
        port.last_vc_active = active

    # -- the ladder --------------------------------------------------------

    def read(self, op: bytes, key: Any = _UNSET) -> EdgeReply:
        """Serve one read at the strongest mode currently available.

        Drives the scheduler (bounded by the configured timeouts); call
        only from outside event context.
        """
        shard, axis_key = self._route(op, key)
        port = self.ports[shard]
        self._poll_view_signal(port)
        cache_key = (shard, axis_key, digest(op))
        self.metrics.inc("edge.reads")

        if port.breaker.allow_attempt():
            fetched = self._linearizable_read(port, op)
            if fetched is not None:
                port.breaker.record_success()
                self.cache.put(cache_key, fetched.result, fetched.evidence)
                return self._serve(port, op, axis_key, LINEARIZABLE, None,
                                   fetched.result, fetched.evidence)
            port.breaker.record_failure()
            self.metrics.inc("edge.linearizable_timeouts")

        # BOUNDED_STALE(Δ): fresh cache, else a single-replica refresh.
        entry = self.cache.get_fresh(cache_key)
        if entry is None:
            fetched = self._refresh_from_replica(port, op)
            if fetched is not None:
                entry = self.cache.put(cache_key, fetched.result,
                                       fetched.evidence)
                if not entry.lease.valid(self.now):
                    entry = None  # evidence already older than Δ
        if entry is not None:
            self.metrics.inc("edge.degraded_reads")
            return self._serve(port, op, axis_key, BOUNDED_STALE, self.delta,
                               entry.result, entry.evidence)

        # LAST_KNOWN_GOOD: anything we ever saw, flagged, no bound.
        entry = self.cache.get_any(cache_key)
        if entry is not None:
            self.metrics.inc("edge.degraded_reads")
            self.metrics.inc("edge.last_known_good_reads")
            return self._serve(port, op, axis_key, LAST_KNOWN_GOOD, None,
                               entry.result, entry.evidence)
        self.metrics.inc("edge.unavailable")
        raise EdgeUnavailable(f"shard {shard}: core unreachable and no "
                              f"cached state for key {axis_key!r}")

    def _serve(self, port: _ShardPort, op: bytes, axis_key: Any, mode: str,
               bound: Optional[float], result: bytes,
               evidence: Optional[StalenessEvidence]) -> EdgeReply:
        self.records.append(EdgeReadRecord(
            op_digest=digest(op), result_digest=digest(result),
            key=axis_key, shard=port.shard, mode=mode, staleness_bound=bound,
            served_at=self.now, evidence=evidence))
        return EdgeReply(result, mode, bound, evidence)

    # -- fetch paths -------------------------------------------------------

    def _await(self, timeout: float, ready: Callable[[], bool]) -> bool:
        """Run the scheduler until ``ready()`` or ``timeout`` sim-seconds.

        A cancellable sentinel bounds the wait, so a reply that lands
        early returns immediately instead of burning the full window.
        """
        expired: List[bool] = []
        sentinel = self.scheduler.schedule(timeout, expired.append, True)
        self.scheduler.run_until_idle_or(
            lambda: bool(expired) or ready())
        sentinel.cancel()
        return ready()

    def _linearizable_read(self, port: _ShardPort,
                           op: bytes) -> Optional[_Fetched]:
        """Read-only fast path under a timeout; quorum evidence."""
        box: Dict[str, Any] = {}
        port.client.collect_read_certificate(op,
                                             lambda c: box.update(cert=c))
        if not self._await(self.read_timeout, lambda: "cert" in box):
            port.client.cancel()
            return None
        cert = box["cert"]
        evidence = StalenessEvidence(
            kind=EVIDENCE_CERTIFICATE,
            issued_at_us=int(round(cert.issued_at * 1_000_000)),
            replicas=cert.voters)
        if cert.fell_back:
            self.metrics.inc("edge.read_fallbacks")
        return _Fetched(cert.result, evidence)

    def _refresh_from_replica(self, port: _ShardPort,
                              op: bytes) -> Optional[_Fetched]:
        """Single-replica read with version-vector evidence, rotating
        through the shard's replicas."""
        n = len(port.replicas)
        for _ in range(min(self.refresh_attempts, n)):
            replica = port.replicas[port.rotation % n]
            port.rotation += 1
            nonce = port.node.fetch(replica.node_id, op)
            got = self._await(self.refresh_timeout,
                              lambda: port.node.reply_for(nonce) is not None)
            reply = port.node.reply_for(nonce)
            port.node.forget(nonce)
            if not got or reply is None:
                self.metrics.inc("edge.vector_timeouts")
                continue
            self.metrics.inc("edge.vector_reads")
            return _Fetched(reply.result, StalenessEvidence(
                kind=EVIDENCE_VECTOR,
                issued_at_us=reply.issued_at_us,
                replicas=(reply.replica_id,),
                checkpoint_seq=reply.checkpoint_seq,
                root_digest=reply.root_digest,
                stable_at_us=reply.stable_at_us))
        return None
