"""ProtoLint rule engine: a single-pass AST walker with pluggable rules.

The engine parses each file once, walks the tree once, and dispatches
every node to the rules registered for that node type.  Rules report
:class:`Finding` records through the :class:`FileContext`; the context
applies inline suppressions (``# protolint: disable=RULE-ID reason``)
before a finding is recorded, so rules never need to know about them.

Design constraints, in the spirit of the repo's determinism discipline:

- findings are value objects with a total order, so a run over the same
  tree always reports the same findings in the same order;
- suppressions *require* a reason — an inline disable with no reason (or
  naming an unknown rule) is itself a finding (``PL-SUPPRESS``);
- everything is pure-stdlib (``ast`` + ``tokenize``), no third-party
  dependency.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.analysis.config import AnalysisConfig

#: Rule id reserved for problems with suppression comments themselves.
SUPPRESS_RULE_ID = "PL-SUPPRESS"

SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one site.

    The field order *is* the sort order: findings group by file, then by
    position, then by rule — stable across runs and Python versions.

    ``chain`` is used by the interprocedural (deep) passes: the full
    source→sink path, one ``"frame (file:line)"`` string per hop.  It is
    deliberately excluded from the fingerprint — call-chain line numbers
    churn, baselines must not.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"
    chain: Tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        """Baseline identity: stable across line-number churn."""
        return f"{self.rule}:{self.path}:{self.message}"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule, "path": self.path, "line": self.line,
            "col": self.col, "message": self.message,
            "severity": self.severity}
        if self.chain:
            out["chain"] = list(self.chain)
        return out

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} [{self.severity}] {self.message}")


class Rule:
    """Base class for ProtoLint rules.

    Subclasses set ``rule_id``, ``title``, ``rationale``, and
    ``node_types`` (the AST classes they want dispatched), then implement
    :meth:`visit`.  ``begin_file`` runs once per file before the walk —
    rules that need a pre-pass (e.g. inferring which names hold sets)
    collect state there and must reset it per file.
    """

    rule_id: str = ""
    severity: str = "error"
    title: str = ""
    rationale: str = ""
    #: Example of a violation, for the docs rule catalog.
    example: str = ""
    node_types: Tuple[type, ...] = ()

    def applies_to(self, ctx: "FileContext") -> bool:
        """Whether this rule runs on ``ctx.rel`` at all (scope check)."""
        return True

    def begin_file(self, ctx: "FileContext") -> None:
        """Per-file pre-pass hook; default does nothing."""

    def visit(self, node: ast.AST, ctx: "FileContext") -> None:
        raise NotImplementedError


@dataclass
class _Suppression:
    line: int
    rules: Tuple[str, ...]
    reason: str
    standalone: bool  # comment-only line: also covers the next line


_DISABLE_RE = re.compile(
    r"protolint:\s*disable=([A-Za-z0-9_,\-]+)\s*(.*)\Z")


class FileContext:
    """Everything rules may consult about the file being checked."""

    def __init__(self, rel: str, source: str, config: AnalysisConfig,
                 known_rule_ids: Iterable[str]):
        self.rel = rel
        self.source = source
        self.config = config
        self.tree: Optional[ast.AST] = None  # set by the engine pre-walk
        self.findings: List[Finding] = []
        self._known = set(known_rule_ids) | {SUPPRESS_RULE_ID}
        #: line -> suppression record covering that line.
        self._suppressions: Dict[int, _Suppression] = {}
        self._parse_suppressions()

    # -- suppressions ----------------------------------------------------------

    def _parse_suppressions(self) -> None:
        """Scan comments with ``tokenize`` (immune to '#' inside strings)."""
        try:
            tokens = list(tokenize.generate_tokens(
                io.StringIO(self.source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return  # the ast parse will report the real problem
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DISABLE_RE.search(tok.string)
            if match is None:
                if "protolint:" in tok.string:
                    self._raw_report(Finding(
                        self.rel, tok.start[0], tok.start[1],
                        SUPPRESS_RULE_ID,
                        "malformed protolint comment (expected "
                        "'protolint: disable=RULE-ID reason')"))
                continue
            line = tok.start[0]
            rules = tuple(r for r in match.group(1).split(",") if r)
            reason = match.group(2).strip()
            standalone = self.source.splitlines()[line - 1] \
                .lstrip().startswith("#")
            if not reason:
                self._raw_report(Finding(
                    self.rel, line, tok.start[1], SUPPRESS_RULE_ID,
                    f"suppression of {','.join(rules)} has no reason "
                    f"(format: '# protolint: disable=RULE-ID reason')"))
                continue
            unknown = [r for r in rules if r not in self._known]
            if unknown:
                self._raw_report(Finding(
                    self.rel, line, tok.start[1], SUPPRESS_RULE_ID,
                    f"suppression names unknown rule "
                    f"{', '.join(sorted(unknown))}"))
                continue
            self._suppressions[line] = _Suppression(
                line, rules, reason, standalone)

    def suppressed(self, rule_id: str, line: int) -> bool:
        """A finding is suppressed by a disable comment on its own line,
        or by a standalone disable comment on the line directly above."""
        here = self._suppressions.get(line)
        if here is not None and rule_id in here.rules:
            return True
        above = self._suppressions.get(line - 1)
        return (above is not None and above.standalone
                and rule_id in above.rules)

    # -- reporting -------------------------------------------------------------

    def _raw_report(self, finding: Finding) -> None:
        self.findings.append(finding)

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressed(rule.rule_id, line):
            return
        self._raw_report(Finding(self.rel, line, col, rule.rule_id,
                                 message, rule.severity))


class Engine:
    """Runs a rule set over sources: one parse, one walk per file."""

    def __init__(self, rules: Sequence[Rule],
                 config: Optional[AnalysisConfig] = None):
        seen: Dict[str, Rule] = {}
        for rule in rules:
            if not rule.rule_id:
                raise ValueError(f"{type(rule).__name__} has no rule_id")
            if rule.rule_id in seen:
                raise ValueError(f"duplicate rule id {rule.rule_id}")
            if rule.severity not in SEVERITIES:
                raise ValueError(f"{rule.rule_id}: bad severity "
                                 f"{rule.severity!r}")
            seen[rule.rule_id] = rule
        self.rules: Tuple[Rule, ...] = tuple(
            seen[rid] for rid in sorted(seen))
        self.config = config or AnalysisConfig()
        self._dispatch: Dict[type, List[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    @property
    def rule_ids(self) -> Tuple[str, ...]:
        return tuple(rule.rule_id for rule in self.rules)

    def check_source(self, source: str, rel: str) -> List[Finding]:
        """Check one file's text; ``rel`` is its path used in findings
        and in rule scope decisions (e.g. ``bft/replica.py``)."""
        # The deep rule ids are always part of the suppression
        # vocabulary: a file-level pass must not flag a suppression
        # aimed at the interprocedural pass as unknown.
        from repro.analysis.deep.catalog import DEEP_RULE_IDS
        known = tuple(self.rule_ids) + tuple(DEEP_RULE_IDS)
        ctx = FileContext(rel, source, self.config, known)
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError as err:
            ctx._raw_report(Finding(rel, err.lineno or 1, 0, "PL-SYNTAX",
                                    f"syntax error: {err.msg}"))
            return sorted(ctx.findings)
        ctx.tree = tree
        active = [r for r in self.rules if r.applies_to(ctx)]
        active_ids = {r.rule_id for r in active}
        for rule in active:
            rule.begin_file(ctx)
        for node in ast.walk(tree):
            for rule in self._dispatch.get(type(node), ()):
                if rule.rule_id in active_ids:
                    rule.visit(node, ctx)
        return sorted(ctx.findings)

    def check_file(self, path: Path, rel: Optional[str] = None
                   ) -> List[Finding]:
        rel = rel if rel is not None else path.name
        return self.check_source(path.read_text(encoding="utf-8"), rel)

    def run(self, root: Path) -> List[Finding]:
        """Check every ``*.py`` under ``root`` (or just ``root`` if it is
        a file); findings carry paths relative to the package root."""
        findings: List[Finding] = []
        if root.is_file():
            findings.extend(self.check_file(root, relativize(root, root)))
            return sorted(findings)
        for path in sorted(root.rglob("*.py")):
            findings.extend(self.check_file(path, relativize(path, root)))
        return sorted(findings)


def relativize(path: Path, root: Path) -> str:
    """Finding path for ``path`` scanned from ``root``.

    Rule scopes are package-relative (``bft/replica.py``), so when the
    scanned tree contains the ``repro`` package the path is rebased onto
    it — ``src/repro/bft/replica.py`` and ``bft/replica.py`` agree no
    matter which directory the CLI was pointed at.
    """
    path = path.resolve()
    root = root.resolve()
    parts = path.parts
    if "repro" in parts:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        tail = parts[idx + 1:]
        if tail:
            return "/".join(tail)
    if root.is_dir():
        try:
            return path.relative_to(root).as_posix()
        except ValueError:
            pass
    return path.name
