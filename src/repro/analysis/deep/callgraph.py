"""Project-wide call graph over the :class:`~.project.Project` model.

Resolution strategy, most to least precise:

1. module-scope dotted resolution (``helper()``, ``mod.func()``,
   aliased imports, class constructors);
2. method resolution on locally-defined classes: ``self.m()`` walks the
   MRO plus descendant overrides, ``super().m()`` starts past the
   current class, ``self.attr.m()`` / ``v.m()`` go through the inferred
   ``self.attr = Cls(...)`` / ``v = Cls(...)`` instance types;
3. ``@op``-decorated methods get a synthetic dispatch edge from the
   ``execute`` method of their class hierarchy (the service kernel's
   table dispatch is invisible to syntactic resolution);
4. conservative fallback: an attribute call that resolves to nothing is
   linked to *every* project method of that name — except names of
   builtin container/str methods, which would drown the graph in false
   edges (``d.get``, ``lst.append``, ...).

Everything is ordered: callee tuples are sorted, iteration over the
graph is by sorted qualname, so downstream passes are deterministic.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.deep.project import (BUILTIN_METHODS, FunctionInfo,
                                         Project)


class CallSite:
    """One resolved ``ast.Call`` inside a function body."""

    __slots__ = ("node", "line", "targets", "external", "ctor", "fallback")

    def __init__(self, node: ast.Call, targets: Tuple[str, ...],
                 external: Optional[str], ctor: Optional[str],
                 fallback: bool):
        self.node = node
        self.line = node.lineno
        #: Project function qualnames this call may reach.
        self.targets = targets
        #: Resolved dotted name outside the project (``time.time``,
        #: ``builtins.hash``) — None when unresolved.
        self.external = external
        #: Class dotted name when the call constructs an instance.
        self.ctor = ctor
        self.fallback = fallback


class FunctionAnalysis:
    """Call sites plus the local symbol info body passes reuse."""

    __slots__ = ("info", "callsites", "by_node", "local_types",
                 "local_funcs", "lambdas", "calls_charge")

    def __init__(self, info: FunctionInfo):
        self.info = info
        self.callsites: List[CallSite] = []
        self.by_node: Dict[int, CallSite] = {}
        #: local var -> sorted tuple of instance class dotted names.
        self.local_types: Dict[str, Tuple[str, ...]] = {}
        #: local name -> function qualname (nested defs, aliases).
        self.local_funcs: Dict[str, str] = {}
        #: local name -> ast.Lambda bound to it.
        self.lambdas: Dict[str, ast.Lambda] = {}
        #: body contains a literal ``*.charge(...)`` call.
        self.calls_charge: bool = False


class CallGraph:
    """Edges + per-function analyses for the whole project."""

    def __init__(self, project: Project):
        self.project = project
        self.analyses: Dict[str, FunctionAnalysis] = {}
        self.edges: Dict[str, Tuple[str, ...]] = {}
        self.reverse: Dict[str, Tuple[str, ...]] = {}
        self._reach_cache: Dict[str, Tuple[str, ...]] = {}

    def analysis(self, qualname: str) -> Optional[FunctionAnalysis]:
        return self.analyses.get(qualname)

    def callees(self, qualname: str) -> Tuple[str, ...]:
        return self.edges.get(qualname, ())

    def callers(self, qualname: str) -> Tuple[str, ...]:
        return self.reverse.get(qualname, ())

    def reachable(self, qualname: str) -> Tuple[str, ...]:
        """Sorted transitive closure of callees, including the root."""
        cached = self._reach_cache.get(qualname)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack = [qualname]
        while stack:
            q = stack.pop()
            if q in seen:
                continue
            seen.add(q)
            stack.extend(self.edges.get(q, ()))
        out = tuple(sorted(seen))
        self._reach_cache[qualname] = out
        return out


def build_callgraph(project: Project) -> CallGraph:
    graph = CallGraph(project)
    edges: Dict[str, Set[str]] = {}
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        analysis = _analyze_function(project, info)
        graph.analyses[qualname] = analysis
        out = edges.setdefault(qualname, set())
        for site in analysis.callsites:
            out.update(site.targets)

    # Synthetic dispatch edges: execute() -> every @op method of the
    # class hierarchy it dispatches over.
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        if not info.is_op or info.cls is None:
            continue
        for execute in project.find_methods(info.cls.qualname, "execute"):
            edges.setdefault(execute.qualname, set()).add(qualname)

    graph.edges = {q: tuple(sorted(t)) for q, t in sorted(edges.items())}
    rev: Dict[str, Set[str]] = {}
    for src in sorted(graph.edges):
        for dst in graph.edges[src]:
            rev.setdefault(dst, set()).add(src)
    graph.reverse = {q: tuple(sorted(s)) for q, s in sorted(rev.items())}
    return graph


# -- per-function resolution ---------------------------------------------------

def _analyze_function(project: Project,
                      info: FunctionInfo) -> FunctionAnalysis:
    analysis = FunctionAnalysis(info)
    module = info.module
    body = info.node.body

    # Pre-pass: local instance types, nested/aliased functions, lambdas.
    types: Dict[str, Set[str]] = {}
    for node in ast.walk(info.node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not info.node:
            nested = f"{info.qualname}.{node.name}"
            if nested in project.functions:
                analysis.local_funcs[node.name] = nested
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            value = node.value
            if isinstance(value, ast.Lambda):
                analysis.lambdas[name] = value
            elif isinstance(value, ast.Call) and \
                    isinstance(value.func, (ast.Name, ast.Attribute)):
                dotted = project.resolve_dotted(module, value.func)
                if dotted is not None and (dotted in project.classes
                                           or "." in dotted):
                    if dotted in project.classes or \
                            dotted.split(".")[-1][:1].isupper():
                        types.setdefault(name, set()).add(dotted)
            elif isinstance(value, (ast.Name, ast.Attribute)):
                dotted = project.resolve_dotted(module, value)
                if dotted in project.functions:
                    analysis.local_funcs[name] = dotted
    analysis.local_types = {n: tuple(sorted(v))
                            for n, v in sorted(types.items())}

    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        site = _resolve_call(project, analysis, node)
        analysis.callsites.append(site)
        analysis.by_node[id(node)] = site
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "charge":
            analysis.calls_charge = True
    analysis.callsites.sort(key=lambda s: (s.line, s.node.col_offset))
    _ = body
    return analysis


def _instance_methods(project: Project, type_dotted: str,
                      name: str) -> Tuple[Tuple[str, ...], Optional[str]]:
    """Resolve ``<instance of type_dotted>.name`` -> (project targets,
    external dotted)."""
    if type_dotted in project.classes:
        found = project.find_methods(type_dotted, name)
        if found:
            return tuple(f.qualname for f in found), None
        return (), None
    return (), f"{type_dotted}.{name}"


def _resolve_call(project: Project, analysis: FunctionAnalysis,
                  node: ast.Call) -> CallSite:
    info = analysis.info
    module = info.module
    func = node.func
    targets: List[str] = []
    external: Optional[str] = None
    ctor: Optional[str] = None
    fallback = False

    def classify_dotted(dotted: str) -> None:
        nonlocal external, ctor
        dotted = project.normalize(dotted)
        if dotted in project.functions:
            targets.append(dotted)
        elif dotted in project.classes:
            ctor = dotted
            for init in project.find_methods(dotted, "__init__"):
                targets.append(init.qualname)
        else:
            external = dotted

    if isinstance(func, ast.Name):
        name = func.id
        if name in analysis.local_funcs:
            targets.append(analysis.local_funcs[name])
        elif name in analysis.lambdas:
            pass  # inlined by the taint pass
        else:
            dotted = project.resolve_name(module, name)
            if dotted is not None:
                classify_dotted(dotted)
    elif isinstance(func, ast.Attribute):
        attr = func.attr
        base = func.value
        resolved = False
        # super().m(...)
        if isinstance(base, ast.Call) and isinstance(base.func, ast.Name) \
                and base.func.id == "super" and info.cls is not None:
            for m in project.find_methods(info.cls.qualname, attr,
                                          skip_own=True):
                targets.append(m.qualname)
            resolved = True
        # self.m(...) / self.x.m(...)
        elif isinstance(base, ast.Name) and base.id == "self" \
                and info.cls is not None:
            found = project.find_methods(info.cls.qualname, attr)
            if found:
                targets.extend(f.qualname for f in found)
                resolved = True
        elif isinstance(base, ast.Attribute) \
                and isinstance(base.value, ast.Name) \
                and base.value.id == "self" and info.cls is not None:
            for type_dotted in info.cls.attr_class_types.get(base.attr, ()):
                found, ext = _instance_methods(project, type_dotted, attr)
                targets.extend(found)
                if found or ext:
                    resolved = True
                    if ext and external is None:
                        external = ext
        elif isinstance(base, ast.Name) and base.id in analysis.local_types:
            for type_dotted in analysis.local_types[base.id]:
                found, ext = _instance_methods(project, type_dotted, attr)
                targets.extend(found)
                if found or ext:
                    resolved = True
                    if ext and external is None:
                        external = ext
        if not resolved and not targets:
            dotted = project.resolve_dotted(module, func)
            if dotted is not None:
                classify_dotted(dotted)
                resolved = True
        if not resolved and not targets and external is None:
            # Conservative fallback: link by method name, excluding
            # builtin container/str method names.
            if attr not in BUILTIN_METHODS:
                by_name = project.methods_by_name.get(attr, ())
                if by_name:
                    targets.extend(by_name)
                    fallback = True

    unique = tuple(sorted(set(targets)))
    return CallSite(node, unique, external, ctor, fallback)
