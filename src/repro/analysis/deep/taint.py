"""Interprocedural nondeterminism-taint analysis (DEEP-TAINT).

The lattice (documented for users in docs/ANALYSIS.md):

Sources — values whose bits depend on something outside (scenario, seed):
  ``wall-clock``  time.time/monotonic/perf_counter, datetime.now, ...
  ``entropy``     os.urandom, uuid.uuid1/uuid4, anything in secrets
  ``rng``         module-level random.* draws (the unseeded global RNG)
  ``hash``        builtins.hash (PYTHONHASHSEED-dependent for str/bytes)
  ``id``          builtins.id (a memory address)
  ``set-order``   values observed in set iteration order (for/comprehension
                  over a set, list()/tuple()/iter() of a set, set.pop())

Sinks — where such a value breaks agreement or replay:
  canonical encoding (``repro.encoding.canonical.canonical``),
  wire message constructors (subclasses of bft.messages.Message),
  digests (``repro.crypto.digest.digest``; checkpoint identity, MACs),
  abstract-state mutation (state-manager writes) *reachable from a
  message handler*.

Sanitizers:
  ``sorted()``, ``min()``, ``max()`` erase ``set-order`` (order no longer
  escapes) but keep value taints; ``len()``, ``bool()``, ``isinstance()``,
  ``type()`` erase everything (only cardinality/type escapes).

Per-function summaries (returned taint, param->return, param->sink,
attribute reads/writes) are computed to a global fixpoint over the call
graph; the domain is finite (source *sites* x sinks x params) and
accumulation is monotone, so the fixpoint terminates — mutual recursion
included.  Each violation is reported as a full source→sink path: the
finding anchors at the source site, the message carries the call chain
by name, and the report's ``chain`` field carries file:line detail.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, NamedTuple, Optional, Set, Tuple

from repro.analysis.deep.callgraph import CallGraph, FunctionAnalysis
from repro.analysis.deep.project import FunctionInfo, Project
from repro.analysis.rules.determinism import (DATETIME_READS,
                                              GLOBAL_RNG_CALLS,
                                              WALL_CLOCK_READS)

# -- lattice constants ---------------------------------------------------------

#: dotted external name -> (kind, label)
SOURCE_CALLS: Dict[str, Tuple[str, str]] = {}
for _mod, _attr in sorted(WALL_CLOCK_READS):
    _kind = "entropy" if (_mod, _attr) in (("os", "urandom"),
                                           ("uuid", "uuid1"),
                                           ("uuid", "uuid4")) \
        else "wall-clock"
    SOURCE_CALLS[f"{_mod}.{_attr}"] = (_kind, f"{_mod}.{_attr}()")
for _attr in sorted(DATETIME_READS):
    SOURCE_CALLS[f"datetime.datetime.{_attr}"] = \
        ("wall-clock", f"datetime.{_attr}()")
SOURCE_CALLS["datetime.date.today"] = ("wall-clock", "date.today()")
for _attr in ("perf_counter", "perf_counter_ns"):
    SOURCE_CALLS[f"time.{_attr}"] = ("wall-clock", f"time.{_attr}()")
for _attr in sorted(GLOBAL_RNG_CALLS):
    SOURCE_CALLS[f"random.{_attr}"] = ("rng", f"random.{_attr}()")
SOURCE_CALLS["builtins.hash"] = ("hash", "hash()")
SOURCE_CALLS["builtins.id"] = ("id", "id()")

SECRETS_PREFIX = "secrets."

#: Sanitizers: erase everything (only cardinality/type/truth escapes).
SANITIZE_ALL = frozenset({
    "builtins.len", "builtins.bool", "builtins.isinstance",
    "builtins.issubclass", "builtins.type", "builtins.callable",
})
#: Sanitizers: erase set-order only (order-independent reductions).
SANITIZE_ORDER = frozenset({
    "builtins.sorted", "builtins.min", "builtins.max",
})
#: Builtins that expose a set's iteration order when applied to one.
ORDER_EXPOSING = frozenset({
    "builtins.list", "builtins.tuple", "builtins.iter",
})

#: Attribute-call names that mutate their receiver with their arguments.
MUTATORS = frozenset({
    "append", "add", "extend", "insert", "update", "setdefault",
    "appendleft", "push",
})

SET_ORDER_KIND = "set-order"
PARAM_KIND = "param"

_MAX_LOCAL_ITER = 10
_MAX_ROUNDS = 60


class Tag(NamedTuple):
    """One taint element: a source *site* (or a symbolic parameter)."""

    kind: str
    label: str
    rel: str
    line: int


#: tag -> call chain (frames, earliest hop first).
TaintMap = Dict[Tag, Tuple[str, ...]]


class SinkHit(NamedTuple):
    """A sink reachable from a function parameter."""

    label: str
    rel: str
    line: int
    suffix: Tuple[str, ...]   # frames from the callee entry to the sink


class Violation(NamedTuple):
    tag: Tag
    sink_label: str
    sink_rel: str
    sink_line: int
    chain: Tuple[str, ...]    # frames between source and sink


class Summary:
    """What a caller needs to know about one function."""

    __slots__ = ("ret", "param_ret", "param_sinks", "param_attr_writes")

    def __init__(self) -> None:
        self.ret: TaintMap = {}
        self.param_ret: Set[int] = set()
        self.param_sinks: Dict[int, Dict[Tuple[str, str, int],
                                         SinkHit]] = {}
        self.param_attr_writes: Dict[int, Set[Tuple[str, str]]] = {}

    def snapshot(self) -> tuple:
        return (frozenset(self.ret),
                frozenset(self.param_ret),
                frozenset((i, k) for i, hits in self.param_sinks.items()
                          for k in hits),
                frozenset((i, a) for i, attrs in
                          self.param_attr_writes.items() for a in attrs))


def _frame(qualname: str, rel: str, line: int) -> str:
    return f"{qualname} ({rel}:{line})"


class TaintPass:
    """Global fixpoint driver + per-function abstract interpreter."""

    def __init__(self, project: Project, graph: CallGraph):
        self.project = project
        self.graph = graph
        self.config = project.config
        self.summaries: Dict[str, Summary] = {}
        #: (class qualname, attr) -> taint ever written to self.attr.
        self.attr_taint: Dict[Tuple[str, str], TaintMap] = {}
        self.violations: Dict[Tuple[Tag, str, str, int], Violation] = {}
        self._changed = False
        #: class qualname -> set-typed self attributes (inferred).
        self._class_set_attrs: Dict[str, FrozenSet[str]] = {}
        self._handler_reachable: FrozenSet[str] = frozenset()
        self._message_classes: FrozenSet[str] = frozenset()
        self._prepare()

    # -- setup -----------------------------------------------------------------

    def _prepare(self) -> None:
        root = self.config.message_root
        self._message_classes = frozenset(
            cls.qualname for cls in self.project.classes.values()
            if cls.qualname != root
            and self.project.is_subclass(cls.qualname, root))
        reach: Set[str] = set()
        for qualname in sorted(self.project.functions):
            info = self.project.functions[qualname]
            if info.cls is not None and info.name.startswith("handle_"):
                reach.update(self.graph.reachable(qualname))
        self._handler_reachable = frozenset(reach)
        for qualname in sorted(self.project.classes):
            cls = self.project.classes[qualname]
            attrs: Set[str] = set()
            for mname in sorted(cls.methods):
                for node in ast.walk(cls.methods[mname].node):
                    if not isinstance(node, ast.Assign):
                        continue
                    if not _is_set_literalish(node.value):
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Attribute) and \
                                isinstance(target.value, ast.Name) and \
                                target.value.id == "self":
                            attrs.add(target.attr)
            self._class_set_attrs[qualname] = frozenset(attrs)

    def class_set_attrs(self, cls_qualname: str) -> FrozenSet[str]:
        out: Set[str] = set()
        for q in self.project.family(cls_qualname):
            out |= self._class_set_attrs.get(q, frozenset())
        return frozenset(out)

    # -- fixpoint --------------------------------------------------------------

    def run(self) -> None:
        qualnames = sorted(self.project.functions)
        for _ in range(_MAX_ROUNDS):
            self._changed = False
            for qualname in qualnames:
                self._process(qualname)
            if not self._changed:
                break

    def _process(self, qualname: str) -> None:
        info = self.project.functions[qualname]
        analysis = self.graph.analysis(qualname)
        if analysis is None:
            return
        old = self.summaries.get(qualname)
        old_snap = old.snapshot() if old is not None else None
        summary = Summary()
        if old is not None:
            # Monotone accumulation: start from the previous summary.
            summary.ret = dict(old.ret)
            summary.param_ret = set(old.param_ret)
            summary.param_sinks = {i: dict(h)
                                   for i, h in old.param_sinks.items()}
            summary.param_attr_writes = {
                i: set(a) for i, a in old.param_attr_writes.items()}
        interp = _BodyInterp(self, info, analysis, summary)
        interp.run()
        self.summaries[qualname] = summary
        if old_snap != summary.snapshot():
            self._changed = True

    # -- shared mutation hooks -------------------------------------------------

    def merge_attr(self, key: Tuple[str, str], taint: TaintMap) -> None:
        dst = self.attr_taint.setdefault(key, {})
        for tag, chain in taint.items():
            if tag.kind == PARAM_KIND:
                continue
            if tag not in dst:
                dst[tag] = chain
                self._changed = True

    def read_attr(self, cls_qualname: str, attr: str) -> TaintMap:
        out: TaintMap = {}
        for q in self.project.family(cls_qualname):
            for tag, chain in self.attr_taint.get((q, attr), {}).items():
                out.setdefault(tag, chain)
        return out

    def record_violation(self, tag: Tag, label: str, rel: str, line: int,
                         chain: Tuple[str, ...]) -> None:
        key = (tag, label, rel, line)
        if key not in self.violations:
            self.violations[key] = Violation(tag, label, rel, line, chain)
            self._changed = True

    def handler_reachable(self, qualname: str) -> bool:
        return qualname in self._handler_reachable

    def is_message_ctor(self, dotted: Optional[str]) -> bool:
        return dotted is not None and dotted in self._message_classes


def _is_set_literalish(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


# -- per-function abstract interpretation --------------------------------------

class _BodyInterp:
    def __init__(self, pass_: TaintPass, info: FunctionInfo,
                 analysis: FunctionAnalysis, summary: Summary):
        self.p = pass_
        self.info = info
        self.analysis = analysis
        self.summary = summary
        self.env: Dict[str, TaintMap] = {}
        self.local_sets: Set[str] = set()
        self.cls_set_attrs: FrozenSet[str] = frozenset()
        if info.cls is not None:
            self.cls_set_attrs = pass_.class_set_attrs(info.cls.qualname)
        self._changed = False
        self._lambda_depth = 0
        # Symbolic parameter seeding.
        for idx, name in enumerate(info.params):
            tag = Tag(PARAM_KIND, str(idx), info.rel, info.lineno)
            self.env[name] = {tag: ()}
        for name in info.kwonly:
            self.env.setdefault(name, {})
        # Local set inference (assignment pre-pass).
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and \
                    _is_set_literalish(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.local_sets.add(target.id)

    # -- driver ---------------------------------------------------------------

    def run(self) -> None:
        body = self.info.node.body
        if isinstance(body, ast.expr):  # lambda
            body = [ast.Return(value=body)]
        for _ in range(_MAX_LOCAL_ITER):
            self._changed = False
            self.exec_body(body)
            if not self._changed:
                break

    # -- environment -----------------------------------------------------------

    def bind(self, name: str, taint: TaintMap) -> None:
        dst = self.env.setdefault(name, {})
        for tag, chain in taint.items():
            if tag not in dst:
                dst[tag] = chain
                self._changed = True

    def is_set_expr(self, node: ast.AST) -> bool:
        if _is_set_literalish(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.local_sets
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self":
            return node.attr in self.cls_set_attrs
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            left = self.is_set_expr(node.left)
            if isinstance(node.op, (ast.BitAnd, ast.Sub)):
                return left
            return left and self.is_set_expr(node.right)
        return False

    def _source_scope_ok(self) -> bool:
        return self.p.config.in_protocol(self.info.rel)

    def set_order_tag(self, node: ast.AST) -> TaintMap:
        if not self._source_scope_ok():
            return {}
        tag = Tag(SET_ORDER_KIND, "set-iteration-order", self.info.rel,
                  getattr(node, "lineno", self.info.lineno))
        return {tag: ()}

    # -- statements ------------------------------------------------------------

    def exec_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign_target(target, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign_target(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval(stmt.value)
            if isinstance(stmt.target, (ast.Name, ast.Attribute,
                                        ast.Subscript)):
                taint = dict(taint)
                for tag, chain in self.eval(stmt.target).items():
                    taint.setdefault(tag, chain)
            self.assign_target(stmt.target, taint)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.record_return(self.eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taint = self.eval(stmt.iter)
            if self.is_set_expr(stmt.iter):
                for tag, chain in self.set_order_tag(stmt.iter).items():
                    taint.setdefault(tag, chain)
            self.assign_target(stmt.target, taint)
            self.exec_body(stmt.body)
            self.exec_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign_target(item.optional_vars, taint)
            self.exec_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_body(stmt.body)
            for handler in stmt.handlers:
                self.exec_body(handler.body)
            self.exec_body(stmt.orelse)
            self.exec_body(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # analyzed as their own graph nodes
        # Pass/Import/Global/Nonlocal/Break/Continue/Delete: no dataflow.

    def assign_target(self, target: ast.AST, taint: TaintMap) -> None:
        if isinstance(target, ast.Name):
            self.bind(target.id, taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign_target(elt, taint)
        elif isinstance(target, ast.Starred):
            self.assign_target(target.value, taint)
        elif isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and \
                    target.value.id == "self" and self.info.cls is not None:
                self.write_attr(target.attr, taint)
            else:
                # Mutating some other object's attribute: taint the base
                # name so later reads through it stay tainted.
                base = target.value
                if isinstance(base, ast.Name):
                    self.bind(base.id, taint)
        elif isinstance(target, ast.Subscript):
            # d[k] = v taints the container (k, v both matter: a tainted
            # key perturbs ordering, a tainted value is stored).
            taint = dict(taint)
            for tag, chain in self.eval(target.slice).items():
                taint.setdefault(tag, chain)
            self.assign_target(target.value, taint)

    def write_attr(self, attr: str, taint: TaintMap) -> None:
        cls = self.info.cls.qualname
        real = {t: c for t, c in taint.items() if t.kind != PARAM_KIND}
        if real:
            self.p.merge_attr((cls, attr), real)
        for tag in taint:
            if tag.kind == PARAM_KIND:
                idx = int(tag.label)
                dst = self.summary.param_attr_writes.setdefault(idx, set())
                if (cls, attr) not in dst:
                    dst.add((cls, attr))
                    self._changed = True

    def record_return(self, taint: TaintMap) -> None:
        for tag, chain in taint.items():
            if tag.kind == PARAM_KIND:
                idx = int(tag.label)
                if idx not in self.summary.param_ret:
                    self.summary.param_ret.add(idx)
                    self._changed = True
            elif tag not in self.summary.ret:
                self.summary.ret[tag] = chain
                self._changed = True

    # -- expressions -----------------------------------------------------------

    def eval(self, node: Optional[ast.AST]) -> TaintMap:
        if node is None:
            return {}
        if isinstance(node, ast.Constant):
            return {}
        if isinstance(node, ast.Name):
            return dict(self.env.get(node.id, {}))
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and \
                    node.value.id == "self" and self.info.cls is not None:
                return self.p.read_attr(self.info.cls.qualname, node.attr)
            return self.eval(node.value)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, (ast.BinOp,)):
            out = self.eval(node.left)
            for tag, chain in self.eval(node.right).items():
                out.setdefault(tag, chain)
            return out
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out: TaintMap = {}
            for value in node.values:
                for tag, chain in self.eval(value).items():
                    out.setdefault(tag, chain)
            return out
        if isinstance(node, ast.Compare):
            out = self.eval(node.left)
            for comp in node.comparators:
                for tag, chain in self.eval(comp).items():
                    out.setdefault(tag, chain)
            return out
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = {}
            for elt in node.elts:
                for tag, chain in self.eval(elt).items():
                    out.setdefault(tag, chain)
            return out
        if isinstance(node, ast.Dict):
            out = {}
            for key in list(node.keys) + list(node.values):
                for tag, chain in self.eval(key).items():
                    out.setdefault(tag, chain)
            return out
        if isinstance(node, ast.Subscript):
            out = self.eval(node.value)
            for tag, chain in self.eval(node.slice).items():
                out.setdefault(tag, chain)
            return out
        if isinstance(node, ast.Slice):
            out = {}
            for part in (node.lower, node.upper, node.step):
                for tag, chain in self.eval(part).items():
                    out.setdefault(tag, chain)
            return out
        if isinstance(node, ast.IfExp):
            out = self.eval(node.test)
            for part in (node.body, node.orelse):
                for tag, chain in self.eval(part).items():
                    out.setdefault(tag, chain)
            return out
        if isinstance(node, ast.JoinedStr):
            out = {}
            for value in node.values:
                for tag, chain in self.eval(value).items():
                    out.setdefault(tag, chain)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp,
                             ast.DictComp)):
            return self.eval_comprehension(node)
        if isinstance(node, ast.Lambda):
            return {}
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.record_return(self.eval(node.value))
            return {}
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value)
            self.assign_target(node.target, taint)
            return taint
        return {}

    def eval_comprehension(self, node) -> TaintMap:
        out: TaintMap = {}
        for gen in node.generators:
            taint = self.eval(gen.iter)
            if self.is_set_expr(gen.iter) and \
                    not isinstance(node, ast.SetComp):
                # Set-to-set transforms cannot leak order; everything
                # else preserves the hash-ordered sequence.
                for tag, chain in self.set_order_tag(gen.iter).items():
                    taint.setdefault(tag, chain)
            self.assign_target(gen.target, taint)
            for cond in gen.ifs:
                self.eval(cond)
        parts = [getattr(node, "elt", None), getattr(node, "key", None),
                 getattr(node, "value", None)]
        for part in parts:
            if part is not None:
                for tag, chain in self.eval(part).items():
                    out.setdefault(tag, chain)
        return out

    # -- calls -----------------------------------------------------------------

    def eval_call(self, node: ast.Call) -> TaintMap:
        site = self.analysis.by_node.get(id(node))
        func = node.func

        # Named-lambda inlining: evaluate the body with args bound.
        if isinstance(func, ast.Name) and func.id in self.analysis.lambdas \
                and self._lambda_depth < 4:
            lam = self.analysis.lambdas[func.id]
            self._lambda_depth += 1
            saved = {}
            params = [a.arg for a in lam.args.args]
            for idx, param in enumerate(params):
                saved[param] = self.env.get(param)
                taint = self.eval(node.args[idx]) \
                    if idx < len(node.args) else {}
                self.env[param] = taint
            result = self.eval(lam.body)
            for param, old in saved.items():
                if old is None:
                    self.env.pop(param, None)
                else:
                    self.env[param] = old
            self._lambda_depth -= 1
            return result

        arg_taints = [self.eval(a) for a in node.args]
        kw_taints = {kw.arg: self.eval(kw.value) for kw in node.keywords}
        receiver: TaintMap = {}
        if isinstance(func, ast.Attribute):
            receiver = self.eval(func.value)

        external = site.external if site is not None else None

        # Sanitizers first: they terminate propagation.
        if external in SANITIZE_ALL:
            return {}
        if external in SANITIZE_ORDER:
            out = {}
            for taint in arg_taints + list(kw_taints.values()):
                for tag, chain in taint.items():
                    if tag.kind != SET_ORDER_KIND:
                        out.setdefault(tag, chain)
            return out

        result: TaintMap = {}

        # Sources.
        source = SOURCE_CALLS.get(external) if external else None
        if source is None and external and \
                external.startswith(SECRETS_PREFIX):
            source = ("entropy", f"{external}()")
        if source is not None and self._source_scope_ok():
            tag = Tag(source[0], source[1], self.info.rel, node.lineno)
            result.setdefault(tag, ())
        if external in ORDER_EXPOSING and len(node.args) == 1 and \
                self.is_set_expr(node.args[0]):
            for tag, chain in self.set_order_tag(node).items():
                result.setdefault(tag, chain)
        if isinstance(func, ast.Attribute) and func.attr == "pop" and \
                not node.args and self.is_set_expr(func.value):
            for tag, chain in self.set_order_tag(node).items():
                result.setdefault(tag, chain)

        # Sinks.
        self.check_sinks(node, site, arg_taints, kw_taints)

        # Resolved project targets: apply their summaries.
        applied = False
        if site is not None and site.targets:
            for target in site.targets:
                self.apply_summary(node, site, target, arg_taints,
                                   kw_taints, receiver, result)
            applied = True

        # Unresolved or external: conservative pass-through.
        if not applied and source is None:
            for taint in arg_taints + list(kw_taints.values()):
                for tag, chain in taint.items():
                    result.setdefault(tag, chain)
            for tag, chain in receiver.items():
                result.setdefault(tag, chain)

        # Mutation heuristic: lst.append(tainted) taints lst.
        if isinstance(func, ast.Attribute) and func.attr in MUTATORS:
            combined: TaintMap = {}
            for taint in arg_taints + list(kw_taints.values()):
                for tag, chain in taint.items():
                    combined.setdefault(tag, chain)
            if combined:
                self.assign_target(func.value, combined)

        return result

    def _arg_map(self, target_info: FunctionInfo, site_is_ctor: bool,
                 bound_receiver: Optional[TaintMap],
                 node: ast.Call, arg_taints: List[TaintMap],
                 kw_taints: Dict[Optional[str], TaintMap],
                 ) -> Dict[int, TaintMap]:
        """Map call arguments onto the callee's parameter indexes."""
        argmap: Dict[int, TaintMap] = {}
        offset = 0
        if target_info.is_method:
            offset = 1
            if bound_receiver is not None:
                argmap[0] = bound_receiver
        params = target_info.params
        for pos, taint in enumerate(arg_taints):
            idx = pos + offset
            if idx < len(params):
                argmap[idx] = taint
        for name, taint in kw_taints.items():
            if name is None:
                continue
            if name in params:
                argmap[params.index(name)] = taint
        _ = node
        return argmap

    def apply_summary(self, node: ast.Call, site, target: str,
                      arg_taints: List[TaintMap],
                      kw_taints: Dict[Optional[str], TaintMap],
                      receiver: TaintMap, result: TaintMap) -> None:
        summary = self.p.summaries.get(target)
        target_info = self.p.project.functions.get(target)
        if target_info is None:
            return
        frame = _frame(target, self.info.rel, node.lineno)
        bound = receiver if (target_info.is_method
                             and site.ctor is None) else None
        argmap = self._arg_map(target_info, site.ctor is not None, bound,
                               node, arg_taints, kw_taints)
        if summary is None:
            return
        # Returned taint.
        for tag, chain in summary.ret.items():
            result.setdefault(tag, chain + (frame,))
        for idx in summary.param_ret:
            for tag, chain in argmap.get(idx, {}).items():
                result.setdefault(tag, chain + (frame,))
        # Parameter-to-sink flows.
        for idx, hits in summary.param_sinks.items():
            taint = argmap.get(idx, {})
            for hit in hits.values():
                for tag, chain in taint.items():
                    if tag.kind == PARAM_KIND:
                        own = int(tag.label)
                        dst = self.summary.param_sinks.setdefault(own, {})
                        key = (hit.label, hit.rel, hit.line)
                        if key not in dst:
                            dst[key] = SinkHit(hit.label, hit.rel,
                                               hit.line,
                                               (frame,) + hit.suffix)
                            self._changed = True
                    else:
                        self.p.record_violation(
                            tag, hit.label, hit.rel, hit.line,
                            chain + (frame,) + hit.suffix)
        # Parameter-to-attribute flows.
        for idx, attrs in summary.param_attr_writes.items():
            taint = argmap.get(idx, {})
            if not taint:
                continue
            real = {t: c + (frame,) for t, c in taint.items()
                    if t.kind != PARAM_KIND}
            for key in sorted(attrs):
                if real:
                    self.p.merge_attr(key, real)
                for tag in taint:
                    if tag.kind == PARAM_KIND:
                        own = int(tag.label)
                        dst = self.summary.param_attr_writes.setdefault(
                            own, set())
                        if key not in dst:
                            dst.add(key)
                            self._changed = True

    # -- sinks -----------------------------------------------------------------

    def check_sinks(self, node: ast.Call, site,
                    arg_taints: List[TaintMap],
                    kw_taints: Dict[Optional[str], TaintMap]) -> None:
        if site is None:
            return
        config = self.p.config
        label: Optional[str] = None
        external = site.external
        if external in config.canonical_sinks:
            label = "canonical()"
        elif external in config.digest_sinks:
            label = "digest()"
        elif site.ctor is not None and self.p.is_message_ctor(site.ctor):
            label = f"wire message {site.ctor.rsplit('.', 1)[-1]}()"
        elif site.targets and not site.fallback:
            for target in site.targets:
                if target in config.canonical_sinks:
                    label = "canonical()"
                elif target in config.digest_sinks:
                    label = "digest()"
        if label is None:
            # Abstract-state mutation, gated on handler reachability.
            name = None
            if isinstance(node.func, ast.Attribute):
                name = node.func.attr
            dotted_hit = external in config.state_sinks or any(
                t in config.state_sinks for t in site.targets)
            name_hit = name in config.state_sink_names
            if (dotted_hit or name_hit) and \
                    self.p.handler_reachable(self.info.qualname):
                label = f"abstract-state write {name or external}()"
        if label is None:
            return
        sink_rel, sink_line = self.info.rel, node.lineno
        for taint in arg_taints + list(kw_taints.values()):
            for tag, chain in taint.items():
                if tag.kind == PARAM_KIND:
                    idx = int(tag.label)
                    dst = self.summary.param_sinks.setdefault(idx, {})
                    key = (label, sink_rel, sink_line)
                    if key not in dst:
                        dst[key] = SinkHit(label, sink_rel, sink_line, ())
                        self._changed = True
                else:
                    self.p.record_violation(tag, label, sink_rel,
                                            sink_line, chain)
