"""``run_deep()``: the DeepLint entry point.

Loads the whole-program model once, builds the call graph, runs the
taint fixpoint and the three conformance passes, and returns one sorted
finding list.  Reports are deterministic: the model iterates in sorted
order everywhere, so two runs over the same tree are byte-identical.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.deep.callgraph import build_callgraph
from repro.analysis.deep.conformance import (run_cost_pass,
                                             run_handler_pass,
                                             run_quorum_pass)
from repro.analysis.deep.project import Project, load_project
from repro.analysis.deep.taint import TaintPass, Violation
from repro.analysis.engine import Finding


def _short(qualname: str) -> str:
    """Last two dotted components: ``repro.bft.replica.Replica.on_x``
    -> ``Replica.on_x`` (stable, line-free — safe for fingerprints)."""
    return ".".join(qualname.split(".")[-2:])


def _taint_finding(violation: Violation) -> Finding:
    tag = violation.tag
    hops = [frame.split(" (")[0] for frame in violation.chain]
    via = " -> ".join(_short(h) for h in hops) if hops else "directly"
    message = (f"nondeterministic value ({tag.kind}: {tag.label}) "
               f"reaches {violation.sink_label} in {violation.sink_rel} "
               f"via {via}")
    chain: Tuple[str, ...] = (
        (f"source: {tag.label} at {tag.rel}:{tag.line}",)
        + violation.chain
        + (f"sink: {violation.sink_label} at "
           f"{violation.sink_rel}:{violation.sink_line}",))
    return Finding(tag.rel, tag.line, 0, "DEEP-TAINT", message,
                   chain=chain)


def _taint_suppressed(project: Project, violation: Violation) -> bool:
    """A taint path is suppressible at either end: the source line or
    the sink line (whichever reads better at the call site)."""
    for rel, line in ((violation.tag.rel, violation.tag.line),
                      (violation.sink_rel, violation.sink_line)):
        module = project.modules.get(rel)
        if module is not None and module.ctx.suppressed("DEEP-TAINT",
                                                        line):
            return True
    return False


def run_taint_pass(project: Project, graph) -> List[Finding]:
    taint = TaintPass(project, graph)
    taint.run()
    findings: List[Finding] = []
    for key in sorted(taint.violations):
        violation = taint.violations[key]
        if _taint_suppressed(project, violation):
            continue
        findings.append(_taint_finding(violation))
    return findings


def run_deep(roots: Sequence[Path],
             config: Optional[AnalysisConfig] = None,
             known_rule_ids: Sequence[str] = ()) -> List[Finding]:
    """Run every deep pass over the trees under ``roots``."""
    project = load_project(roots, config, known_rule_ids)
    graph = build_callgraph(project)
    findings: List[Finding] = []
    findings.extend(run_taint_pass(project, graph))
    findings.extend(run_handler_pass(project, graph))
    findings.extend(run_cost_pass(project, graph))
    findings.extend(run_quorum_pass(project, graph))
    return sorted(findings)
