"""Protocol-conformance passes over the whole-program call graph.

DEEP-HANDLER — every wire message class (subclass of the message root
with a ``kind`` class attribute) must have a ``handle_<kind>`` method
*somewhere* in the project; a ``handle_*`` method on a protocol node
whose suffix matches no registered kind is flagged too (it will never
be dispatched).

DEEP-COST — every ``handle_*`` method on a protocol-node subclass in
the cost-model scope must reach a ``CostModel`` charge (a ``.charge()``
call anywhere in its transitive callees): a handler that does work
without charging skews every performance result.

DEEP-QUORUM — quorum sizes must come from the ``BftConfig.quorum`` /
``weak_quorum`` helpers.  Re-deriving ``2f+1`` / ``f+1`` inline, or
comparing a vote-set size against a hardcoded integer, silently
diverges the moment the helper changes (e.g. for a different fault
budget).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.deep.callgraph import CallGraph
from repro.analysis.deep.project import Project
from repro.analysis.engine import Finding


def _suppressed(project: Project, rule_id: str, rel: str,
                line: int) -> bool:
    module = project.modules.get(rel)
    return module is not None and module.ctx.suppressed(rule_id, line)


# -- DEEP-HANDLER --------------------------------------------------------------

def run_handler_pass(project: Project, graph: CallGraph) -> List[Finding]:
    _ = graph
    config = project.config
    findings: List[Finding] = []
    messages = project.message_classes(config.message_root)
    kinds = {cls.kind for cls in messages}

    # Every handler name defined anywhere (any class: clients, edge
    # proxies, and replicas all legitimately terminate messages).
    handler_names: Set[str] = set()
    for name in project.methods_by_name:
        if name.startswith("handle_"):
            handler_names.add(name)

    for cls in messages:
        handler = f"handle_{cls.kind}"
        if handler in handler_names:
            continue
        if _suppressed(project, "DEEP-HANDLER", cls.rel, cls.lineno):
            continue
        findings.append(Finding(
            cls.rel, cls.lineno, cls.node.col_offset, "DEEP-HANDLER",
            f"wire message {cls.name} (kind={cls.kind!r}) has no "
            f"handle_{cls.kind} handler anywhere in the project"))

    # Orphan handlers on protocol nodes: dispatch will never reach them.
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        if info.cls is None or not info.name.startswith("handle_"):
            continue
        if not project.is_subclass(info.cls.qualname, config.node_root):
            continue
        kind = info.name[len("handle_"):]
        if kind in kinds or not kind:
            continue
        if _suppressed(project, "DEEP-HANDLER", info.rel, info.lineno):
            continue
        findings.append(Finding(
            info.rel, info.lineno, info.node.col_offset, "DEEP-HANDLER",
            f"handler {info.cls.name}.{info.name} matches no registered "
            f"message kind (dispatch will never call it)",
            severity="warning"))
    return findings


# -- DEEP-COST -----------------------------------------------------------------

def run_cost_pass(project: Project, graph: CallGraph) -> List[Finding]:
    config = project.config
    findings: List[Finding] = []
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        if info.cls is None or not info.name.startswith("handle_"):
            continue
        if not config.in_cost_scope(info.rel):
            continue
        if not project.is_subclass(info.cls.qualname, config.node_root):
            continue
        charges = False
        for callee in graph.reachable(qualname):
            analysis = graph.analysis(callee)
            if analysis is not None and analysis.calls_charge:
                charges = True
                break
        if charges:
            continue
        if _suppressed(project, "DEEP-COST", info.rel, info.lineno):
            continue
        findings.append(Finding(
            info.rel, info.lineno, info.node.col_offset, "DEEP-COST",
            f"message handler {info.cls.name}.{info.name} never charges "
            f"the CostModel (no .charge() call reachable from it)"))
    return findings


# -- DEEP-QUORUM ---------------------------------------------------------------

def _is_f_read(node: ast.AST) -> bool:
    """``x.f`` / ``self.config.f`` / bare ``f`` — a fault-budget read."""
    if isinstance(node, ast.Attribute) and node.attr == "f":
        return True
    return isinstance(node, ast.Name) and node.id == "f"


def _const_int(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    return None


def _is_scaled_f(node: ast.AST) -> bool:
    """``2 * f`` / ``f * 2`` / plain ``f`` (any scale counts)."""
    if _is_f_read(node):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        left_c, right_c = _const_int(node.left), _const_int(node.right)
        if left_c is not None and _is_f_read(node.right):
            return True
        if right_c is not None and _is_f_read(node.left):
            return True
    return False


def _quorum_arith(node: ast.BinOp) -> bool:
    """``<scaled f> + 1`` / ``1 + <scaled f>`` — an inline quorum size."""
    if not isinstance(node.op, ast.Add):
        return False
    if _const_int(node.right) == 1 and _is_scaled_f(node.left):
        return True
    if _const_int(node.left) == 1 and _is_scaled_f(node.right):
        return True
    return False


def _is_len_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "len")


def run_quorum_pass(project: Project, graph: CallGraph) -> List[Finding]:
    _ = graph
    config = project.config
    findings: List[Finding] = []
    for rel in sorted(project.modules):
        if not config.quorum_checked(rel):
            continue
        module = project.modules[rel]
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and _quorum_arith(node):
                if _suppressed(project, "DEEP-QUORUM", rel, node.lineno):
                    continue
                findings.append(Finding(
                    rel, node.lineno, node.col_offset, "DEEP-QUORUM",
                    "quorum size derived inline from f; use the "
                    "BftConfig.quorum / weak_quorum helpers"))
            elif isinstance(node, ast.Compare) and len(node.ops) == 1 \
                    and config.quorum_len_checked(rel):
                op = node.ops[0]
                left, right = node.left, node.comparators[0]
                hit = None
                if isinstance(op, (ast.GtE, ast.Gt)) and \
                        _is_len_call(left):
                    hit = _const_int(right)
                elif isinstance(op, (ast.LtE, ast.Lt)) and \
                        _is_len_call(right):
                    hit = _const_int(left)
                if hit is None or hit < 2:
                    continue
                if _suppressed(project, "DEEP-QUORUM", rel, node.lineno):
                    continue
                findings.append(Finding(
                    rel, node.lineno, node.col_offset, "DEEP-QUORUM",
                    f"vote count compared against hardcoded threshold "
                    f"{hit}; use the BftConfig.quorum / weak_quorum "
                    f"helpers"))
    return findings
