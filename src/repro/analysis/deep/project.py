"""Whole-program model for the deep passes.

Parses every file under the scan roots once and builds the symbol
tables the interprocedural passes resolve against:

- per-module import/alias tables (``import x as y``, ``from m import f``,
  relative imports resolved against the module's dotted name);
- every function, method, nested function, and named lambda, keyed by a
  dotted qualname (``repro.bft.replica.Replica.handle_request``);
- every class with its resolved base-class names, ``kind`` class
  attribute (wire messages), and inferred ``self.x = Cls(...)``
  attribute types;
- the subclass map and a deterministic MRO walk over locally-defined
  classes.

Everything is keyed and iterated in sorted order: the passes built on
this model must produce byte-identical reports across runs.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.deep.catalog import DEEP_RULE_IDS
from repro.analysis.engine import FileContext, relativize

#: Builtins the resolver names explicitly (sources, sanitizers, and the
#: handful of constructors the set-inference cares about).
BUILTIN_NAMES = frozenset({
    "hash", "id", "sorted", "set", "frozenset", "list", "tuple", "dict",
    "len", "min", "max", "sum", "iter", "bool", "str", "int", "float",
    "bytes", "bytearray", "isinstance", "issubclass", "type", "range",
    "enumerate", "zip", "map", "filter", "reversed", "abs", "round",
    "any", "all", "repr", "getattr", "setattr", "hasattr", "next",
    "divmod", "pow", "ord", "chr", "super", "print", "vars", "callable",
})

#: Methods of builtin containers/strings: attribute calls with these
#: names never fall back to same-named project methods — ``d.get(k)``
#: must not grow edges to every class that happens to define ``get``.
BUILTIN_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "index",
    "count", "sort", "reverse", "copy", "get", "items", "keys", "values",
    "setdefault", "update", "popitem", "add", "discard", "union",
    "intersection", "difference", "issubset", "issuperset", "join",
    "split", "rsplit", "strip", "lstrip", "rstrip", "startswith",
    "endswith", "format", "encode", "decode", "replace", "find", "rfind",
    "lower", "upper", "hex", "to_bytes", "from_bytes", "bit_length",
    "popleft", "appendleft", "most_common", "splitlines", "partition",
    "ljust", "rjust", "zfill", "title", "casefold", "isdigit",
})


class FunctionInfo:
    """One function, method, nested def, or named lambda."""

    __slots__ = ("qualname", "name", "rel", "node", "module", "cls",
                 "params", "kwonly", "is_op", "lineno")

    def __init__(self, qualname: str, name: str, node: ast.AST,
                 module: "ModuleInfo", cls: Optional["ClassInfo"],
                 is_op: bool):
        self.qualname = qualname
        self.name = name
        self.rel = module.rel
        self.node = node
        self.module = module
        self.cls = cls
        args = node.args
        self.params: Tuple[str, ...] = tuple(
            a.arg for a in list(getattr(args, "posonlyargs", [])) + args.args)
        self.kwonly: Tuple[str, ...] = tuple(a.arg for a in args.kwonlyargs)
        self.is_op = is_op
        self.lineno = getattr(node, "lineno", 1)

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname})"


class ClassInfo:
    """One class definition with resolved bases and inferred attr types."""

    __slots__ = ("qualname", "name", "rel", "node", "module", "bases",
                 "methods", "kind", "attr_class_types", "lineno")

    def __init__(self, qualname: str, name: str, node: ast.ClassDef,
                 module: "ModuleInfo"):
        self.qualname = qualname
        self.name = name
        self.rel = module.rel
        self.node = node
        self.module = module
        self.bases: Tuple[str, ...] = ()        # resolved after load
        self.methods: Dict[str, FunctionInfo] = {}
        self.kind: Optional[str] = None         # `kind = "..."` class attr
        #: self.attr -> sorted tuple of class dotted names ever assigned
        #: via ``self.attr = Cls(...)`` in any method of this class.
        self.attr_class_types: Dict[str, Tuple[str, ...]] = {}
        self.lineno = node.lineno

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClassInfo({self.qualname})"


class ModuleInfo:
    """One parsed source file and its module-scope symbol table."""

    __slots__ = ("rel", "modname", "path", "tree", "source", "imports",
                 "functions", "classes", "assigns", "ctx")

    def __init__(self, rel: str, modname: str, path: Path, tree: ast.Module,
                 source: str, ctx: FileContext):
        self.rel = rel
        self.modname = modname
        self.path = path
        self.tree = tree
        self.source = source
        self.imports: Dict[str, str] = {}     # local name -> dotted origin
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.assigns: Dict[str, str] = {}     # NAME = <resolvable alias>
        self.ctx = ctx


class Project:
    """All modules plus the cross-module indexes the passes query."""

    def __init__(self, config: AnalysisConfig):
        self.config = config
        self.modules: Dict[str, ModuleInfo] = {}        # by rel
        self.by_modname: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}    # by qualname
        self.classes: Dict[str, ClassInfo] = {}         # by qualname
        #: method name -> sorted tuple of method qualnames (fallback
        #: resolution for dynamic attribute calls).
        self.methods_by_name: Dict[str, Tuple[str, ...]] = {}
        #: base dotted name -> sorted tuple of direct subclass qualnames.
        self.subclasses: Dict[str, Tuple[str, ...]] = {}

    # -- name resolution -------------------------------------------------------

    def resolve_name(self, module: ModuleInfo, name: str) -> Optional[str]:
        """Module-scope resolution of a bare name to a dotted origin."""
        if name in module.classes:
            return module.classes[name].qualname
        if name in module.functions:
            return module.functions[name].qualname
        if name in module.imports:
            return module.imports[name]
        if name in module.assigns:
            return module.assigns[name]
        if name in BUILTIN_NAMES:
            return "builtins." + name
        return None

    def resolve_dotted(self, module: ModuleInfo,
                       node: ast.AST) -> Optional[str]:
        """``a.b.c`` expression -> dotted origin, module scope only."""
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        base = self.resolve_name(module, cur.id)
        if base is None:
            return None
        parts.reverse()
        return self.normalize(".".join([base] + parts))

    def normalize(self, dotted: str) -> str:
        """Rebase a dotted path through module aliases onto a definition
        qualname when one exists (``pkg.mod.Cls`` -> the real ClassInfo
        key even if reached through ``import pkg.mod as m``)."""
        if dotted in self.classes or dotted in self.functions:
            return dotted
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            module = self.by_modname.get(prefix)
            if module is None:
                continue
            tail = parts[cut:]
            resolved = self.resolve_name(module, tail[0])
            if resolved is None:
                return dotted
            return self.normalize(".".join([resolved] + tail[1:]))
        return dotted

    # -- class hierarchy -------------------------------------------------------

    def mro(self, qualname: str) -> List[ClassInfo]:
        """Deterministic left-to-right DFS linearization over project
        classes (close enough to C3 for analysis purposes)."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()

        def walk(q: str) -> None:
            cls = self.classes.get(q)
            if cls is None or q in seen:
                return
            seen.add(q)
            out.append(cls)
            for base in cls.bases:
                walk(base)

        walk(qualname)
        return out

    def is_subclass(self, qualname: str, root: str) -> bool:
        """True if ``qualname`` derives (transitively) from ``root`` —
        matching either a project class or an external dotted name."""
        if qualname == root:
            return True
        seen: Set[str] = set()
        stack = [qualname]
        while stack:
            q = stack.pop()
            if q in seen:
                continue
            seen.add(q)
            cls = self.classes.get(q)
            if cls is None:
                continue
            for base in cls.bases:
                if base == root:
                    return True
                stack.append(base)
        return False

    def family(self, qualname: str) -> List[str]:
        """Ancestors and descendants of a class, sorted — the set of
        classes an instance statically typed ``qualname`` might be."""
        out: Set[str] = {c.qualname for c in self.mro(qualname)}
        stack = [qualname]
        while stack:
            q = stack.pop()
            for sub in self.subclasses.get(q, ()):
                if sub not in out:
                    out.add(sub)
                    stack.append(sub)
        return sorted(out)

    def find_methods(self, cls_qualname: str, name: str,
                     skip_own: bool = False) -> List[FunctionInfo]:
        """All definitions of method ``name`` an instance statically
        typed ``cls_qualname`` might dispatch to (MRO plus overrides in
        descendants — conservative).  ``skip_own`` starts the MRO walk
        past the class itself (``super().name(...)`` resolution)."""
        found: Dict[str, FunctionInfo] = {}
        if skip_own:
            for cls in self.mro(cls_qualname)[1:]:
                if name in cls.methods:
                    return [cls.methods[name]]
            return []
        for q in self.family(cls_qualname):
            cls = self.classes.get(q)
            if cls is not None and name in cls.methods:
                found[cls.methods[name].qualname] = cls.methods[name]
        return [found[k] for k in sorted(found)]

    def message_classes(self, root: str) -> List[ClassInfo]:
        """Wire message classes: strict subclasses of ``root`` that
        declare a ``kind`` class attribute."""
        out = []
        for q in sorted(self.classes):
            cls = self.classes[q]
            if q != root and cls.kind is not None \
                    and self.is_subclass(q, root):
                out.append(cls)
        return out


def _modname_for(rel: str, under_repro: bool) -> str:
    dotted = rel[:-3].replace("/", ".") if rel.endswith(".py") else \
        rel.replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    elif dotted == "__init__":
        dotted = ""
    if under_repro:
        return ("repro." + dotted) if dotted else "repro"
    return dotted


def _decorator_is_op(dec: ast.AST) -> bool:
    """True for ``@op`` / ``@op(...)`` / ``@kernel.op(...)`` — the
    service kernel's dispatch registration."""
    target = dec.func if isinstance(dec, ast.Call) else dec
    if isinstance(target, ast.Name):
        return target.id == "op"
    if isinstance(target, ast.Attribute):
        return target.attr == "op"
    return False


def load_project(roots: Sequence[Path],
                 config: Optional[AnalysisConfig] = None,
                 known_rule_ids: Sequence[str] = ()) -> Project:
    """Parse every ``*.py`` under ``roots`` into a :class:`Project`.

    ``known_rule_ids`` extends the suppression vocabulary of the
    per-file contexts (the deep rule ids are always included)."""
    config = config or AnalysisConfig()
    project = Project(config)
    known = sorted(set(known_rule_ids) | set(DEEP_RULE_IDS))

    files: List[Tuple[str, Path, bool]] = []
    for root in sorted(Path(r) for r in roots):
        paths = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in paths:
            rel = relativize(path, root)
            under = "repro" in path.resolve().parts
            files.append((rel, path, under))
    files.sort()

    for rel, path, under in files:
        if rel in project.modules:
            continue
        source = path.read_text(encoding="utf-8")
        ctx = FileContext(rel, source, config, known)
        try:
            tree = ast.parse(source, filename=rel)
        except SyntaxError:
            continue  # the file-level engine reports PL-SYNTAX
        ctx.tree = tree
        module = ModuleInfo(rel, _modname_for(rel, under), path, tree,
                            source, ctx)
        project.modules[rel] = module
        project.by_modname[module.modname] = module

    for rel in sorted(project.modules):
        _scan_module(project, project.modules[rel])
    for rel in sorted(project.modules):
        _resolve_module(project, project.modules[rel])
    _index_hierarchy(project)
    for rel in sorted(project.modules):
        _infer_attr_types(project, project.modules[rel])
    return project


# -- load passes ---------------------------------------------------------------

def _scan_module(project: Project, module: ModuleInfo) -> None:
    """Pass 1: imports plus every def/class, including nested ones."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    module.imports[alias.asname] = alias.name
                else:
                    first = alias.name.split(".", 1)[0]
                    module.imports.setdefault(first, first)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = module.modname.split(".")
                anchor = parts[: len(parts) - node.level] \
                    if len(parts) >= node.level else []
                base = ".".join(anchor + ([node.module]
                                          if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                origin = f"{base}.{alias.name}" if base else alias.name
                module.imports[alias.asname or alias.name] = origin

    def register_function(node, qualname: str, cls: Optional[ClassInfo],
                          top_level: bool) -> FunctionInfo:
        is_op = any(_decorator_is_op(d) for d in node.decorator_list)
        info = FunctionInfo(qualname, node.name, node, module, cls, is_op)
        project.functions[info.qualname] = info
        if cls is not None:
            cls.methods.setdefault(node.name, info)
        elif top_level:
            module.functions.setdefault(node.name, info)
        walk_body(node.body, qualname, None)
        return info

    def register_class(node: ast.ClassDef, qualname: str,
                       top_level: bool) -> None:
        cls = ClassInfo(qualname, node.name, node, module)
        project.classes[qualname] = cls
        if top_level:
            module.classes.setdefault(node.name, cls)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                register_function(stmt, f"{qualname}.{stmt.name}", cls,
                                  False)
            elif isinstance(stmt, ast.ClassDef):
                register_class(stmt, f"{qualname}.{stmt.name}", False)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                if name == "kind" and isinstance(stmt.value, ast.Constant) \
                        and isinstance(stmt.value.value, str):
                    cls.kind = stmt.value.value

    def walk_body(body, prefix: str, cls: Optional[ClassInfo]) -> None:
        """Register nested defs/classes under ``prefix`` (no dispatch
        semantics — just graph nodes reachable from the enclosing
        function's body analysis)."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                register_function(stmt, f"{prefix}.{stmt.name}", None,
                                  False)
            elif isinstance(stmt, ast.ClassDef):
                register_class(stmt, f"{prefix}.{stmt.name}", False)
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, (ast.stmt,)):
                        walk_body([child], prefix, cls)

    for stmt in module.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            register_function(stmt, f"{module.modname}.{stmt.name}", None,
                              True)
        elif isinstance(stmt, ast.ClassDef):
            register_class(stmt, f"{module.modname}.{stmt.name}", True)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, (ast.Name, ast.Attribute)):
            # Module-level alias: CANON = canonical  /  Msg = messages.Req
            target = stmt.targets[0].id
            module.assigns[target] = ast.unparse(stmt.value)

    # Second pass over aliases now that local defs are known.
    for name in sorted(module.assigns):
        expr = module.assigns[name]
        parts = expr.split(".")
        base = project.resolve_name(module, parts[0]) \
            if parts[0] not in module.assigns else None
        if base is None:
            del module.assigns[name]
        else:
            module.assigns[name] = ".".join([base] + parts[1:])


def _resolve_module(project: Project, module: ModuleInfo) -> None:
    """Pass 2: resolve class bases (needs every module's pass 1)."""
    for name in sorted(module.classes):
        cls = module.classes[name]
        bases = []
        for base in cls.node.bases:
            dotted = project.resolve_dotted(module, base)
            if dotted is not None:
                bases.append(dotted)
        cls.bases = tuple(bases)
    # Nested classes got qualnames but not module.classes entries;
    # resolve their bases too.
    for qualname in sorted(project.classes):
        cls = project.classes[qualname]
        if cls.module is module and not cls.bases and cls.node.bases:
            bases = []
            for base in cls.node.bases:
                dotted = project.resolve_dotted(module, base)
                if dotted is not None:
                    bases.append(dotted)
            cls.bases = tuple(bases)


def _index_hierarchy(project: Project) -> None:
    subs: Dict[str, Set[str]] = {}
    for qualname in sorted(project.classes):
        for base in project.classes[qualname].bases:
            subs.setdefault(base, set()).add(qualname)
    project.subclasses = {base: tuple(sorted(qs))
                          for base, qs in sorted(subs.items())}
    methods: Dict[str, Set[str]] = {}
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        if info.cls is not None:
            methods.setdefault(info.name, set()).add(qualname)
    project.methods_by_name = {name: tuple(sorted(qs))
                               for name, qs in sorted(methods.items())}


def _infer_attr_types(project: Project, module: ModuleInfo) -> None:
    """Pass 3: ``self.x = Cls(...)`` attribute-type inference."""
    for qualname in sorted(project.classes):
        cls = project.classes[qualname]
        if cls.module is not module:
            continue
        types: Dict[str, Set[str]] = {}
        for mname in sorted(cls.methods):
            for node in ast.walk(cls.methods[mname].node):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if not (isinstance(value, ast.Call)
                        and isinstance(value.func,
                                       (ast.Name, ast.Attribute))):
                    continue
                dotted = project.resolve_dotted(module, value.func)
                if dotted is None or dotted not in project.classes:
                    if dotted is None or "." not in dotted:
                        continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        types.setdefault(target.attr, set()).add(dotted)
        cls.attr_class_types = {attr: tuple(sorted(vals))
                                for attr, vals in sorted(types.items())}
