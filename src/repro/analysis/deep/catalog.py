"""DeepLint rule catalog: ids, severities, and documentation strings.

Kept dependency-free (stdlib only) so that :mod:`repro.analysis.engine`
can import the rule ids — the file-level engine must recognize
``# protolint: disable=DEEP-TAINT reason`` comments as naming known
rules — without creating an import cycle with the deep passes, which
themselves build on the engine's Finding/FileContext machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class DeepRuleInfo:
    """Catalog entry for one whole-program rule (no visit() — deep rules
    are passes over the project, not per-node callbacks)."""

    rule_id: str
    severity: str
    title: str
    rationale: str
    example: str


DEEP_RULES: Tuple[DeepRuleInfo, ...] = (
    DeepRuleInfo(
        rule_id="DEEP-TAINT",
        severity="error",
        title="No nondeterministic value may reach a replicated sink",
        rationale=(
            "Replicas are deterministic state machines behind the "
            "abstraction function; a wall-clock read, unseeded RNG draw, "
            "hash()/id() value, or set-iteration-order value that flows — "
            "through any number of helper calls — into canonical "
            "encoding, a wire message, a digest, or abstract state breaks "
            "agreement silently.  The intraprocedural DET-*/RPL-* rules "
            "see only the call site; this pass follows the value."),
        example=("def _stamp():\n"
                 "    return time.time()          # laundered source\n"
                 "...\n"
                 "canonical((op, _stamp()))       # sink, two calls away"),
    ),
    DeepRuleInfo(
        rule_id="DEEP-HANDLER",
        severity="error",
        title="Every wire message kind has a handler",
        rationale=(
            "sim.Node dispatches a message to ``handle_<kind>`` on the "
            "receiving node; a Message subclass whose kind no class "
            "handles is silently dropped on delivery (and a handler for "
            "a kind no message declares is dead protocol surface)."),
        example=("class Probe(Message):\n"
                 "    kind = 'probe'   # no handle_probe anywhere"),
    ),
    DeepRuleInfo(
        rule_id="DEEP-COST",
        severity="error",
        title="Every protocol handler charges the CostModel",
        rationale=(
            "Benchmark numbers are only honest if every message handler "
            "charges simulated CPU for the work it models — directly or "
            "through a callee.  A handler whose whole call tree never "
            "reaches ``charge()`` executes for free and skews every "
            "req/s figure derived from the cost model."),
        example=("def handle_probe(self, src, msg):\n"
                 "    self.table[msg.key] = msg.value   # no charge()"),
    ),
    DeepRuleInfo(
        rule_id="DEEP-QUORUM",
        severity="error",
        title="Quorum sizes come from the config helpers",
        rationale=(
            "Certificate arithmetic written inline (``2 * f + 1``, "
            "``f + 1``, or a bare literal compared against a vote count) "
            "silently diverges from the group configuration when n or f "
            "changes — the helpers ``config.quorum`` and "
            "``config.weak_quorum`` are the single source of truth."),
        example="if len(votes) >= 2 * self.config.f + 1:  # use .quorum",
    ),
)

DEEP_RULE_IDS: Tuple[str, ...] = tuple(r.rule_id for r in DEEP_RULES)

DEEP_RULES_BY_ID = {r.rule_id: r for r in DEEP_RULES}
