"""DeepLint: interprocedural dataflow and protocol-conformance analysis.

Whole-program companions to the per-file ProtoLint rules:

- :mod:`repro.analysis.deep.project`   — parsed-module model + resolver
- :mod:`repro.analysis.deep.callgraph` — project-wide call graph
- :mod:`repro.analysis.deep.taint`     — nondeterminism-taint fixpoint
- :mod:`repro.analysis.deep.conformance` — handler/cost/quorum passes
- :mod:`repro.analysis.deep.driver`    — ``run_deep()`` entry point

Only the catalog is re-exported here: the engine imports
``repro.analysis.deep.catalog`` for the rule ids, so this package
``__init__`` must not import the passes (they import the engine).
"""

from repro.analysis.deep.catalog import (DEEP_RULE_IDS, DEEP_RULES,
                                         DEEP_RULES_BY_ID, DeepRuleInfo)

__all__ = ["DEEP_RULE_IDS", "DEEP_RULES", "DEEP_RULES_BY_ID",
           "DeepRuleInfo"]
