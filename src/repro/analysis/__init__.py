"""ProtoLint: protocol-aware static analysis for the BASE reproduction.

The repo's correctness story rests on coding invariants the test suite
cannot see at runtime: no unseeded randomness, no wall-clock reads, no
hash-ordered iteration feeding replicated state, only canonical types on
the wire.  This package enforces them mechanically — an AST rule engine
(:mod:`repro.analysis.engine`), a rule library
(:mod:`repro.analysis.rules`), inline suppressions that require a
reason, committed baselines for grandfathered findings
(:mod:`repro.analysis.baseline`), and schema-validated JSON reports
(:mod:`repro.analysis.report`).  ``python -m repro.analysis`` is the CLI
and the CI gate.  See docs/ANALYSIS.md for the rule catalog.
"""

from repro.analysis.config import EVERYWHERE, AnalysisConfig
from repro.analysis.engine import (SUPPRESS_RULE_ID, Engine, FileContext,
                                   Finding, Rule)
from repro.analysis.rules import (DETERMINISM_RULE_IDS, all_rules,
                                  rules_by_id, select_rules)

__all__ = [
    "AnalysisConfig", "DETERMINISM_RULE_IDS", "EVERYWHERE", "Engine",
    "FileContext", "Finding", "Rule", "SUPPRESS_RULE_ID", "all_rules",
    "rules_by_id", "select_rules",
]
