"""ProtoLint command line.

    python -m repro.analysis [PATH ...] [--format text|json] [--out FILE]
                             [--rules DET-RNG,RPL-SETITER,...]
                             [--baseline FILE] [--write-baseline]
                             [--prune-baseline] [--deep]
                             [--changed-since REF] [--list-rules]

Checks every ``*.py`` under the given paths (default: ``src/repro``)
against the registered rule set and exits nonzero if any non-baselined
finding remains — that is the whole contract of the ``protolint`` CI
job.  ``--format json`` emits the schema-validated report document on
stdout; ``--out`` writes it to a file in either format mode.

``--deep`` additionally runs the interprocedural DeepLint passes
(call-graph taint + protocol conformance) over the *whole* tree; their
findings join the report and are baselined/suppressed through the same
machinery.  ``--changed-since REF`` restricts the per-file rules to
files changed since the git ref — the deep passes stay whole-program,
because a call-graph property can regress through an unchanged file.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Set

from repro.analysis import baseline as baselinelib
from repro.analysis import report as reportlib
from repro.analysis.deep.catalog import DEEP_RULES
from repro.analysis.engine import Engine, relativize
from repro.analysis.rules import all_rules, select_rules


def _resolve_roots(paths):
    if paths:
        roots = [Path(p) for p in paths]
    else:
        default = Path("src") / "repro"
        if not default.is_dir():
            print("protolint: no paths given and ./src/repro does not "
                  "exist; pass the tree to check", file=sys.stderr)
            raise SystemExit(2)
        roots = [default]
    for root in roots:
        if not root.exists():
            print(f"protolint: no such path: {root}", file=sys.stderr)
            raise SystemExit(2)
    return roots


def _print_rules() -> int:
    for rule in all_rules():
        print(f"{rule.rule_id:12s} [{rule.severity}] {rule.title}")
        print(f"    {rule.rationale}")
    for info in DEEP_RULES:
        print(f"{info.rule_id:12s} [{info.severity}] {info.title} "
              f"(--deep)")
        print(f"    {info.rationale}")
    return 0


def _changed_files(ref: str) -> Optional[Set[Path]]:
    """Files changed since ``ref``: committed diffs plus untracked
    files, as resolved absolute paths.  None on git failure."""
    changed: Set[Path] = set()
    for cmd in (["git", "diff", "--name-only", ref, "--"],
                ["git", "ls-files", "--others", "--exclude-standard"]):
        try:
            out = subprocess.run(cmd, capture_output=True, text=True,
                                 check=True)
        except (OSError, subprocess.CalledProcessError) as err:
            detail = getattr(err, "stderr", "") or str(err)
            print(f"protolint: --changed-since: {' '.join(cmd)} failed: "
                  f"{detail.strip()}", file=sys.stderr)
            return None
        for line in out.stdout.splitlines():
            if line.strip():
                changed.add(Path(line.strip()).resolve())
    return changed


def _collect_findings(engine: Engine, roots: List[Path],
                      changed: Optional[Set[Path]]):
    findings = []
    for root in roots:
        paths = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in paths:
            if changed is not None and path.resolve() not in changed:
                continue
            findings.extend(engine.check_file(path,
                                              relativize(path, root)))
    return findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="ProtoLint: protocol-aware static analysis for the "
                    "BASE reproduction.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to check "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="stdout format (default text)")
    parser.add_argument("--out", metavar="FILE",
                        help="also write the schema-validated JSON report "
                             "here")
    parser.add_argument("--rules", metavar="IDS",
                        help="comma-separated rule ids to enable "
                             "(default: all)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="baseline file of grandfathered findings")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write all current findings to --baseline "
                             "and exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="drop baseline entries that no longer fire, "
                             "rewriting --baseline in place")
    parser.add_argument("--deep", action="store_true",
                        help="also run the interprocedural DeepLint "
                             "passes (whole-program taint + conformance)")
    parser.add_argument("--changed-since", metavar="REF",
                        help="restrict per-file rules to files changed "
                             "since this git ref (deep passes stay "
                             "whole-program)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        return _print_rules()

    if args.write_baseline and not args.baseline:
        parser.error("--write-baseline requires --baseline")
    if args.prune_baseline and not args.baseline:
        parser.error("--prune-baseline requires --baseline")

    try:
        rules = select_rules(args.rules.split(",")) if args.rules \
            else all_rules()
    except ValueError as err:
        parser.error(str(err))

    changed: Optional[Set[Path]] = None
    if args.changed_since:
        changed = _changed_files(args.changed_since)
        if changed is None:
            return 2

    roots = _resolve_roots(args.paths)
    engine = Engine(rules)
    findings = _collect_findings(engine, roots, changed)
    rule_ids = list(engine.rule_ids)

    if args.deep:
        # Imported lazily: the deep passes import the engine, and most
        # invocations never need them.
        from repro.analysis.deep.catalog import DEEP_RULE_IDS
        from repro.analysis.deep.driver import run_deep
        findings.extend(run_deep(roots, engine.config,
                                 known_rule_ids=engine.rule_ids))
        rule_ids.extend(DEEP_RULE_IDS)
    findings.sort()

    if args.write_baseline:
        baselinelib.dump([f.fingerprint for f in findings],
                         Path(args.baseline))
        print(f"baseline with {len(findings)} finding(s) written to "
              f"{args.baseline}")
        return 0

    fingerprints = []
    if args.baseline and Path(args.baseline).exists():
        try:
            fingerprints = baselinelib.load(Path(args.baseline))
        except ValueError as err:
            print(f"protolint: {err}", file=sys.stderr)
            return 2

    if args.prune_baseline:
        removed = baselinelib.prune(Path(args.baseline), findings)
        for fingerprint in removed:
            print(f"pruned stale baseline entry: {fingerprint}")
        fingerprints = [fp for fp in fingerprints if fp not in
                        set(removed)]

    diff = baselinelib.apply(findings, fingerprints)
    doc = reportlib.build(diff, rule_ids, roots)

    if args.out:
        reportlib.dump(doc, Path(args.out))

    if args.fmt == "json":
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        for finding in diff.new:
            print(finding.render())
            for hop in finding.chain:
                print(f"    {hop}")
        for fingerprint in diff.stale:
            print(f"warning: stale baseline entry (no longer fires): "
                  f"{fingerprint}")
        counts = doc["counts"]
        checked = ", ".join(str(r) for r in roots)
        print(f"protolint: {len(rule_ids)} rules over {checked}: "
              f"{counts['errors']} error(s), {counts['warnings']} "
              f"warning(s), {counts['baselined']} baselined, "
              f"{counts['stale_baseline']} stale baseline entr"
              f"{'y' if counts['stale_baseline'] == 1 else 'ies'}")
    return 0 if doc["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
