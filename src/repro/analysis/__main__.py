"""ProtoLint command line.

    python -m repro.analysis [PATH ...] [--format text|json] [--out FILE]
                             [--rules DET-RNG,RPL-SETITER,...]
                             [--baseline FILE] [--write-baseline]
                             [--list-rules]

Checks every ``*.py`` under the given paths (default: ``src/repro``)
against the registered rule set and exits nonzero if any non-baselined
finding remains — that is the whole contract of the ``protolint`` CI
job.  ``--format json`` emits the schema-validated report document on
stdout; ``--out`` writes it to a file in either format mode.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import baseline as baselinelib
from repro.analysis import report as reportlib
from repro.analysis.engine import Engine
from repro.analysis.rules import all_rules, select_rules


def _resolve_roots(paths):
    if paths:
        roots = [Path(p) for p in paths]
    else:
        default = Path("src") / "repro"
        if not default.is_dir():
            print("protolint: no paths given and ./src/repro does not "
                  "exist; pass the tree to check", file=sys.stderr)
            raise SystemExit(2)
        roots = [default]
    for root in roots:
        if not root.exists():
            print(f"protolint: no such path: {root}", file=sys.stderr)
            raise SystemExit(2)
    return roots


def _print_rules() -> int:
    for rule in all_rules():
        print(f"{rule.rule_id:12s} [{rule.severity}] {rule.title}")
        print(f"    {rule.rationale}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="ProtoLint: protocol-aware static analysis for the "
                    "BASE reproduction.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to check "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="stdout format (default text)")
    parser.add_argument("--out", metavar="FILE",
                        help="also write the schema-validated JSON report "
                             "here")
    parser.add_argument("--rules", metavar="IDS",
                        help="comma-separated rule ids to enable "
                             "(default: all)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="baseline file of grandfathered findings")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write all current findings to --baseline "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        return _print_rules()

    if args.write_baseline and not args.baseline:
        parser.error("--write-baseline requires --baseline")

    try:
        rules = select_rules(args.rules.split(",")) if args.rules \
            else all_rules()
    except ValueError as err:
        parser.error(str(err))

    roots = _resolve_roots(args.paths)
    engine = Engine(rules)
    findings = []
    for root in roots:
        findings.extend(engine.run(root))
    findings.sort()

    if args.write_baseline:
        baselinelib.dump([f.fingerprint for f in findings],
                         Path(args.baseline))
        print(f"baseline with {len(findings)} finding(s) written to "
              f"{args.baseline}")
        return 0

    fingerprints = []
    if args.baseline and Path(args.baseline).exists():
        try:
            fingerprints = baselinelib.load(Path(args.baseline))
        except ValueError as err:
            print(f"protolint: {err}", file=sys.stderr)
            return 2
    diff = baselinelib.apply(findings, fingerprints)
    doc = reportlib.build(diff, engine.rule_ids, roots)

    if args.out:
        reportlib.dump(doc, Path(args.out))

    if args.fmt == "json":
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        for finding in diff.new:
            print(finding.render())
        for fingerprint in diff.stale:
            print(f"warning: stale baseline entry (no longer fires): "
                  f"{fingerprint}")
        counts = doc["counts"]
        checked = ", ".join(str(r) for r in roots)
        print(f"protolint: {len(engine.rule_ids)} rules over {checked}: "
              f"{counts['errors']} error(s), {counts['warnings']} "
              f"warning(s), {counts['baselined']} baselined, "
              f"{counts['stale_baseline']} stale baseline entr"
              f"{'y' if counts['stale_baseline'] == 1 else 'ies'}")
    return 0 if doc["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
