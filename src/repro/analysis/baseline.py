"""Baseline files: grandfathered findings that do not fail the build.

A baseline is a committed JSON document listing finding *fingerprints*
(``RULE:path:message`` — no line numbers, so unrelated edits do not
churn it).  Semantics:

- a current finding whose fingerprint is in the baseline is filtered
  out (reported only as a count);
- a current finding not in the baseline fails the run;
- a baseline entry matching no current finding is *stale* and produces
  a warning, so the file shrinks as debt is paid down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Sequence, Tuple

from repro.analysis.engine import Finding

BASELINE_KIND = "protolint_baseline"
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BaselineDiff:
    """Outcome of applying a baseline to a finding list."""

    new: Tuple[Finding, ...]        # not in the baseline: these fail
    baselined: Tuple[Finding, ...]  # grandfathered: pass, counted
    stale: Tuple[str, ...]          # baseline entries matching nothing


def load(path: Path) -> List[str]:
    """Load and validate a baseline file; returns its fingerprints."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as err:
        raise ValueError(f"{path}: not valid JSON ({err})") from err
    if not isinstance(doc, dict) or doc.get("kind") != BASELINE_KIND:
        raise ValueError(f"{path}: kind must be {BASELINE_KIND!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported schema_version "
                         f"{doc.get('schema_version')!r}")
    entries = doc.get("findings")
    if not isinstance(entries, list) or \
            not all(isinstance(e, str) and e.count(":") >= 2
                    for e in entries):
        raise ValueError(f"{path}: findings must be a list of "
                         f"'RULE:path:message' strings")
    return sorted(set(entries))


def dump(fingerprints: Sequence[str], path: Path) -> None:
    doc = {
        "kind": BASELINE_KIND,
        "schema_version": SCHEMA_VERSION,
        "findings": sorted(set(fingerprints)),
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def prune(path: Path, findings: Sequence[Finding]) -> List[str]:
    """Drop baseline entries matching no current finding; returns the
    removed fingerprints.  Idempotent: pruning a pruned file removes
    nothing.  A missing baseline file is a no-op."""
    if not path.exists():
        return []
    fingerprints = load(path)
    current = {f.fingerprint for f in findings}
    kept = [fp for fp in fingerprints if fp in current]
    removed = [fp for fp in fingerprints if fp not in current]
    if removed:
        dump(kept, path)
    return removed


def apply(findings: Sequence[Finding],
          fingerprints: Sequence[str]) -> BaselineDiff:
    """Split ``findings`` into new vs grandfathered; detect stale entries."""
    allowed = set(fingerprints)
    new = tuple(f for f in findings if f.fingerprint not in allowed)
    baselined = tuple(f for f in findings if f.fingerprint in allowed)
    current = {f.fingerprint for f in findings}
    stale = tuple(sorted(allowed - current))
    return BaselineDiff(new=new, baselined=baselined, stale=stale)
