"""Schema-validated JSON reports for ProtoLint runs.

Mirrors the FaultLab/perf-harness report discipline: a versioned
document with an explicit field schema, validated at the producer, so
the CI artifact is machine-readable and drift is caught where it is
introduced.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Any, Dict, Sequence

from repro.analysis.baseline import BaselineDiff
from repro.analysis.engine import SEVERITIES, Finding

#: v2 added the optional per-finding ``chain`` field (deep-pass
#: source→sink paths, one "frame (file:line)" string per hop).
SCHEMA_VERSION = 2

REPORT_KIND = "protolint_report"

_REPORT_FIELDS = {
    "kind": str,
    "schema_version": int,
    "python": str,
    "roots": list,
    "rules": list,
    "findings": list,
    "counts": dict,
    "stale_baseline": list,
    "ok": bool,
}

_FINDING_FIELDS = {
    "rule": str,
    "path": str,
    "line": int,
    "col": int,
    "message": str,
    "severity": str,
}

#: Fields a finding may carry beyond the required set.
_FINDING_OPTIONAL = ("chain",)

_COUNT_FIELDS = ("errors", "warnings", "baselined", "stale_baseline")


def build(diff: BaselineDiff, rule_ids: Sequence[str],
          roots: Sequence[str]) -> Dict[str, Any]:
    """The report document for one run (post-baseline view)."""
    findings = sorted(diff.new)
    report = {
        "kind": REPORT_KIND,
        "schema_version": SCHEMA_VERSION,
        "python": platform.python_version(),
        "roots": [str(r) for r in roots],
        "rules": sorted(rule_ids),
        "findings": [f.to_dict() for f in findings],
        "counts": {
            "errors": sum(1 for f in findings if f.severity == "error"),
            "warnings": sum(1 for f in findings
                            if f.severity == "warning"),
            "baselined": len(diff.baselined),
            "stale_baseline": len(diff.stale),
        },
        "stale_baseline": list(diff.stale),
        "ok": not findings,
    }
    validate(report)
    return report


def validate(report: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``report`` is a valid document."""
    for key, typ in _REPORT_FIELDS.items():
        if key not in report:
            raise ValueError(f"report: missing field {key!r}")
        if typ is int and isinstance(report[key], bool):
            raise ValueError(f"report.{key} must be int, got bool")
        if not isinstance(report[key], typ):
            raise ValueError(f"report.{key} must be {typ.__name__}, got "
                             f"{type(report[key]).__name__}")
    if report["kind"] != REPORT_KIND:
        raise ValueError(f"bad kind {report['kind']!r}")
    counts = report["counts"]
    for key in _COUNT_FIELDS:
        value = counts.get(key)
        if not isinstance(value, int) or isinstance(value, bool) \
                or value < 0:
            raise ValueError(f"counts.{key} must be a non-negative int")
    if set(counts) != set(_COUNT_FIELDS):
        raise ValueError(f"counts must have exactly {_COUNT_FIELDS}")
    for i, doc in enumerate(report["findings"]):
        if not isinstance(doc, dict) or \
                set(doc) - set(_FINDING_OPTIONAL) != set(_FINDING_FIELDS):
            raise ValueError(f"findings[{i}] must have exactly "
                             f"{sorted(_FINDING_FIELDS)} (plus optional "
                             f"{_FINDING_OPTIONAL})")
        chain = doc.get("chain")
        if chain is not None and (
                not isinstance(chain, list) or not chain
                or not all(isinstance(s, str) for s in chain)):
            raise ValueError(f"findings[{i}].chain must be a non-empty "
                             f"list of strings")
        for key, typ in _FINDING_FIELDS.items():
            if typ is int:
                if not isinstance(doc[key], int) or \
                        isinstance(doc[key], bool) or doc[key] < 0:
                    raise ValueError(f"findings[{i}].{key} must be a "
                                     f"non-negative int")
            elif not isinstance(doc[key], typ):
                raise ValueError(f"findings[{i}].{key} must be "
                                 f"{typ.__name__}")
        if doc["severity"] not in SEVERITIES:
            raise ValueError(f"findings[{i}].severity must be one of "
                             f"{SEVERITIES}")
    keys = [_sort_key(doc) for doc in report["findings"]]
    if keys != sorted(keys):
        raise ValueError("findings must be sorted (path, line, col, rule)")
    errors = sum(1 for d in report["findings"] if d["severity"] == "error")
    warnings = len(report["findings"]) - errors
    if counts["errors"] != errors or counts["warnings"] != warnings:
        raise ValueError("counts disagree with the finding list")
    if counts["stale_baseline"] != len(report["stale_baseline"]):
        raise ValueError("counts.stale_baseline disagrees with the list")
    if report["ok"] != (not report["findings"]):
        raise ValueError("ok flag disagrees with the finding list")
    if not all(isinstance(r, str) for r in report["rules"]):
        raise ValueError("rules must be a list of rule-id strings")
    if report["rules"] != sorted(report["rules"]):
        raise ValueError("rules must be sorted")


def _sort_key(doc: Dict[str, Any]):
    return (doc["path"], doc["line"], doc["col"], doc["rule"],
            doc["message"])


def dump(report: Dict[str, Any], path: Path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def finding_from_dict(doc: Dict[str, Any]) -> Finding:
    """Rehydrate a Finding from a report entry (for tooling/tests)."""
    return Finding(path=doc["path"], line=doc["line"], col=doc["col"],
                   rule=doc["rule"], message=doc["message"],
                   severity=doc["severity"],
                   chain=tuple(doc.get("chain", ())))
