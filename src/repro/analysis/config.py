"""Scope configuration for the ProtoLint rule set.

Rules consult this to decide where they apply.  Paths are relative to
the ``repro`` package root (``bft/replica.py``), matching the paths the
engine puts in findings.  The defaults encode this repo's layout; tests
construct narrower configs to point rules at fixture trees.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import FrozenSet, Optional


def _top(rel: str) -> str:
    """Top-level package of a finding path (``bft/replica.py`` -> ``bft``)."""
    return rel.split("/", 1)[0]


#: Packages *outside* the simulation: orchestration, analysis, and
#: reporting code that legitimately reads the wall clock or the
#: filesystem.  Everything else under ``src/repro`` is protocol scope by
#: default — a freshly created package is lint-covered unless someone
#: deliberately excludes it here.
PROTOCOL_EXCLUDED = frozenset({"analysis", "faultlab", "harness"})


def discover_packages(root: Optional[str] = None,
                      excluded: FrozenSet[str] = PROTOCOL_EXCLUDED,
                      ) -> FrozenSet[str]:
    """Every package under the ``repro`` root minus the exclude list.

    ``root`` defaults to the directory holding this file's parent (the
    installed ``repro`` package), so new subsystems join the protocol
    scope the moment they gain an ``__init__.py`` — scope rot was how
    earlier packages silently escaped the linter.
    """
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    found = []
    for name in sorted(os.listdir(root)):
        if name in excluded or name.startswith(("_", ".")):
            continue
        path = os.path.join(root, name)
        if os.path.isdir(path) and \
                os.path.isfile(os.path.join(path, "__init__.py")):
            found.append(name)
    return frozenset(found)


#: Packages whose code runs *inside* the simulation: protocol logic,
#: replicated state, and the conformance wrappers.  Nothing here may
#: touch real time, threads, sockets, or the filesystem — the simulator
#: is the only source of time and I/O.  Discovered, not enumerated: see
#: :func:`discover_packages`.
PROTOCOL_PACKAGES = discover_packages()

#: Packages whose iteration order feeds replicated state or replay:
#: the BFT protocol itself, the simulator, the edge tier, FaultLab, and
#: the abstract state library.  Hash-ordered iteration here breaks
#: (scenario, seed) reproducibility.
REPLAY_PACKAGES = frozenset({"base", "bft", "edge", "faultlab", "sim"})

#: Modules allowed to call ``time.perf_counter``: wall-clock *reporting*
#: only — they measure wall time about a run, never feed it back in.
PERF_COUNTER_ALLOWED = frozenset({
    "sim/metrics.py", "faultlab/explorer.py",
})

#: Modules allowed real file I/O: report writers and CLI entry points
#: (they serialize results *after* the simulation) plus the repo-metrics
#: harness that reads source files by design.
IO_ALLOWED = frozenset({
    "faultlab/report.py", "faultlab/__main__.py",
    "analysis/engine.py", "analysis/__main__.py", "analysis/baseline.py",
    "harness/complexity.py", "harness/report.py",
})

# -- deep-pass anchors ---------------------------------------------------------
# Dotted names the interprocedural passes resolve against.  They name
# *this repo's* agreement-critical surfaces; fixture trees re-declare
# classes under the same dotted roots, so the anchors work unchanged.

#: Root of the wire-message hierarchy: every subclass with a ``kind``
#: class attribute is a wire payload (constructor args are a taint sink,
#: and its kind must have a ``handle_<kind>`` handler somewhere).
MESSAGE_ROOT = "repro.bft.messages.Message"

#: Root of the protocol-node hierarchy (``handle_<kind>`` dispatch).
NODE_ROOT = "repro.sim.node.Node"

#: Canonical-encoding sink: tainted payloads break replica agreement.
CANONICAL_SINKS = frozenset({"repro.encoding.canonical.canonical"})

#: Digest sink: everything digested feeds a MAC, certificate, or
#: checkpoint identity.
DIGEST_SINKS = frozenset({"repro.crypto.digest.digest"})

#: Abstract-state mutation sinks (dotted, plus bare method names for
#: calls the resolver cannot type) — gated on reachability from a
#: message handler.
STATE_SINKS = frozenset({
    "repro.base.state.AbstractStateManager.modify",
    "repro.base.state.AbstractStateManager.apply_fetched",
    "repro.base.upcalls.Upcalls.put_objs",
})
STATE_SINK_NAMES = frozenset({"modify", "apply_fetched", "put_objs"})

#: Packages whose ``handle_*`` methods must charge the CostModel.
COST_PACKAGES = frozenset({"bft"})

#: Files exempt from DEEP-QUORUM: where the helpers themselves live.
QUORUM_EXEMPT = frozenset({"bft/config.py"})

#: Packages where a ``len(x) >= <literal>`` compare is treated as a
#: hardcoded quorum threshold.  Only where votes are actually counted —
#: elsewhere that shape is almost always a tuple-arity check on a
#: decoded op, not quorum logic.  Inline ``2f+1`` / ``f+1`` arithmetic
#: is flagged in the whole protocol scope regardless.
QUORUM_LEN_PACKAGES = frozenset({"bft", "edge"})


@dataclass(frozen=True)
class AnalysisConfig:
    protocol_packages: FrozenSet[str] = PROTOCOL_PACKAGES
    replay_packages: FrozenSet[str] = REPLAY_PACKAGES
    perf_counter_allowed: FrozenSet[str] = PERF_COUNTER_ALLOWED
    io_allowed: FrozenSet[str] = IO_ALLOWED
    # deep-pass anchors (see module docstring comments above)
    message_root: str = MESSAGE_ROOT
    node_root: str = NODE_ROOT
    canonical_sinks: FrozenSet[str] = CANONICAL_SINKS
    digest_sinks: FrozenSet[str] = DIGEST_SINKS
    state_sinks: FrozenSet[str] = STATE_SINKS
    state_sink_names: FrozenSet[str] = STATE_SINK_NAMES
    cost_packages: FrozenSet[str] = COST_PACKAGES
    quorum_exempt: FrozenSet[str] = QUORUM_EXEMPT
    quorum_len_packages: FrozenSet[str] = QUORUM_LEN_PACKAGES

    def in_protocol(self, rel: str) -> bool:
        return ("*" in self.protocol_packages
                or _top(rel) in self.protocol_packages)

    def in_replay(self, rel: str) -> bool:
        return ("*" in self.replay_packages
                or _top(rel) in self.replay_packages)

    def perf_counter_ok(self, rel: str) -> bool:
        return rel in self.perf_counter_allowed

    def io_ok(self, rel: str) -> bool:
        return rel in self.io_allowed

    def in_cost_scope(self, rel: str) -> bool:
        return "*" in self.cost_packages or _top(rel) in self.cost_packages

    def quorum_checked(self, rel: str) -> bool:
        return self.in_protocol(rel) and rel not in self.quorum_exempt

    def quorum_len_checked(self, rel: str) -> bool:
        return self.quorum_checked(rel) and (
            "*" in self.quorum_len_packages
            or _top(rel) in self.quorum_len_packages)


#: Config used by tests pointing rules at fixture files: every scope
#: check passes (``"*"`` wildcard), so each rule exercises its logic
#: regardless of the fixture's path.
EVERYWHERE = AnalysisConfig(
    protocol_packages=frozenset({"*"}),
    replay_packages=frozenset({"*"}),
    perf_counter_allowed=frozenset(),
    io_allowed=frozenset(),
)

#: Deep-pass test config: fixture trees live under arbitrary paths, so
#: every scope check passes and no file is exempt.
DEEP_EVERYWHERE = AnalysisConfig(
    protocol_packages=frozenset({"*"}),
    replay_packages=frozenset({"*"}),
    perf_counter_allowed=frozenset(),
    io_allowed=frozenset(),
    cost_packages=frozenset({"*"}),
    quorum_exempt=frozenset(),
    quorum_len_packages=frozenset({"*"}),
)
