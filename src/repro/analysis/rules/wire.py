"""Wire-hygiene rules: what goes into message bodies, and how handlers fail.

Protocol messages are digested and MACed over ``canonical(...)`` bytes,
and replicas must agree bit-for-bit.  Floats in a payload are a
cross-replica hazard (two replicas computing the "same" value by
different float paths digest differently), and dict/set displays are not
canonically encodable at all.  Handlers, for their part, must fail
loudly: a bare ``except:`` (or a handler that swallows everything with
``pass``) converts a protocol bug into silent divergence.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import FileContext, Rule


def _payload_offenders(expr: ast.AST):
    """Yield (node, description) for wire-hostile values inside a payload
    expression: float constants, float() casts, dict/set displays."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Constant) and type(node.value) is float:
            yield node, f"float constant {node.value!r}"
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and node.func.id == "float":
            yield node, "float(...) cast"
        elif isinstance(node, (ast.Dict, ast.DictComp)):
            yield node, "dict display (not canonically encodable)"
        elif isinstance(node, (ast.Set, ast.SetComp)):
            yield node, "set display (not canonically encodable)"


class FloatPayloadRule(Rule):
    rule_id = "WIRE-FLOAT"
    title = "No floats or non-canonical containers in message payloads"
    rationale = ("Payloads are digested over canonical bytes; replicas "
                 "must produce them identically.  Floats invite "
                 "cross-replica rounding divergence, and dicts/sets are "
                 "rejected (or hash-ordered) by the canonical encoder — "
                 "convert to sorted tuples of ints/strs/bytes first.")
    example = 'canonical(("reply", 0.5, {"a": 1}))'
    node_types = (ast.Call, ast.FunctionDef)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.FunctionDef):
            # `_fields()` methods define Message bodies.
            if node.name != "_fields":
                return
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    for bad, what in _payload_offenders(stmt.value):
                        ctx.report(self, bad,
                                   f"{what} in a message _fields() body")
            return
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name != "canonical":
            return
        for arg in node.args:
            for bad, what in _payload_offenders(arg):
                ctx.report(self, bad, f"{what} in a canonical() payload")


class BareExceptRule(Rule):
    rule_id = "WIRE-EXCEPT"
    title = "No bare excepts; handlers must not swallow exceptions"
    rationale = ("A bare `except:` catches SystemExit/KeyboardInterrupt "
                 "and hides protocol bugs; an except clause whose whole "
                 "body is `pass` in BFT or simulator code turns a failed "
                 "handler into silent state divergence.  Catch the "
                 "narrowest exception and act on it (or re-raise).")
    example = "try: handle(msg)\nexcept: pass"
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if node.type is None:
            ctx.report(self, node,
                       "bare except: catches everything including "
                       "KeyboardInterrupt; name the exception type")
            return
        swallows = all(isinstance(stmt, ast.Pass) for stmt in node.body)
        if swallows and ctx.config.in_replay(ctx.rel):
            ctx.report(self, node,
                       "except clause swallows the exception with a bare "
                       "pass in replay-critical code; handle or re-raise")
