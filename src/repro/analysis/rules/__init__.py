"""ProtoLint rule registry.

``all_rules()`` returns one instance of every rule, sorted by id; the
CLI and tests select subsets by id from here.  Adding a rule = write the
class, list it in ``_RULE_CLASSES``, document it in docs/ANALYSIS.md,
and add a bad/ok fixture pair under tests/analysis_fixtures/.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.engine import Rule
from repro.analysis.rules.determinism import (PerfCounterRule,
                                              UnseededRandomRule,
                                              WallClockRule)
from repro.analysis.rules.replay import (IdKeyRule, MutableDefaultRule,
                                         UnorderedIterationRule)
from repro.analysis.rules.simsafety import RealConcurrencyRule, RealIORule
from repro.analysis.rules.wire import BareExceptRule, FloatPayloadRule

_RULE_CLASSES = (
    UnseededRandomRule,     # DET-RNG
    WallClockRule,          # DET-CLOCK
    PerfCounterRule,        # DET-PERF
    RealConcurrencyRule,    # SIM-BLOCK
    RealIORule,             # SIM-IO
    UnorderedIterationRule,  # RPL-SETITER
    IdKeyRule,              # RPL-IDKEY
    MutableDefaultRule,     # RPL-MUTDEF
    FloatPayloadRule,       # WIRE-FLOAT
    BareExceptRule,         # WIRE-EXCEPT
)

#: The determinism subset: what tests/test_determinism_audit.py enforces.
DETERMINISM_RULE_IDS = ("DET-RNG", "DET-CLOCK", "DET-PERF")


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by rule id."""
    return sorted((cls() for cls in _RULE_CLASSES),
                  key=lambda rule: rule.rule_id)


def rules_by_id() -> Dict[str, Rule]:
    return {rule.rule_id: rule for rule in all_rules()}


def select_rules(ids: Sequence[str]) -> List[Rule]:
    """Rules for the given ids; unknown ids raise ValueError."""
    table = rules_by_id()
    unknown = sorted(set(ids) - set(table))
    if unknown:
        raise ValueError(f"unknown rule id(s): {', '.join(unknown)} "
                         f"(known: {', '.join(sorted(table))})")
    return [table[rule_id] for rule_id in sorted(set(ids))]
