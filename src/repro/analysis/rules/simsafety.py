"""Simulation-safety rules: protocol code runs *inside* the simulator.

Nothing in a protocol package may block, spawn threads, open sockets or
processes, or touch the real filesystem — the discrete-event scheduler
is the only source of time and the in-memory network the only transport.
A single `time.sleep` in a message handler would stall the whole
simulated cluster; a real socket would leak nondeterminism from the OS.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import FileContext, Rule
from repro.analysis.rules.determinism import dotted_call

#: Modules that imply real concurrency or real I/O channels.
BLOCKING_MODULES = frozenset({
    "threading", "socket", "subprocess", "multiprocessing", "asyncio",
    "selectors", "signal", "queue",
})

#: Method names that are real-file reads/writes when called on anything.
PATH_IO_METHODS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})


class RealConcurrencyRule(Rule):
    rule_id = "SIM-BLOCK"
    title = "No threads, sockets, processes, or sleeps in protocol code"
    rationale = ("Protocol modules execute inside the deterministic "
                 "simulator: real threads/sockets/processes reintroduce "
                 "OS scheduling nondeterminism, and time.sleep stalls the "
                 "event loop instead of advancing simulated time.")
    example = "time.sleep(0.1)  # inside a replica handler"
    node_types = (ast.Import, ast.ImportFrom, ast.Call)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.config.in_protocol(ctx.rel)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                top = alias.name.split(".", 1)[0]
                if top in BLOCKING_MODULES:
                    ctx.report(self, node,
                               f"import {alias.name}: real concurrency/IO "
                               f"module in protocol code")
            return
        if isinstance(node, ast.ImportFrom):
            top = (node.module or "").split(".", 1)[0]
            if top in BLOCKING_MODULES:
                ctx.report(self, node,
                           f"from {node.module} import ...: real "
                           f"concurrency/IO module in protocol code")
            return
        target = dotted_call(node)
        if target == ("time", "sleep"):
            ctx.report(self, node,
                       "time.sleep blocks the real thread; schedule a "
                       "timer on the simulator instead")


class RealIORule(Rule):
    rule_id = "SIM-IO"
    title = "No real file I/O in protocol code"
    rationale = ("Replicated services hold their state in memory behind "
                 "the abstraction wrapper; reading or writing real files "
                 "couples a replica to its host filesystem and breaks "
                 "both determinism and the recovery model.  Report "
                 "writers and CLIs are allowlisted.")
    example = "open(path).read()  # inside a wrapper"
    node_types = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.config.in_protocol(ctx.rel) \
            and not ctx.config.io_ok(ctx.rel)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            ctx.report(self, node,
                       "open() performs real file I/O in protocol code")
        elif isinstance(func, ast.Attribute) and \
                func.attr in PATH_IO_METHODS:
            ctx.report(self, node,
                       f".{func.attr}() performs real file I/O in "
                       f"protocol code")
