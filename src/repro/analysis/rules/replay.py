"""Replay-soundness rules: iteration order is replicated state.

In the BFT packages, FaultLab, the simulator, and the abstract-state
library, any value that depends on hash order (set iteration, ``id()``
keys) or on call-time aliasing (mutable default arguments) can diverge
across replicas or across replays of the same (scenario, seed) pair —
exactly the class of bug the BASE abstraction exists to mask in *other
people's* code.  Ours must not have them.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.analysis.engine import FileContext, Rule

#: Builtins producing set-typed values.
SET_BUILTINS = frozenset({"set", "frozenset"})

#: Containers whose display literals are mutable (for RPL-MUTDEF).
MUTABLE_CALL_DEFAULTS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
    "Counter", "deque",
})


def _set_typed_annotation(annotation: ast.AST) -> bool:
    """True for annotations spelling a set type: ``set``, ``Set[...]``,
    ``frozenset``, ``FrozenSet[...]`` (bare or subscripted)."""
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):  # typing.Set
        name = node.attr
    if name is None and isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        # String annotation: cheap textual check.
        text = annotation.value
        return text.startswith(("Set[", "FrozenSet[", "set", "frozenset"))
    return name in {"set", "frozenset", "Set", "FrozenSet", "MutableSet",
                    "AbstractSet"}


class UnorderedIterationRule(Rule):
    rule_id = "RPL-SETITER"
    title = "No iteration over hash-ordered sets in replay-critical code"
    rationale = ("Set iteration order depends on PYTHONHASHSEED and "
                 "insertion history; looping over a set (or converting "
                 "one with list()/tuple()) in protocol, simulator, or "
                 "FaultLab code lets hash order leak into replicated "
                 "state or replay.  Wrap the set in sorted().")
    example = "for index in self._dirty: ...   # use sorted(self._dirty)"
    node_types = (ast.For, ast.ListComp, ast.GeneratorExp, ast.DictComp,
                  ast.Call)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.config.in_replay(ctx.rel)

    # -- per-file inference of set-typed names --------------------------------

    def begin_file(self, ctx: FileContext) -> None:
        """Pre-pass: collect plain names and ``self.X`` attribute names
        that are ever assigned (or annotated as) a set in this file."""
        names: Set[str] = set()
        attrs: Set[str] = set()
        for node in ast.walk(ctx.tree):
            value = None
            targets = ()
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign):
                value = node.value
                targets = (node.target,)
                if _set_typed_annotation(node.annotation):
                    self._record(targets, names, attrs)
                    continue
            elif isinstance(node, ast.AugAssign):
                # s |= {...} / s &= other keep set-ness; recorded only if
                # the target was already seen via a plain assignment.
                continue
            else:
                continue
            if value is not None and self._is_set_expr(value, names, attrs):
                self._record(targets, names, attrs)
        ctx._rpl_set_names = names      # type: ignore[attr-defined]
        ctx._rpl_set_attrs = attrs      # type: ignore[attr-defined]

    @staticmethod
    def _record(targets, names: Set[str], attrs: Set[str]) -> None:
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                attrs.add(target.attr)
            elif isinstance(target, ast.Tuple):
                # (a, b) = ... — element-wise set-ness is unknowable
                # without real type inference; skip.
                continue

    @staticmethod
    def _is_set_expr(node: ast.AST, names: Set[str], attrs: Set[str],
                     ) -> bool:
        """Syntactic 'this expression is a set' check."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in SET_BUILTINS:
            return True
        if isinstance(node, ast.Name):
            return node.id in names
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and node.value.id == "self":
            return node.attr in attrs
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            # Union/intersection/difference of sets is a set.  `&` and
            # `-` yield a set whenever the left operand is one; `|` is
            # also integer flag-OR, so require both sides to look set-ish.
            left = UnorderedIterationRule._is_set_expr(
                node.left, names, attrs)
            if isinstance(node.op, (ast.BitAnd, ast.Sub)):
                return left
            return left and UnorderedIterationRule._is_set_expr(
                node.right, names, attrs)
        return False

    # -- flagging --------------------------------------------------------------

    def _flag_if_set(self, expr: ast.AST, node: ast.AST, what: str,
                     ctx: FileContext) -> None:
        names = getattr(ctx, "_rpl_set_names", set())
        attrs = getattr(ctx, "_rpl_set_attrs", set())
        if self._is_set_expr(expr, names, attrs):
            ctx.report(self, node,
                       f"{what} iterates a set in hash order; wrap it in "
                       f"sorted() so replicas and replays agree")

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.For):
            self._flag_if_set(node.iter, node, "for loop", ctx)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                               ast.DictComp)):
            # SetComp is deliberately exempt: a set-to-set transform
            # cannot make the result any more order-dependent.  List,
            # generator, and dict results all preserve iteration order,
            # so set-sourced ones leak hash order to their consumer.
            for gen in node.generators:
                self._flag_if_set(gen.iter, gen.iter, "comprehension", ctx)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("list", "tuple") \
                    and len(node.args) == 1 and not node.keywords:
                self._flag_if_set(node.args[0], node,
                                  f"{func.id}() conversion", ctx)


class IdKeyRule(Rule):
    rule_id = "RPL-IDKEY"
    title = "No id()-keyed or address-dependent logic"
    rationale = ("id() values are memory addresses: they differ across "
                 "replicas and replays, and are re-used after garbage "
                 "collection, so id()-keyed maps can silently alias two "
                 "distinct objects.  Key on a stable identity (a counter, "
                 "a name, the object itself) instead.")
    example = "table[id(msg)] = entry"
    node_types = (ast.Call,)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.config.in_protocol(ctx.rel)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "id" \
                and len(node.args) == 1 and not node.keywords:
            ctx.report(self, node,
                       "id() is a memory address: unstable across "
                       "replicas/replays and re-used after GC")


class MutableDefaultRule(Rule):
    rule_id = "RPL-MUTDEF"
    title = "No mutable default arguments"
    rationale = ("A mutable default is allocated once at import time and "
                 "shared by every call; state accumulated in one trial "
                 "leaks into the next, breaking replay isolation.")
    example = "def deliver(self, queue=[]): ..."
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults
                                              if d is not None]:
            if self._mutable(default):
                name = getattr(node, "name", "<lambda>")
                ctx.report(self, default,
                           f"mutable default argument in {name}(); use "
                           f"None and allocate inside the function")

    @staticmethod
    def _mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in MUTABLE_CALL_DEFAULTS)
