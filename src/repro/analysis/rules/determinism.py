"""Determinism rules: every run must be a pure function of (scenario, seed).

These subsume the original ad-hoc audit in ``tests/test_determinism_audit``:
no unseeded randomness, no wall-clock or entropy reads, and
``time.perf_counter`` only in the declared reporting modules.
"""

from __future__ import annotations

import ast
from typing import Optional, Tuple

from repro.analysis.engine import FileContext, Rule

#: Calls through the module-level (shared, unseeded) random API.
GLOBAL_RNG_CALLS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "uniform", "sample", "getrandbits", "gauss", "betavariate",
    "expovariate", "normalvariate", "triangular",
})

#: (module, attr) wall-clock and entropy reads that break replay outright.
WALL_CLOCK_READS = frozenset({
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("os", "urandom"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
})

DATETIME_READS = frozenset({"now", "utcnow", "today"})


def dotted_call(node: ast.Call) -> Optional[Tuple[str, str]]:
    """(module, attr) for ``module.attr(...)`` style calls, else None.

    For deeper chains like ``datetime.datetime.now(...)`` the *last two*
    components are returned, which is what the rules match on.
    """
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    if isinstance(func.value, ast.Attribute):
        return (func.value.attr, func.attr)
    return None


class UnseededRandomRule(Rule):
    rule_id = "DET-RNG"
    title = "No unseeded randomness"
    rationale = ("Replicas and FaultLab replay require every random draw "
                 "to come from a seeded, per-trial Random instance; the "
                 "process-global RNG and the OS entropy pool make runs "
                 "irreproducible.")
    example = "value = random.choice(options)"
    node_types = (ast.Call, ast.ImportFrom)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.ImportFrom):
            if node.module == "random":
                names = sorted(a.name for a in node.names
                               if a.name in GLOBAL_RNG_CALLS)
                if names:
                    ctx.report(self, node,
                               f"from random import {', '.join(names)} "
                               f"binds the unseeded global RNG")
            elif node.module == "secrets":
                ctx.report(self, node, "secrets draws from the OS entropy "
                                       "pool (irreproducible)")
            return
        target = dotted_call(node)
        if target is None:
            return
        module, attr = target
        if module == "random" and attr in GLOBAL_RNG_CALLS:
            ctx.report(self, node,
                       f"random.{attr} uses the unseeded global RNG; draw "
                       f"from a seeded random.Random instance instead")
        elif module == "random" and attr == "Random" and \
                not node.args and not node.keywords:
            ctx.report(self, node,
                       "random.Random() without a seed reads OS entropy; "
                       "pass an explicit seed")
        elif module == "secrets":
            ctx.report(self, node,
                       f"secrets.{attr} draws from the OS entropy pool "
                       f"(irreproducible)")


class WallClockRule(Rule):
    rule_id = "DET-CLOCK"
    title = "No wall-clock or entropy reads"
    rationale = ("Simulated time comes from the scheduler; reading the "
                 "host clock (or uuid1/uuid4, which mix in clock and "
                 "entropy) makes outcomes depend on when the run happened.")
    example = "started = time.time()"
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        target = dotted_call(node)
        if target is None:
            return
        module, attr = target
        if target in WALL_CLOCK_READS:
            ctx.report(self, node,
                       f"{module}.{attr} reads the wall clock / OS entropy; "
                       f"use the simulator clock (scheduler.now)")
        elif module == "datetime" and attr in DATETIME_READS:
            ctx.report(self, node,
                       f"datetime.{attr} reads the wall clock; timestamps "
                       f"must come from simulated time")


class PerfCounterRule(Rule):
    rule_id = "DET-PERF"
    title = "perf_counter only in reporting modules"
    rationale = ("time.perf_counter is allowed only where it measures "
                 "wall time *about* a run (benchmark reporting) and never "
                 "feeds back into protocol behavior.")
    example = "t0 = time.perf_counter()  # outside the allowlist"
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        target = dotted_call(node)
        if target is None:
            return
        module, attr = target
        if module == "time" and attr in ("perf_counter", "perf_counter_ns") \
                and not ctx.config.perf_counter_ok(ctx.rel):
            ctx.report(self, node,
                       f"time.{attr} outside the reporting allowlist; "
                       f"wall-clock measurement belongs in report/metrics "
                       f"modules only")
