"""Service-state interface between the BFT protocol and the service layer.

The replica protocol engine never touches service state directly — it
goes through a :class:`StateManager`.  The BASE library's
:class:`~repro.base.state.AbstractStateManager` is the production
implementation (conformance wrappers + abstraction functions); the
:class:`InMemoryStateManager` here is a small self-contained reference
used by the BFT protocol tests and for differential testing.

A note on ``lm`` (last-modified): the partition tree commits to a
per-object *last modified at sequence number* alongside each digest, and
internal digests cover both.  For all correct replicas to agree on tree
digests, ``lm`` must be a deterministic function of the operation history
— we define it as the sequence number of the request that last modified
the object (0 for never-modified objects), which every replica computes
identically.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence, Tuple

from repro.bft.messages import Request
from repro.bft.parttree import PartitionTree, TreeSnapshot
from repro.crypto.digest import digest
from repro.encoding.canonical import canonical, decanonical


class StateManager(abc.ABC):
    """Everything the replica needs from the service it replicates."""

    # -- execution ------------------------------------------------------------

    @abc.abstractmethod
    def execute(self, op: bytes, client_id: str, request_id: int, seq: int,
                nondet: bytes, read_only: bool = False) -> bytes:
        """Run one operation (ordered at ``seq``) and return result bytes.

        Read-only operations are executed with ``seq`` of the last
        executed request and must not modify state.
        """

    def propose_nondet(self, requests: Sequence[Request], seq: int) -> bytes:
        """Primary-side choice of the nondeterministic value for a batch."""
        return b""

    def check_nondet(self, requests: Sequence[Request], seq: int,
                     nondet: bytes) -> bool:
        """Backup-side validation of the primary's nondeterministic value."""
        return nondet == b""

    # -- checkpoints -------------------------------------------------------------

    @abc.abstractmethod
    def take_checkpoint(self, seq: int) -> bytes:
        """Record a checkpoint at ``seq``; returns the state root digest."""

    @abc.abstractmethod
    def discard_checkpoints_below(self, seq: int) -> None:
        """Garbage-collect retained checkpoints older than ``seq``."""

    @abc.abstractmethod
    def checkpoint_root(self, seq: int) -> Optional[bytes]:
        """Root digest of the retained checkpoint at ``seq``, if any."""

    def restore_checkpoint(self, seq: int) -> bool:
        """Roll the live state back to the retained checkpoint at ``seq``,
        discarding any retained checkpoints above it (they describe
        executions being rolled back).  Returns False when no such
        checkpoint is retained — the caller falls back to state transfer.
        Default: unsupported."""
        return False

    # -- state transfer: serving side -------------------------------------------

    @abc.abstractmethod
    def meta_children(self, seq: int, level: int,
                      index: int) -> Optional[Tuple[Tuple[bytes, int], ...]]:
        """(digest, lm) of a tree node's children at checkpoint ``seq``."""

    @abc.abstractmethod
    def object_at(self, seq: int, index: int) -> Optional[bytes]:
        """Abstract object ``index`` as of checkpoint ``seq``."""

    # -- state transfer: fetching side --------------------------------------------

    @abc.abstractmethod
    def local_leaf_info(self, index: int) -> Tuple[bytes, int]:
        """(digest, lm) of abstract object ``index`` in the *current* state,
        recomputing the digest if the object is dirty."""

    @abc.abstractmethod
    def apply_fetched(self, seq: int, root_digest: bytes,
                      objects: Dict[int, Tuple[bytes, int]]) -> bool:
        """Install fetched ``{index: (value, lm)}``, bringing the state to
        checkpoint ``seq``.

        Returns True iff the resulting tree root equals ``root_digest``
        (which carries a 2f+1 proof, so a False return means a donor lied
        or the local state is corrupt beyond the fetched set).
        """

    def fix_leaf_lm(self, index: int, lm: int) -> None:
        """Adopt a certified last-modified value for a leaf whose *value*
        already matches the transfer target (state transfer discovered our
        lm was stale, e.g. after missing checkpoints)."""
        self.tree.set_leaf(index, self.tree.leaf_digest(index), lm)

    def refresh_dirty(self) -> None:
        """Recompute leaf digests for objects modified since the last
        checkpoint, so the live tree reflects the current state.  The
        default is a no-op for managers whose tree is always current."""

    def mark_all_dirty(self) -> None:
        """Force :meth:`refresh_dirty` to re-derive every leaf digest from
        the concrete state — the integrity 'check' pass of recovery."""

    # -- tree shape ---------------------------------------------------------------

    @property
    @abc.abstractmethod
    def tree(self) -> PartitionTree:
        """The live partition tree over the abstract state."""

    # -- recovery -------------------------------------------------------------------

    def shutdown(self) -> float:
        """Persist what recovery needs; returns simulated seconds spent."""
        return 0.0

    def restart(self) -> float:
        """Rebuild volatile state after a reboot; returns simulated seconds."""
        return 0.0


class InMemoryStateManager(StateManager):
    """Reference manager: a deterministic key-value store.

    The abstract state is an array of ``size`` slots; operations are
    canonical-encoded tuples built by :meth:`op_put` / :meth:`op_get`.
    Checkpoints retain full snapshots — simple and obviously correct,
    which is the point of a reference implementation (the copy-on-write
    manager in :mod:`repro.base.state` is differential-tested against it).
    """

    def __init__(self, size: int = 64, branching: int = 8):
        self.size = size
        self.values: list = [b""] * size
        self._tree = PartitionTree(size, branching)
        self._checkpoints: Dict[int, Tuple[TreeSnapshot, list]] = {}
        self.executed_ops: list = []
        for i in range(size):
            self._tree.set_leaf(i, digest(b""), 0)

    # -- op helpers -----------------------------------------------------------

    @staticmethod
    def op_put(slot: int, value: bytes) -> bytes:
        return canonical(("put", slot, value))

    @staticmethod
    def op_get(slot: int) -> bytes:
        return canonical(("get", slot))

    # -- StateManager ------------------------------------------------------------

    #: Decoded-op memo shared by every instance: all replicas in a group
    #: execute the same op bytes, so the first decode serves the rest.
    #: Bounded; cleared wholesale when full (ops are tiny tuples).
    _OP_CACHE: Dict[bytes, tuple] = {}
    _OP_CACHE_MAX = 8192

    def execute(self, op: bytes, client_id: str, request_id: int, seq: int,
                nondet: bytes, read_only: bool = False) -> bytes:
        self.executed_ops.append((client_id, request_id, seq, op))
        if op == b"":
            return b"null"
        decoded = self._OP_CACHE.get(op)
        if decoded is None:
            decoded = decanonical(op)
            if len(self._OP_CACHE) >= self._OP_CACHE_MAX:
                self._OP_CACHE.clear()
            self._OP_CACHE[op] = decoded
        kind = decoded[0]
        if kind == "put":
            _, slot, value = decoded
            if read_only:
                raise ValueError("put issued as read-only")
            self.values[slot] = value
            self._tree.set_leaf(slot, digest(value), seq)
            return b"ok"
        if kind == "get":
            return self.values[decoded[1]]
        raise ValueError(f"unknown op kind {kind!r}")

    def take_checkpoint(self, seq: int) -> bytes:
        snap = self._tree.snapshot()
        self._checkpoints[seq] = (snap, list(self.values))
        return snap.root_digest

    def discard_checkpoints_below(self, seq: int) -> None:
        for old in [s for s in self._checkpoints if s < seq]:
            del self._checkpoints[old]

    def checkpoint_root(self, seq: int) -> Optional[bytes]:
        entry = self._checkpoints.get(seq)
        return entry[0].root_digest if entry else None

    def restore_checkpoint(self, seq: int) -> bool:
        entry = self._checkpoints.get(seq)
        if entry is None:
            return False
        snap, values = entry
        self.values = list(values)
        leaf_digests = snap.digests[-1]
        leaf_lms = snap.lms[-1]
        for i in range(self.size):
            self._tree.set_leaf(i, leaf_digests[i], leaf_lms[i])
        for s in [s for s in self._checkpoints if s > seq]:
            del self._checkpoints[s]
        return True

    def meta_children(self, seq: int, level: int, index: int):
        entry = self._checkpoints.get(seq)
        if entry is None:
            return None
        return entry[0].children_info(level, index, self._tree.branching)

    def object_at(self, seq: int, index: int) -> Optional[bytes]:
        entry = self._checkpoints.get(seq)
        if entry is None or not 0 <= index < self.size:
            return None
        return entry[1][index]

    def local_leaf_info(self, index: int) -> Tuple[bytes, int]:
        return self._tree.leaf_digest(index), self._tree.leaf_lm(index)

    def apply_fetched(self, seq: int, root_digest: bytes,
                      objects: Dict[int, Tuple[bytes, int]]) -> bool:
        for index, (value, lm) in objects.items():
            self.values[index] = value
            self._tree.set_leaf(index, digest(value), lm)
        ok = self._tree.root_digest == root_digest
        if ok:
            self._checkpoints[seq] = (self._tree.snapshot(), list(self.values))
        return ok

    def mark_all_dirty(self) -> None:
        # Re-derive every leaf digest from the concrete values, so silent
        # corruption of ``values`` becomes visible in the tree.
        for i, value in enumerate(self.values):
            self._tree.set_leaf(i, digest(value), self._tree.leaf_lm(i))

    @property
    def tree(self) -> PartitionTree:
        return self._tree
