"""BFT: practical Byzantine fault tolerance (Castro & Liskov).

A faithful reimplementation of the BFT state-machine-replication library
that BASE extends: three-phase atomic multicast (pre-prepare / prepare /
commit) with MAC authenticators, request batching, the read-only
optimization, incremental checkpointing with garbage collection, view
changes, hierarchical state transfer, and proactive recovery.

The replica delegates all service-state concerns to a
:class:`~repro.bft.statemachine.StateManager`; the BASE layer
(:mod:`repro.base`) provides the abstraction-aware implementation.
"""

from repro.bft.config import BftConfig
from repro.bft.client import BftClient, SyncClient
from repro.bft.replica import Replica
from repro.bft.statemachine import InMemoryStateManager, StateManager

__all__ = [
    "BftConfig",
    "BftClient",
    "SyncClient",
    "Replica",
    "StateManager",
    "InMemoryStateManager",
]
