"""BFT client: invoke operations and vote on replies.

The client sends a request to the primary; if it does not accept a result
within the retry timeout it multicasts to all replicas (whose relays and
timers eventually force a view change if the primary is faulty).  A
result is accepted once f+1 replicas vouch for the same result digest —
at least one of them is correct — and the full result bytes arrived from
at least one of them.

Fast paths:

- *Tentative execution*: replicas execute prepared batches before the
  commit phase finishes and reply marked tentative; 2f+1 matching
  tentative replies form a *commit certificate* (the request's position
  survives any view change), letting the client accept one round early.
  Fewer matching tentative replies fall back to the f+1 committed rule.
- *Read-only optimization*: read-only requests go straight to all
  replicas, execute against current state, and need 2f+1 matching
  read-only replies; if that quorum does not show up (concurrent writes
  or faults), the client falls back to the ordered path.  Votes from the
  read-only attempt are discarded on fallback — they certified a read
  against unordered state, not the ordered execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

from repro.bft.config import BftConfig
from repro.bft.costs import CostModel, ZERO_COSTS
from repro.bft.messages import Reply, Request
from repro.crypto.digest import digest
from repro.crypto.keys import KeyRegistry
from repro.crypto.mac import Authenticator
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.tracing import Tracer


@dataclass(frozen=True)
class ReadCertificate:
    """Proof backing one accepted read: the result, the replicas whose
    authenticated replies certified it, and which path certified it
    (``read_only`` when the 2f+1 unordered quorum held, else the ordered
    path the call fell back to).  The edge tier turns this into lease
    evidence; ``issued_at``/``accepted_at`` bound when the certified
    execution can have happened."""

    result: bytes
    result_digest: bytes
    voters: Tuple[str, ...]
    path: str                # "read_only" | "tentative" | "committed"
    view: int
    issued_at: float         # sim time the read was issued
    accepted_at: float       # sim time the quorum completed

    @property
    def fell_back(self) -> bool:
        """True when the read-only quorum never formed and the ordered
        path answered instead (banked read-only votes were discarded)."""
        return self.path != "read_only"


@dataclass
class _PendingCall:
    request: Request
    callback: Callable[[bytes], None]
    read_only: bool
    # result_digest -> set of replica ids vouching for it
    votes: Dict[bytes, Set[str]] = field(default_factory=dict)
    results: Dict[bytes, bytes] = field(default_factory=dict)
    # Ordered-but-uncommitted (tentative execution) votes: 2f+1 matching
    # form a commit certificate.
    tentative_votes: Dict[bytes, Set[str]] = field(default_factory=dict)
    # Read-only-optimization votes, kept apart from the ordered quorums:
    # they certify a read against *unordered* state and become worthless
    # the moment the call falls back to the ordered path.
    ro_votes: Dict[bytes, Set[str]] = field(default_factory=dict)
    retries: int = 0
    nudged: bool = False  # fast retransmit for a missing full result
    started_at: float = 0.0  # invoke time, for phase.request_to_reply


class BftClient(Node):
    """Protocol client; use :class:`SyncClient` for imperative call style."""

    def __init__(self, client_id: str, network: Network, config: BftConfig,
                 registry: KeyRegistry, tracer: Optional[Tracer] = None,
                 costs: CostModel = ZERO_COSTS):
        super().__init__(client_id, network)
        self.config = config
        self.registry = registry
        self.tracer = tracer or Tracer(keep_events=False)
        self.costs = costs
        registry.enroll(client_id)
        self.view_estimate = 0
        self._next_request_id = 0
        self._pending: Optional[_PendingCall] = None
        self._retry_timer = self.make_timer(config.client_retry_timeout,
                                            self._on_retry)
        self._nudge_timer = self.make_timer(config.client_nudge_grace,
                                            self._on_nudge_grace)
        self.requests_sent = 0
        self.retransmissions = 0       # timeout-driven (backoff escalates)
        self.fast_retransmissions = 0  # instant nudges (backoff untouched)
        self.cancelled = 0
        # (path, voters) of the most recent acceptance — what
        # collect_read_certificate packages into a ReadCertificate.
        self._last_accept: Tuple[str, Tuple[str, ...]] = ("", ())

    @property
    def busy(self) -> bool:
        return self._pending is not None

    # -- issuing requests ----------------------------------------------------------

    def invoke(self, op: bytes, callback: Callable[[bytes], None],
               read_only: bool = False) -> int:
        """Issue one operation; ``callback(result)`` fires on acceptance.

        One outstanding operation per client, as in BFT.  Returns the
        request id.
        """
        if self._pending is not None:
            raise RuntimeError(f"client {self.node_id} already has an "
                               f"outstanding request")
        self._next_request_id += 1
        request = Request(self.node_id, self._next_request_id, op,
                          read_only=read_only and
                          self.config.read_only_optimization)
        self._pending = _PendingCall(request, callback, request.read_only,
                                     started_at=self.now)
        self.requests_sent += 1
        self.tracer.metrics.inc("client.requests")
        self._transmit(first=True)
        self._retry_timer.restart(self.config.client_retry_timeout)
        return self._next_request_id

    def collect_read_certificate(
            self, op: bytes,
            callback: Callable[[ReadCertificate], None]) -> int:
        """Read via the read-only fast path, surfacing the accepting
        quorum as a :class:`ReadCertificate`.

        Shares :meth:`invoke`'s machinery wholesale — vote banking per
        digest, the ordered fallback after two read-only retries, and
        the fallback's clearing of banked ``ro_votes`` (votes certifying
        a read of unordered state must never count toward the ordered
        quorums).  The certificate reports which path finally accepted,
        so lease-refresh callers know whether the read was certified
        unordered (fresh at ``accepted_at``) or ordered.
        """
        issued_at = self.now

        def wrap(result: bytes) -> None:
            path, voters = self._last_accept
            callback(ReadCertificate(
                result=result, result_digest=digest(result), voters=voters,
                path=path, view=self.view_estimate, issued_at=issued_at,
                accepted_at=self.now))

        return self.invoke(op, wrap, read_only=True)

    def _transmit(self, first: bool) -> None:
        call = self._pending
        request = call.request
        # MAC-over-digest: hash the request once, MAC the digest per replica.
        request.auth = Authenticator.create(
            self.registry, self.node_id, self.config.replica_ids,
            request.digest())
        self.charge(self.costs.auth_create(len(self.config.replica_ids),
                                           len(request.body())))
        if call.read_only or not first:
            self.multicast(self.config.replica_ids, request)
        else:
            self.send(self.config.primary_of(self.view_estimate), request)

    def _on_retry(self) -> None:
        """Retry timeout fired: retransmit and escalate the backoff.

        Only timeout-driven retransmissions advance ``call.retries`` (and
        with it the exponential backoff and the read-only fallback);
        instant nudges go through :meth:`_fast_retransmit`.
        """
        call = self._pending
        if call is None:
            return
        call.retries += 1
        self.retransmissions += 1
        self.tracer.metrics.inc("client.retransmissions")
        if call.read_only and call.retries >= 2:
            # Fall back to the ordered path: reissue as a normal request
            # under the same request id.  Every vote gathered on the
            # read-only attempt is discarded — in particular ro_votes,
            # which must never count toward the ordered quorums (late
            # read-only replies are additionally gated in handle_reply).
            call.read_only = False
            call.request = Request(self.node_id, call.request.request_id,
                                   call.request.op, read_only=False)
            call.votes.clear()
            call.results.clear()
            call.tentative_votes.clear()
            call.ro_votes.clear()
            self.tracer.metrics.inc("client.read_only_fallbacks")
        self._nudge_timer.stop()
        self._transmit(first=False)
        timeout = self.config.client_retry_timeout * min(2 ** call.retries, 16)
        self._retry_timer.restart(timeout)

    def _fast_retransmit(self) -> None:
        """Retransmit immediately without touching the backoff schedule.

        Used when the result is already certified by f+1 digests but no
        replica delivered the full bytes: the retry timer keeps running at
        its current deadline, ``call.retries`` stays put (so the next real
        timeout does not double early), and a read-only request does not
        burn one of its two attempts before the ordered fallback.
        """
        if self._pending is None:
            return
        self.fast_retransmissions += 1
        self.tracer.metrics.inc("client.fast_retransmissions")
        self._transmit(first=False)

    def _on_nudge_grace(self) -> None:
        """The grace window after a bytes-less commit certificate expired
        with the full result still missing: nudge now."""
        call = self._pending
        if call is None or call.nudged:
            return
        call.nudged = True
        self._fast_retransmit()

    def cancel(self) -> bool:
        """Abandon the outstanding call (no callback will fire).

        Open-loop drivers use this when a request blows its deadline: the
        logical session gives up, the pool client becomes free for the
        next arrival, and any late replies are ignored (stale request id).
        Returns True if there was a call to abandon.
        """
        if self._pending is None:
            return False
        self._pending = None
        self._retry_timer.stop()
        self._nudge_timer.stop()
        self.cancelled += 1
        self.tracer.metrics.inc("client.cancelled")
        return True

    # -- accepting replies --------------------------------------------------------------

    def handle_reply(self, src, reply: Reply) -> None:
        call = self._pending
        if call is None or reply.request_id != call.request.request_id:
            return
        if src != reply.replica_id or src not in self.config.replica_ids:
            return
        # An unauthenticated reply proves nothing about its sender: any
        # network party could have forged it, so it must not contribute a
        # quorum vote (f+1 counts only hold if every vote is from a
        # distinct authenticated replica).
        if reply.auth is None or reply.auth.sender != src:
            return
        self.charge(self.costs.auth_verify(len(reply.body())))
        if not reply.auth.verify(self.registry, self.node_id,
                                 reply.digest()):
            return
        if reply.result is not None:
            if digest(reply.result) != reply.result_digest:
                return
            call.results[reply.result_digest] = reply.result
        self.view_estimate = max(self.view_estimate, reply.view)
        if reply.read_only:
            # A straggling reply from an abandoned read-only attempt must
            # not vote on the ordered request now in flight under the
            # same id: it certifies a read of unordered state.
            if not call.read_only:
                return
            votes = call.ro_votes
        elif reply.tentative:
            votes = call.tentative_votes
        else:
            votes = call.votes
        votes.setdefault(reply.result_digest, set()).add(src)
        self._check_accept()

    def _check_accept(self) -> None:
        call = self._pending
        # Read-only votes only exist while the call is still read-only —
        # the fallback clears them and handle_reply gates late arrivals.
        assert call.read_only or not call.ro_votes, \
            "stale read-only votes on an ordered request"
        # Ordered committed replies: f+1 matching.
        for rdigest, voters in call.votes.items():
            if len(voters) < self.config.weak_quorum:
                continue
            if rdigest in call.results:
                self._accept(call.results[rdigest], "committed", voters)
                return
            # Result certified by f+1 digests but the designated replica
            # never sent the full bytes (it may be rebooting): retransmit
            # immediately — replicas resend cached replies in full.
            if not call.nudged:
                call.nudged = True
                self._fast_retransmit()
                return
        # Commit certificate: 2f+1 matching tentative replies prove the
        # request's ordering survives any view change.
        for rdigest, voters in call.tentative_votes.items():
            if len(voters) < self.config.quorum:
                continue
            if rdigest in call.results:
                self._accept(call.results[rdigest], "tentative", voters)
                return
            # The certificate is complete but the designated replica's
            # full-result reply has not arrived.  Unlike the committed
            # path (where the missing replica may be gone for good), a
            # 2f+1 tentative quorum usually means the last reply is
            # simply still in flight — give it a short grace window
            # before retransmitting, so the common case costs nothing
            # and a mute replier only costs the grace.
            if not call.nudged and not self._nudge_timer.running:
                self._nudge_timer.start(self.config.client_nudge_grace)
            return
        # Read-only optimization: 2f+1 matching read-only replies.
        for rdigest, voters in call.ro_votes.items():
            if len(voters) >= self.config.quorum and rdigest in call.results:
                self._accept(call.results[rdigest], "read_only", voters)
                return

    def _accept(self, result: bytes, path: str = "committed",
                voters: Set[str] = frozenset()) -> None:
        call = self._pending
        self._pending = None
        self._retry_timer.stop()
        self._nudge_timer.stop()
        self._last_accept = (path, tuple(sorted(voters)))
        self.tracer.metrics.inc(f"client.accept_{path}")
        self.tracer.emit(self.now, self.node_id, "result_accepted",
                         request_id=call.request.request_id)
        self.tracer.observe_phase("request_to_reply",
                                  self.now - call.started_at)
        call.callback(result)


class SyncClient:
    """Imperative wrapper: ``call()`` drives the scheduler to completion.

    Lets workload code (Andrew, OO7) be written as straight-line Python
    while the whole replicated system advances underneath each call.
    """

    def __init__(self, client: BftClient, max_events_per_call: int = 5_000_000):
        self.client = client
        self.scheduler = client.scheduler
        self.max_events = max_events_per_call

    def call(self, op: bytes, read_only: bool = False) -> bytes:
        box: dict = {}
        self.client.invoke(op, lambda result: box.update(result=result),
                           read_only=read_only)
        done = self.scheduler.run_until_idle_or(lambda: "result" in box,
                                                self.max_events)
        if not done:
            raise TimeoutError(
                f"client {self.client.node_id}: no result for request "
                f"{self.client._next_request_id} (queue drained or event "
                f"budget exhausted)")
        return box["result"]

    @property
    def now(self) -> float:
        return self.scheduler.now
