"""Proactive recovery: periodic software rejuvenation of replicas.

A watchdog fires at each replica on a staggered schedule (so the group
stays available while one member is down).  The replica then:

1. **shutdown** — persists what the service needs to survive a reboot
   (the conformance representation, in BASE terms);
2. **reboot** — a fixed simulated delay (the paper simulated reboots by
   sleeping 30 s);
3. **restart** — reloads the saved representation, refreshes its session
   keys (so stolen keys become useless), and marks its whole abstract
   state dirty;
4. **fetch and check** — solicits stable checkpoint certificates from the
   other replicas and runs hierarchical state transfer, which recomputes
   and checks the digest of every abstract object and fetches only the
   corrupt or out-of-date ones.

Durations of the four phases are recorded per recovery — Table IV of the
paper reports exactly this breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.bft.messages import RecoveryRequest


@dataclass
class RecoveryRecord:
    """Timing breakdown of one recovery (Table IV rows)."""

    replica_id: str
    started_at: float
    shutdown: float = 0.0
    reboot: float = 0.0
    restart: float = 0.0
    fetch_and_check: float = 0.0
    completed_at: float = 0.0
    objects_fetched: int = 0

    @property
    def total(self) -> float:
        return self.shutdown + self.reboot + self.restart + self.fetch_and_check


class RecoveryManager:
    """Watchdog-driven proactive recovery for one replica."""

    def __init__(self, replica) -> None:
        self.replica = replica
        self.recovering = False
        #: True only during shutdown+reboot: the replica is completely
        #: offline.  During fetch-and-check it participates in agreement
        #: again (the paper: only execution waits for the state check).
        self.rebooting = False
        self.epoch = 0
        self.records: List[RecoveryRecord] = []
        self._current: Optional[RecoveryRecord] = None
        self._fetch_started_at = 0.0
        self._empty_cert_replies: set = set()
        #: CPU consumed by the state *check* (get_obj + digest of every
        #: abstract object).  Runs interleaved with fetch round-trips
        #: (paper: "checks are performed while waiting for replies"), so
        #: it extends the fetch-and-check phase instead of stalling the
        #: replica's protocol processing.
        self.background_cpu = 0.0
        config = replica.config
        self._watchdog = replica.make_timer(config.recovery_interval or 1.0,
                                            self._on_watchdog)
        if config.recovery_interval > 0:
            # Stagger in *reverse* index order: primaries rotate forward
            # through views, so recovering backwards avoids the resonance
            # where every view's new primary is the next replica to reboot.
            index = config.n - 1 - config.replica_index(replica.node_id)
            first = config.recovery_interval + index * config.recovery_stagger
            replica.after(first, self._arm)

    def _arm(self) -> None:
        self.start_recovery()

    def _on_watchdog(self) -> None:
        self.start_recovery()

    # -- the recovery sequence ---------------------------------------------------

    def start_recovery(self) -> None:
        """Begin rejuvenation now (also callable directly by tests)."""
        r = self.replica
        if self.recovering or r.crashed:
            self._rearm()
            return
        self.recovering = True
        self.rebooting = True
        self.epoch += 1
        self._current = RecoveryRecord(r.node_id, r.now)
        r.trace("recovery_started", epoch=self.epoch)
        r.vc_timer.stop()
        r.waiting.clear()

        shutdown_time = r.state.shutdown()
        self._current.shutdown = shutdown_time
        self._current.reboot = r.config.reboot_delay
        r.after(shutdown_time + r.config.reboot_delay, self._after_reboot)

    def _after_reboot(self) -> None:
        r = self.replica
        # Fresh session keys: MACs computed with keys stolen before the
        # reboot no longer verify at this replica.
        r.registry.refresh_session_keys(r.node_id)
        restart_time = r.state.restart()
        self._current.restart = restart_time
        r.state.mark_all_dirty()
        r.after(restart_time, self._begin_fetch_and_check)

    def _begin_fetch_and_check(self) -> None:
        r = self.replica
        self.rebooting = False
        self._fetch_started_at = r.now
        self.background_cpu = 0.0
        self._empty_cert_replies.clear()
        r.trace("recovery_fetching", epoch=self.epoch)
        req = RecoveryRequest(r.node_id, self.epoch)
        r.sign_msg(req)
        r.multicast(r.other_replicas, req)
        r.transfer.completion_callbacks.append(self._on_transfer_complete)
        r.transfer.solicit_certs()

    def note_empty_cert(self, src: str) -> None:
        """A peer had no stable checkpoint yet (we recovered at seq 0)."""
        r = self.replica
        if not self.recovering:
            return
        self._empty_cert_replies.add(src)
        # f+1 empty replies guarantee one correct replica reports no
        # stable checkpoint yet (demanding 2f+1 would deadlock recovery
        # when another replica is crashed).
        if (len(self._empty_cert_replies) >= r.config.weak_quorum
                and not r.transfer.active):
            # Everyone is still at the initial state; verify ours in place.
            r.state.refresh_dirty()
            self._finish_after_checks()

    def _on_transfer_complete(self, seq: int) -> None:
        if self.recovering:
            self._finish_after_checks()

    def _finish_after_checks(self) -> None:
        """Complete once the background check CPU — overlapped with the
        fetch round-trips — has also elapsed."""
        r = self.replica
        elapsed = r.now - self._fetch_started_at
        remaining = max(0.0, self.background_cpu - elapsed)
        if remaining > 0:
            r.after(remaining, self._finish,
                    r.transfer.objects_fetched_total)
        else:
            self._finish(r.transfer.objects_fetched_total)

    def _finish(self, objects_total: int) -> None:
        r = self.replica
        rec = self._current
        rec.fetch_and_check = r.now - self._fetch_started_at
        rec.completed_at = r.now
        rec.objects_fetched = objects_total
        self.records.append(rec)
        self._current = None
        self.recovering = False
        r.trace("recovery_complete", epoch=self.epoch,
                total=rec.total)
        # Table-IV breakdown, one observation per phase per recovery.
        metrics = r.tracer.metrics
        metrics.observe("recovery.shutdown", rec.shutdown)
        metrics.observe("recovery.reboot", rec.reboot)
        metrics.observe("recovery.restart", rec.restart)
        metrics.observe("recovery.fetch_and_check", rec.fetch_and_check)
        metrics.observe("recovery.total", rec.total)
        metrics.inc("recovery.completed")
        self._rearm()
        r.try_execute()

    def _rearm(self) -> None:
        if self.replica.config.recovery_interval > 0:
            interval = self.replica.config.recovery_interval
            stagger_span = self.replica.config.recovery_stagger * \
                self.replica.config.n
            self._watchdog.restart(max(interval, stagger_span))

    # -- serving side ---------------------------------------------------------------

    def on_recovery_request(self, src, msg: RecoveryRequest) -> None:
        """A peer announced recovery: reply with our stable checkpoint cert
        (the transfer manager handles the actual FETCH-CERT exchange, so
        here we simply note the event for diagnostics)."""
        r = self.replica
        if src != msg.replica_id or not r.verify_sig(src, msg):
            return
        r.trace("peer_recovering", peer=src, epoch=msg.epoch)
