"""BFT protocol messages.

Each message exposes:

- ``kind`` — dispatch key used by :class:`repro.sim.Node`;
- ``body()`` — canonical bytes covered by MACs/signatures (cached);
- ``digest()`` — SHA-256 of the body;
- ``wire_size()`` — bytes charged to the network, body + authentication.

Authentication tags (``auth`` for MAC authenticators, ``sig`` for
signatures) ride outside the body and are attached by the sender.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.crypto.digest import digest as sha_digest
from repro.crypto.mac import MAC_SIZE
from repro.crypto.signatures import SIGNATURE_SIZE
from repro.encoding.canonical import canonical

NULL_CLIENT = "__null__"


class Message:
    """Base for protocol messages; subclasses define ``_fields()``."""

    kind = "message"

    __slots__ = ("_body", "_digest", "auth", "sig")

    def __init__(self) -> None:
        self._body: Optional[bytes] = None
        self._digest: Optional[bytes] = None
        self.auth = None   # Optional[Authenticator]
        self.sig = None    # Optional[bytes]

    def _fields(self) -> tuple:
        raise NotImplementedError

    def body(self) -> bytes:
        if self._body is None:
            self._body = canonical((self.kind,) + self._fields())
        return self._body

    def digest(self) -> bytes:
        if self._digest is None:
            self._digest = sha_digest(self.body())
        return self._digest

    def wire_size(self) -> int:
        size = len(self.body())
        if self.auth is not None:
            size += self.auth.wire_size()
        if self.sig is not None:
            size += SIGNATURE_SIZE
        return size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}{self._fields()!r}"


class Request(Message):
    """Client request to execute ``op`` (opaque service-level bytes)."""

    kind = "request"

    __slots__ = ("client_id", "request_id", "op", "read_only")

    def __init__(self, client_id: str, request_id: int, op: bytes,
                 read_only: bool = False):
        super().__init__()
        self.client_id = client_id
        self.request_id = request_id
        self.op = op
        self.read_only = read_only

    def _fields(self) -> tuple:
        return (self.client_id, self.request_id, self.op, self.read_only)

    @classmethod
    def null(cls) -> "Request":
        """The no-op request used to fill sequence-number gaps after a
        view change."""
        return cls(NULL_CLIENT, 0, b"")

    @property
    def is_null(self) -> bool:
        return self.client_id == NULL_CLIENT


class Reply(Message):
    """Replica's reply; carries the full result or only its digest when
    the tentative-reply optimization designates another replica."""

    kind = "reply"

    __slots__ = ("view", "request_id", "client_id", "replica_id", "result",
                 "result_digest", "tentative", "read_only")

    def __init__(self, view: int, request_id: int, client_id: str,
                 replica_id: str, result: Optional[bytes],
                 result_digest: bytes, tentative: bool = False,
                 read_only: bool = False):
        super().__init__()
        self.view = view
        self.request_id = request_id
        self.client_id = client_id
        self.replica_id = replica_id
        self.result = result
        self.result_digest = result_digest
        self.tentative = tentative
        # Distinguishes read-only-optimization replies (executed against
        # the replica's current state, never ordered) from ordered
        # tentative replies (executed at prepared, commit pending).  A
        # client that fell back from the read-only path must not count
        # straggling read-only replies toward the ordered quorum.
        self.read_only = read_only

    def _fields(self) -> tuple:
        return (self.view, self.request_id, self.client_id, self.replica_id,
                self.result, self.result_digest, self.tentative,
                self.read_only)


class PrePrepare(Message):
    """Primary's ordering proposal for a batch of requests at ``seq``.

    Carries the requests themselves (piggybacked, as in the BFT
    implementation) plus the primary's nondeterministic value for the
    batch (BASE's ``propose_value`` output).
    """

    kind = "pre_prepare"

    __slots__ = ("view", "seq", "requests", "nondet")

    def __init__(self, view: int, seq: int, requests: Tuple[Request, ...],
                 nondet: bytes):
        super().__init__()
        self.view = view
        self.seq = seq
        self.requests = tuple(requests)
        self.nondet = nondet

    def _fields(self) -> tuple:
        return (self.view, self.seq,
                tuple(r.digest() for r in self.requests), self.nondet)

    def batch_digest(self) -> bytes:
        """Digest that prepares/commits certify (covers seq/view/batch/nondet)."""
        return self.digest()

    def wire_size(self) -> int:
        return super().wire_size() + sum(r.wire_size() for r in self.requests)


class Prepare(Message):
    kind = "prepare"

    __slots__ = ("view", "seq", "batch_digest", "replica_id")

    def __init__(self, view: int, seq: int, batch_digest: bytes, replica_id: str):
        super().__init__()
        self.view = view
        self.seq = seq
        self.batch_digest = batch_digest
        self.replica_id = replica_id

    def _fields(self) -> tuple:
        return (self.view, self.seq, self.batch_digest, self.replica_id)


class Commit(Message):
    kind = "commit"

    __slots__ = ("view", "seq", "batch_digest", "replica_id")

    def __init__(self, view: int, seq: int, batch_digest: bytes, replica_id: str):
        super().__init__()
        self.view = view
        self.seq = seq
        self.batch_digest = batch_digest
        self.replica_id = replica_id

    def _fields(self) -> tuple:
        return (self.view, self.seq, self.batch_digest, self.replica_id)


class CheckpointMsg(Message):
    """Announcement that a replica produced the checkpoint at ``seq``.

    Covers both the abstract-state root digest and the digest of the
    client reply cache — the reply cache is part of the replicated state
    (as in BFT), so replicas that catch up by state transfer de-duplicate
    retransmitted requests identically to those that executed them.
    """

    kind = "checkpoint"

    __slots__ = ("seq", "root_digest", "table_digest", "replica_id")

    def __init__(self, seq: int, root_digest: bytes, table_digest: bytes,
                 replica_id: str):
        super().__init__()
        self.seq = seq
        self.root_digest = root_digest
        self.table_digest = table_digest
        self.replica_id = replica_id

    def _fields(self) -> tuple:
        return (self.seq, self.root_digest, self.table_digest,
                self.replica_id)


@dataclass(frozen=True)
class PreparedProof:
    """Evidence carried in a VIEW-CHANGE that a batch prepared at a replica:
    the pre-prepare (with its requests) plus the view it prepared in."""

    view: int
    seq: int
    batch_digest: bytes
    pre_prepare: PrePrepare

    def summary(self) -> tuple:
        return (self.view, self.seq, self.batch_digest)


class ViewChange(Message):
    """Signed request to move to ``view``; carries the replica's stable
    checkpoint proof and its prepared certificates above it."""

    kind = "view_change"

    __slots__ = ("view", "last_stable", "checkpoint_proof", "prepared",
                 "replica_id")

    def __init__(self, view: int, last_stable: int,
                 checkpoint_proof: Tuple[CheckpointMsg, ...],
                 prepared: Tuple[PreparedProof, ...], replica_id: str):
        super().__init__()
        self.view = view
        self.last_stable = last_stable
        self.checkpoint_proof = tuple(checkpoint_proof)
        self.prepared = tuple(prepared)
        self.replica_id = replica_id

    def _fields(self) -> tuple:
        return (self.view, self.last_stable,
                tuple(m.digest() for m in self.checkpoint_proof),
                tuple(p.summary() for p in self.prepared),
                self.replica_id)

    def wire_size(self) -> int:
        return (super().wire_size()
                + sum(m.wire_size() for m in self.checkpoint_proof)
                + sum(p.pre_prepare.wire_size() for p in self.prepared))


class NewView(Message):
    """New primary's signed certificate of 2f+1 view-changes plus the
    pre-prepares it re-proposes for the new view."""

    kind = "new_view"

    __slots__ = ("view", "view_changes", "pre_prepares", "replica_id")

    def __init__(self, view: int, view_changes: Tuple[ViewChange, ...],
                 pre_prepares: Tuple[PrePrepare, ...], replica_id: str):
        super().__init__()
        self.view = view
        self.view_changes = tuple(view_changes)
        self.pre_prepares = tuple(pre_prepares)
        self.replica_id = replica_id

    def _fields(self) -> tuple:
        return (self.view,
                tuple(m.digest() for m in self.view_changes),
                tuple(m.digest() for m in self.pre_prepares),
                self.replica_id)

    def wire_size(self) -> int:
        return (super().wire_size()
                + sum(m.wire_size() for m in self.view_changes)
                + sum(m.wire_size() for m in self.pre_prepares))


# -- state transfer ---------------------------------------------------------


class FetchCert(Message):
    """Ask a replica for its latest stable checkpoint certificate."""

    kind = "fetch_cert"

    __slots__ = ("replica_id", "nonce")

    def __init__(self, replica_id: str, nonce: int):
        super().__init__()
        self.replica_id = replica_id
        self.nonce = nonce

    def _fields(self) -> tuple:
        return (self.replica_id, self.nonce)


class CertReply(Message):
    """Latest stable checkpoint certificate, plus (when one exists) the
    sender's latest NEW-VIEW message so that a recovering replica can
    catch up to the current view — the NEW-VIEW is self-validating."""

    kind = "cert_reply"

    __slots__ = ("replica_id", "nonce", "cert", "new_view")

    def __init__(self, replica_id: str, nonce: int,
                 cert: Tuple[CheckpointMsg, ...], new_view=None):
        super().__init__()
        self.replica_id = replica_id
        self.nonce = nonce
        self.cert = tuple(cert)
        self.new_view = new_view

    def _fields(self) -> tuple:
        return (self.replica_id, self.nonce,
                tuple(m.digest() for m in self.cert),
                self.new_view.digest() if self.new_view is not None
                else None)

    def wire_size(self) -> int:
        size = super().wire_size() + sum(m.wire_size() for m in self.cert)
        if self.new_view is not None:
            size += self.new_view.wire_size()
        return size


class FetchMeta(Message):
    """Fetch partition-tree metadata: the children of node ``index`` at
    tree ``level``, as of the stable checkpoint ``seq``."""

    kind = "fetch_meta"

    __slots__ = ("replica_id", "seq", "level", "index")

    def __init__(self, replica_id: str, seq: int, level: int, index: int):
        super().__init__()
        self.replica_id = replica_id
        self.seq = seq
        self.level = level
        self.index = index

    def _fields(self) -> tuple:
        return (self.replica_id, self.seq, self.level, self.index)


class MetaReply(Message):
    kind = "meta_reply"

    __slots__ = ("replica_id", "seq", "level", "index", "children")

    def __init__(self, replica_id: str, seq: int, level: int, index: int,
                 children: Tuple[Tuple[bytes, int], ...]):
        super().__init__()
        self.replica_id = replica_id
        self.seq = seq
        self.level = level
        self.index = index
        self.children = tuple(children)  # (digest, last_modified_checkpoint)

    def _fields(self) -> tuple:
        return (self.replica_id, self.seq, self.level, self.index,
                self.children)


class FetchObject(Message):
    kind = "fetch_object"

    __slots__ = ("replica_id", "seq", "index")

    def __init__(self, replica_id: str, seq: int, index: int):
        super().__init__()
        self.replica_id = replica_id
        self.seq = seq
        self.index = index

    def _fields(self) -> tuple:
        return (self.replica_id, self.seq, self.index)


class ObjectReply(Message):
    kind = "object_reply"

    __slots__ = ("replica_id", "seq", "index", "value")

    def __init__(self, replica_id: str, seq: int, index: int, value: bytes):
        super().__init__()
        self.replica_id = replica_id
        self.seq = seq
        self.index = index
        self.value = value

    def _fields(self) -> tuple:
        return (self.replica_id, self.seq, self.index, self.value)


class FetchTable(Message):
    """Fetch the client reply cache as of stable checkpoint ``seq``."""

    kind = "fetch_table"

    __slots__ = ("replica_id", "seq")

    def __init__(self, replica_id: str, seq: int):
        super().__init__()
        self.replica_id = replica_id
        self.seq = seq

    def _fields(self) -> tuple:
        return (self.replica_id, self.seq)


class TableReply(Message):
    kind = "table_reply"

    __slots__ = ("replica_id", "seq", "blob")

    def __init__(self, replica_id: str, seq: int, blob: bytes):
        super().__init__()
        self.replica_id = replica_id
        self.seq = seq
        self.blob = blob

    def _fields(self) -> tuple:
        return (self.replica_id, self.seq, self.blob)


class RecoveryRequest(Message):
    """Signed announcement that a replica is recovering; peers respond
    with their stable checkpoint certificates."""

    kind = "recovery_request"

    __slots__ = ("replica_id", "epoch")

    def __init__(self, replica_id: str, epoch: int):
        super().__init__()
        self.replica_id = replica_id
        self.epoch = epoch

    def _fields(self) -> tuple:
        return (self.replica_id, self.epoch)


# -- edge tier (bounded-staleness reads) ------------------------------------


class EdgeRead(Message):
    """An edge node's single-replica read: execute ``op`` against current
    state and answer with staleness evidence (no ordering, no quorum)."""

    kind = "edge_read"

    __slots__ = ("edge_id", "nonce", "op")

    def __init__(self, edge_id: str, nonce: int, op: bytes):
        super().__init__()
        self.edge_id = edge_id
        self.nonce = nonce
        self.op = op

    def _fields(self) -> tuple:
        return (self.edge_id, self.nonce, self.op)


class EdgeReadReply(Message):
    """One replica's answer to an :class:`EdgeRead`, carrying its version
    vector: the stable checkpoint it last proved (``checkpoint_seq`` and
    the abstract-state ``root_digest``) plus the sim-time lease anchor.

    Sim times ride as integer microseconds — canonical wire payloads
    must not carry floats (their bit patterns are not portable across
    encoders; see the WIRE-FLOAT lint rule).
    """

    kind = "edge_read_reply"

    __slots__ = ("replica_id", "edge_id", "nonce", "result", "result_digest",
                 "checkpoint_seq", "root_digest", "stable_at_us",
                 "issued_at_us")

    def __init__(self, replica_id: str, edge_id: str, nonce: int,
                 result: bytes, result_digest: bytes, checkpoint_seq: int,
                 root_digest: bytes, stable_at_us: int, issued_at_us: int):
        super().__init__()
        self.replica_id = replica_id
        self.edge_id = edge_id
        self.nonce = nonce
        self.result = result
        self.result_digest = result_digest
        self.checkpoint_seq = checkpoint_seq
        self.root_digest = root_digest
        self.stable_at_us = stable_at_us    # when the anchor went stable
        self.issued_at_us = issued_at_us    # when this read executed

    def _fields(self) -> tuple:
        return (self.replica_id, self.edge_id, self.nonce, self.result,
                self.result_digest, self.checkpoint_seq, self.root_digest,
                self.stable_at_us, self.issued_at_us)
