"""Byzantine behavior hooks for fault-injection testing.

A replica with a :class:`Behavior` attached consults it at well-defined
points.  The canned behaviors below cover the failure modes the BFT/BASE
safety arguments must survive; tests combine them with network faults.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Tuple


class Behavior:
    """Default behavior: honest.  Subclasses override hooks to misbehave.

    Behaviors that need to schedule their mischief (delaying or replaying
    messages) get the replica via :meth:`bind`, which the replica calls
    when the behavior is attached; purely functional behaviors ignore it.
    """

    #: The node this behavior is attached to (set by :meth:`bind`).
    node = None

    def bind(self, node) -> "Behavior":
        """Attach to ``node``; called when assigned to a replica."""
        self.node = node
        return self

    def rewrite_outgoing(self, msg, dst) -> Optional[object]:
        """Return a replacement message, the original, or None to drop."""
        return msg

    def corrupt_reply_result(self, result: bytes) -> bytes:
        """Tamper with an execution result before replying."""
        return result

    def bad_nondet(self, nondet: bytes) -> bytes:
        """Tamper with the primary's nondeterministic value proposal."""
        return nondet

    def equivocate_pre_prepare(self) -> bool:
        """Primary: send conflicting pre-prepares to different backups."""
        return False


HONEST = Behavior()


class MuteBehavior(Behavior):
    """Sends nothing at all (fail-silent while still receiving)."""

    def rewrite_outgoing(self, msg, dst):
        return None


class WrongReplyBehavior(Behavior):
    """Replies with corrupted results; otherwise follows the protocol."""

    def corrupt_reply_result(self, result: bytes) -> bytes:
        return b"\xff" + result


class BadNondetBehavior(Behavior):
    """Faulty primary proposing a bogus nondeterministic value."""

    def __init__(self, value: bytes = b"\x00" * 8):
        self.value = value

    def bad_nondet(self, nondet: bytes) -> bytes:
        return self.value


class EquivocatingPrimaryBehavior(Behavior):
    """Faulty primary that sends different orderings to different backups."""

    def equivocate_pre_prepare(self) -> bool:
        return True


class ReplayBehavior(Behavior):
    """Re-sends stale messages alongside the live protocol traffic.

    Correct replicas must treat a replayed PRE-PREPARE, PREPARE, or
    CHECKPOINT as the duplicate it is: sequence numbers outside the
    watermarks are rejected, and in-window duplicates are idempotent.
    Every ``every``-th outgoing message additionally re-sends the oldest
    message in a bounded history to its original destination.
    """

    def __init__(self, history: int = 8, every: int = 2):
        self.history = history
        self.every = every
        self._stale: deque = deque(maxlen=history)
        self._sent = 0
        self.replayed = 0

    def rewrite_outgoing(self, msg, dst):
        self._sent += 1
        if (self.node is not None and self._stale
                and self._sent % self.every == 0):
            old_dst, old_msg = self._stale[0]
            # Straight onto the fabric: a replayed message must not go
            # back through this hook (it would replay recursively).
            self.node.network.send(self.node.node_id, old_dst, old_msg)
            self.replayed += 1
        self._stale.append((dst, msg))
        return msg


class DelayBehavior(Behavior):
    """Holds outgoing messages for a fixed simulated interval.

    A slow-but-honest replica: everything it sends arrives ``delay``
    seconds late (on top of network latency).  With ``kinds`` set, only
    messages of those kinds are held and the rest flow normally — e.g.
    delaying only COMMITs to stretch the commit phase.
    """

    def __init__(self, delay: float = 0.05,
                 kinds: Optional[Tuple[str, ...]] = None):
        self.delay = delay
        self.kinds = tuple(kinds) if kinds else None
        self.held = 0

    def rewrite_outgoing(self, msg, dst):
        node = self.node
        if node is None:
            return msg
        if self.kinds and getattr(msg, "kind", None) not in self.kinds:
            return msg
        self.held += 1
        node.scheduler.schedule(self.delay, node.network.send,
                                node.node_id, dst, msg)
        return None


class UnauthReplyBehavior(Behavior):
    """Sends *wrong* replies with the authenticator stripped entirely.

    A client that accepts auth-less replies as quorum votes can be fooled
    by a single faulty replica (it may impersonate many voters, or — as
    the regression that motivated this behavior showed — have its
    unverifiable vote counted toward f+1); a correct client must discard
    these outright.
    """

    def corrupt_reply_result(self, result: bytes) -> bytes:
        return b"\xfe" + result

    def rewrite_outgoing(self, msg, dst):
        if getattr(msg, "kind", None) == "reply":
            msg.auth = None
        return msg


class ForgedAuthBehavior(Behavior):
    """Sends messages whose authenticators are garbage."""

    def rewrite_outgoing(self, msg, dst):
        auth = getattr(msg, "auth", None)
        if auth is not None:
            from repro.crypto.mac import Authenticator
            msg.auth = Authenticator.forged(auth.sender, list(auth.tags))
        return msg
