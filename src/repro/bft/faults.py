"""Byzantine behavior hooks for fault-injection testing.

A replica with a :class:`Behavior` attached consults it at well-defined
points.  The canned behaviors below cover the failure modes the BFT/BASE
safety arguments must survive; tests combine them with network faults.
"""

from __future__ import annotations

from typing import Optional


class Behavior:
    """Default behavior: honest.  Subclasses override hooks to misbehave."""

    def rewrite_outgoing(self, msg, dst) -> Optional[object]:
        """Return a replacement message, the original, or None to drop."""
        return msg

    def corrupt_reply_result(self, result: bytes) -> bytes:
        """Tamper with an execution result before replying."""
        return result

    def bad_nondet(self, nondet: bytes) -> bytes:
        """Tamper with the primary's nondeterministic value proposal."""
        return nondet

    def equivocate_pre_prepare(self) -> bool:
        """Primary: send conflicting pre-prepares to different backups."""
        return False


HONEST = Behavior()


class MuteBehavior(Behavior):
    """Sends nothing at all (fail-silent while still receiving)."""

    def rewrite_outgoing(self, msg, dst):
        return None


class WrongReplyBehavior(Behavior):
    """Replies with corrupted results; otherwise follows the protocol."""

    def corrupt_reply_result(self, result: bytes) -> bytes:
        return b"\xff" + result


class BadNondetBehavior(Behavior):
    """Faulty primary proposing a bogus nondeterministic value."""

    def __init__(self, value: bytes = b"\x00" * 8):
        self.value = value

    def bad_nondet(self, nondet: bytes) -> bytes:
        return self.value


class EquivocatingPrimaryBehavior(Behavior):
    """Faulty primary that sends different orderings to different backups."""

    def equivocate_pre_prepare(self) -> bool:
        return True


class ForgedAuthBehavior(Behavior):
    """Sends messages whose authenticators are garbage."""

    def rewrite_outgoing(self, msg, dst):
        auth = getattr(msg, "auth", None)
        if auth is not None:
            from repro.crypto.mac import Authenticator
            msg.auth = Authenticator.forged(auth.sender, list(auth.tags))
        return msg
