"""Hierarchical state transfer.

An out-of-date, diverged, or recovering replica brings itself to a proven
stable checkpoint by walking the partition tree top-down: it fetches
(digest, lm) metadata for tree nodes whose digests differ from its own and
fetches only the leaf objects that are actually out-of-date or corrupt.
Every reply is self-verifying — metadata hashes up to the certified root,
object values hash to the certified leaf digests — so a lying donor can
only stall the transfer (we rotate donors on timeout), never corrupt it.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bft.messages import (
    CertReply,
    CheckpointMsg,
    FetchCert,
    FetchMeta,
    FetchObject,
    FetchTable,
    MetaReply,
    ObjectReply,
    TableReply,
)
from repro.bft.parttree import PartitionTree
from repro.crypto.digest import digest


class StateTransferManager:
    """Per-replica state-transfer protocol state (fetching and serving)."""

    RETRY_PERIOD = 1.0

    def __init__(self, replica) -> None:
        self.replica = replica
        self.active = False
        self.target_seq = 0
        self.target_root = b""
        self.target_table_digest = b""
        self._table_blob: Optional[bytes] = None
        self._table_pending = False
        self.cert: Tuple[CheckpointMsg, ...] = ()
        self._donor_index = 0
        self._attempts = 0
        # (level, index) -> expected digest of that tree node
        self._outstanding_meta: Dict[Tuple[int, int], bytes] = {}
        # leaf index -> (expected digest, lm)
        self._outstanding_objects: Dict[int, Tuple[bytes, int]] = {}
        self._fetched: Dict[int, Tuple[bytes, int]] = {}
        # leaves whose value matches but whose lm must be adopted
        self._lm_fixes: Dict[int, int] = {}
        self._progress = 0
        self._last_progress_seen = -1
        self._timer = replica.make_timer(self.RETRY_PERIOD, self._on_timeout)
        self.completion_callbacks = []
        self.objects_fetched_total = 0
        self.bytes_fetched_total = 0
        self._cert_nonce = 0
        # When the current transfer began, for phase.state_transfer
        # (kept across re-targets to a newer checkpoint mid-transfer).
        self._started_at = 0.0

    # -- initiating a transfer ---------------------------------------------------

    def initiate(self, seq: int, root: bytes, cert, force: bool = False) -> None:
        """Start fetching the stable checkpoint ``seq`` with digest ``root``.

        ``cert`` must be a valid 2f+1 checkpoint certificate; an invalid
        one is ignored (a faulty replica may try to lure us into fetching
        garbage).  ``force`` re-checks state even when we already consider
        ``seq`` stable — recovery uses it to audit a possibly corrupt state.
        """
        r = self.replica
        if self.active and seq <= self.target_seq:
            return
        if seq <= r.last_stable and not force:
            return
        if not r.valid_checkpoint_cert(seq, root, cert):
            r.trace("transfer_bad_cert", seq=seq)
            return
        r.trace("transfer_started", seq=seq)
        if not self.active:
            self._started_at = r.now
        self.active = True
        self.target_seq = seq
        self.target_root = root
        self.target_table_digest = cert[0].table_digest
        self.cert = tuple(cert)
        self._attempts = 0
        self._begin_walk()

    def _begin_walk(self) -> None:
        r = self.replica
        self._outstanding_meta.clear()
        self._outstanding_objects.clear()
        self._fetched.clear()
        self._lm_fixes.clear()
        self._table_blob = None
        self._table_pending = False
        self._progress = 0
        self._last_progress_seen = -1
        # Refresh dirty leaf digests so local comparisons are meaningful;
        # during recovery everything is dirty and this is the expensive
        # "check" phase of Table IV.
        r.state.refresh_dirty()
        local_table = r.serialize_client_table()
        if digest(local_table) != self.target_table_digest:
            self._table_pending = True
            r.send(self.donor, FetchTable(r.node_id, self.target_seq))
        if r.state.tree.root_digest == self.target_root:
            self._check_done()
            return
        self._request_meta(0, 0, self.target_root)
        self._timer.restart(self.RETRY_PERIOD)

    # -- donor management -----------------------------------------------------------

    @property
    def donor(self) -> str:
        others = self.replica.other_replicas
        return others[self._donor_index % len(others)]

    def _on_timeout(self) -> None:
        if not self.active:
            return
        if self._progress == self._last_progress_seen:
            # No progress since last tick: rotate donor and re-request.
            self._donor_index += 1
            self.replica.trace("transfer_donor_switch", donor=self.donor)
            for (level, index) in self._outstanding_meta:
                msg = FetchMeta(self.replica.node_id, self.target_seq,
                                level, index)
                self.replica.send(self.donor, msg)
            for index in self._outstanding_objects:
                msg = FetchObject(self.replica.node_id, self.target_seq, index)
                self.replica.send(self.donor, msg)
            if self._table_pending:
                self.replica.send(self.donor, FetchTable(
                    self.replica.node_id, self.target_seq))
        self._last_progress_seen = self._progress
        self._timer.restart(self.RETRY_PERIOD)

    # -- fetch requests ---------------------------------------------------------------

    def _request_meta(self, level: int, index: int, expected: bytes) -> None:
        self._outstanding_meta[(level, index)] = expected
        msg = FetchMeta(self.replica.node_id, self.target_seq, level, index)
        self.replica.send(self.donor, msg)

    def _request_object(self, index: int, expected: bytes, lm: int) -> None:
        self._outstanding_objects[index] = (expected, lm)
        msg = FetchObject(self.replica.node_id, self.target_seq, index)
        self.replica.send(self.donor, msg)

    # -- serving side --------------------------------------------------------------------

    def on_fetch_cert(self, src, msg: FetchCert) -> None:
        r = self.replica
        r.charge(r.costs.digest(64 * len(r.stable_cert)))
        reply = CertReply(r.node_id, msg.nonce, r.stable_cert,
                          new_view=r.view_changes.last_new_view)
        r.send(src, reply)

    def on_cert_reply(self, src, msg: CertReply) -> None:
        """A valid certificate is self-validating: start a transfer to the
        newest one we learn about (used after recovery restarts)."""
        r = self.replica
        recovering = r.recovery.recovering
        if msg.new_view is not None and msg.new_view.view > r.view:
            # Catch up to the current view (self-validating NEW-VIEW).
            r.view_changes.on_new_view(src, msg.new_view)
        if not msg.cert:
            r.recovery.note_empty_cert(src)
            return
        seq = msg.cert[0].seq
        root = msg.cert[0].root_digest
        if self.active and seq <= self.target_seq:
            return
        if seq < r.last_stable or (seq == r.last_stable and not recovering):
            return
        self.initiate(seq, root, msg.cert, force=recovering)

    def on_fetch_meta(self, src, msg: FetchMeta) -> None:
        r = self.replica
        children = r.state.meta_children(msg.seq, msg.level, msg.index)
        if children is None:
            return
        r.charge(r.costs.digest(64 * len(children)))
        reply = MetaReply(r.node_id, msg.seq, msg.level, msg.index,
                          tuple(children))
        r.send(src, reply)

    def on_fetch_object(self, src, msg: FetchObject) -> None:
        r = self.replica
        value = r.state.object_at(msg.seq, msg.index)
        if value is None:
            return
        # Serving costs the donor real work (reading and encoding the
        # object) — a permanently-lagging replica's constant fetching
        # slows the rest of the group, as the paper observes in the
        # heterogeneous setup.
        r.charge(r.costs.digest(len(value)))
        r.send(src, ObjectReply(r.node_id, msg.seq, msg.index, value))

    # -- fetching side ------------------------------------------------------------------------

    def on_meta_reply(self, src, msg: MetaReply) -> None:
        r = self.replica
        if not self.active or msg.seq != self.target_seq:
            return
        key = (msg.level, msg.index)
        expected = self._outstanding_meta.get(key)
        if expected is None:
            return
        if PartitionTree.combine(msg.children) != expected:
            r.trace("transfer_bad_meta", level=msg.level, index=msg.index)
            return  # donor lied; timeout will rotate
        r.charge(r.costs.digest(64 * len(msg.children)))
        del self._outstanding_meta[key]
        self._progress += 1
        tree = r.state.tree
        child_level = msg.level + 1
        base = msg.index * tree.branching
        if child_level == tree.leaf_level:
            for off, (child_digest, lm) in enumerate(msg.children):
                idx = base + off
                local_digest, local_lm = r.state.local_leaf_info(idx)
                if local_digest != child_digest:
                    self._request_object(idx, child_digest, lm)
                elif local_lm != lm:
                    # Same value, stale last-modified (we missed the
                    # checkpoints that advanced it): adopt the certified lm
                    # without fetching the object.
                    self._lm_fixes[idx] = lm
        else:
            for off, (child_digest, lm) in enumerate(msg.children):
                idx = base + off
                # Compare against our own digest for the same node.
                local_digest = self._local_node_digest(child_level, idx)
                if local_digest != child_digest:
                    self._request_meta(child_level, idx, child_digest)
        self._check_done()

    def _local_node_digest(self, level: int, index: int) -> bytes:
        tree = self.replica.state.tree
        tree.refresh()
        row = tree._digests[level]
        if index < len(row):
            return row[index]
        return b""

    def on_object_reply(self, src, msg: ObjectReply) -> None:
        r = self.replica
        if not self.active or msg.seq != self.target_seq:
            return
        expected = self._outstanding_objects.get(msg.index)
        if expected is None:
            return
        expected_digest, lm = expected
        r.charge(r.costs.digest(len(msg.value)))
        if digest(msg.value) != expected_digest:
            r.trace("transfer_bad_object", index=msg.index)
            return
        del self._outstanding_objects[msg.index]
        self._fetched[msg.index] = (msg.value, lm)
        self._progress += 1
        self.objects_fetched_total += 1
        self.bytes_fetched_total += len(msg.value)
        self._check_done()

    def on_fetch_table(self, src, msg: FetchTable) -> None:
        r = self.replica
        entry = r.table_checkpoints.get(msg.seq)
        if entry is None:
            return
        r.charge(r.costs.digest(len(entry[1])))
        r.send(src, TableReply(r.node_id, msg.seq, entry[1]))

    def on_table_reply(self, src, msg: TableReply) -> None:
        r = self.replica
        if not self.active or msg.seq != self.target_seq:
            return
        if not self._table_pending:
            return
        r.charge(r.costs.digest(len(msg.blob)))
        if digest(msg.blob) != self.target_table_digest:
            r.trace("transfer_bad_table", donor=src)
            return
        self._table_blob = msg.blob
        self._table_pending = False
        self._progress += 1
        self._check_done()

    def _check_done(self) -> None:
        if (self._outstanding_meta or self._outstanding_objects
                or self._table_pending):
            return
        self._finish(self._fetched)

    def _finish(self, objects: Dict[int, Tuple[bytes, int]]) -> None:
        r = self.replica
        for idx, lm in self._lm_fixes.items():
            r.state.fix_leaf_lm(idx, lm)
        ok = r.state.apply_fetched(self.target_seq, self.target_root, objects)
        if not ok:
            self._attempts += 1
            r.trace("transfer_apply_failed", attempt=self._attempts)
            if self._attempts < 3:
                # Local state was corrupt beyond the fetched set; re-check
                # everything and walk again.
                r.state.mark_all_dirty()
                self._begin_walk()
                return
            raise RuntimeError(
                f"{r.node_id}: state transfer to seq {self.target_seq} "
                f"failed after {self._attempts} attempts")
        self.active = False
        self._timer.stop()
        if self._table_blob is not None:
            r.install_client_table(self._table_blob)
        table_blob = r.serialize_client_table()
        r.table_checkpoints[self.target_seq] = (digest(table_blob), table_blob)
        r.last_executed = self.target_seq
        r.last_stable = self.target_seq
        # The installed checkpoint carries a 2f+1 certificate — every
        # execution under it is durable.
        r.last_committed_exec = self.target_seq
        r.stable_cert = self.cert
        r.note_stable_vector(self.target_seq, self.target_root)
        r.log.truncate_below(self.target_seq)
        # If this was a rollback to the stable checkpoint (recovery or
        # divergence repair), the retained committed slots above it must
        # replay: clear their executed flags so try_execute re-runs them
        # against the restored state.
        for seq in r.log.seqs():
            slot = r.log.slot(seq)
            slot.executed = False
            slot.tentative = False
        r.state.discard_checkpoints_below(self.target_seq)
        for old in [s for s in r.table_checkpoints if s < self.target_seq]:
            del r.table_checkpoints[old]
        for old in [s for s in r.checkpoint_msgs if s <= self.target_seq]:
            del r.checkpoint_msgs[old]
        # Requests we were waiting on were covered by the checkpoint (or
        # will be retransmitted by their clients); stop suspecting.
        r.waiting.clear()
        r.vc_timer.stop()
        r.trace("transfer_complete", seq=self.target_seq,
                objects=len(objects))
        r.tracer.observe_phase("state_transfer", r.now - self._started_at)
        r.tracer.metrics.inc("transfer.objects_fetched", len(objects))
        callbacks, self.completion_callbacks = self.completion_callbacks, []
        for cb in callbacks:
            cb(self.target_seq)
        r.try_execute()

    # -- cert solicitation (recovery) ----------------------------------------------------------

    def solicit_certs(self) -> None:
        """Ask every other replica for its latest stable checkpoint cert."""
        r = self.replica
        self._cert_nonce += 1
        msg = FetchCert(r.node_id, self._cert_nonce)
        r.multicast(r.other_replicas, msg)
