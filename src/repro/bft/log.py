"""Per-sequence-number protocol log with watermark-based garbage collection."""

from __future__ import annotations

from typing import Dict, Optional

from repro.bft.messages import Commit, PrePrepare, Prepare


class SeqSlot:
    """Protocol state for one sequence number in one view regime.

    Tracks the accepted pre-prepare and the prepare/commit certificates
    being assembled for it.
    """

    __slots__ = ("seq", "pre_prepare", "prepares", "commits",
                 "prepared", "committed", "executed", "tentative",
                 "prepared_cert", "phase_marks")

    def __init__(self, seq: int):
        self.seq = seq
        self.pre_prepare: Optional[PrePrepare] = None
        self.prepares: Dict[str, Prepare] = {}
        self.commits: Dict[str, Commit] = {}
        self.prepared = False
        self.committed = False
        self.executed = False
        # True while the slot has been executed on the fast path (at
        # prepared time) but its commit certificate is still outstanding.
        # Cleared when the commit certificate completes or the execution
        # is rolled back by a view change.
        self.tentative = False
        # Observability: simulated timestamps of this slot's phase
        # transitions ("pre_prepare", "prepared", "committed"), feeding
        # the per-phase latency histograms.  Reset whenever the slot's
        # certificates are reset (view change, stale-view replacement).
        self.phase_marks: Dict[str, float] = {}
        # The highest-view prepared certificate ever assembled for this
        # sequence number: (view, pre_prepare).  Unlike the working flags
        # above, this survives view changes — PBFT's P-set is built from
        # it, so a batch that prepared in view v but was interrupted
        # mid-re-prepare in v+1 is still carried into v+2.
        self.prepared_cert: Optional[tuple] = None

    def matching_prepares(self) -> int:
        """Prepares matching the accepted pre-prepare's digest."""
        if self.pre_prepare is None:
            return 0
        want = self.pre_prepare.batch_digest()
        return sum(1 for p in self.prepares.values() if p.batch_digest == want)

    def matching_commits(self) -> int:
        if self.pre_prepare is None:
            return 0
        want = self.pre_prepare.batch_digest()
        return sum(1 for c in self.commits.values() if c.batch_digest == want)


class MessageLog:
    """Slots indexed by sequence number, bounded by the water marks."""

    def __init__(self) -> None:
        self._slots: Dict[int, SeqSlot] = {}

    def slot(self, seq: int) -> SeqSlot:
        if seq not in self._slots:
            self._slots[seq] = SeqSlot(seq)
        return self._slots[seq]

    def get(self, seq: int) -> Optional[SeqSlot]:
        return self._slots.get(seq)

    def truncate_below(self, seq: int) -> None:
        """Discard slots for sequence numbers <= ``seq`` (now stable)."""
        for s in [s for s in self._slots if s <= seq]:
            del self._slots[s]

    def clear(self) -> None:
        self._slots.clear()

    def seqs(self):
        return sorted(self._slots)

    def prepared_above(self, seq: int):
        """Slots holding a prepared certificate (from *any* view) for
        sequence numbers > ``seq``."""
        return [slot for s, slot in sorted(self._slots.items())
                if s > seq and slot.prepared_cert is not None]

    def __len__(self) -> int:
        return len(self._slots)
