"""Hierarchical state partition tree (Castro & Liskov 2000, §state transfer).

The abstract state is a fixed-size array of objects.  The tree commits to
it hierarchically: leaves hold per-object digests plus the sequence number
of the checkpoint at which each object was last modified (``lm``); internal
nodes digest their children.  A recovering or out-of-date replica walks
the tree top-down, comparing digests, and fetches only the leaves that are
corrupt or out-of-date — ``lm`` lets it skip hashing partitions that
cannot have changed.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from repro.crypto.digest import digest_many

EMPTY_LEAF_DIGEST = b"\x00" * 32


def tree_depth(size: int, branching: int) -> int:
    """Number of internal levels above the leaves (root is level 0)."""
    if size <= 1:
        return 1
    depth = 0
    span = 1
    while span < size:
        span *= branching
        depth += 1
    return depth


class TreeSnapshot:
    """Immutable digests/lm of a :class:`PartitionTree` at a checkpoint.

    Level 0 is the root (one node); the last level is the leaves.  Lists
    share the underlying ``bytes`` objects with the live tree, so taking a
    snapshot is O(nodes) pointer copies.
    """

    __slots__ = ("digests", "lms")

    def __init__(self, digests: List[List[bytes]], lms: List[List[int]]):
        self.digests = digests
        self.lms = lms

    @property
    def root_digest(self) -> bytes:
        return self.digests[0][0]

    def children_info(self, level: int, index: int,
                      branching: int) -> Optional[Tuple[Tuple[bytes, int], ...]]:
        """(digest, lm) of the children of node (level, index), or None if
        the node does not exist."""
        child_level = level + 1
        if child_level >= len(self.digests):
            return None
        row = self.digests[child_level]
        lm_row = self.lms[child_level]
        start = index * branching
        if start >= len(row):
            return None
        end = min(start + branching, len(row))
        return tuple((row[i], lm_row[i]) for i in range(start, end))


class PartitionTree:
    """Mutable digest tree over a fixed-size abstract-object array.

    ``set_leaf`` marks dirty paths; internal digests are recomputed lazily
    by :meth:`refresh` (called before reading the root or snapshotting).
    """

    def __init__(self, size: int, branching: int = 64):
        if size < 1:
            raise ValueError("array size must be >= 1")
        if branching < 2:
            raise ValueError("branching must be >= 2")
        self.size = size
        self.branching = branching
        self.depth = tree_depth(size, branching)
        # Row sizes from leaves upward.
        sizes = [size]
        while sizes[-1] > 1:
            sizes.append((sizes[-1] + branching - 1) // branching)
        sizes.reverse()  # sizes[0] == 1 (root)
        if len(sizes) == 1:       # single-object array: root == leaf row
            sizes = [1, 1]
        self._digests: List[List[bytes]] = [
            [EMPTY_LEAF_DIGEST] * n for n in sizes]
        self._lms: List[List[int]] = [[0] * n for n in sizes]
        self._dirty: set = set(range(size))
        self.refresh()

    @property
    def levels(self) -> int:
        """Total number of levels including the leaf row."""
        return len(self._digests)

    @property
    def leaf_level(self) -> int:
        return len(self._digests) - 1

    # -- updates ------------------------------------------------------------

    def set_leaf(self, index: int, leaf_digest: bytes, lm: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"leaf {index} out of range 0..{self.size - 1}")
        leaves = self._digests[-1]
        if leaves[index] == leaf_digest and self._lms[-1][index] == lm:
            return
        leaves[index] = leaf_digest
        self._lms[-1][index] = lm
        self._dirty.add(index)

    def leaf_digest(self, index: int) -> bytes:
        return self._digests[-1][index]

    def leaf_lm(self, index: int) -> int:
        return self._lms[-1][index]

    def refresh(self) -> None:
        """Propagate dirty leaves up to the root."""
        if not self._dirty:
            return
        dirty_parents = {i // self.branching for i in self._dirty}
        self._dirty.clear()
        for level in range(len(self._digests) - 2, -1, -1):
            child_digests = self._digests[level + 1]
            child_lms = self._lms[level + 1]
            next_dirty = set()
            # Sorted: interior digests land in index order on every
            # replica, keeping refresh cost charging and any future
            # tracing of this path independent of set history.
            for index in sorted(dirty_parents):
                start = index * self.branching
                end = min(start + self.branching, len(child_digests))
                self._digests[level][index] = digest_many(
                    child_digests[i] + struct.pack(">q", child_lms[i])
                    for i in range(start, end))
                self._lms[level][index] = max(child_lms[start:end])
                next_dirty.add(index // self.branching)
            dirty_parents = next_dirty

    # -- reads ----------------------------------------------------------------

    @property
    def root_digest(self) -> bytes:
        self.refresh()
        return self._digests[0][0]

    def children_info(self, level: int,
                      index: int) -> Optional[Tuple[Tuple[bytes, int], ...]]:
        self.refresh()
        child_level = level + 1
        if child_level >= len(self._digests):
            return None
        row = self._digests[child_level]
        lm_row = self._lms[child_level]
        start = index * self.branching
        if start >= len(row):
            return None
        end = min(start + self.branching, len(row))
        return tuple((row[i], lm_row[i]) for i in range(start, end))

    def snapshot(self) -> TreeSnapshot:
        """Cheap immutable copy of the current digests (pointer copies)."""
        self.refresh()
        return TreeSnapshot([row[:] for row in self._digests],
                            [row[:] for row in self._lms])

    # -- verification helpers ---------------------------------------------------

    @staticmethod
    def combine(children: Sequence[Tuple[bytes, int]]) -> bytes:
        """Digest of an internal node from its children's (digest, lm)."""
        return digest_many(d + struct.pack(">q", lm) for d, lm in children)

    def row_size(self, level: int) -> int:
        return len(self._digests[level])
