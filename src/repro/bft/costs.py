"""CPU cost model hooks for protocol nodes.

Protocol correctness never depends on these: with the default (all-zero)
model the simulation runs in pure event time.  The benchmark harness
installs calibrated models (see :mod:`repro.harness.costs`) so that MAC
computation, digesting, service execution, and disk activity consume
simulated CPU time, serialized per node.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """Per-operation CPU charges, in simulated seconds."""

    mac: float = 0.0               # generate or verify one MAC
    signature: float = 0.0         # generate or verify one signature
    digest_fixed: float = 0.0      # fixed cost of one digest
    digest_per_byte: float = 0.0   # plus per byte digested

    def macs(self, n: int = 1) -> float:
        return self.mac * n

    def digest(self, nbytes: int) -> float:
        return self.digest_fixed + self.digest_per_byte * nbytes


ZERO_COSTS = CostModel()
