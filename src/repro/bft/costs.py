"""CPU cost model hooks for protocol nodes.

Protocol correctness never depends on these: with the default (all-zero)
model the simulation runs in pure event time.  The benchmark harness
installs calibrated models (see :mod:`repro.harness.costs`) so that MAC
computation, digesting, service execution, and disk activity consume
simulated CPU time, serialized per node.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """Per-operation CPU charges, in simulated seconds."""

    mac: float = 0.0               # one MAC over digest-sized (32 B) input
    signature: float = 0.0         # generate or verify one signature
    digest_fixed: float = 0.0      # fixed cost of one digest
    digest_per_byte: float = 0.0   # plus per byte digested

    def macs(self, n: int = 1) -> float:
        return self.mac * n

    def digest(self, nbytes: int) -> float:
        return self.digest_fixed + self.digest_per_byte * nbytes

    # Authenticators MAC the 32-byte message digest, never the body: the
    # sender hashes the body once and pays one constant-size MAC per
    # receiver, so the charge is independent of batch/body size.

    def auth_create(self, n: int, body_bytes: int) -> float:
        """Create an authenticator for ``n`` receivers: digest the body
        once, then ``n`` MACs over the digest."""
        return self.digest(body_bytes) + self.macs(n)

    def auth_verify(self, body_bytes: int) -> float:
        """Verify one authenticator entry: digest the received body once,
        then check a single MAC over the digest."""
        return self.digest(body_bytes) + self.macs(1)


ZERO_COSTS = CostModel()
