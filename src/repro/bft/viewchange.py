"""View changes: replacing a faulty primary.

When a backup's timer expires before a request executes (or it sees
direct evidence of primary misbehaviour), it stops accepting messages in
the current view and multicasts a signed VIEW-CHANGE carrying its stable
checkpoint proof and the prepared certificates above it.  The primary of
the new view collects 2f+1 view-changes and multicasts NEW-VIEW, which
re-proposes every batch that may have committed (highest-view prepared
certificate per sequence number; null requests fill gaps).  Backups
recompute the re-proposals from the view-changes and accept only a
matching NEW-VIEW, so a faulty new primary cannot rewrite history.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bft.messages import (
    NewView,
    PrePrepare,
    Prepare,
    PreparedProof,
    Request,
    ViewChange,
)


class ViewChangeManager:
    """Per-replica view-change protocol state."""

    def __init__(self, replica) -> None:
        self.replica = replica
        self.active = False
        self.target_view = 0
        # view -> replica_id -> ViewChange
        self.received: Dict[int, Dict[str, ViewChange]] = {}
        #: Latest NEW-VIEW sent or accepted; forwarded in CERT replies so
        #: recovering replicas can catch up to the current view.
        self.last_new_view: Optional[NewView] = None
        self._nv_timer = replica.make_timer(
            replica.config.view_change_timeout, self._on_new_view_timeout)
        # When this replica left normal operation (first VIEW-CHANGE sent
        # for the current outage), for the phase.view_change histogram.
        self._started_at = 0.0

    # -- initiating ----------------------------------------------------------

    def start(self, new_view: int) -> None:
        """Move to ``new_view``: broadcast our VIEW-CHANGE and wait."""
        r = self.replica
        if new_view <= r.view:
            return
        if self.active and new_view <= self.target_view:
            return
        if not self.active:
            self._started_at = r.now
        self.active = True
        self.target_view = new_view
        r.vc_timer.stop()
        r.trace("view_change_started", view=new_view)

        prepared = tuple(
            PreparedProof(slot.prepared_cert[0], slot.seq,
                          slot.prepared_cert[1].batch_digest(),
                          slot.prepared_cert[1])
            for slot in r.log.prepared_above(r.last_stable))
        vc = ViewChange(new_view, r.last_stable, r.stable_cert, prepared,
                        r.node_id)
        r.sign_msg(vc)
        r.multicast(r.other_replicas, vc)
        self._record(r.node_id, vc)
        # Exponential backoff: if the new primary is also faulty we will
        # time out and move another view along, waiting twice as long
        # (capped so the delay stays finite under long view runs).
        backoff = r.config.view_change_timeout * (
            2 ** min(16, max(0, new_view - r.view - 1)))
        self._nv_timer.restart(backoff)
        self._maybe_assemble(new_view)

    def _on_new_view_timeout(self) -> None:
        if self.active:
            self.replica.trace("new_view_timeout", view=self.target_view)
            self.start(self.target_view + 1)

    # -- receiving view-changes ---------------------------------------------------

    def on_view_change(self, src: str, msg: ViewChange) -> None:
        r = self.replica
        if src != msg.replica_id or src not in r.config.replica_ids:
            return
        if msg.view <= r.view:
            return
        if not r.verify_sig(src, msg):
            return
        if not self._valid_view_change(msg):
            return
        self._record(src, msg)
        # Liveness rule: if f+1 replicas want a view above ours, join the
        # smallest such view even if our own timer has not fired.
        if not self.active or msg.view > self.target_view:
            candidates = sorted(v for v, by in self.received.items()
                                if v > (self.target_view if self.active
                                        else r.view)
                                and len(by) >= r.config.weak_quorum)
            if candidates:
                self.start(candidates[0])
        self._maybe_assemble(msg.view)

    def _record(self, src: str, msg: ViewChange) -> None:
        self.received.setdefault(msg.view, {})[src] = msg

    def _valid_view_change(self, msg: ViewChange) -> bool:
        """Check the embedded checkpoint proof and prepared certificates."""
        r = self.replica
        if msg.last_stable > 0:
            if not msg.checkpoint_proof:
                return False
            root = msg.checkpoint_proof[0].root_digest
            if not r.valid_checkpoint_cert(msg.last_stable, root,
                                           msg.checkpoint_proof):
                return False
        for proof in msg.prepared:
            pp = proof.pre_prepare
            if (pp.seq != proof.seq or pp.view != proof.view
                    or pp.batch_digest() != proof.batch_digest):
                return False
            if proof.seq <= msg.last_stable:
                return False
        return True

    # -- new primary: assembling NEW-VIEW ---------------------------------------------

    def _maybe_assemble(self, view: int) -> None:
        r = self.replica
        if r.config.primary_of(view) != r.node_id:
            return
        by_replica = self.received.get(view, {})
        if len(by_replica) < r.config.quorum:
            return
        if not self.active or self.target_view != view:
            # We are the new primary but have not timed out ourselves yet;
            # join so our own view-change is included.
            self.start(view)
            by_replica = self.received.get(view, {})
            if len(by_replica) < r.config.quorum:
                return
        vcs = tuple(sorted(by_replica.values(),
                           key=lambda m: m.replica_id)[:r.config.quorum])
        if r.node_id not in {m.replica_id for m in vcs}:
            own = by_replica.get(r.node_id)
            if own is None:
                return
            vcs = tuple(sorted(list(vcs)[:-1] + [own],
                               key=lambda m: m.replica_id))
        pre_prepares = self.compute_new_view_pre_prepares(view, vcs)
        nv = NewView(view, vcs, tuple(pre_prepares), r.node_id)
        r.sign_msg(nv)
        r.multicast(r.other_replicas, nv)
        r.trace("new_view_sent", view=view, reproposed=len(pre_prepares))
        self.last_new_view = nv
        self._enter_view(view, vcs, pre_prepares)

    @staticmethod
    def compute_new_view_pre_prepares(view: int, vcs) -> List[PrePrepare]:
        """Deterministically derive the re-proposals from 2f+1 view-changes.

        For each sequence number between the highest stable checkpoint
        (min-s) and the highest prepared request (max-s), re-propose the
        batch from the prepared certificate with the highest view, or a
        null request if no view-change prepared anything there.
        """
        min_s = max(vc.last_stable for vc in vcs)
        best: Dict[int, PreparedProof] = {}
        for vc in vcs:
            for proof in vc.prepared:
                if proof.seq <= min_s:
                    continue
                cur = best.get(proof.seq)
                if cur is None or proof.view > cur.view:
                    best[proof.seq] = proof
        max_s = max(best) if best else min_s
        pps = []
        for seq in range(min_s + 1, max_s + 1):
            proof = best.get(seq)
            if proof is not None:
                src_pp = proof.pre_prepare
                pps.append(PrePrepare(view, seq, src_pp.requests,
                                      src_pp.nondet))
            else:
                pps.append(PrePrepare(view, seq, (Request.null(),), b""))
        return pps

    # -- backups: accepting NEW-VIEW -------------------------------------------------

    def on_new_view(self, src: str, msg: NewView) -> None:
        """Accept a NEW-VIEW.  The message is validated against the
        signature of the claimed new primary, not the transport source —
        NEW-VIEWs are self-validating and may be *forwarded* (a peer
        relays its stored copy to a recovering replica)."""
        r = self.replica
        if r.config.primary_of(msg.view) != msg.replica_id:
            return
        if msg.view <= r.view:
            return
        if not r.verify_sig(msg.replica_id, msg):
            return
        if len({vc.replica_id for vc in msg.view_changes}) < r.config.quorum:
            return
        for vc in msg.view_changes:
            if vc.view != msg.view or not r.verify_sig(vc.replica_id, vc):
                return
            if not self._valid_view_change(vc):
                return
        expected = self.compute_new_view_pre_prepares(msg.view,
                                                      msg.view_changes)
        if ([pp.digest() for pp in expected]
                != [pp.digest() for pp in msg.pre_prepares]):
            r.trace("new_view_rejected", view=msg.view)
            return
        r.trace("new_view_accepted", view=msg.view)
        self.last_new_view = msg
        self._enter_view(msg.view, msg.view_changes, list(msg.pre_prepares))

    # -- entering the new view ------------------------------------------------------

    def _enter_view(self, view: int, vcs, pre_prepares: List[PrePrepare]) -> None:
        r = self.replica
        r.view = view
        if self.active:
            r.tracer.observe_phase("view_change", r.now - self._started_at)
        self.active = False
        self._nv_timer.stop()
        for v in [v for v in self.received if v <= view]:
            del self.received[v]

        min_s = max(vc.last_stable for vc in vcs)
        # Fast-path rollback: executions performed at prepared time are
        # only durable if the new view re-proposes the same batch at the
        # same seq.  Any tentatively executed slot the NEW-VIEW re-orders
        # (different batch), drops (not re-proposed), or subsumes under a
        # stable checkpoint we lack must be undone before the slot resets
        # below overwrite the evidence.
        new_pps = {pp.seq: pp for pp in pre_prepares}
        for seq in r.log.seqs():
            slot = r.log.get(seq)
            if seq <= r.last_stable or not slot.executed \
                    or not slot.tentative:
                continue
            pp = new_pps.get(seq)
            if (pp is None or slot.pre_prepare is None
                    or pp.batch_digest() != slot.pre_prepare.batch_digest()):
                r.trace("tentative_reordered", seq=seq, view=view)
                r.rollback_to_stable()
                break

        # If others progressed to a stable checkpoint we do not have, fetch.
        if min_s > r.last_stable:
            donor_vc = next(vc for vc in vcs if vc.last_stable == min_s)
            if donor_vc.checkpoint_proof:
                root = donor_vc.checkpoint_proof[0].root_digest
                if min_s > r.last_executed:
                    r.transfer.initiate(min_s, root, donor_vc.checkpoint_proof)

        # Protocol state not carried into the new view is void: discard
        # slots above the checkpoint that the NEW-VIEW does not re-propose
        # (a stale pre-prepare left behind would masquerade as a
        # conflicting proposal when the new primary reuses its seq).
        covered = {pp.seq for pp in pre_prepares}
        for seq in r.log.seqs():
            if seq > max(min_s, r.last_executed) and seq not in covered:
                slot = r.log.slot(seq)
                slot.pre_prepare = None
                slot.prepares = {}
                slot.commits = {}
                slot.prepared = False
                slot.committed = False
                slot.phase_marks = {}

        max_seq = min_s
        for pp in pre_prepares:
            max_seq = max(max_seq, pp.seq)
            slot = r.log.slot(pp.seq)
            slot.pre_prepare = pp
            slot.prepares = {}
            slot.commits = {}
            slot.prepared = False
            slot.committed = False
            slot.phase_marks = {"pre_prepare": r.now}
            slot.executed = slot.executed and pp.seq <= r.last_executed
            slot.tentative = slot.tentative and slot.executed
            if not r.is_primary:
                prep = Prepare(view, pp.seq, pp.batch_digest(), r.node_id)
                r.authenticate(prep)
                r.multicast(r.other_replicas, prep)
                slot.prepares[r.node_id] = prep
        if r.is_primary:
            r.seq_assigned = max_seq
            # Requests that were in flight but not re-proposed must be
            # ordered afresh in this view.
            for key, req_seq in list(r.in_flight.items()):
                del r.in_flight[key]
        for slot_seq in r.log.seqs():
            r._check_prepared(r.log.slot(slot_seq))
        if r.waiting:
            # Relay un-executed requests straight to the new primary so
            # clients do not have to retransmit to make progress.
            if not r.is_primary:
                for req in list(r.waiting.values()):
                    r.send(r.primary_id, req)
            r.vc_timer.restart()
        if r.is_primary:
            for req in list(r.waiting.values()):
                key = (req.client_id, req.request_id)
                if key not in r.pending and key not in r.in_flight:
                    r.pending[key] = req
            r.try_send_pre_prepare()
        r.redeliver_future_msgs()
        r.try_execute()
