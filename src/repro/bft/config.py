"""Replication-group configuration and quorum arithmetic."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import ConfigurationError


@dataclass
class BftConfig:
    """Static configuration shared by all replicas and clients of a group.

    ``n`` replicas tolerate ``f = (n - 1) // 3`` Byzantine faults; the
    paper's experiments all use ``n = 4``, ``f = 1``.
    """

    n: int = 4
    checkpoint_interval: int = 128     # k: take a checkpoint every k requests
    log_window_checkpoints: int = 2    # L = this many intervals past low mark
    batch_max: int = 16                # max requests per pre-prepare batch
    max_outstanding: int = 1           # pre-prepares in flight per primary
    view_change_timeout: float = 5.0   # backup timer before suspecting primary
    client_retry_timeout: float = 2.0  # client retransmission timer
    # Grace before the client retransmits on a complete result-digest
    # certificate with no full result: the designated replier's bytes are
    # usually still in flight, so waiting a moment beats re-MACing and
    # re-sending the request to every replica (a mute replier only costs
    # this much extra before the nudge goes out).
    client_nudge_grace: float = 0.002
    read_only_optimization: bool = True
    tentative_reply_digests: bool = True  # only one replica sends full result
    tentative_execution: bool = True   # execute at prepared, reply tentative
    adaptive_batching: bool = True     # grow/shrink batch bound from arrivals
    batch_window_max: float = 0.002    # upper bound on the batch hold window
    reboot_delay: float = 30.0         # simulated reboot during recovery
    recovery_interval: float = 0.0     # watchdog period; 0 disables recovery
    recovery_stagger: float = 0.0      # offset between replicas' watchdogs

    replica_ids: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ConfigurationError(f"need n >= 4 replicas, got {self.n}")
        if self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1")
        if not self.replica_ids:
            self.replica_ids = [f"replica{i}" for i in range(self.n)]
        if len(self.replica_ids) != self.n:
            raise ConfigurationError(
                f"{len(self.replica_ids)} replica ids for n={self.n}")

    @property
    def f(self) -> int:
        """Maximum number of simultaneous Byzantine faults tolerated."""
        return (self.n - 1) // 3

    @property
    def quorum(self) -> int:
        """Certificate size: 2f + 1 replicas."""
        return 2 * self.f + 1

    @property
    def weak_quorum(self) -> int:
        """f + 1 — enough to guarantee one correct replica."""
        return self.f + 1

    @property
    def log_window(self) -> int:
        """High-water mark offset: seq numbers accepted in (h, h + window]."""
        return self.checkpoint_interval * self.log_window_checkpoints

    def primary_of(self, view: int) -> str:
        """The primary replica for ``view`` (round-robin, as in BFT)."""
        return self.replica_ids[view % self.n]

    def replica_index(self, replica_id: str) -> int:
        return self.replica_ids.index(replica_id)
