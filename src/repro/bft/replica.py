"""The BFT replica: three-phase ordering, execution, and checkpointing.

Normal case (Castro & Liskov 1999):

1. the client sends a REQUEST to the primary;
2. the primary assigns a sequence number and multicasts PRE-PREPARE,
   carrying the batch of requests and its nondeterministic value;
3. backups that accept it multicast PREPARE; a batch is *prepared* at a
   replica once it has the pre-prepare and 2f matching prepares;
4. prepared replicas multicast COMMIT; a batch is *committed-local* once
   prepared and backed by 2f+1 matching commits;
5. replicas execute committed batches in sequence order and reply.

Checkpoints are taken every ``checkpoint_interval`` requests; a
checkpoint becomes *stable* with 2f+1 matching CHECKPOINT messages, which
advances the low water mark and garbage-collects the log.

View changes, state transfer, and proactive recovery are delegated to
manager objects (see :mod:`repro.bft.viewchange`,
:mod:`repro.bft.statetransfer`, :mod:`repro.bft.recovery`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.bft.config import BftConfig
from repro.bft.costs import CostModel, ZERO_COSTS
from repro.bft.faults import HONEST, Behavior
from repro.bft.log import MessageLog
from repro.bft.messages import (
    CheckpointMsg,
    Commit,
    EdgeRead,
    EdgeReadReply,
    Message,
    PrePrepare,
    Prepare,
    Reply,
    Request,
)
from repro.bft.recovery import RecoveryManager
from repro.bft.statemachine import StateManager
from repro.bft.statetransfer import StateTransferManager
from repro.bft.viewchange import ViewChangeManager
from repro.crypto.digest import digest
from repro.crypto.keys import KeyRegistry
from repro.crypto.mac import Authenticator
from repro.crypto.signatures import sign, verify_signature
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.tracing import Tracer


class Replica(Node):
    """One member of the replication group."""

    def __init__(self, replica_id: str, network: Network, config: BftConfig,
                 registry: KeyRegistry, state: StateManager,
                 tracer: Optional[Tracer] = None,
                 costs: CostModel = ZERO_COSTS):
        super().__init__(replica_id, network)
        self.config = config
        self.registry = registry
        self.state = state
        self.tracer = tracer or Tracer(keep_events=False)
        self.costs = costs
        self._behavior: Behavior = HONEST
        registry.enroll(replica_id)

        self.view = 0
        self.last_executed = 0
        self.last_stable = 0
        # Highest seq through which execution is known committed (either
        # executed with a commit certificate or covered by a stable
        # checkpoint).  Executions in (last_committed_exec, last_executed]
        # are tentative: performed at prepared time and subject to
        # rollback if a view change re-orders them.
        self.last_committed_exec = 0
        self.seq_assigned = 0            # primary: highest seq proposed
        self.log = MessageLog()
        # Client reply cache: client_id -> (last executed request_id, result).
        # Part of the replicated state — checkpointed and transferred — so
        # all correct replicas de-duplicate retransmissions identically.
        self.client_table: Dict[str, Tuple[int, bytes]] = {}
        # seq -> (table digest, serialized table) for retained checkpoints
        self.table_checkpoints: Dict[int, Tuple[bytes, bytes]] = {}
        # primary's queue of requests awaiting a pre-prepare
        self.pending: "OrderedDict[Tuple[str, int], Request]" = OrderedDict()
        self.in_flight: Dict[Tuple[str, int], int] = {}  # -> seq
        # Observability: when each pending request reached this primary,
        # feeding the phase.request_to_pre_prepare histogram.
        self._request_arrival: Dict[Tuple[str, int], float] = {}
        # Local (non-replicated) record of the seq each client's latest
        # reply executed at, so cached-reply retransmissions can be
        # marked tentative while that execution's commit is outstanding.
        self._reply_seq: Dict[str, int] = {}
        # Adaptive batching (primary): AIMD batch-size target driven by
        # the request inter-arrival EWMA; undersized batches are held for
        # a short window when arrivals suggest more are imminent.
        self._batch_target = 1
        self._arrival_ewma: Optional[float] = None
        self._last_request_at: Optional[float] = None
        self._hold_event = None
        self._hold_forced = False
        # seq -> replica -> CheckpointMsg
        self.checkpoint_msgs: Dict[int, Dict[str, CheckpointMsg]] = {}
        self.stable_cert: Tuple[CheckpointMsg, ...] = ()
        # Requests seen but not yet executed: drives the vc timer, and
        # lets backups relay them to the new primary after a view change
        # (key -> Request).
        self.waiting: Dict[Tuple[str, int], Request] = {}
        # Protocol messages from views ahead of ours (e.g. a new primary's
        # first pre-prepare racing its NEW-VIEW): buffered and redelivered
        # once we enter the view.
        self._future_view_msgs: List[Tuple[str, Message]] = []
        self.busy_until = 0.0

        self.view_changes = ViewChangeManager(self)
        self.transfer = StateTransferManager(self)
        self.recovery = RecoveryManager(self)
        self.vc_timer = self.make_timer(config.view_change_timeout,
                                        self._on_vc_timeout)
        # Retransmission of the latest checkpoint message until it (or a
        # later one) stabilizes — lost CHECKPOINTs must not stall the
        # watermarks forever.
        self._latest_checkpoint_msg: Optional[CheckpointMsg] = None
        self._ckpt_retry_timer = self.make_timer(
            config.view_change_timeout, self._retransmit_checkpoint)
        # Baseline checkpoint 0 so state transfer targets always exist.
        root0 = self.state.take_checkpoint(0)
        blob = self.serialize_client_table()
        self.table_checkpoints[0] = (digest(blob), blob)
        # Every (seq, root) this replica checkpointed, retained past log
        # truncation (bounded): the abstract-state history the edge
        # tier's staleness contract is audited against.
        self.checkpoint_history: List[Tuple[int, bytes]] = [(0, root0)]
        # Version vector served to edge nodes: (stable checkpoint seq,
        # abstract-state root digest, sim time it went stable in µs).
        # Re-minted whenever a checkpoint gains a 2f+1 certificate.
        self.stable_vector: Tuple[int, bytes, int] = (0, root0, 0)

    # -- identity helpers ------------------------------------------------------

    @property
    def is_primary(self) -> bool:
        return self.config.primary_of(self.view) == self.node_id

    @property
    def primary_id(self) -> str:
        return self.config.primary_of(self.view)

    @property
    def other_replicas(self) -> List[str]:
        return [r for r in self.config.replica_ids if r != self.node_id]

    @property
    def low_mark(self) -> int:
        return self.last_stable

    @property
    def high_mark(self) -> int:
        return self.last_stable + self.config.log_window

    @property
    def committed_frontier(self) -> int:
        """Highest seq whose execution is durable.  A stable checkpoint
        counts even if the executions under it were tentative: stability
        requires 2f+1 replicas to have prepared (and executed) every
        batch below it, which any view-change quorum preserves."""
        return max(self.last_committed_exec, self.last_stable)

    @property
    def behavior(self) -> Behavior:
        return self._behavior

    @behavior.setter
    def behavior(self, value: Behavior) -> None:
        """Attach a (possibly Byzantine) behavior, binding it to this
        replica so behaviors that schedule work (delay, replay) can."""
        if value is not HONEST:
            value.bind(self)
        self._behavior = value

    @property
    def normal_operation(self) -> bool:
        return (not self.view_changes.active and not self.recovery.recovering
                and not self.transfer.active)

    def send(self, dst, msg, size=None):
        """Send with the Byzantine rewrite hook applied."""
        out = self.behavior.rewrite_outgoing(msg, dst)
        if out is not None:
            super().send(dst, out, size)

    def multicast(self, dsts, msg, size=None):
        if self.behavior is HONEST:
            super().multicast(dsts, msg, size=size)  # true IP multicast
        else:
            for dst in dsts:
                self.send(dst, msg, size=size)

    # -- authentication helpers ------------------------------------------------------

    def authenticate(self, msg: Message) -> Message:
        """Attach a MAC authenticator for all other replicas.

        MACs cover the message *digest* (hashed once, cached), so the
        cost is one body hash plus a constant-size MAC per receiver —
        independent of how large the piggybacked batch is.
        """
        msg.auth = Authenticator.create(self.registry, self.node_id,
                                        self.other_replicas, msg.digest())
        self.charge(self.costs.auth_create(len(self.other_replicas),
                                           len(msg.body())))
        return msg

    def authenticate_for(self, msg: Message, dst: str) -> Message:
        msg.auth = Authenticator.create(self.registry, self.node_id, [dst],
                                        msg.digest())
        self.charge(self.costs.auth_create(1, len(msg.body())))
        return msg

    def verify_auth(self, src, msg: Message) -> bool:
        self.charge(self.costs.auth_verify(len(msg.body())))
        auth = msg.auth
        if auth is None or auth.sender != src:
            return False
        return auth.verify(self.registry, self.node_id, msg.digest())

    def sign_msg(self, msg: Message) -> Message:
        msg.sig = sign(self.registry, self.node_id, msg.body())
        self.charge(self.costs.signature)
        return msg

    def verify_sig(self, signer: str, msg: Message) -> bool:
        self.charge(self.costs.signature)
        if msg.sig is None:
            return False
        return verify_signature(self.registry, signer, msg.body(), msg.sig)

    def trace(self, kind: str, **detail) -> None:
        self.tracer.emit(self.now, self.node_id, kind, **detail)

    # -- message gating --------------------------------------------------------------

    def on_message(self, src, msg):
        if self._crashed:
            return
        if self.recovery.rebooting:
            # Fully offline through shutdown + reboot.
            return
        # During fetch-and-check the replica participates in agreement
        # again and serves state transfer to peers (everything served is
        # digest-verified by the fetcher, so a possibly-corrupt donor
        # cannot do harm); only *execution* waits for the state check —
        # see the guards in try_execute and the read-only path.
        super().on_message(src, msg)

    # -- client requests -----------------------------------------------------------

    def handle_request(self, src, req: Request) -> None:
        # Requests are authenticated by their *client*, not the transport
        # source — backups relay client requests to the primary verbatim.
        if req.auth is not None:
            self.charge(self.costs.auth_verify(len(req.body())))
            if (req.auth.sender != req.client_id
                    or not req.auth.verify(self.registry, self.node_id,
                                           req.digest())):
                self.trace("bad_request_auth", client=req.client_id)
                return
        last = self.client_table.get(req.client_id)
        if last is not None and req.request_id <= last[0]:
            if req.request_id == last[0]:
                self._send_cached_reply(req.client_id, last[0], last[1])
            return
        if req.read_only and self.config.read_only_optimization:
            # A recovering or fetching replica must not answer reads from
            # unchecked state; the others provide the 2f+1 quorum.
            if not self.recovery.recovering and not self.transfer.active:
                self._execute_read_only(req)
            return
        if self.view_changes.active:
            return
        if self.is_primary:
            key = (req.client_id, req.request_id)
            if key in self.in_flight:
                # Duplicate of an in-flight request: some backup probably
                # missed the pre-prepare; retransmit it.
                slot = self.log.get(self.in_flight[key])
                if slot is not None and slot.pre_prepare is not None \
                        and slot.pre_prepare.view == self.view:
                    self.multicast(self.other_replicas, slot.pre_prepare)
            elif key not in self.pending:
                self.pending[key] = req
                self._request_arrival.setdefault(key, self.now)
                self._note_arrival()
                self.try_send_pre_prepare()
        else:
            # Relay to the primary (forwarding the client's authenticator)
            # and start the view-change timer: if the primary is faulty and
            # never orders the request, we elect a new one.
            self.send(self.primary_id, req)
            self.waiting[(req.client_id, req.request_id)] = req
            self.vc_timer.start()

    def _send_cached_reply(self, client_id: str, request_id: int,
                           result: bytes) -> None:
        # Retransmissions are rare; always send the full result.  A
        # cached result whose execution has not yet committed is still
        # tentative — the client must assemble a 2f+1 commit certificate
        # for it, not a weak f+1 quorum.
        tentative = (self._reply_seq.get(client_id, 0)
                     > self.committed_frontier)
        reply = Reply(self.view, request_id, client_id, self.node_id,
                      result, digest(result), tentative)
        self.authenticate_for(reply, client_id)
        self.send(client_id, reply)

    def _execute_read_only(self, req: Request) -> None:
        """Read-only optimization: execute against current state, reply
        tentatively; the client requires 2f+1 matching tentative replies."""
        result = self._safe_execute(req.op, req.client_id, req.request_id,
                                    self.last_executed, b"", read_only=True)
        result = self.behavior.corrupt_reply_result(result)
        self._reply(req.client_id, req.request_id, result, tentative=True,
                    force_full=True, read_only=True)
        self.trace("read_only_executed", client=req.client_id,
                   request_id=req.request_id)

    def handle_edge_read(self, src, msg: EdgeRead) -> None:
        """Serve a single-replica edge read with staleness evidence.

        Unlike the read-only optimization there is no quorum: the edge
        accepts this one replica's word plus its version vector — the
        last *stable* checkpoint (which 2f+1 replicas certified and no
        view change can roll back) and the sim time this read executed.
        The whole reply is MAC'd for the edge, so a network party cannot
        forge evidence; a Byzantine replica can still lie, which is
        exactly the trust the staleness contract advertises.
        """
        if src != msg.edge_id or not self.verify_auth(src, msg):
            return
        if self.recovery.recovering or self.transfer.active:
            # Unchecked state must not anchor staleness evidence.
            return
        result = self._safe_execute(msg.op, msg.edge_id, msg.nonce,
                                    self.last_executed, b"", read_only=True)
        result = self.behavior.corrupt_reply_result(result)
        seq, root, stable_at_us = self.stable_vector
        reply = EdgeReadReply(self.node_id, msg.edge_id, msg.nonce,
                              result, digest(result), seq, root,
                              stable_at_us, int(self.now * 1_000_000))
        self.charge(self.costs.digest(len(result)))
        self.authenticate_for(reply, msg.edge_id)
        self.send(msg.edge_id, reply)
        self.trace("edge_read_served", edge=msg.edge_id, nonce=msg.nonce)

    # -- primary: ordering ------------------------------------------------------------

    def _note_arrival(self) -> None:
        """Track the request inter-arrival EWMA at the primary (feeds the
        adaptive batch controller's hold-window decision)."""
        now = self.now
        if self._last_request_at is not None:
            gap = now - self._last_request_at
            ewma = self._arrival_ewma
            self._arrival_ewma = gap if ewma is None \
                else 0.8 * ewma + 0.2 * gap
        self._last_request_at = now

    def _batch_bound(self) -> int:
        return (self._batch_target if self.config.adaptive_batching
                else self.config.batch_max)

    def _should_hold_batch(self) -> bool:
        """Hold an undersized batch briefly when the arrival rate says
        more requests are imminent; never hold Poisson trickles (EWMA
        above the window cap) or once the hold window expired."""
        if not self.config.adaptive_batching or self._hold_forced:
            return False
        if len(self.pending) >= self._batch_target:
            return False
        ewma = self._arrival_ewma
        if ewma is None or ewma > self.config.batch_window_max:
            return False
        if self._hold_event is not None and not self._hold_event.cancelled:
            return True
        deficit = self._batch_target - len(self.pending)
        window = min(ewma * deficit, self.config.batch_window_max)
        self._hold_event = self.after(window, self._on_batch_hold)
        return True

    def _on_batch_hold(self) -> None:
        self._hold_event = None
        self._hold_forced = True
        try:
            self.try_send_pre_prepare()
        finally:
            self._hold_forced = False

    def _note_batch_sent(self, size: int) -> None:
        """AIMD batch-size target: grow when the bound was binding
        (batch filled and requests still queued), shrink when batches
        run at half target or less."""
        self.tracer.metrics.observe("batch.size", float(size))
        if size >= self._batch_target and self.pending:
            self._batch_target = min(self._batch_target * 2,
                                     self.config.batch_max)
        elif size * 2 <= self._batch_target:
            self._batch_target = max(self._batch_target // 2, 1)

    def try_send_pre_prepare(self) -> None:
        if not self.is_primary or self.view_changes.active:
            return
        while self.pending:
            # Batching: with the outstanding window full, arriving requests
            # queue in ``pending`` and ride the next pre-prepare together.
            outstanding = self.seq_assigned - self.last_executed
            if outstanding >= self.config.max_outstanding:
                return
            if self.seq_assigned + 1 > self.high_mark:
                return
            if self._should_hold_batch():
                return
            if self._hold_event is not None:
                self._hold_event.cancel()
                self._hold_event = None
            batch: List[Request] = []
            bound = max(self._batch_bound(), 1)
            while self.pending and len(batch) < bound:
                key, req = self.pending.popitem(last=False)
                batch.append(req)
            seq = self.seq_assigned + 1
            self.seq_assigned = seq
            for req in batch:
                key = (req.client_id, req.request_id)
                self.in_flight[key] = seq
                arrived = self._request_arrival.pop(key, None)
                if arrived is not None:
                    self.tracer.observe_phase("request_to_pre_prepare",
                                              self.now - arrived)
            nondet = self.state.propose_nondet(batch, seq)
            nondet = self.behavior.bad_nondet(nondet)
            pp = PrePrepare(self.view, seq, tuple(batch), nondet)
            self.authenticate(pp)
            self.trace("pre_prepare_sent", seq=seq, batch=len(batch))
            if self.behavior.equivocate_pre_prepare() and len(batch) == 1:
                self._send_equivocating(pp, batch[0])
            else:
                self.multicast(self.other_replicas, pp)
            # The primary's own log entry; its pre-prepare stands in for
            # its prepare, so no separate prepare is recorded or sent.
            slot = self.log.slot(seq)
            slot.pre_prepare = pp
            slot.phase_marks["pre_prepare"] = self.now
            self._note_batch_sent(len(batch))
            self._check_prepared(slot)

    def _send_equivocating(self, pp: PrePrepare, req: Request) -> None:
        """Byzantine primary: half the backups get a conflicting ordering."""
        alt = PrePrepare(pp.view, pp.seq, (Request.null(),), pp.nondet)
        self.authenticate(alt)
        others = self.other_replicas
        for i, dst in enumerate(others):
            self.send(dst, pp if i % 2 == 0 else alt)

    # -- three-phase protocol ---------------------------------------------------------

    def _stash_future(self, src, msg) -> bool:
        """Buffer a message from a view we have not entered yet."""
        if msg.view > self.view and len(self._future_view_msgs) < 512:
            self._future_view_msgs.append((src, msg))
            return True
        return False

    def redeliver_future_msgs(self) -> None:
        """Re-dispatch buffered messages whose view we have now reached."""
        stashed, self._future_view_msgs = self._future_view_msgs, []
        for src, msg in stashed:
            if msg.view >= self.view:
                self.on_message(src, msg)

    def handle_pre_prepare(self, src, pp: PrePrepare) -> None:
        if self._stash_future(src, pp):
            return
        if src != self.primary_id or pp.view != self.view:
            return
        if not self.verify_auth(src, pp):
            return
        if not (self.low_mark < pp.seq <= self.high_mark):
            return
        slot = self.log.slot(pp.seq)
        if slot.pre_prepare is not None:
            if slot.pre_prepare.view == pp.view:
                if slot.pre_prepare.batch_digest() != pp.batch_digest():
                    # Two different pre-prepares for the same (view, seq)
                    # can only come from a faulty primary: suspect it.
                    self.trace("conflicting_pre_prepare", seq=pp.seq)
                    self.view_changes.start(self.view + 1)
                return
            # The logged pre-prepare is from an older view that the view
            # change did not carry forward — stale; replace it.
            slot.prepares = {}
            slot.commits = {}
            slot.prepared = False
            slot.committed = False
        if not self.state.check_nondet(list(pp.requests), pp.seq, pp.nondet):
            self.trace("nondet_rejected", seq=pp.seq)
            # Do not accept; the vc timer will fire and replace the primary.
            self.vc_timer.start()
            return
        slot.pre_prepare = pp
        slot.phase_marks = {"pre_prepare": self.now}
        for req in pp.requests:
            if not req.is_null:
                self.waiting[(req.client_id, req.request_id)] = req
        self.vc_timer.start()
        prep = Prepare(pp.view, pp.seq, pp.batch_digest(), self.node_id)
        self.authenticate(prep)
        self.multicast(self.other_replicas, prep)
        slot.prepares[self.node_id] = prep
        self._check_prepared(slot)

    def handle_prepare(self, src, prep: Prepare) -> None:
        if self._stash_future(src, prep):
            return
        if prep.view != self.view or src != prep.replica_id:
            return
        if src == self.config.primary_of(prep.view):
            return  # the primary's pre-prepare is its prepare
        if not self.verify_auth(src, prep):
            return
        if not (self.low_mark < prep.seq <= self.high_mark):
            return
        slot = self.log.slot(prep.seq)
        slot.prepares[src] = prep
        self._check_prepared(slot)

    def _check_prepared(self, slot) -> None:
        if slot.prepared or slot.pre_prepare is None:
            return
        # pre-prepare counts as the primary's prepare: need 2f matching
        # prepares from non-primary replicas (self included when backup).
        if slot.matching_prepares() >= 2 * self.config.f:
            slot.prepared = True
            if (slot.prepared_cert is None
                    or slot.prepared_cert[0] < self.view):
                slot.prepared_cert = (self.view, slot.pre_prepare)
            self.trace("prepared", seq=slot.seq)
            mark = slot.phase_marks.get("pre_prepare")
            if mark is not None:
                self.tracer.observe_phase("pre_prepare_to_prepared",
                                          self.now - mark)
            slot.phase_marks["prepared"] = self.now
            com = Commit(self.view, slot.seq,
                         slot.pre_prepare.batch_digest(), self.node_id)
            self.authenticate(com)
            self.multicast(self.other_replicas, com)
            slot.commits[self.node_id] = com
            self._check_committed(slot)
            if not slot.executed and self.config.tentative_execution:
                # Fast path: execute at prepared, before the commit
                # certificate completes (replies go out tentative).
                self.try_execute()

    def handle_commit(self, src, com: Commit) -> None:
        if self._stash_future(src, com):
            return
        if com.view != self.view or src != com.replica_id:
            return
        if not self.verify_auth(src, com):
            return
        if not (self.low_mark < com.seq <= self.high_mark):
            return
        slot = self.log.slot(com.seq)
        slot.commits[src] = com
        self._check_committed(slot)

    def _check_committed(self, slot) -> None:
        if slot.committed or not slot.prepared:
            return
        if slot.matching_commits() >= self.config.quorum:
            slot.committed = True
            self.trace("committed", seq=slot.seq)
            mark = slot.phase_marks.get("prepared")
            if mark is not None:
                self.tracer.observe_phase("prepared_to_committed",
                                          self.now - mark)
            slot.phase_marks["committed"] = self.now
            if slot.executed:
                # Already executed on the fast path; the commit
                # certificate just made that execution durable.
                self._advance_committed_frontier()
            else:
                self.try_execute()

    def _advance_committed_frontier(self) -> None:
        """Walk the committed-execution frontier forward, downgrading
        tentative executions to committed as their certificates land."""
        seq = self.committed_frontier
        while seq < self.last_executed:
            slot = self.log.get(seq + 1)
            if slot is None or not slot.executed or not slot.committed:
                break
            slot.tentative = False
            seq += 1
        self.last_committed_exec = seq
        if not self.waiting and self.committed_frontier >= self.last_executed:
            self.vc_timer.stop()

    # -- execution ------------------------------------------------------------------

    def try_execute(self) -> None:
        if self.transfer.active or self.recovery.recovering:
            return
        fast = (self.config.tentative_execution
                and not self.view_changes.active)
        while True:
            slot = self.log.get(self.last_executed + 1)
            if slot is None or slot.executed:
                break
            if slot.committed:
                tentative = False
            elif fast and slot.prepared:
                tentative = True
            else:
                break
            pp = slot.pre_prepare
            self.last_executed = slot.seq
            slot.executed = True
            slot.tentative = tentative
            if tentative:
                mark = slot.phase_marks.get("prepared")
                if mark is not None:
                    self.tracer.observe_phase("prepared_to_executed",
                                              self.now - mark)
            else:
                mark = slot.phase_marks.get("committed")
                if mark is not None:
                    self.tracer.observe_phase("committed_to_executed",
                                              self.now - mark)
            for req in pp.requests:
                self._execute_request(req, slot.seq, pp.nondet, tentative)
            if not tentative and self.committed_frontier == slot.seq - 1:
                self.last_committed_exec = slot.seq
            if slot.seq % self.config.checkpoint_interval == 0:
                self._take_checkpoint(slot.seq)
        if self.is_primary:
            self.try_send_pre_prepare()
        # The vc timer guards commit-phase liveness too: a tentatively
        # executed slot whose certificate never completes must still
        # depose the primary, so only quiesce once the frontier catches
        # up to the execution point.
        if not self.waiting and self.committed_frontier >= self.last_executed:
            self.vc_timer.stop()
        else:
            self.vc_timer.restart()

    def _execute_request(self, req: Request, seq: int, nondet: bytes,
                         tentative: bool = False) -> None:
        self.waiting.pop((req.client_id, req.request_id), None)
        self.in_flight.pop((req.client_id, req.request_id), None)
        self._request_arrival.pop((req.client_id, req.request_id), None)
        if req.is_null:
            return
        last = self.client_table.get(req.client_id)
        if last is not None and req.request_id <= last[0]:
            return  # duplicate within a re-proposed batch
        result = self._safe_execute(req.op, req.client_id, req.request_id,
                                    seq, nondet)
        result = self.behavior.corrupt_reply_result(result)
        self.trace("executed", seq=seq, client=req.client_id,
                   request_id=req.request_id, tentative=tentative)
        self._reply(req.client_id, req.request_id, result,
                    tentative=tentative, seq=seq)

    def _safe_execute(self, op: bytes, client_id: str, request_id: int,
                      seq: int, nondet: bytes,
                      read_only: bool = False) -> bytes:
        """Execute, mapping service exceptions to deterministic error
        results: a Byzantine client's malformed operation must not crash
        replicas, and all correct replicas must produce the same reply."""
        try:
            return self.state.execute(op, client_id, request_id, seq,
                                      nondet, read_only=read_only)
        except Exception as exc:
            self.trace("execute_error", error=type(exc).__name__)
            return b"__error__:" + type(exc).__name__.encode("ascii")

    def _reply(self, client_id: str, request_id: int, result: bytes,
               tentative: bool = False, seq: int = 0,
               force_full: bool = False, read_only: bool = False) -> None:
        rdigest = digest(result)
        self.charge(self.costs.digest(len(result)))
        full = (force_full or not self.config.tentative_reply_digests
                or self._is_designated(seq))
        reply = Reply(self.view, request_id, client_id, self.node_id,
                      result if full else None, rdigest, tentative,
                      read_only)
        if not read_only:
            # Every *ordered* execution — tentative included — updates
            # the reply cache: a rollback reinstalls the cache from the
            # stable checkpoint blob, so tentative entries never survive
            # a re-ordering.
            self.client_table[client_id] = (request_id, result)
            self._reply_seq[client_id] = seq
        self.authenticate_for(reply, client_id)
        self.send(client_id, reply)

    def _is_designated(self, seq: int) -> bool:
        """The one replica that sends the full result for this seq."""
        return self.config.replica_index(self.node_id) == seq % self.config.n

    # -- checkpoints -------------------------------------------------------------------

    def serialize_client_table(self) -> bytes:
        from repro.encoding.canonical import canonical
        entries = tuple(sorted(
            (client, request_id, result)
            for client, (request_id, result) in self.client_table.items()))
        return canonical(entries)

    def install_client_table(self, blob: bytes) -> None:
        from repro.encoding.canonical import decanonical
        self.client_table = {
            client: (request_id, result)
            for client, request_id, result in decanonical(blob)}

    #: Checkpoint-history entries retained for staleness-contract audits.
    _HISTORY_MAX = 512

    def _take_checkpoint(self, seq: int) -> None:
        root = self.state.take_checkpoint(seq)
        self.checkpoint_history.append((seq, root))
        if len(self.checkpoint_history) > self._HISTORY_MAX:
            del self.checkpoint_history[:-self._HISTORY_MAX]
        table_blob = self.serialize_client_table()
        table_digest = digest(table_blob)
        self.table_checkpoints[seq] = (table_digest, table_blob)
        self.charge(self.costs.digest(len(table_blob)))
        self.trace("checkpoint_taken", seq=seq)
        # Checkpoint messages are signed (not MACed) so that certificates
        # assembled from them are independently verifiable by third parties
        # — view-change messages and recovering replicas rely on this.
        msg = CheckpointMsg(seq, root, table_digest, self.node_id)
        self.sign_msg(msg)
        self.multicast(self.other_replicas, msg)
        self._latest_checkpoint_msg = msg
        self._ckpt_retry_timer.restart()
        self._record_checkpoint_msg(self.node_id, msg)

    def _retransmit_checkpoint(self) -> None:
        msg = self._latest_checkpoint_msg
        if (msg is not None and msg.seq > self.last_stable
                and not self.recovery.rebooting):
            self.multicast(self.other_replicas, msg)
            self._ckpt_retry_timer.restart()

    def handle_checkpoint(self, src, msg: CheckpointMsg) -> None:
        if src != msg.replica_id or not self.verify_sig(src, msg):
            return
        if msg.seq <= self.last_stable:
            return
        self._record_checkpoint_msg(src, msg)

    def valid_checkpoint_cert(self, seq: int, root: bytes, msgs) -> bool:
        """A valid certificate: quorum of distinct, correctly signed
        CHECKPOINT messages all vouching for (seq, root) and agreeing on
        the reply-cache digest."""
        seen = set()
        table_digests = set()
        for m in msgs:
            if (getattr(m, "kind", "") != "checkpoint" or m.seq != seq
                    or m.root_digest != root
                    or m.replica_id not in self.config.replica_ids
                    or m.replica_id in seen):
                continue
            if not self.verify_sig(m.replica_id, m):
                continue
            seen.add(m.replica_id)
            table_digests.add(m.table_digest)
        return len(seen) >= self.config.quorum and len(table_digests) == 1

    def _record_checkpoint_msg(self, src: str, msg: CheckpointMsg) -> None:
        by_replica = self.checkpoint_msgs.setdefault(msg.seq, {})
        by_replica[src] = msg
        matching = [m for m in by_replica.values()
                    if m.root_digest == msg.root_digest
                    and m.table_digest == msg.table_digest]
        if len(matching) < self.config.quorum:
            return
        cert = tuple(sorted(matching, key=lambda m: m.replica_id))
        own_root = self.state.checkpoint_root(msg.seq)
        own_table = self.table_checkpoints.get(msg.seq)
        if own_root == msg.root_digest and own_table is not None \
                and own_table[0] == msg.table_digest:
            self._mark_stable(msg.seq, cert)
        elif msg.seq > self.last_executed:
            # We are out of date (missed requests that were garbage
            # collected) — fetch the stable checkpoint.
            self.transfer.initiate(msg.seq, msg.root_digest, cert)
        elif own_root is not None and msg.seq >= self.last_stable:
            # We took this checkpoint ourselves and our digest differs:
            # our state is corrupt or diverged; fetch from the others.
            # (A *missing* record is NOT divergence — it just means we
            # state-transferred past this seq and never took it; rolling
            # back on stale certificates would rewrite executed history.)
            self.trace("checkpoint_divergence", seq=msg.seq)
            self.transfer.initiate(msg.seq, msg.root_digest, cert,
                                   force=True)

    def note_stable_vector(self, seq: int, root: bytes) -> None:
        """Mint the version vector edge reads will carry: the checkpoint
        just proven stable, MAC'd per edge receiver at reply time.  Also
        folds externally installed checkpoints (state transfer) into the
        retained history so staleness audits see them."""
        if not self.checkpoint_history or self.checkpoint_history[-1] != (seq, root):
            self.checkpoint_history.append((seq, root))
            if len(self.checkpoint_history) > self._HISTORY_MAX:
                del self.checkpoint_history[:-self._HISTORY_MAX]
        self.stable_vector = (seq, root, int(self.now * 1_000_000))

    def _mark_stable(self, seq: int, cert: Tuple[CheckpointMsg, ...]) -> None:
        if seq <= self.last_stable:
            return
        self.last_stable = seq
        self.stable_cert = cert
        self.note_stable_vector(seq, cert[0].root_digest)
        if self.last_committed_exec < seq:
            self.last_committed_exec = seq
        self._advance_committed_frontier()
        self.log.truncate_below(seq)
        self.state.discard_checkpoints_below(seq)
        for old in [s for s in self.table_checkpoints if s < seq]:
            del self.table_checkpoints[old]
        for old in [s for s in self.checkpoint_msgs if s <= seq]:
            del self.checkpoint_msgs[old]
        self.trace("checkpoint_stable", seq=seq)
        if self._latest_checkpoint_msg is not None \
                and self._latest_checkpoint_msg.seq <= seq:
            self._ckpt_retry_timer.stop()
        if self.is_primary:
            self.try_send_pre_prepare()  # watermarks moved

    # -- rollback of tentative executions ---------------------------------------------

    def rollback_to_stable(self) -> bool:
        """Undo tentative executions above the stable checkpoint.

        Invoked when a view change re-orders history past executions we
        performed at prepared time.  Restores the service state and the
        client reply cache from the local checkpoint at ``last_stable``
        and un-marks every retained slot as executed so ``try_execute``
        replays the new view's order.  Falls back to state transfer when
        no local checkpoint survives (e.g. it was itself discarded)."""
        seq = self.last_stable
        restored = self.state.restore_checkpoint(seq)
        table = self.table_checkpoints.get(seq)
        if not restored or table is None:
            self.trace("rollback_via_transfer", seq=seq)
            self.tracer.metrics.inc("bft.rollback_via_transfer")
            if self.stable_cert:
                self.transfer.initiate(seq, self.stable_cert[0].root_digest,
                                       self.stable_cert, force=True)
            return False
        self.install_client_table(table[1])
        self._reply_seq.clear()
        self.last_executed = seq
        self.last_committed_exec = seq
        for s in self.log.seqs():
            slot = self.log.get(s)
            slot.executed = False
            slot.tentative = False
        # Our own checkpoints above the stable one described rolled-back
        # state; drop them (peers' votes for those seqs remain valid — a
        # batch tentatively executed by f+1 correct replicas is preserved
        # by every view change, so their announcements never certify
        # state that rollback erased).
        for s in [s for s in self.table_checkpoints if s > seq]:
            del self.table_checkpoints[s]
        if self._latest_checkpoint_msg is not None \
                and self._latest_checkpoint_msg.seq > seq:
            self._latest_checkpoint_msg = None
            self._ckpt_retry_timer.stop()
        self.trace("rollback", seq=seq)
        self.tracer.metrics.inc("bft.rollback")
        # One-shot completion hooks (FaultLab records RollbackEntry
        # evidence through the same channel as state transfer).
        callbacks = self.transfer.completion_callbacks
        self.transfer.completion_callbacks = []
        for cb in callbacks:
            cb(seq)
        return True

    # -- view changes (delegated) --------------------------------------------------------

    def _on_vc_timeout(self) -> None:
        if self.recovery.recovering or self.transfer.active:
            return
        self.trace("vc_timeout", view=self.view)
        self.view_changes.start(self.view + 1)

    def handle_view_change(self, src, msg) -> None:
        self.view_changes.on_view_change(src, msg)

    def handle_new_view(self, src, msg) -> None:
        self.view_changes.on_new_view(src, msg)

    # -- state transfer (delegated) ---------------------------------------------------------

    def handle_fetch_cert(self, src, msg) -> None:
        self.transfer.on_fetch_cert(src, msg)

    def handle_cert_reply(self, src, msg) -> None:
        self.transfer.on_cert_reply(src, msg)

    def handle_fetch_meta(self, src, msg) -> None:
        self.transfer.on_fetch_meta(src, msg)

    def handle_meta_reply(self, src, msg) -> None:
        self.transfer.on_meta_reply(src, msg)

    def handle_fetch_object(self, src, msg) -> None:
        self.transfer.on_fetch_object(src, msg)

    def handle_object_reply(self, src, msg) -> None:
        self.transfer.on_object_reply(src, msg)

    def handle_fetch_table(self, src, msg) -> None:
        self.transfer.on_fetch_table(src, msg)

    def handle_table_reply(self, src, msg) -> None:
        self.transfer.on_table_reply(src, msg)

    # -- recovery (delegated) -------------------------------------------------------------------

    def handle_recovery_request(self, src, msg) -> None:
        self.recovery.on_recovery_request(src, msg)
