"""Reusable abstract↔concrete state mappings (paper §6, future work).

The paper closes by suggesting "a library of mappings between abstract
and concrete states for common data structures would further simplify
our technique."  The two patterns both examples needed are provided
here, extracted so new conformance wrappers can reuse them:

- :class:`SlotAllocator` — deterministic lowest-free-index allocation
  over a fixed-size abstract array with per-entry generation numbers
  (the oid discipline of the file service and the client/VQ arrays of
  BASE-Thor);
- :class:`KeyedArrayMapping` — maps arbitrary service-level keys (path
  names, primary keys, client ids) to abstract array slots, with the
  reverse map, persistence for the shutdown/restart upcalls, and
  generation-checked lookup.
"""

from __future__ import annotations

import heapq
from typing import Dict, Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

from repro.encoding.canonical import canonical, decanonical

K = TypeVar("K", bound=Hashable)


class SlotAllocator:
    """Deterministic allocation of abstract-array slots.

    Allocation always returns the lowest free index; assignment bumps the
    slot's generation, so stale references (oids) are detectable.  All
    correct replicas performing the same operation sequence allocate
    identically — the property state-machine replication needs.
    """

    def __init__(self, size: int, reserved: int = 0):
        if reserved > size:
            raise ValueError("more reserved slots than the array holds")
        self.size = size
        self.reserved = reserved
        self._free = list(range(reserved, size))
        heapq.heapify(self._free)
        self._used: Dict[int, int] = {i: 0 for i in range(reserved)}
        self._generations: List[int] = [0] * size

    _PENDING = -1

    def allocate(self) -> int:
        """Reserve the lowest free slot (generation bumps on `commit`)."""
        while self._free:
            index = heapq.heappop(self._free)
            if index not in self._used:
                self._used[index] = self._PENDING
                return index
        raise IndexError("abstract array exhausted")

    def commit(self, index: int) -> int:
        """Finalize an allocation: bump and return the new generation."""
        self._generations[index] += 1
        self._used[index] = self._generations[index]
        return self._generations[index]

    def release(self, index: int) -> None:
        """Free a slot (its generation survives for staleness checks)."""
        if index < self.reserved:
            raise ValueError(f"slot {index} is reserved")
        if self._used.pop(index, None) is not None:
            heapq.heappush(self._free, index)

    def rollback(self, index: int) -> None:
        """Undo an `allocate` that was never committed."""
        if self._used.get(index) == self._PENDING and index >= self.reserved:
            del self._used[index]
            heapq.heappush(self._free, index)

    def generation(self, index: int) -> int:
        return self._generations[index]

    def set_generation(self, index: int, gen: int, used: bool) -> None:
        """Install externally-determined state (put_objs / restart)."""
        self._generations[index] = gen
        if used:
            self._used[index] = gen
        elif index >= self.reserved and index in self._used:
            del self._used[index]
            heapq.heappush(self._free, index)
        elif index >= self.reserved:
            # Ensure the slot is findable as free.
            heapq.heappush(self._free, index)

    def is_used(self, index: int) -> bool:
        return index in self._used

    def used_slots(self) -> Iterator[int]:
        return iter(sorted(self._used))


class KeyedArrayMapping(Generic[K]):
    """Service keys ↔ abstract array slots, built on :class:`SlotAllocator`.

    Typical wrapper usage::

        mapping = KeyedArrayMapping(size=4096, reserved=1)  # 0 = catalog
        index, gen = mapping.assign(("accounts", pk))
        ...
        index = mapping.index_of(("accounts", pk))
        mapping.release(("accounts", pk))

    ``save()``/``load()`` round-trip the mapping through canonical bytes
    for the shutdown/restart upcalls.
    """

    def __init__(self, size: int, reserved: int = 0):
        self.allocator = SlotAllocator(size, reserved)
        self._key_to_index: Dict[K, int] = {}
        self._index_to_key: Dict[int, K] = {}

    def __len__(self) -> int:
        return len(self._key_to_index)

    def __contains__(self, key: K) -> bool:
        return key in self._key_to_index

    def assign(self, key: K) -> Tuple[int, int]:
        """Bind ``key`` to the lowest free slot; returns (index, gen)."""
        if key in self._key_to_index:
            raise KeyError(f"{key!r} already mapped")
        index = self.reserve()
        return index, self.bind(key, index)

    def reserve(self) -> int:
        """Pick the slot a new key will get, without committing — so the
        wrapper can call the library's ``modify`` upcall (which must see
        the pre-mutation value) before the generation bumps."""
        return self.allocator.allocate()

    def bind(self, key: K, index: int) -> int:
        """Complete a :meth:`reserve`; returns the new generation."""
        if key in self._key_to_index:
            raise KeyError(f"{key!r} already mapped")
        gen = self.allocator.commit(index)
        self._key_to_index[key] = index
        self._index_to_key[index] = key
        return gen

    def rollback(self, index: int) -> None:
        """Undo a :meth:`reserve` whose operation failed."""
        self.allocator.rollback(index)

    def release(self, key: K) -> int:
        """Unbind ``key``; returns the freed index."""
        index = self._key_to_index.pop(key)
        del self._index_to_key[index]
        self.allocator.release(index)
        return index

    def index_of(self, key: K) -> Optional[int]:
        return self._key_to_index.get(key)

    def key_of(self, index: int) -> Optional[K]:
        return self._index_to_key.get(index)

    def generation(self, index: int) -> int:
        return self.allocator.generation(index)

    def items(self) -> Iterator[Tuple[K, int]]:
        return iter(sorted(self._key_to_index.items(),
                           key=lambda kv: kv[1]))

    def install(self, key: Optional[K], index: int, gen: int) -> None:
        """put_objs-side update: make ``index`` hold ``key`` at ``gen``
        (or free the slot when ``key`` is None)."""
        old_key = self._index_to_key.pop(index, None)
        if old_key is not None:
            del self._key_to_index[old_key]
        if key is None:
            self.allocator.set_generation(index, gen, used=False)
            return
        existing = self._key_to_index.pop(key, None)
        if existing is not None and existing != index:
            self._index_to_key.pop(existing, None)
            self.allocator.set_generation(
                existing, self.allocator.generation(existing), used=False)
        self.allocator.set_generation(index, gen, used=True)
        self._key_to_index[key] = index
        self._index_to_key[index] = key

    # -- persistence (shutdown/restart upcalls) ------------------------------

    def save(self) -> bytes:
        entries = tuple((canonical(key), index,
                         self.allocator.generation(index))
                        for key, index in sorted(self._key_to_index.items(),
                                                 key=lambda kv: kv[1]))
        free_gens = tuple((i, self.allocator.generation(i))
                          for i in range(self.allocator.size)
                          if not self.allocator.is_used(i))
        return canonical((self.allocator.size, self.allocator.reserved,
                          entries, free_gens))

    @classmethod
    def load(cls, blob: bytes) -> "KeyedArrayMapping":
        size, reserved, entries, free_gens = decanonical(blob)
        mapping = cls(size, reserved)
        for key_blob, index, gen in entries:
            mapping.install(decanonical(key_blob), index, gen)
        for index, gen in free_gens:
            mapping.allocator.set_generation(index, gen,
                                             used=index < reserved)
        return mapping
