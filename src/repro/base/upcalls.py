"""The BASE upcall interface (paper Figure 1 / Figure 2).

A *conformance wrapper* implements this interface around an off-the-shelf
service implementation, making it behave according to the common abstract
specification.  The library calls:

- ``execute`` to run each operation (the wrapper must call
  ``self.library.modify(i)`` before mutating abstract object ``i`` —
  that is how incremental copy-on-write checkpointing works);
- ``get_obj`` — the abstraction function, at object granularity;
- ``put_objs`` — an inverse of the abstraction function, called with a
  vector of objects that together bring the abstract state to a
  consistent checkpoint value;
- ``propose_value`` (primary only) and ``check_value`` to agree on
  nondeterministic choices such as timestamps;
- ``shutdown``/``restart`` around proactive-recovery reboots.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Sequence


class Upcalls(abc.ABC):
    """Conformance-wrapper interface; one instance wraps one replica's
    service implementation."""

    def __init__(self) -> None:
        #: Set by the AbstractStateManager; exposes ``modify`` and ``charge``.
        self.library: Optional["LibraryHandle"] = None

    # -- sizing ------------------------------------------------------------

    @property
    @abc.abstractmethod
    def num_objects(self) -> int:
        """Fixed size of the abstract-state array."""

    # -- execution -----------------------------------------------------------

    @abc.abstractmethod
    def execute(self, op: bytes, client_id: str, nondet: bytes,
                read_only: bool = False) -> bytes:
        """Run one operation of the common abstract specification."""

    # -- state conversion -------------------------------------------------------

    @abc.abstractmethod
    def get_obj(self, index: int) -> bytes:
        """Abstraction function: the value of abstract object ``index``,
        computed from the wrapped implementation's concrete state."""

    @abc.abstractmethod
    def put_objs(self, objects: Dict[int, bytes]) -> None:
        """Inverse abstraction function: update the concrete state so that
        the given abstract objects take the given values.

        The library guarantees the argument brings the abstract state to a
        consistent checkpoint value, so implementations may resolve
        inter-object dependencies (e.g. create parent directories first).
        """

    # -- nondeterminism ------------------------------------------------------------

    def propose_value(self, requests: Sequence[bytes], seq: int) -> bytes:
        """Primary-side choice of the nondeterministic value for a batch."""
        return b""

    def check_value(self, requests: Sequence[bytes], seq: int,
                    nondet: bytes) -> bool:
        """Backup-side validation of the primary's proposal."""
        return nondet == b""

    # -- proactive recovery -----------------------------------------------------------

    def shutdown(self) -> float:
        """Persist the conformance representation; returns simulated
        seconds the save took."""
        return 0.0

    def restart(self) -> float:
        """Rebuild the conformance representation after a reboot; returns
        simulated seconds the rebuild took."""
        return 0.0


class LibraryHandle:
    """What the library exposes back to the conformance wrapper."""

    def __init__(self, modify, charge) -> None:
        #: ``modify(index)`` — MUST be called before mutating an abstract
        #: object; implements copy-on-write checkpointing.
        self.modify = modify
        #: ``charge(seconds)`` — consume simulated CPU/disk time.
        self.charge = charge
