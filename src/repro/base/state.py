"""Abstract-state manager: copy-on-write checkpoints over the upcalls.

Implements the library side of the BASE methodology (paper §2.3):

- the abstract state is a fixed-size array of variable-size objects,
  materialized only on demand through ``get_obj``;
- ``modify(i)`` saves a pre-image of object ``i`` the first time it is
  modified after a checkpoint, so checkpoints are incremental;
- checkpoints retain a partition-tree snapshot plus the pre-image deltas,
  letting the replica serve state transfer at any retained checkpoint;
- ``lm`` (last-modified) follows the paper: the sequence number of the
  checkpoint at which the object's modification was incorporated.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bft.messages import Request
from repro.bft.parttree import PartitionTree, TreeSnapshot
from repro.bft.statemachine import StateManager
from repro.crypto.digest import digest
from repro.base.upcalls import LibraryHandle, Upcalls


#: Checkpoint-history entries retained for staleness-contract audits.
_HISTORY_MAX = 512


class _CheckpointRecord:
    """State needed to serve one retained checkpoint.

    ``delta`` holds, for each object modified *after* this checkpoint and
    before the next retained one, its (value, lm) *as of this checkpoint*
    — the copy-on-write pre-images.
    """

    __slots__ = ("seq", "snapshot", "delta")

    def __init__(self, seq: int, snapshot: TreeSnapshot):
        self.seq = seq
        self.snapshot = snapshot
        self.delta: Dict[int, Tuple[bytes, int]] = {}


class AbstractStateManager(StateManager):
    """Binds a conformance wrapper (:class:`Upcalls`) to the BFT replica."""

    def __init__(self, upcalls: Upcalls, branching: int = 64,
                 per_object_check_cost: float = 0.0,
                 checkpoint_cost: float = 0.0,
                 cow_cost: float = 0.0):
        self.upcalls = upcalls
        self.size = upcalls.num_objects
        self._tree = PartitionTree(self.size, branching)
        # _dirty: modified since the last checkpoint (determines which lm
        # values advance at the next checkpoint — must be identical across
        # replicas).  _stale: subset whose live-tree digest has not been
        # recomputed yet (purely local bookkeeping).  _cold: marked by
        # mark_all_dirty (the recovery check pass) — re-deriving those
        # reads cold concrete state, which is charged at the expensive
        # rate and to the *background* hook (the paper's recovery checks
        # run while waiting for fetch replies, off the protocol path).
        self._dirty: set = set()
        self._stale: set = set()
        self._cold: set = set()
        # Pre-images of objects modified since the latest checkpoint:
        # index -> (value, lm) as of the latest checkpoint.
        self._cow: Dict[int, Tuple[bytes, int]] = {}
        self._records: "OrderedDict[int, _CheckpointRecord]" = OrderedDict()
        self.last_checkpoint_seq = 0
        # Every (seq, root_digest) this manager ever checkpointed —
        # retained past garbage collection (bounded) so the edge tier's
        # staleness contract can be audited against the abstract-state
        # history the replica actually passed through.  Rolled-back
        # checkpoints stay recorded: they were real states at the time,
        # and evidence only ever anchors at *stable* seqs, which never
        # roll back.
        self.checkpoint_history: List[Tuple[int, bytes]] = []
        self.per_object_check_cost = per_object_check_cost  # cold, per KB
        self.checkpoint_cost = checkpoint_cost              # hot, per KB
        self.cow_cost = cow_cost                            # modify(), per KB
        self.charge_hook: Callable[[float], None] = lambda seconds: None
        self.background_hook: Callable[[float], None] = \
            lambda seconds: self.charge_hook(seconds)
        upcalls.library = LibraryHandle(self.modify, self._charge)
        # Initial leaf digests reflect the initial abstract state.
        for i in range(self.size):
            self._tree.set_leaf(i, digest(upcalls.get_obj(i)), 0)

    def _charge(self, seconds: float) -> None:
        self.charge_hook(seconds)

    def _charge_check(self, index: int, value: bytes) -> None:
        """Cost of one get_obj + digest, proportional to object size."""
        kb = max(len(value), 64) / 1024.0
        if index in self._cold:
            self.background_hook(self.per_object_check_cost * kb)
        else:
            self.charge_hook(self.checkpoint_cost * kb)

    # -- copy-on-write (the `modify` library call) -----------------------------

    def modify(self, index: int) -> None:
        """Record that abstract object ``index`` is about to change.

        First modification after a checkpoint saves the pre-image, so the
        checkpoint value can still be served/transferred later.
        """
        if index in self._cow:
            return
        if not 0 <= index < self.size:
            raise IndexError(f"abstract object {index} out of range")
        value = self.upcalls.get_obj(index)
        # Copy-on-write bookkeeping cost (saving the pre-image); the
        # paper's T2b commits are dominated by exactly this per-page work.
        self.charge_hook(self.cow_cost * max(len(value), 64) / 1024.0)
        self._cow[index] = (value, self._tree.leaf_lm(index))
        self._dirty.add(index)
        self._stale.add(index)

    # -- execution --------------------------------------------------------------

    def execute(self, op: bytes, client_id: str, request_id: int, seq: int,
                nondet: bytes, read_only: bool = False) -> bytes:
        return self.upcalls.execute(op, client_id, nondet,
                                    read_only=read_only)

    def propose_nondet(self, requests: Sequence[Request], seq: int) -> bytes:
        return self.upcalls.propose_value([r.op for r in requests], seq)

    def check_nondet(self, requests: Sequence[Request], seq: int,
                     nondet: bytes) -> bool:
        return self.upcalls.check_value([r.op for r in requests], seq, nondet)

    # -- checkpoints -----------------------------------------------------------------

    def take_checkpoint(self, seq: int) -> bytes:
        # Fold the pre-images into the *previous* checkpoint's record: they
        # are the values objects had at that checkpoint.
        prev = self._records.get(self.last_checkpoint_seq)
        if prev is not None:
            for index, entry in self._cow.items():
                prev.delta.setdefault(index, entry)
        # Recompute digests of modified objects (paper: the library calls
        # get_obj for objects saved by the incremental mechanism) and
        # advance their lm to this checkpoint's sequence number.
        # Sorted: the per-object costs fold into the replica's simulated
        # time with float addition, which is not associative — iterating
        # in hash order would let set history skew the sum's last ULPs.
        for index in sorted(self._dirty):
            value = self.upcalls.get_obj(index)
            self._charge_check(index, value)
            self._tree.set_leaf(index, digest(value), seq)
        self._dirty.clear()
        self._stale.clear()
        self._cold.clear()
        self._cow = {}
        record = _CheckpointRecord(seq, self._tree.snapshot())
        self._records[seq] = record
        self.last_checkpoint_seq = seq
        self.checkpoint_history.append((seq, record.snapshot.root_digest))
        if len(self.checkpoint_history) > _HISTORY_MAX:
            del self.checkpoint_history[:-_HISTORY_MAX]
        return record.snapshot.root_digest

    def discard_checkpoints_below(self, seq: int) -> None:
        for old in [s for s in self._records if s < seq]:
            del self._records[old]

    def checkpoint_root(self, seq: int) -> Optional[bytes]:
        record = self._records.get(seq)
        return record.snapshot.root_digest if record else None

    def version_vector(self, seq: int) -> Optional[Tuple[int, bytes]]:
        """The ``(checkpoint_seq, abstract-state digest)`` pair a replica
        embeds in edge staleness evidence, for a retained checkpoint."""
        record = self._records.get(seq)
        if record is None:
            return None
        return (seq, record.snapshot.root_digest)

    def restore_checkpoint(self, seq: int) -> bool:
        record = self._records.get(seq)
        if record is None:
            return False
        # Objects touched since checkpoint ``seq``: anything with a
        # pre-image in a retained record at or above it, plus the live
        # copy-on-write set.  ``object_at`` resolves each one's value as
        # of ``seq`` through the same pre-image chain state transfer
        # serves from — gather before mutating anything.
        indices = set(self._cow)
        for s, rec in self._records.items():
            if s >= seq:
                indices.update(rec.delta)
        values = {i: self.object_at(seq, i) for i in sorted(indices)}
        if values:
            self.upcalls.put_objs(values)
        leaf_digests = record.snapshot.digests[-1]
        leaf_lms = record.snapshot.lms[-1]
        for i in sorted(indices):
            self._tree.set_leaf(i, leaf_digests[i], leaf_lms[i])
        for s in [s for s in self._records if s > seq]:
            del self._records[s]
        self._dirty.clear()
        self._stale.clear()
        self._cold.clear()
        self._cow = {}
        self.last_checkpoint_seq = seq
        return True

    # -- serving state transfer ----------------------------------------------------------

    def meta_children(self, seq: int, level: int, index: int):
        record = self._records.get(seq)
        if record is None:
            return None
        return record.snapshot.children_info(level, index,
                                             self._tree.branching)

    def object_at(self, seq: int, index: int) -> Optional[bytes]:
        if seq not in self._records or not 0 <= index < self.size:
            return None
        # Chain lookup: the first retained checkpoint >= seq that saved a
        # pre-image for this object has its value at `seq`; otherwise the
        # object is unmodified since, and the current value is the answer.
        for s, record in self._records.items():
            if s >= seq and index in record.delta:
                return record.delta[index][0]
        if index in self._cow:
            return self._cow[index][0]
        return self.upcalls.get_obj(index)

    # -- fetching side -----------------------------------------------------------------------

    def local_leaf_info(self, index: int) -> Tuple[bytes, int]:
        if index in self._stale:
            value = self.upcalls.get_obj(index)
            self._charge_check(index, value)
            self._tree.set_leaf(index, digest(value), self._tree.leaf_lm(index))
            self._stale.discard(index)
            self._cold.discard(index)
        return self._tree.leaf_digest(index), self._tree.leaf_lm(index)

    def refresh_dirty(self) -> None:
        """Recompute stale leaf digests (cold entries charge background)."""
        for index in sorted(self._stale):
            value = self.upcalls.get_obj(index)
            self._charge_check(index, value)
            self._tree.set_leaf(index, digest(value),
                                self._tree.leaf_lm(index))
        self._stale.clear()
        self._cold.clear()

    def mark_all_dirty(self) -> None:
        # Recovery's integrity check: re-derive every digest from the
        # concrete state.  Does NOT touch _dirty — lm advancement is part
        # of the replicated state and must stay deterministic.
        self._stale = set(range(self.size))
        self._cold = set(range(self.size))

    def apply_fetched(self, seq: int, root_digest: bytes,
                      objects: Dict[int, Tuple[bytes, int]]) -> bool:
        if objects:
            self.upcalls.put_objs({i: value
                                   for i, (value, _) in objects.items()})
        for index, (value, lm) in objects.items():
            self._tree.set_leaf(index, digest(value), lm)
        if self._tree.root_digest != root_digest:
            return False
        # Current state now *is* checkpoint `seq`: reset COW bookkeeping.
        self._dirty.clear()
        self._stale.clear()
        self._cold.clear()
        self._cow = {}
        self._records.clear()
        self._records[seq] = _CheckpointRecord(seq, self._tree.snapshot())
        self.last_checkpoint_seq = seq
        self.checkpoint_history.append((seq, self._tree.root_digest))
        if len(self.checkpoint_history) > _HISTORY_MAX:
            del self.checkpoint_history[:-_HISTORY_MAX]
        return True

    @property
    def tree(self) -> PartitionTree:
        return self._tree

    # -- recovery ---------------------------------------------------------------------------------

    def shutdown(self) -> float:
        return self.upcalls.shutdown()

    def restart(self) -> float:
        return self.upcalls.restart()
