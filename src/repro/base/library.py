"""Top-level helpers: stand up a BASE-replicated service.

``build_base_cluster`` takes one conformance-wrapper factory per replica.
Passing the same factory everywhere gives homogeneous replication (still
valuable: proactive recovery + nondeterminism masking, as in the Thor
example); passing different factories is opportunistic N-version
programming (the BASEFS example, where each replica wraps a different
file-system implementation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.base.state import AbstractStateManager
from repro.base.upcalls import Upcalls
from repro.bft.config import BftConfig
from repro.bft.costs import CostModel, ZERO_COSTS
from repro.harness.cluster import Cluster, build_cluster
from repro.sim.network import NetworkConfig
from repro.sim.tracing import Tracer


@dataclass
class BaseServiceConfig:
    """Knobs of the BASE layer itself (the BFT knobs live in BftConfig)."""

    branching: int = 64
    per_object_check_cost: float = 0.0   # cold (recovery check), per KB
    checkpoint_cost: float = 0.0         # hot (checkpoint get_obj), per KB
    cow_cost: float = 0.0                # modify() pre-image copy, per KB


def build_base_cluster(wrapper_factories: Sequence[Callable[[], Upcalls]],
                       config: Optional[BftConfig] = None,
                       base_config: Optional[BaseServiceConfig] = None,
                       network_config: Optional[NetworkConfig] = None,
                       costs: CostModel = ZERO_COSTS,
                       replica_costs: Optional[List[CostModel]] = None,
                       tracer: Optional[Tracer] = None,
                       seed: int = 0,
                       scheduler=None,
                       network=None) -> Cluster:
    """Build a replicated service from per-replica conformance wrappers."""
    config = config or BftConfig(n=len(wrapper_factories))
    if len(wrapper_factories) != config.n:
        raise ValueError(f"{len(wrapper_factories)} wrapper factories for "
                         f"n={config.n} replicas")
    base_config = base_config or BaseServiceConfig()
    managers: List[AbstractStateManager] = []

    def make_state(i: int) -> AbstractStateManager:
        manager = AbstractStateManager(
            wrapper_factories[i](), branching=base_config.branching,
            per_object_check_cost=base_config.per_object_check_cost,
            checkpoint_cost=base_config.checkpoint_cost,
            cow_cost=base_config.cow_cost)
        managers.append(manager)
        return manager

    cluster = build_cluster(make_state, config=config,
                            network_config=network_config, costs=costs,
                            replica_costs=replica_costs, tracer=tracer,
                            seed=seed, scheduler=scheduler, network=network)
    # Wire CPU charging from wrappers through to their replica.  The
    # recovery check pass accounts its CPU to the recovery manager (it
    # overlaps fetch round-trips) rather than stalling the protocol.
    for replica, manager in zip(cluster.replicas, managers):
        manager.charge_hook = replica.charge

        def background(seconds: float, replica=replica) -> None:
            if replica.recovery.recovering:
                replica.recovery.background_cpu += seconds
            else:
                replica.charge(seconds)

        manager.background_hook = background
    return cluster
