"""BASE: BFT with Abstract Specification Encapsulation.

The BASE library (paper §2.3) extends BFT so that replicas may run
*different or nondeterministic* service implementations:

- services plug in through the :class:`~repro.base.upcalls.Upcalls`
  interface of Figure 1 — ``execute``, the abstraction function
  ``get_obj``, its inverse ``put_objs``, ``shutdown``/``restart`` for
  proactive recovery, and ``propose_value``/``check_value`` for agreeing
  on nondeterministic choices;
- the :class:`~repro.base.state.AbstractStateManager` implements
  incremental checkpointing with copy-on-write over the abstract-state
  array (the ``modify`` library call) and hierarchical state transfer at
  abstract-object granularity.

Use :func:`~repro.base.library.build_base_cluster` to stand up a
replicated service from a list of per-replica wrapper factories — passing
*different* factories is the paper's opportunistic N-version programming.
"""

from repro.base.library import BaseServiceConfig, build_base_cluster
from repro.base.nondet import ClockValue, TimestampAgreement
from repro.base.state import AbstractStateManager
from repro.base.upcalls import Upcalls

__all__ = [
    "AbstractStateManager",
    "BaseServiceConfig",
    "ClockValue",
    "TimestampAgreement",
    "Upcalls",
    "build_base_cluster",
]
