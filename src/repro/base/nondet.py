"""Agreement on nondeterministic values (paper §2.3, "Non-determinism").

The canonical case is the clock: NFS sets time-last-modified from the
server's local clock, and replicas reading their own clocks would
diverge.  BASE has the primary *propose* the value; every replica
*checks* it (close to its own clock, monotonically increasing) before
accepting the pre-prepare, so a faulty primary can neither diverge the
replicas nor, e.g., freeze time to defeat client cache invalidation.
"""

from __future__ import annotations

import struct
from typing import Callable, Sequence


class ClockValue:
    """Encode/decode a clock reading as the nondet payload (microseconds)."""

    @staticmethod
    def encode(seconds: float) -> bytes:
        return struct.pack(">q", int(seconds * 1_000_000))

    @staticmethod
    def decode(payload: bytes) -> float:
        if len(payload) != 8:
            raise ValueError(f"bad clock payload of {len(payload)} bytes")
        return struct.unpack(">q", payload)[0] / 1_000_000


class TimestampAgreement:
    """Reusable propose/check pair for timestamp nondeterminism.

    ``clock`` returns this replica's local clock reading (simulated time
    plus any per-replica skew).  ``delta`` is the tolerated divergence
    between the primary's proposal and the checker's clock — we rely on
    loosely synchronized clocks (e.g. NTP) for liveness, never for safety.
    """

    def __init__(self, clock: Callable[[], float], delta: float = 0.5):
        self.clock = clock
        self.delta = delta
        self._last_accepted = -float("inf")

    def propose(self) -> bytes:
        # Monotonicity at the proposer too: never propose backwards.
        now = max(self.clock(), self._last_accepted + 1e-6)
        return ClockValue.encode(now)

    def check(self, nondet: bytes) -> bool:
        """Accept iff within delta of our clock and strictly increasing."""
        try:
            proposed = ClockValue.decode(nondet)
        except (ValueError, struct.error):
            return False
        if abs(proposed - self.clock()) > self.delta:
            return False
        if proposed <= self._last_accepted:
            return False
        return True

    def accept(self, nondet: bytes) -> float:
        """Record an agreed value (called when the batch executes) and
        return it as seconds."""
        value = ClockValue.decode(nondet)
        self._last_accepted = max(self._last_accepted, value)
        return value
