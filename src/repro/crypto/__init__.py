"""Cryptographic substrate for the replication protocols.

The paper's BFT library authenticates most messages with vectors of MACs
(one per receiver) computed with pairwise session keys, and uses public-key
signatures only to establish those keys and for a few protocol messages.
This package reproduces that structure with modern primitives:

- :mod:`~repro.crypto.digest` — SHA-256 digests over canonical encodings.
- :mod:`~repro.crypto.mac` — pairwise session keys and MAC authenticators.
- :mod:`~repro.crypto.keys` — the key registry, including the session-key
  refresh performed during proactive recovery.
- :mod:`~repro.crypto.signatures` — a signature scheme (HMAC under a
  per-node private key checked through the registry; a stand-in for RSA
  with identical protocol-visible behaviour).
"""

from repro.crypto.digest import DIGEST_SIZE, digest, digest_many
from repro.crypto.keys import KeyRegistry
from repro.crypto.mac import Authenticator, compute_mac, verify_mac
from repro.crypto.signatures import sign, verify_signature

__all__ = [
    "DIGEST_SIZE",
    "digest",
    "digest_many",
    "KeyRegistry",
    "Authenticator",
    "compute_mac",
    "verify_mac",
    "sign",
    "verify_signature",
]
