"""SHA-256 digests over canonical byte encodings."""

from __future__ import annotations

import hashlib
from typing import Iterable

DIGEST_SIZE = 32

NULL_DIGEST = b"\x00" * DIGEST_SIZE


def digest(data: bytes) -> bytes:
    """SHA-256 of ``data``."""
    return hashlib.sha256(data).digest()


def digest_many(parts: Iterable[bytes]) -> bytes:
    """SHA-256 over the concatenation of ``parts`` without copying."""
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
    return h.digest()
