"""Key registry: per-node key pairs and pairwise session keys.

In the real system each node holds a private key, distributes session
keys encrypted under receivers' public keys, and refreshes session keys
during proactive recovery so that an attacker who stole old keys cannot
impersonate a recovered replica.  In this simulation the registry is the
trusted holder of all key material; nodes interact with it only through
the same operations the real protocol provides (lookup of an outgoing
session key, verification of an incoming MAC, key refresh).
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Tuple


class KeyRegistry:
    """Holds private keys and pairwise session keys for a set of nodes."""

    def __init__(self, seed: bytes = b"repro-base") -> None:
        self._seed = seed
        self._private: Dict[object, bytes] = {}
        self._session: Dict[Tuple[object, object], bytes] = {}
        self._epoch: Dict[object, int] = {}
        # Precomputed keyed HMAC states (inner/outer pads already mixed
        # in), one per live session key: a MAC is then one state copy
        # plus a short update instead of a fresh key schedule per message.
        self._mac_states: Dict[Tuple[object, object], object] = {}

    # -- node enrollment -----------------------------------------------------

    def enroll(self, node_id: object) -> None:
        """Create a key pair for ``node_id`` (idempotent)."""
        if node_id not in self._private:
            self._private[node_id] = self._derive(b"priv", repr(node_id).encode(), b"0")
            self._epoch[node_id] = 0

    def private_key(self, node_id: object) -> bytes:
        self.enroll(node_id)
        return self._private[node_id]

    def epoch(self, node_id: object) -> int:
        """Session-key epoch; bumped by :meth:`refresh_session_keys`."""
        self.enroll(node_id)
        return self._epoch[node_id]

    # -- session keys ----------------------------------------------------------

    def session_key(self, sender: object, receiver: object) -> bytes:
        """Key the ``sender`` uses to MAC messages for ``receiver``.

        Keys are directional, as in BFT: the receiver chooses the key it
        will use to authenticate traffic *from* each sender.
        """
        self.enroll(sender)
        self.enroll(receiver)
        pair = (sender, receiver)
        if pair not in self._session:
            self._session[pair] = self._derive(
                b"sess", repr(pair).encode(),
                str(self._epoch[receiver]).encode())
        return self._session[pair]

    def mac_state(self, sender: object, receiver: object):
        """Keyed HMAC state for the pair's session key (cached).

        Returns an object supporting ``copy()``/``update()``/``digest()``
        — the raw OpenSSL HMAC when available (its ``copy()`` skips the
        Python wrapper), else the stdlib :class:`hmac.HMAC`.  Callers
        must ``.copy()`` before updating.  The cache lives and dies with
        the session key: :meth:`refresh_session_keys` evicts both
        together.
        """
        pair = (sender, receiver)
        state = self._mac_states.get(pair)
        if state is None:
            wrapped = hmac.new(self.session_key(sender, receiver),
                               digestmod=hashlib.sha256)
            state = getattr(wrapped, "_hmac", None) or wrapped
            self._mac_states[pair] = state
        return state

    def refresh_session_keys(self, receiver: object) -> None:
        """Discard all session keys directed at ``receiver``.

        Called when a replica recovers: it picks fresh keys so that MACs
        produced with stolen old keys no longer verify.
        """
        self.enroll(receiver)
        self._epoch[receiver] += 1
        for pair in [p for p in self._session if p[1] == receiver]:
            del self._session[pair]
            self._mac_states.pop(pair, None)

    # -- internals ----------------------------------------------------------

    def _derive(self, *parts: bytes) -> bytes:
        h = hmac.new(self._seed, digestmod=hashlib.sha256)
        for part in parts:
            h.update(part)
            h.update(b"|")
        return h.digest()
