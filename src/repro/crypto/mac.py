"""Message authentication codes and BFT-style authenticators.

BFT's key performance trick is replacing signatures with *authenticators*:
a vector with one MAC per receiving replica, computed with pairwise
session keys.  Verification touches only the receiver's own entry.

Two optimizations from the BFT implementation (inherited by BASE) live
here:

- **MAC over digest.**  Authenticators MAC the 32-byte SHA-256 digest of
  the message, not the message itself.  The sender hashes the body once
  (the digest is cached on the message) and then computes one cheap
  fixed-size MAC per receiver, so authenticator cost is independent of
  body size — a piggybacked pre-prepare batch is hashed once, not once
  per receiver.
- **Keyed-state precomputation.**  HMAC pays a key schedule (two hash
  compressions over the padded key) every time ``hmac.new`` runs.  Since
  session keys live for a whole key epoch, we build the keyed inner/outer
  state once per key and every MAC afterwards is a ``.copy()`` plus one
  short update.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Iterable

from repro.crypto.keys import KeyRegistry

MAC_SIZE = 16  # truncated HMAC-SHA256, mirroring BFT's short UMAC tags

#: Keyed HMAC states, one per key, reused via ``.copy()``.  Bounded so a
#: pathological workload churning keys cannot grow it without limit.
#: Holds the raw OpenSSL HMAC when available (its ``copy()`` skips the
#: Python wrapper), else the stdlib :class:`hmac.HMAC`.
_KEYED_STATES: Dict[bytes, object] = {}
_KEYED_STATES_MAX = 4096


def _keyed_state(key: bytes):
    state = _KEYED_STATES.get(key)
    if state is None:
        if len(_KEYED_STATES) >= _KEYED_STATES_MAX:
            _KEYED_STATES.clear()
        wrapped = hmac.new(key, digestmod=hashlib.sha256)
        state = getattr(wrapped, "_hmac", None) or wrapped
        _KEYED_STATES[key] = state
    return state


def compute_mac(key: bytes, data: bytes) -> bytes:
    """MAC of ``data`` under ``key`` (truncated HMAC-SHA256).

    The key schedule is precomputed and cached: this is one state copy
    plus one update over ``data`` (32 bytes on the authenticator path).
    """
    h = _keyed_state(key).copy()
    h.update(data)
    return h.digest()[:MAC_SIZE]


def verify_mac(key: bytes, data: bytes, tag: bytes) -> bool:
    return hmac.compare_digest(compute_mac(key, data), tag)


class Authenticator:
    """A vector of MACs over a message *digest*, one per destination.

    Callers pass the 32-byte ``msg.digest()`` — never the full body —
    so creating an authenticator for ``n`` receivers costs one body hash
    (cached on the message) plus ``n`` constant-size MACs.
    """

    __slots__ = ("sender", "tags")

    def __init__(self, sender: object, tags: Dict[object, bytes]):
        self.sender = sender
        self.tags = tags

    @classmethod
    def create(cls, registry: KeyRegistry, sender: object,
               receivers: Iterable[object], digest: bytes) -> "Authenticator":
        tags = {}
        mac_state = registry.mac_state
        for r in receivers:
            h = mac_state(sender, r).copy()
            h.update(digest)
            tags[r] = h.digest()[:MAC_SIZE]
        return cls(sender, tags)

    @classmethod
    def forged(cls, sender: object, receivers: Iterable[object]) -> "Authenticator":
        """An authenticator with garbage tags, for Byzantine-fault tests."""
        return cls(sender, {r: b"\x00" * MAC_SIZE for r in receivers})

    def verify(self, registry: KeyRegistry, receiver: object,
               digest: bytes) -> bool:
        tag = self.tags.get(receiver)
        if tag is None:
            return False
        h = registry.mac_state(self.sender, receiver).copy()
        h.update(digest)
        return hmac.compare_digest(h.digest()[:MAC_SIZE], tag)

    def wire_size(self) -> int:
        return len(self.tags) * MAC_SIZE

    def __repr__(self) -> str:  # pragma: no cover
        return f"Authenticator(sender={self.sender!r}, n={len(self.tags)})"
