"""Message authentication codes and BFT-style authenticators.

BFT's key performance trick is replacing signatures with *authenticators*:
a vector with one MAC per receiving replica, computed with pairwise
session keys.  Verification touches only the receiver's own entry.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, Iterable

from repro.crypto.keys import KeyRegistry

MAC_SIZE = 16  # truncated HMAC-SHA256, mirroring BFT's short UMAC tags


def compute_mac(key: bytes, data: bytes) -> bytes:
    """MAC of ``data`` under ``key`` (truncated HMAC-SHA256)."""
    return hmac.new(key, data, hashlib.sha256).digest()[:MAC_SIZE]


def verify_mac(key: bytes, data: bytes, tag: bytes) -> bool:
    return hmac.compare_digest(compute_mac(key, data), tag)


class Authenticator:
    """A vector of MACs, one per destination replica."""

    __slots__ = ("sender", "tags")

    def __init__(self, sender: object, tags: Dict[object, bytes]):
        self.sender = sender
        self.tags = tags

    @classmethod
    def create(cls, registry: KeyRegistry, sender: object,
               receivers: Iterable[object], data: bytes) -> "Authenticator":
        tags = {r: compute_mac(registry.session_key(sender, r), data)
                for r in receivers}
        return cls(sender, tags)

    @classmethod
    def forged(cls, sender: object, receivers: Iterable[object]) -> "Authenticator":
        """An authenticator with garbage tags, for Byzantine-fault tests."""
        return cls(sender, {r: b"\x00" * MAC_SIZE for r in receivers})

    def verify(self, registry: KeyRegistry, receiver: object, data: bytes) -> bool:
        tag = self.tags.get(receiver)
        if tag is None:
            return False
        return verify_mac(registry.session_key(self.sender, receiver), data, tag)

    def wire_size(self) -> int:
        return len(self.tags) * MAC_SIZE

    def __repr__(self) -> str:  # pragma: no cover
        return f"Authenticator(sender={self.sender!r}, n={len(self.tags)})"
