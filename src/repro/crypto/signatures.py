"""Simulated public-key signatures.

View-change, new-view, and recovery-request messages are signed rather
than MACed (a faulty replica must not be able to fabricate them for
others).  We simulate signatures with an HMAC under the signer's private
key, verified through the :class:`~repro.crypto.keys.KeyRegistry`.  The
protocol-visible behaviour is identical to RSA signatures: only the
holder of the private key can produce a tag that verifies, and any node
can verify it.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.keys import KeyRegistry

SIGNATURE_SIZE = 32


def sign(registry: KeyRegistry, signer: object, data: bytes) -> bytes:
    """Produce a signature over ``data`` with ``signer``'s private key."""
    return hmac.new(registry.private_key(signer), data, hashlib.sha256).digest()


def verify_signature(registry: KeyRegistry, signer: object, data: bytes,
                     signature: bytes) -> bool:
    """Check that ``signature`` was produced by ``signer`` over ``data``."""
    expected = hmac.new(registry.private_key(signer), data, hashlib.sha256).digest()
    return hmac.compare_digest(expected, signature)
