"""Exception hierarchy shared across the repro packages."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ProtocolError(ReproError):
    """A replica or client received a malformed or invalid protocol message."""


class AuthenticationError(ProtocolError):
    """A MAC or signature failed verification."""


class ConfigurationError(ReproError):
    """Invalid replication/service configuration (e.g. n < 3f + 1)."""


class StateTransferError(ReproError):
    """State transfer could not complete or fetched objects failed digest checks."""


class ServiceError(ReproError):
    """A wrapped service implementation returned an unexpected failure."""


class EncodingError(ReproError):
    """XDR encoding or decoding failed."""
