"""Simulated asynchronous network: delays, loss, partitions, multicast.

Models the substrate BFT assumes: an unreliable network that may delay,
drop, duplicate, or reorder messages, but eventually delivers them (the
liveness assumption).  Per-link behaviour is configurable and every random
choice comes from a seeded RNG, so runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Set, Tuple

from repro.sim.scheduler import Scheduler


@dataclass
class LinkConfig:
    """Behaviour of a single directed link."""

    latency: float = 0.0001          # base propagation delay (100 us LAN)
    jitter: float = 0.00002          # uniform extra delay in [0, jitter]
    bandwidth: float = 12_500_000.0  # bytes/sec (100 Mb/s)
    drop_rate: float = 0.0           # probability a message is silently lost
    duplicate_rate: float = 0.0      # probability a message is delivered twice


@dataclass
class NetworkConfig:
    """Network-wide defaults; individual links may override."""

    seed: int = 0
    default_link: LinkConfig = field(default_factory=LinkConfig)


class Network:
    """Message fabric connecting :class:`~repro.sim.node.Node` instances.

    Nodes are registered under hashable ids.  ``send`` charges latency +
    size/bandwidth, samples jitter/drops from the seeded RNG, and schedules
    ``node.on_message(src, msg)`` on the scheduler.  Partitions are modelled
    as a set of unordered id pairs whose traffic is dropped.
    """

    def __init__(self, scheduler: Scheduler, config: Optional[NetworkConfig] = None):
        self.scheduler = scheduler
        self.config = config or NetworkConfig()
        self.rng = random.Random(self.config.seed)
        self._nodes: Dict[Any, Any] = {}
        self._links: Dict[Tuple[Any, Any], LinkConfig] = {}
        self._partitioned: Set[frozenset] = set()
        self._filters: list = []  # callables (src, dst, msg) -> bool (deliver?)
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.bytes_sent = 0

    # -- topology ----------------------------------------------------------

    def register(self, node_id: Any, node: Any) -> None:
        """Attach a node; it must expose ``on_message(src, msg)``."""
        self._nodes[node_id] = node

    def unregister(self, node_id: Any) -> None:
        self._nodes.pop(node_id, None)

    def node_ids(self) -> Iterable[Any]:
        return self._nodes.keys()

    def set_link(self, src: Any, dst: Any, link: LinkConfig) -> None:
        """Override the link configuration for the directed pair."""
        self._links[(src, dst)] = link

    def link(self, src: Any, dst: Any) -> LinkConfig:
        return self._links.get((src, dst), self.config.default_link)

    # -- partitions and filters --------------------------------------------

    def partition(self, a: Any, b: Any) -> None:
        """Drop all traffic between ``a`` and ``b`` until healed."""
        self._partitioned.add(frozenset((a, b)))

    def heal(self, a: Any, b: Any) -> None:
        self._partitioned.discard(frozenset((a, b)))

    def heal_all(self) -> None:
        self._partitioned.clear()

    def is_partitioned(self, a: Any, b: Any) -> bool:
        return frozenset((a, b)) in self._partitioned

    def add_filter(self, fn: Callable[[Any, Any, Any], bool]) -> None:
        """Install a delivery filter; returning False drops the message.

        Filters let tests drop, say, all PRE-PREPAREs from a given primary
        without subclassing nodes.
        """
        self._filters.append(fn)

    def remove_filter(self, fn: Callable[[Any, Any, Any], bool]) -> None:
        self._filters.remove(fn)

    # -- transmission -------------------------------------------------------

    def send(self, src: Any, dst: Any, msg: Any, size: Optional[int] = None,
             extra_delay: float = 0.0) -> None:
        """Send ``msg`` from ``src`` to ``dst``.

        ``size`` is the wire size in bytes used for the bandwidth charge;
        when omitted the message's ``wire_size()`` is used if present,
        else a small fixed size.  ``extra_delay`` shifts the departure
        (a busy sender's CPU backlog) without a trampoline event.
        """
        self.messages_sent += 1
        nbytes = self._size_of(msg, size)
        self.bytes_sent += nbytes
        # Hot path: skip the partition/filter machinery entirely when no
        # partitions or filters are installed (the common case).
        if self._partitioned and self.is_partitioned(src, dst):
            self.messages_dropped += 1
            return
        if self._filters:
            for fn in self._filters:
                if not fn(src, dst, msg):
                    self.messages_dropped += 1
                    return
        link = self.link(src, dst)
        if link.drop_rate and self.rng.random() < link.drop_rate:
            self.messages_dropped += 1
            return
        delay = extra_delay + self._sample_delay(link, nbytes)
        self.scheduler.schedule(delay, self._deliver, src, dst, msg)
        if link.duplicate_rate and self.rng.random() < link.duplicate_rate:
            # The duplicate takes its own trip through the network: an
            # independently sampled delay, not a deterministic doubling
            # (it may even arrive before the original).
            self.messages_duplicated += 1
            self.scheduler.schedule(
                extra_delay + self._sample_delay(link, nbytes),
                self._deliver, src, dst, msg)

    def multicast(self, src: Any, dsts: Iterable[Any], msg: Any,
                  size: Optional[int] = None,
                  extra_delay: float = 0.0) -> None:
        """True IP multicast: the sender serializes the message *once*
        (it counts once against ``bytes_sent``), but each destination is
        charged the serialization delay of *its own* link — a slow edge
        must not speed up, nor a fast edge slow down, the others.
        Per-destination propagation jitter, drops, and partitions apply
        as usual.

        ``bytes_sent`` counts the single serialization only when at least
        one copy actually enters the fabric: if every destination copy is
        partitioned, filtered, or dropped, nothing went onto the wire.
        """
        dsts = list(dsts)
        if not dsts:
            return
        nbytes = self._size_of(msg, size)
        check_partitions = bool(self._partitioned)
        filters = self._filters
        schedule = self.scheduler.schedule
        entered = False
        for dst in dsts:
            self.messages_sent += 1
            if check_partitions and self.is_partitioned(src, dst):
                self.messages_dropped += 1
                continue
            if filters and any(not fn(src, dst, msg) for fn in filters):
                self.messages_dropped += 1
                continue
            link = self.link(src, dst)
            if link.drop_rate and self.rng.random() < link.drop_rate:
                self.messages_dropped += 1
                continue
            delay = extra_delay + self._sample_delay(link, nbytes)
            schedule(delay, self._deliver, src, dst, msg)
            entered = True
        if entered:
            self.bytes_sent += nbytes

    def broadcast(self, src: Any, msg: Any, size: Optional[int] = None) -> None:
        """Send to every registered node except ``src``."""
        self.multicast(src, [d for d in self._nodes if d != src], msg, size=size)

    # -- internals -----------------------------------------------------------

    def _sample_delay(self, link: LinkConfig, nbytes: int) -> float:
        """One trip's delay on ``link``: latency + jitter + serialization."""
        return (link.latency
                + (self.rng.random() * link.jitter if link.jitter else 0.0)
                + nbytes / link.bandwidth)

    @staticmethod
    def _size_of(msg: Any, size: Optional[int]) -> int:
        if size is not None:
            return size
        wire = getattr(msg, "wire_size", None)
        if callable(wire):
            return int(wire())
        return 64

    def _deliver(self, src: Any, dst: Any, msg: Any) -> None:
        node = self._nodes.get(dst)
        if node is None:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        node.on_message(src, msg)
