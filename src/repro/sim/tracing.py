"""Structured event tracing and counters for experiments."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class TraceEvent:
    time: float
    source: Any
    kind: str
    detail: Dict[str, Any]


class Tracer:
    """Collects protocol events and counters.

    The benchmark harness uses counters (MAC ops, digests, disk reads,
    messages) to attribute simulated time via the cost model; tests use
    the event list to assert protocol behaviour (e.g. "a view change
    happened", "replica 3 fetched 12 objects").
    """

    def __init__(self, keep_events: bool = True, max_events: int = 200_000):
        self.keep_events = keep_events
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.counters: Counter = Counter()
        self._timings: Dict[str, List[float]] = defaultdict(list)

    def emit(self, time: float, source: Any, kind: str, **detail: Any) -> None:
        self.counters[kind] += 1
        if self.keep_events and len(self.events) < self.max_events:
            self.events.append(TraceEvent(time, source, kind, detail))

    def count(self, kind: str, n: int = 1) -> None:
        self.counters[kind] += n

    def record_timing(self, label: str, seconds: float) -> None:
        self._timings[label].append(seconds)

    def timings(self, label: str) -> List[float]:
        return self._timings.get(label, [])

    def find(self, kind: str, source: Optional[Any] = None) -> List[TraceEvent]:
        return [e for e in self.events
                if e.kind == kind and (source is None or e.source == source)]

    def first(self, kind: str) -> Optional[TraceEvent]:
        for e in self.events:
            if e.kind == kind:
                return e
        return None

    def clear(self) -> None:
        self.events.clear()
        self.counters.clear()
        self._timings.clear()

    def summary(self) -> List[Tuple[str, int]]:
        return sorted(self.counters.items())
