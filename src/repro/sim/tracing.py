"""Structured event tracing, counters, and the metrics registry.

The :class:`Tracer` is the single observability object shared by a
simulated cluster: protocol code emits events and per-phase latency
observations into it, and the benchmark harness reads counters (MAC ops,
digests, messages), the bounded event ring, and the
:class:`~repro.sim.metrics.Metrics` registry out of it.
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.metrics import Histogram, Metrics, Span

#: The normal-case phase taxonomy, in protocol order.  Each entry is a
#: histogram named ``phase.<name>`` in the tracer's metrics registry;
#: view changes, state transfer, and recovery add their own entries.
PHASES = (
    "request_to_pre_prepare",   # primary: request arrival -> pre-prepare sent
    "pre_prepare_to_prepared",  # pre-prepare accepted -> prepared certificate
    "prepared_to_executed",     # prepared -> tentative execution (fast path)
    "prepared_to_committed",    # prepared -> committed-local
    "committed_to_executed",    # committed -> executed (slow path)
    "request_to_reply",         # client: invoke -> result accepted
    "view_change",              # VIEW-CHANGE sent -> new view entered
    "state_transfer",           # transfer initiated -> checkpoint installed
)


@dataclass
class TraceEvent:
    time: float
    source: Any
    kind: str
    detail: Dict[str, Any]


class Tracer:
    """Collects protocol events, counters, and phase metrics.

    The benchmark harness uses counters (MAC ops, digests, disk reads,
    messages) to attribute simulated time via the cost model; tests use
    the event list to assert protocol behaviour (e.g. "a view change
    happened", "replica 3 fetched 12 objects"); benchmarks read the
    ``metrics`` registry for per-phase latency breakdowns.

    Events live in a bounded ring: once ``max_events`` are retained the
    oldest is evicted and ``dropped_events`` increments, so a long run
    can never silently truncate the trace — ``find``/``first`` see the
    most recent window and the drop count says how much history is gone.
    """

    def __init__(self, keep_events: bool = True, max_events: int = 200_000,
                 clock: Optional[Callable[[], float]] = None):
        self.keep_events = keep_events
        self.max_events = max_events
        self.events: Deque[TraceEvent] = deque(maxlen=max_events)
        self.counters: Counter = Counter()
        self.dropped_events = 0
        self.metrics = Metrics()
        self._timings: Dict[str, List[float]] = defaultdict(list)
        self._clock = clock

    # -- clock ----------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulation clock so spans measure simulated time."""
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # -- events and counters --------------------------------------------------

    def emit(self, time: float, source: Any, kind: str, **detail: Any) -> None:
        self.counters[kind] += 1
        if not self.keep_events:
            self.dropped_events += 1
            return
        if len(self.events) == self.max_events:
            self.dropped_events += 1
        self.events.append(TraceEvent(time, source, kind, detail))

    def count(self, kind: str, n: int = 1) -> None:
        self.counters[kind] += n

    def record_timing(self, label: str, seconds: float) -> None:
        self._timings[label].append(seconds)
        self.metrics.observe(label, seconds)

    def timings(self, label: str) -> List[float]:
        return self._timings.get(label, [])

    def find(self, kind: str, source: Optional[Any] = None) -> List[TraceEvent]:
        return [e for e in self.events
                if e.kind == kind and (source is None or e.source == source)]

    def first(self, kind: str) -> Optional[TraceEvent]:
        for e in self.events:
            if e.kind == kind:
                return e
        return None

    def clear(self) -> None:
        self.events.clear()
        self.counters.clear()
        self._timings.clear()
        self.metrics.clear()
        self.dropped_events = 0

    def summary(self) -> List[Tuple[str, int]]:
        return sorted(self.counters.items())

    # -- metrics convenience --------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        self.metrics.observe(name, value)

    def observe_phase(self, phase: str, seconds: float) -> None:
        """Record one protocol-phase latency (histogram ``phase.<name>``)."""
        self.metrics.observe(f"phase.{phase}", seconds)

    def span(self, name: str) -> Span:
        """Span-style timing context over the bound (simulated) clock.

        Falls back to wall-clock time when no clock is bound, so the
        same code paths work outside a simulation.
        """
        clock = self._clock
        return self.metrics.span(name, clock) if clock is not None \
            else self.metrics.span(name)

    def phase_histograms(self) -> List[Tuple[str, Histogram]]:
        """All ``phase.*`` histograms, in protocol order then by name."""
        known = {f"phase.{p}": i for i, p in enumerate(PHASES)}
        items = self.metrics.histograms_with_prefix("phase.")
        return sorted(items, key=lambda kv: (known.get(kv[0], len(known)),
                                             kv[0]))
