"""Deterministic discrete-event simulation kernel.

The BFT/BASE protocols in this repository run on top of a simulated
asynchronous network rather than real sockets.  This keeps every run
deterministic (given a seed), lets tests explore Byzantine schedules
reproducibly, and lets the benchmark harness charge a calibrated cost
model for network, CPU, crypto, and disk time.

The kernel is deliberately small:

- :class:`~repro.sim.scheduler.Scheduler` — a priority queue of timed
  callbacks (the event loop).
- :class:`~repro.sim.network.Network` — unreliable, delay-injecting
  point-to-point and multicast message delivery between registered nodes.
- :class:`~repro.sim.node.Node` — base class for protocol participants
  with timer helpers.
- :class:`~repro.sim.tracing.Tracer` — structured event ring with
  counters, used by the benchmark harness.
- :class:`~repro.sim.metrics.Metrics` — counters/gauges/histograms with
  percentile summaries, exportable as JSON or harness tables.
"""

from repro.sim.scheduler import Event, Scheduler
from repro.sim.metrics import Histogram, Metrics, Span
from repro.sim.network import LinkConfig, Network, NetworkConfig
from repro.sim.node import Node, Timer
from repro.sim.tracing import PHASES, Tracer

__all__ = [
    "Event",
    "Scheduler",
    "Histogram",
    "LinkConfig",
    "Metrics",
    "Network",
    "NetworkConfig",
    "Node",
    "PHASES",
    "Span",
    "Timer",
    "Tracer",
]
