"""Base class for protocol participants: message handling + timers."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.network import Network
from repro.sim.scheduler import Event, Scheduler


class Timer:
    """Restartable one-shot timer bound to a scheduler.

    Mirrors the timers BFT uses (view-change timer, recovery watchdog):
    ``start`` arms it, ``stop`` disarms, ``restart`` re-arms from now.

    Restarts are *lazy*: protocol code restarts its timers far more often
    than they fire (the view-change timer is pushed out on every
    execution), so pushing the deadline later only records the new
    deadline instead of cancelling and re-scheduling an event.  When the
    stale event fires early, it quietly re-arms for the remaining time.
    Only a restart to an *earlier* deadline touches the queue.
    """

    def __init__(self, scheduler: Scheduler, period: float,
                 callback: Callable[[], None]):
        self.scheduler = scheduler
        self.period = period
        self.callback = callback
        self._event: Optional[Event] = None
        self._deadline = 0.0   # when the callback should actually run

    @property
    def running(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, period: Optional[float] = None) -> None:
        """Arm the timer.

        A running timer keeps its current deadline (use :meth:`restart`
        to re-arm from now), but a new ``period`` is recorded either way
        and takes effect the next time the timer is armed — it is never
        silently discarded.
        """
        if period is not None:
            self.period = period
        if self.running:
            return
        self._deadline = self.scheduler._now + self.period
        self._event = self.scheduler.schedule(self.period, self._fire)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def restart(self, period: Optional[float] = None) -> None:
        if period is not None:
            self.period = period
        deadline = self.scheduler._now + self.period
        if self.running and self._event.time <= deadline:
            # The queued event fires no later than the new deadline:
            # leave it and let _fire re-arm for the remainder.
            self._deadline = deadline
            return
        self.stop()
        self.start()

    def _fire(self) -> None:
        if self._deadline > self.scheduler._now:
            # Deadline was lazily pushed out past this event: re-arm once
            # for the remainder instead of having churned the queue on
            # every restart in between.
            self._event = self.scheduler.schedule(
                self._deadline - self.scheduler._now, self._fire)
            return
        self._event = None
        self.callback()


class Node:
    """A network participant with a stable id, send helpers, and timers."""

    def __init__(self, node_id: Any, network: Network):
        self.node_id = node_id
        self.network = network
        self.scheduler = network.scheduler
        network.register(node_id, self)
        self._crashed = False
        self.busy_until = 0.0
        # kind -> bound handler (False caches a miss): message dispatch
        # is the hottest call in the simulator, so resolve the
        # ``handle_<kind>`` lookup once per kind instead of per message.
        self._handlers: dict = {}

    # -- lifecycle -----------------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Stop processing messages (fail-stop); timers keep firing but
        subclasses should check :attr:`crashed`."""
        self._crashed = True

    def restart_node(self) -> None:
        self._crashed = False

    # -- CPU accounting ---------------------------------------------------------

    def charge(self, seconds: float) -> None:
        """Consume simulated CPU time; serializes this node's work.

        Outgoing messages are delayed until the node's accumulated CPU
        work has drained, modelling a single-threaded implementation.
        """
        if seconds > 0:
            now = self.scheduler._now
            busy = self.busy_until
            self.busy_until = (busy if busy > now else now) + seconds

    # -- messaging -----------------------------------------------------------

    def send(self, dst: Any, msg: Any, size: Optional[int] = None) -> None:
        if self._crashed:
            return
        # A busy sender's CPU backlog shifts the departure; the network
        # folds it into the delivery delay rather than running a
        # trampoline event at busy_until (same timing, one event fewer).
        delay = self.busy_until - self.scheduler._now
        self.network.send(self.node_id, dst, msg, size=size,
                          extra_delay=delay if delay > 0 else 0.0)

    def multicast(self, dsts, msg: Any, size: Optional[int] = None) -> None:
        if self._crashed:
            return
        delay = self.busy_until - self.scheduler._now
        self.network.multicast(self.node_id, dsts, msg, size=size,
                               extra_delay=delay if delay > 0 else 0.0)

    def on_message(self, src: Any, msg: Any) -> None:
        """Dispatch to ``handle_<type>`` by the message's ``kind`` attribute."""
        if self._crashed:
            return
        kind = getattr(msg, "kind", None)
        handler = self._handlers.get(kind)
        if handler is None:
            handler = getattr(self, f"handle_{kind}", None) if kind else None
            self._handlers[kind] = handler if handler is not None else False
        if handler:
            handler(src, msg)
        else:
            self.on_unhandled(src, msg)

    def on_unhandled(self, src: Any, msg: Any) -> None:
        """Hook for messages without a dedicated handler; default drops."""

    # -- timers ---------------------------------------------------------------

    def make_timer(self, period: float, callback: Callable[[], None]) -> Timer:
        return Timer(self.scheduler, period, callback)

    def after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` simulated seconds."""
        return self.scheduler.schedule(delay, fn, *args)

    @property
    def now(self) -> float:
        return self.scheduler._now
