"""Event loop: a priority queue of timed callbacks over simulated time."""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

_heappush = heapq.heappush
_heappop = heapq.heappop


class Event:
    """A scheduled callback.  Cancellable; ordered by (time, seq)."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "scheduler")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple, scheduler: Optional["Scheduler"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        # Back-reference while the event sits in a scheduler's queue; the
        # scheduler clears it on pop so late cancels of already-fired
        # events do not skew its live-event accounting.
        self.scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        if not self.cancelled:
            self.cancelled = True
            if self.scheduler is not None:
                self.scheduler._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state}, fn={self.fn!r})"


#: Heap entries are (time, seq, event) tuples: the unique, monotonically
#: increasing seq breaks time ties, so heap comparisons resolve in C on
#: the first two fields and never call back into Python.
_Entry = Tuple[float, int, Event]


class Scheduler:
    """Discrete-event scheduler with a monotonically advancing clock.

    Time is a float in simulated seconds.  Events scheduled for the same
    instant run in scheduling order (FIFO), which keeps runs deterministic.

    Cancelled events are counted as they are cancelled (so
    :meth:`pending` is O(1)) and lazily discarded; when they outnumber
    the live half of the queue the heap is compacted in one pass, keeping
    memory and pop costs proportional to the live event count.
    """

    #: Compact only above this queue size — tiny heaps are cheap to scan.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: List[_Entry] = []
        self._halted = False
        self._cancelled = 0   # cancelled events still sitting in the queue
        self.events_run = 0   # cumulative executed events (perf harness)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated seconds.

        Returns the :class:`Event`, which may be cancelled before it fires.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        _heappush(self._queue, (time, seq, event))
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated ``time`` (>= now)."""
        return self.schedule(max(0.0, time - self._now), fn, *args)

    def halt(self) -> None:
        """Stop the run loop after the current event completes."""
        self._halted = True

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        queue = self._queue
        while queue:
            time, _seq, event = _heappop(queue)
            event.scheduler = None
            if event.cancelled:
                self._cancelled -= 1
                continue
            self._now = time
            self.events_run += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``).  Returns count run."""
        self._halted = False
        count = 0
        while not self._halted and (max_events is None or count < max_events):
            if not self.step():
                break
            count += 1
        return count

    def run_until(self, time: float, max_events: int = 50_000_000) -> int:
        """Run events with time <= ``time``; advances the clock to ``time``."""
        self._halted = False
        count = 0
        while not self._halted and count < max_events:
            # Re-read the queue each pass: a callback may have compacted
            # it, which rebinds ``self._queue``.
            queue = self._queue
            if not queue:
                break
            head_time, _seq, head = queue[0]
            if head.cancelled:
                _heappop(queue)
                head.scheduler = None
                self._cancelled -= 1
                continue
            if head_time > time:
                break
            self.step()
            count += 1
        if self._now < time:
            self._now = time
        return count

    def run_until_idle_or(self, predicate: Callable[[], bool],
                          max_events: int = 50_000_000) -> bool:
        """Run until ``predicate()`` is true or the queue drains.

        Returns the final value of the predicate.  The predicate is checked
        after every event, making this the usual way tests wait for a
        protocol outcome without assuming how long it takes.
        """
        self._halted = False
        count = 0
        while not self._halted and count < max_events:
            if predicate():
                return True
            if not self.step():
                break
            count += 1
        return predicate()

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue.  O(1): the
        scheduler tracks cancellations as they happen instead of scanning."""
        return len(self._queue) - self._cancelled

    # -- internals ----------------------------------------------------------

    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` for events still in the queue."""
        self._cancelled += 1
        if (self._cancelled > self._COMPACT_MIN
                and self._cancelled * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors."""
        live = []
        for entry in self._queue:
            event = entry[2]
            if event.cancelled:
                event.scheduler = None
            else:
                live.append(entry)
        heapq.heapify(live)
        self._queue = live
        self._cancelled = 0
